#!/usr/bin/env python3
"""An NSX hypervisor deployment on the AF_XDP datapath (§4, §5.1).

Plays out the paper's integration story end to end:

1. the NSX agent configures OVS over OVSDB and installs a
   production-grade rule set over OpenFlow (Table 3's shape, scaled
   down for demo speed — pass ``--full`` for all 103,302 rules);
2. a packet between two VIFs walks the distributed-firewall pipeline:
   classification -> conntrack -> forwarding, recirculating between
   passes exactly as §5.1 describes;
3. traffic to a remote hypervisor is Geneve-encapsulated using routes
   and neighbors mirrored from the kernel over Netlink;
4. an OVS upgrade is a process restart: caches and userspace conntrack
   flush and repopulate — no kernel module, no reboot (§6).

Run:  python examples/nsx_deployment.py [--full]
"""

import sys

from repro.hosts.host import Host
from repro.net.addresses import int_to_ip
from repro.net.builder import make_tcp_packet, make_udp_packet
from repro.net.tunnel import decapsulate
from repro.nsx.agent import NsxAgent
from repro.ovs.emc import ExactMatchCache
from repro.sim.cpu import CpuCategory, ExecContext


def main() -> None:
    full_scale = "--full" in sys.argv
    target_rules = None if full_scale else 12_000

    # -- hypervisor + NSX agent ---------------------------------------------
    host = Host("hypervisor-1", n_cpus=16)
    nic = host.add_nic("ens1")
    host.kernel.init_ns.add_address("ens1", "192.168.1.1", 16)
    vs = host.install_ovs("netdev")
    vs.add_bridge(NsxAgent.INTEGRATION_BRIDGE)
    uplink, uplink_adapter = vs.add_sim_port(NsxAgent.INTEGRATION_BRIDGE,
                                             "uplink")
    vs.dpif_netdev.ports[uplink.dp_port_no].device = nic

    agent = NsxAgent(host.vswitchd)
    vif_ports, adapters = {}, {}
    for vif in agent.topo.vifs[:4]:
        port, adapter = vs.add_sim_port(NsxAgent.INTEGRATION_BRIDGE,
                                        f"vif{vif.vif_id}")
        vif_ports[vif.vif_id] = port
        adapters[vif.vif_id] = adapter
    stats = agent.deploy(uplink, vif_ports, target_rules=target_rules)
    print("NSX deployment (Table 3 shape):")
    print(f"  Geneve tunnels     {stats.n_tunnels}")
    print(f"  VMs                {stats.n_vms} (x2 interfaces)")
    print(f"  OpenFlow rules     {stats.n_rules:,}"
          + ("" if full_scale else "  (scaled; --full for 103,302)"))
    print(f"  OpenFlow tables    {stats.n_tables}")
    print(f"  matching fields    {stats.n_match_fields}")

    ctx = ExecContext(host.cpu, 1, CpuCategory.USER)
    emc = ExactMatchCache()
    dpif = vs.dpif_netdev

    # -- VIF to VIF through the distributed firewall -------------------------
    vifs = [v for v in agent.topo.vifs if v.vif_id in vif_ports]
    src, dst = next(
        (a, b) for a in vifs for b in vifs
        if a is not b and a.logical_switch == b.logical_switch
    )
    syn = make_tcp_packet(src.mac, dst.mac, src.ip, dst.ip,
                          40000, 443, flags=0x02)
    dpif.process_batch([syn], dpif.port_no(f"vif{src.vif_id}"), ctx, emc)
    print(f"\nVIF {src.vif_id} -> VIF {dst.vif_id} "
          f"({int_to_ip(src.ip)} -> {int_to_ip(dst.ip)}):")
    print(f"  delivered: {len(adapters[dst.vif_id].take_transmitted())} "
          f"packet(s) after {dpif.stats.passes} datapath passes "
          "(classify -> conntrack -> forward)")
    conns = dpif.conntrack.connections()
    print(f"  firewall committed {len(conns)} connection(s) "
          f"in zone {conns[0].zone}")

    # -- VIF to a remote hypervisor: Geneve over the underlay ---------------
    remote = next(rm for rm in agent.topo.remote_macs
                  if rm.logical_switch == src.logical_switch)
    pkt = make_udp_packet(src.mac, remote.mac, src.ip, src.ip ^ 0x7,
                          5000, 5001)
    dpif.process_batch([pkt], dpif.port_no(f"vif{src.vif_id}"), ctx, emc)
    [outer] = uplink_adapter.take_transmitted()
    ttype, vni, outer_src, outer_dst, _inner = decapsulate(outer.data)
    vtep = agent.topo.vteps[remote.vtep_index]
    print(f"\nVIF {src.vif_id} -> remote MAC behind VTEP {vtep.index}:")
    print(f"  encapsulated in {ttype} vni={vni}, "
          f"{int_to_ip(outer_src)} -> {int_to_ip(outer_dst)}")
    print("  (route + ARP resolved from the Netlink-mirrored kernel tables)")

    # -- upgrading OVS is just a restart -------------------------------------
    megaflows_before = len(dpif.megaflows)
    vs.restart()
    print(f"\nOVS restart (upgrade/bugfix, §6): megaflows "
          f"{megaflows_before} -> {len(dpif.megaflows)}, conntrack "
          f"-> {len(dpif.conntrack)}; OpenFlow rules resync "
          f"({vs.bridge('br-int').n_flows():,} still installed). "
          "No kernel module. No reboot.")
    # Traffic recovers immediately: the first packet re-populates caches.
    ack = make_tcp_packet(src.mac, dst.mac, src.ip, dst.ip,
                          40000, 443, flags=0x02)
    dpif.process_batch([ack], dpif.port_no(f"vif{src.vif_id}"), ctx,
                       ExactMatchCache())
    print(f"  first post-restart packet delivered: "
          f"{len(adapters[dst.vif_id].take_transmitted())} packet(s)")


if __name__ == "__main__":
    main()
