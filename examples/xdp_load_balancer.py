#!/usr/bin/env python3
"""Extending OVS with eBPF: an in-driver L4 load balancer (§3.5).

"Another example is to implement an L4 load-balancer in XDP targeting a
particular 5-tuple, which directly processes any packet that matches the
5-tuple and passes non-matching packets to the userspace OVS datapath."

This example attaches exactly that program to the NIC feeding OVS,
configures two virtual-IP mappings in its eBPF map, and shows the split:
matched flows bounce in the driver (cheap), the rest go to OVS userspace
(flexible).  It also demonstrates the verifier doing its job, and
measures how much faster the in-driver path is.

Run:  python examples/xdp_load_balancer.py
"""

from repro.ebpf.isa import Reg
from repro.ebpf.program import ProgramBuilder
from repro.ebpf.programs import l4_load_balancer_program, lb_key
from repro.ebpf.verifier import VerifierError, verify
from repro.ebpf.xdp import XdpContext
from repro.experiments.common import CpuSnapshot, reduce_run
from repro.hosts.host import Host
from repro.kernel.netdev import NetDevice, Wire
from repro.net.addresses import MacAddress, ip_to_int
from repro.net.builder import make_udp_packet


def main() -> None:
    host = Host("lb-host", n_cpus=4)
    nic = host.add_nic("ens1", n_queues=1)
    peer = NetDevice("client-side", MacAddress.local(0x777))
    peer.set_up()
    returned = []
    peer.set_rx_handler(lambda pkt, ctx: returned.append(pkt))
    Wire(nic, peer, gbps=25)

    # -- build, verify and attach the program --------------------------------
    program, xsks, backends = l4_load_balancer_program()
    print(f"program {program.name!r}: {len(program.insns)} instructions, "
          f"verified={program.verified}")
    nic.attach_xdp(XdpContext(program))

    # Sanity: the verifier rejects a program with a loop, which is why the
    # full OVS datapath cannot live in eBPF (§2.2.2).
    looped = ProgramBuilder("evil")
    looped.mov_imm(Reg.R0, 0)
    looped.exit_()
    bad = looped.build()
    bad_insns = list(bad.insns)
    from repro.ebpf.isa import Insn

    bad_insns.insert(1, Insn("jeq_imm", dst=0, off=-2, imm=99))
    bad.insns = tuple(bad_insns)
    try:
        verify(bad)
    except VerifierError as exc:
        print(f"verifier rejected a looping program: {exc}")

    # -- configure two VIP flows in the map ----------------------------------
    vip, b1, b2 = "10.0.0.100", "10.0.1.1", "10.0.1.2"
    client = "198.51.100.7"
    for sport, backend in ((4242, b1), (4243, b2)):
        backends.update(
            lb_key(ip_to_int(client), ip_to_int(vip), sport, 80, 17),
            ip_to_int(backend).to_bytes(4, "little"),
        )
    print(f"configured VIP {vip}:80 -> {{{b1}, {b2}}}")

    # -- traffic: two matched flows + one unmatched ---------------------------
    src_mac = MacAddress.local(0x111)
    matched_a = make_udp_packet(src_mac, nic.mac, client, vip, 4242, 80)
    matched_b = make_udp_packet(src_mac, nic.mac, client, vip, 4243, 80)
    other = make_udp_packet(src_mac, nic.mac, client, "10.0.0.50", 999, 53)

    before = CpuSnapshot.take(host.cpu)
    n = 600
    for i in range(n):
        nic.host_receive((matched_a, matched_b, other)[i % 3])
        host.kernel.service_nic(nic, budget=32, interrupt_mode=False)
    m = reduce_run(host.cpu, before, n, link_gbps=25, frame_len=64)

    rewritten = {pkt.data[30:34] for pkt in returned}
    print(f"\n{len(returned)} matched packets bounced in the driver "
          f"(XDP_TX), rewritten to backends: "
          f"{sorted(b.hex() for b in rewritten)}")
    print(f"unmatched packets sent toward OVS userspace: "
          f"{n - len(returned)} (fell through the XSK redirect)")
    print(f"in-driver processing: {m.ns_per_packet:.0f} ns/packet "
          f"({m.mpps:.1f} Mpps on one core)")
    print("\nNo OVS restart was needed to deploy this program — XDP "
          "programs load and unload independently (§3.5).")


if __name__ == "__main__":
    main()
