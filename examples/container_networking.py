#!/usr/bin/env python3
"""Container networking: Figure 5's three paths compared (§3.4, §5.2).

Two containers on one host exchange traffic three ways:

* **path through the kernel datapath** — veth to veth through the OVS
  kernel module;
* **path C** — the XDP program redirects container traffic veth-to-veth
  inside the driver layer, never touching userspace;
* **path A** — everything goes up to OVS userspace and back down.

The example runs a real UDP request/response between the containers'
network stacks, then measures packet-rate for the two AF_XDP-era paths
to show why the paper made path C the default for containers
(Outcome #2).

Run:  python examples/container_networking.py
"""

from repro.experiments.pvp_pcp import afxdp_pcp, dpdk_pcp, kernel_pcp
from repro.hosts.container import Container
from repro.hosts.host import Host
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.tools.nstat import nstat_dict
from repro.traffic.trex import FlowSpec, TrexStream


def demo_request_response() -> None:
    """Containers exchanging real UDP through the kernel datapath."""
    host = Host("node-1")
    c1 = Container(host, "web", "172.17.0.2")
    c2 = Container(host, "db", "172.17.0.3")
    vs = host.install_ovs("system")
    vs.add_bridge("br0")
    p1 = vs.add_system_port("br0", c1.outside)
    p2 = vs.add_system_port("br0", c2.outside)
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(in_port=p1.ofport),
                [OutputAction(c2.outside.name)])
    of.add_flow(0, 10, Match(in_port=p2.ofport),
                [OutputAction(c1.outside.name)])

    ctx = host.user_ctx(0)
    server = c2.stack.udp_socket(ip="172.17.0.3", port=5432)
    server.on_receive = lambda payload, src_ip, src_port: (
        c2.stack.udp_send(server, src_ip, src_port,
                          b"rows: 42", host.user_ctx(1))
    )
    client = c1.stack.udp_socket(port=3333)
    c1.stack.udp_send(client, "172.17.0.3", 5432, b"SELECT 1", ctx)
    host.pump()
    reply = client.recv()
    print("container 'web' -> 'db' UDP request/response over OVS:")
    print(f"  reply payload: {reply[0].decode()!r}")
    stats = nstat_dict(c2.ns)
    print(f"  db container stack counters: "
          f"UdpIn={stats.get('UdpInDatagrams')}, "
          f"UdpOut={stats.get('UdpOutDatagrams')}")


def compare_paths() -> None:
    print("\nForwarding-rate comparison, physical->container->physical "
          "(64B, one core each):")
    stream = lambda: TrexStream(FlowSpec(1, vary_dst=False), frame_len=64)  # noqa: E731
    rows = [
        ("kernel datapath (veth)", kernel_pcp()),
        ("AF_XDP, XDP redirect (path C)", afxdp_pcp()),
        ("DPDK (AF_PACKET to the veth)", dpdk_pcp()),
    ]
    results = []
    for label, bench in rows:
        m = bench.drive(stream(), 1_200)
        results.append((label, m))
        print(f"  {label:32s} {m.mpps:5.2f} Mpps   "
              f"(CPU: {m.cpu_util['total']:.2f} HT)")
    best = max(results, key=lambda r: r[1].mpps)
    print(f"\n  winner: {best[0]} — the packet never left the kernel "
          "(Outcome #2)")


if __name__ == "__main__":
    demo_request_response()
    compare_paths()
