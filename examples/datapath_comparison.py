#!/usr/bin/env python3
"""The architecture decision, replayed: kernel vs eBPF vs DPDK vs AF_XDP.

Re-runs the measurements behind §2.2's takeaways from the public API:

* Figure 2's single-core shootout (eBPF loses to the kernel module,
  both lose badly to kernel-bypass),
* Table 2's optimization ladder (how AF_XDP closes most of the gap),
* Table 1's compatibility check (which tools survive each choice).

Run:  python examples/datapath_comparison.py
"""

from repro.analysis.reporting import bar_chart
from repro.dpdk.ethdev import bind_device
from repro.experiments.fig2_single_flow import run_fig2
from repro.experiments.table2_optimizations import run_table2
from repro.hosts.host import Host
from repro.tools.iproute import IpCommand, ToolError


def main() -> None:
    print("=" * 64)
    print("Figure 2 — one core, one 64B UDP flow, 10 GbE")
    print("=" * 64)
    fig2 = run_fig2(packets=2_000)
    print(fig2.render())
    print(f"\nTakeaway 4: the sandboxed eBPF datapath runs "
          f"{fig2.ebpf_slowdown_pct:.0f}% behind the kernel module — "
          "disqualified.")
    print("Takeaway 3: DPDK is fast but breaks the tools (below).")

    print()
    print("=" * 64)
    print("Table 2 — the AF_XDP optimization ladder")
    print("=" * 64)
    table2 = run_table2(packets=2_000)
    print(table2.render())
    print(f"\nO1 (dedicated PMD threads) alone is worth "
          f"{table2.speedup('none', 'O1'):.1f}x.")

    print()
    print("=" * 64)
    print("Table 1 — who keeps the standard tools?")
    print("=" * 64)
    host = Host("compat-check")
    host.add_nic("ens1")
    host.kernel.init_ns.add_address("ens1", "10.0.0.1", 24)
    ip = IpCommand(host.kernel.init_ns)
    print("with AF_XDP (kernel still owns the NIC):")
    print("  $ ip address show ens1")
    print("  " + ip.address_show("ens1").strip())
    bind_device(host.kernel.init_ns, "ens1")
    print("after binding the same NIC to DPDK:")
    try:
        ip.link_show("ens1")
    except ToolError as exc:
        print(f"  $ ip link show ens1\n  {exc}")
    print("\nThat failure mode — on every command in Table 1 — is why the "
          "paper rejects the all-DPDK architecture for NSX.")


if __name__ == "__main__":
    main()
