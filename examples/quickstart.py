#!/usr/bin/env python3
"""Quickstart: a host running OVS with an AF_XDP datapath.

Builds one simulated server, installs ovs-vswitchd with the userspace
(netdev) datapath, attaches a physical NIC through AF_XDP, programs a
flow over OpenFlow, forwards traffic with a PMD thread — and then shows
the paper's compatibility point: the standard Linux tools still work on
the NIC, because the kernel still owns it.

Run:  python examples/quickstart.py
"""

from repro.afxdp.driver import AfxdpOptions
from repro.hosts.host import Host
from repro.kernel.netdev import NetDevice, Wire
from repro.net.addresses import MacAddress
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.pmd import PmdThread
from repro.tools.iproute import IpCommand
from repro.tools.tcpdump import Tcpdump
from repro.traffic.trex import FlowSpec, TrexStream


def main() -> None:
    # -- a server with one 25 GbE NIC --------------------------------------
    host = Host("demo-host", n_cpus=8)
    nic = host.add_nic("ens1", n_queues=1)
    peer = NetDevice("peer", MacAddress.local(0x999))
    peer.set_up()
    peer.set_rx_handler(lambda pkt, ctx: None)
    Wire(nic, peer, gbps=25)

    # -- ovs-vswitchd with the userspace datapath, fed by AF_XDP -----------
    vs = host.install_ovs("netdev")          # no kernel module involved
    vs.add_bridge("br0")
    nic_port = vs.add_afxdp_port("br0", nic, AfxdpOptions())
    out_port, out_adapter = vs.add_sim_port("br0", "p-out")

    # -- program a flow over OpenFlow ---------------------------------------
    of = OpenFlowConnection(vs.bridge("br0"))
    # Hairpin half the traffic back out the NIC (so tcpdump has transmit
    # traffic to show), the rest to a second port.
    of.add_flow(table_id=0, priority=20,
                match=Match(in_port=nic_port.ofport, nw_proto=17,
                            tp_dst=12),
                actions=[OutputAction("IN_PORT")])
    of.add_flow(table_id=0, priority=10,
                match=Match(in_port=nic_port.ofport),
                actions=[OutputAction("p-out")])
    print(f"installed {of.flow_count()} OpenFlow flow(s)")

    # -- a PMD thread polls the AF_XDP queue (O1) ---------------------------
    pmd = PmdThread(vs.dpif_netdev, host.cpu, core=0)
    pmd.add_rxq(vs.dpif_netdev.ports[nic_port.dp_port_no], 0)

    # -- traffic -------------------------------------------------------------
    stream = TrexStream(FlowSpec(n_flows=4), frame_len=64)
    with Tcpdump(host.kernel.init_ns, "ens1") as dump:
        for pkt in stream.burst(64):
            nic.host_receive(pkt)          # frames arrive from the wire
        host.kernel.service_nic(nic)       # XDP redirects them to the XSK
        pmd.run_until_idle()               # OVS userspace forwards them

    print(f"hairpinned {nic.stats.tx_packets} packets back out ens1 and "
          f"delivered {len(out_adapter.transmitted)} to p-out")
    stats = vs.dpif_netdev.stats
    print(f"pipeline: {stats.upcalls} upcalls, {stats.emc_hits} EMC hits, "
          f"{stats.megaflow_hits} megaflow hits")

    # -- the compatibility story (Table 1) ----------------------------------
    ip = IpCommand(host.kernel.init_ns)
    print("\n$ ip link show ens1")
    print(ip.link_show("ens1"))
    print("\n$ tcpdump -i ens1   (first three captured lines)")
    for line in dump.stop()[:3]:
        print(f"  {line}")
    print("\nNote: receive-direction frames were claimed by XDP before the")
    print("capture point — exactly as on real hardware — but the device,")
    print("its statistics and its transmit traffic stay fully visible to")
    print("the standard tools, unlike a DPDK-bound NIC (Table 1).")


if __name__ == "__main__":
    main()
