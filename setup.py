"""Setup shim so legacy editable installs work without the ``wheel`` package.

The offline environment lacks ``wheel`` (needed for PEP 660 editable
installs), so ``pip install -e .`` falls back to ``setup.py develop`` here.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
