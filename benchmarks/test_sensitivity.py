"""Sensitivity analysis: the paper's orderings survive cost perturbation.

The reproduction's conclusions should not hinge on any single calibrated
constant.  These benches rerun key comparisons with major constants
perturbed ±50 % and assert the *orderings* (the things the paper's
takeaways claim) are unchanged.
"""

from conftest import run_once

from repro.afxdp.driver import AfxdpOptions
from repro.experiments.p2p import afxdp_p2p, dpdk_p2p, ebpf_p2p, kernel_p2p
from repro.sim import costs
from repro.traffic.trex import FlowSpec, TrexStream

N = 800


def _mpps(bench):
    return bench.drive(TrexStream(FlowSpec(1), frame_len=64), N).mpps


def test_sensitivity_fig2_ordering(benchmark):
    """kernel > eBPF and DPDK >> kernel under cache/interpreter
    perturbation."""
    def measure():
        out = {}
        for label, kw in [
            ("baseline", {}),
            ("cache_miss +50%", {"cache_miss_ns": 63.0,
                                 "dma_first_touch_ns": 42.0}),
            ("ebpf_insn -30%", {"ebpf_insn_ns": 1.47}),
            ("skb +50%", {"skb_alloc_ns": 180.0, "skb_free_ns": 90.0}),
        ]:
            with costs.overridden(**kw):
                out[label] = {
                    "kernel": _mpps(kernel_p2p(n_queues=1, link_gbps=10)),
                    "ebpf": _mpps(ebpf_p2p(link_gbps=10)),
                    "dpdk": _mpps(dpdk_p2p(link_gbps=10)),
                }
        return out

    results = run_once(benchmark, measure)
    print()
    for label, r in results.items():
        print(f"  {label:18s} kernel={r['kernel']:.2f} "
              f"ebpf={r['ebpf']:.2f} dpdk={r['dpdk']:.2f}")
        assert r["ebpf"] < r["kernel"] < r["dpdk"]
        assert r["dpdk"] > 2.5 * r["kernel"]


def test_sensitivity_o1_speedup(benchmark):
    """O1's dominance survives syscall-cost perturbation."""
    from repro.afxdp.umempool import LockStrategy

    def measure():
        out = {}
        for label, kw in [
            ("baseline", {}),
            ("poll -40%", {"poll_ns": 720.0}),
            ("ctx-switch +50%", {"context_switch_ns": 5_250.0}),
        ]:
            with costs.overridden(**kw):
                base = AfxdpOptions(lock_strategy=LockStrategy.MUTEX,
                                    batched_locking=False,
                                    preallocated_metadata=False,
                                    batch_size=8)
                none = _mpps(afxdp_p2p(options=base, link_gbps=10,
                                       pmd_main_thread_mode=True))
                o1 = _mpps(afxdp_p2p(options=AfxdpOptions(
                    lock_strategy=LockStrategy.MUTEX,
                    batched_locking=False, preallocated_metadata=False),
                    link_gbps=10))
                out[label] = o1 / none
        return out

    speedups = run_once(benchmark, measure)
    print()
    for label, speedup in speedups.items():
        print(f"  {label:18s} O1 speedup {speedup:.1f}x")
        assert speedup > 3  # paper: 6x; must stay decisive
