"""Shared benchmark plumbing.

Every bench regenerates one of the paper's tables/figures: it runs the
experiment once (``benchmark.pedantic`` with a single round — the
simulation is deterministic, so repetition only measures Python noise),
prints the same rows/series the paper reports, and stores the headline
numbers in ``benchmark.extra_info`` for machine consumption.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
