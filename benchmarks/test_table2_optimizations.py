"""Table 2 bench: the O1-O5 AF_XDP optimization ladder."""

from conftest import run_once

from repro.experiments.table2_optimizations import LADDER, run_table2


def test_table2_optimizations(benchmark):
    result = run_once(benchmark, run_table2, 2_000)
    print()
    print(result.render())
    # Monotone ladder, with O1 the big jump (paper: 6x).
    rates = [result.mpps[label] for label, _o, _m in LADDER]
    assert rates == sorted(rates)
    assert 4 <= result.speedup("none", "O1") <= 9
    for label, _opts, _main in LADDER:
        benchmark.extra_info[label] = round(result.mpps[label], 2)
