"""Figure 8 bench: TCP throughput through the NSX pipeline (3 panels)."""

from conftest import run_once

from repro.experiments.fig8_tcp_throughput import run_fig8


def test_fig8_tcp_throughput(benchmark):
    result = run_once(benchmark, run_fig8, ("a", "b", "c"), 300_000)
    print()
    print(result.render_all())
    g = result.gbps
    # Panel a: polling beats interrupt; vhostuser beats tap.
    assert g[("a", "afxdp+tap polling")] > 1.3 * g[("a", "afxdp+tap interrupt")]
    assert g[("a", "afxdp+vhost")] > g[("a", "afxdp+tap polling")]
    # Panel b: the TSO bar dominates and beats the kernel datapath
    # ("the final configuration outperforms the kernel datapath").
    assert g[("b", "afxdp+vhost+csum+tso")] > g[("b", "kernel+tap")]
    assert g[("b", "afxdp+vhost+csum+tso")] > 3 * g[("b", "afxdp+vhost+csum")]
    assert g[("b", "afxdp+vhost")] > g[("b", "afxdp+tap")]
    # Panel c: offloads are the whole game for in-kernel container
    # networking (5.9 -> 49 in the paper); XDP redirect ~= kernel
    # without offloads; the AF_XDP userspace ladder ascends.
    assert g[("c", "kernel veth offload")] > 5 * g[("c", "kernel veth")]
    assert abs(g[("c", "xdp redirect")] - g[("c", "kernel veth")]) < 2.0
    assert (g[("c", "afxdp user")] <= g[("c", "afxdp user+csum")]
            <= g[("c", "afxdp user+csum+tso")])
    for key, value in g.items():
        benchmark.extra_info["/".join(key)] = round(value, 2)
