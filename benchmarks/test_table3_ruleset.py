"""Table 3 bench: deploy the full 103,302-rule NSX rule set."""

from conftest import run_once

from repro.experiments.table3_ruleset import PAPER, run_table3


def test_table3_ruleset(benchmark):
    result = run_once(benchmark, run_table3)
    print()
    print(result.render())
    measured = {k: m for k, m, _p in result.rows()}
    assert measured == PAPER  # every Table 3 statistic, exactly
    assert result.pipeline_passes >= 2  # "recirculate ... twice"
    benchmark.extra_info.update(measured)
