"""Wall-clock regression gate for the burst-classified datapath.

Not part of the tier-1 suite (``testpaths`` excludes ``benchmarks/``):
wall-clock timing is machine-dependent, so this runs as a separate CI
job.  Invoke with::

    PYTHONPATH=src python -m pytest benchmarks/ -q

It drives ``repro.tools.bench_report`` over the fig9 P2P configurations
and fails unless the batched hot path is at least ``TARGET_SPEEDUP``
(2x) faster in aggregate than the per-packet reference path *while
producing byte-identical virtual-time results*.  The JSON report lands
at the repo root as ``BENCH_pr2.json`` (override with ``BENCH_OUT``).

The PR 5 gate drives the ``pr5`` workload (fig9 AF_XDP configs plus the
diverse-flow table5 column) and fails unless the JIT beats the full
reference mode by 1.5x / 2x respectively; its report lands as
``BENCH_pr5.json`` (override with ``BENCH_PR5_OUT``).

The PR 7 gate drives the ``pr7`` workload (the dp-heavy multi-action
chain workload plus the diverse-flow table5 column) and fails unless
the dp-JIT-compiled fastpath beats the full reference mode by 2x on
both, with the dp-JIT itself dispatching and its own marginal positive;
its report lands as ``BENCH_pr7.json`` (override with ``BENCH_PR7_OUT``).
"""

import json
import os
import pathlib

from repro.tools import bench_report

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_fig9_batched_wallclock_speedup():
    out = os.environ.get("BENCH_OUT", str(REPO_ROOT / "BENCH_pr2.json"))
    reps = int(os.environ.get("BENCH_REPS", "3"))
    # Raises AssertionError itself if any virtual observable diverges
    # between the batched and reference modes.
    bench_report.main(["--workload", "fig9", "--out", out,
                       "--reps", str(reps)])

    report = json.loads(pathlib.Path(out).read_text())
    assert report["workload"] == "fig9"
    assert len(report["configs"]) == 4
    for name, cfg in report["configs"].items():
        assert cfg["virtual_identical"], name
        assert cfg["speedup"] > 1.0, (
            f"{name}: batching made the simulator slower "
            f"({cfg['speedup']:.2f}x)"
        )
    agg = report["aggregate"]
    assert agg["speedup"] >= report["target_speedup"], (
        f"aggregate wall-clock speedup {agg['speedup']:.2f}x is below "
        f"the {report['target_speedup']:.1f}x bar"
    )
    assert report["meets_target"]


def test_pr5_jit_wallclock_speedup():
    out = os.environ.get("BENCH_PR5_OUT", str(REPO_ROOT / "BENCH_pr5.json"))
    # Best-of-5 by default: the table5 bar (2x) sits closer to the
    # measured ratio than fig9's, so this gate takes extra repetitions
    # to keep scheduler noise from flaking it on shared CI runners.
    reps = int(os.environ.get("BENCH_REPS", "5"))
    # Raises AssertionError itself if any virtual observable (Mpps,
    # ns/packet, CPU split, table5 ledger) diverges between JIT mode
    # and the full reference mode.
    bench_report.main(["--workload", "pr5", "--out", out,
                       "--reps", str(reps)])

    report = json.loads(pathlib.Path(out).read_text())
    assert report["workload"] == "pr5"
    fig9 = report["fig9_afxdp"]
    assert len(fig9["configs"]) == 2
    for name, cfg in fig9["configs"].items():
        assert cfg["virtual_identical"], name
        assert cfg["speedup"] > 1.0, (
            f"{name}: the JIT made the simulator slower "
            f"({cfg['speedup']:.2f}x)"
        )
    assert fig9["speedup"] >= fig9["target_speedup"], (
        f"fig9 afxdp aggregate speedup {fig9['speedup']:.2f}x is below "
        f"the {fig9['target_speedup']:.1f}x bar"
    )
    t5 = report["table5"]
    assert t5["ledger_identical"]
    assert t5["speedup"] >= t5["target_speedup"], (
        f"table5 diverse-flow speedup {t5['speedup']:.2f}x is below "
        f"the {t5['target_speedup']:.1f}x bar"
    )
    assert report["meets_target"]


def test_pr7_dpjit_wallclock_speedup():
    out = os.environ.get("BENCH_PR7_OUT", str(REPO_ROOT / "BENCH_pr7.json"))
    reps = int(os.environ.get("BENCH_REPS", "5"))
    # Raises AssertionError itself if any virtual observable (local
    # time, tx bytes, pipeline stats, ledgers) diverges across the
    # reference / dp-JIT / dp-JIT-off modes, or if no compiled megaflow
    # ever dispatched (a vacuous measurement).
    bench_report.main(["--workload", "pr7", "--out", out,
                       "--reps", str(reps)])

    report = json.loads(pathlib.Path(out).read_text())
    assert report["workload"] == "pr7"
    dp = report["dp_multiaction"]
    assert dp["ledger_identical"]
    assert dp["dpjit_dispatched"] > 0
    assert dp["speedup"] >= dp["target_speedup"], (
        f"dp multi-action speedup {dp['speedup']:.2f}x is below "
        f"the {dp['target_speedup']:.1f}x bar"
    )
    assert dp["dpjit_marginal_speedup"] > 1.0, (
        f"the dp-JIT made the fastpath slower "
        f"({dp['dpjit_marginal_speedup']:.2f}x vs generic walk)"
    )
    t5 = report["table5"]
    assert t5["ledger_identical"]
    assert t5["speedup"] >= t5["target_speedup"], (
        f"table5 diverse-flow speedup {t5['speedup']:.2f}x is below "
        f"the {t5['target_speedup']:.1f}x bar"
    )
    assert report["meets_target"]
