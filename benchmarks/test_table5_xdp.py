"""Table 5 bench: XDP processing-task complexity vs rate."""

from conftest import run_once

from repro.experiments.table5_xdp_cost import run_table5


def test_table5_xdp_cost(benchmark):
    result = run_once(benchmark, run_table5, 2_000)
    print()
    print(result.render())
    # Outcome #4: complexity in XDP code reduces performance.
    assert result.mpps["A"] > result.mpps["B"] > result.mpps["C"] > result.mpps["D"]
    # Task A saturates the 10G link (~14 Mpps).
    assert result.mpps["A"] > 13
    for task, mpps in result.mpps.items():
        benchmark.extra_info[f"task_{task}_mpps"] = round(mpps, 2)
