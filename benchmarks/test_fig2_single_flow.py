"""Figure 2 bench: kernel vs eBPF vs DPDK single-core forwarding."""

from conftest import run_once

from repro.experiments.fig2_single_flow import run_fig2


def test_fig2_single_flow(benchmark):
    result = run_once(benchmark, run_fig2, 2_000)
    print()
    print(result.render())
    # Paper: DPDK far ahead; eBPF 10-20% behind the kernel module.
    assert result.mpps["dpdk"] > 2 * result.mpps["kernel"]
    assert 5 <= result.ebpf_slowdown_pct <= 25
    for name, mpps in result.mpps.items():
        benchmark.extra_info[f"{name}_mpps"] = round(mpps, 2)
