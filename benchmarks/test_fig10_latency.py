"""Figure 10 bench: inter-host VM TCP_RR latency."""

from conftest import run_once

from repro.experiments.fig10_latency import run_fig10


def test_fig10_latency(benchmark):
    result = run_once(benchmark, run_fig10, 400)
    print()
    print(result.render())
    kernel = result.results["kernel"]
    afxdp = result.results["afxdp"]
    dpdk = result.results["dpdk"]
    # Paper: kernel worst by a wide margin; AF_XDP barely trails DPDK.
    assert kernel.p50_us > 1.3 * afxdp.p50_us
    assert dpdk.p50_us < afxdp.p50_us < 1.35 * dpdk.p50_us
    assert dpdk.transactions_per_s > kernel.transactions_per_s
    for name, r in result.results.items():
        benchmark.extra_info[f"{name}_p50_us"] = round(r.p50_us, 1)
        benchmark.extra_info[f"{name}_p99_us"] = round(r.p99_us, 1)
