"""Figure 11 bench: intra-host container TCP_RR latency."""

from conftest import run_once

from repro.experiments.fig11_container_latency import run_fig11


def test_fig11_container_latency(benchmark):
    result = run_once(benchmark, run_fig11, 400)
    print()
    print(result.render())
    kernel = result.results["kernel"]
    afxdp = result.results["afxdp"]
    dpdk = result.results["dpdk"]
    # Paper: kernel and AF_XDP similar (~15 us); DPDK ~5x worse with a
    # monstrous tail.
    assert abs(kernel.p50_us - afxdp.p50_us) < 4
    assert dpdk.p50_us > 3 * kernel.p50_us
    assert dpdk.p99_us > 2 * dpdk.p50_us
    for name, r in result.results.items():
        benchmark.extra_info[f"{name}_p50_us"] = round(r.p50_us, 1)
        benchmark.extra_info[f"{name}_p99_us"] = round(r.p99_us, 1)
