"""Figure 1 bench: the out-of-tree module churn dataset and model."""

from conftest import run_once

from repro.experiments.fig1_loc_churn import run_fig1


def test_fig1_loc_churn(benchmark):
    result = run_once(benchmark, run_fig1)
    print()
    print(result.render())
    # Every year shows thousands of lines of pure backporting.
    assert all(bp >= 1_000 for _f, bp in result.dataset.values())
    benchmark.extra_info["total_backport_loc"] = result.total_backport_loc
