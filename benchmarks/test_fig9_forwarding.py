"""Figure 9 + Table 4 bench: P2P/PVP/PCP rates and CPU use."""

from conftest import run_once

from repro.experiments.fig9_forwarding import run_fig9


def test_fig9_forwarding_and_table4(benchmark):
    result = run_once(benchmark, run_fig9, 1_200)
    print()
    print(result.render_rates())
    print()
    print(result.render_table4())

    # P2P: DPDK leads AF_XDP; only the kernel gains from 1000 flows (RSS).
    assert result.mpps("P2P", "dpdk", 1) > result.mpps("P2P", "afxdp", 1)
    assert result.mpps("P2P", "kernel", 1000) > result.mpps("P2P", "kernel", 1)
    assert result.mpps("P2P", "afxdp", 1000) < result.mpps("P2P", "afxdp", 1)
    # Table 4 P2P: kernel burns ~10 HT, DPDK exactly one.
    assert result.cpu("P2P", "kernel", 1000)["total"] > 8
    assert abs(result.cpu("P2P", "dpdk", 1000)["total"] - 1.0) < 0.1
    # PVP: vhostuser beats tap; DPDK leads AF_XDP.
    assert result.mpps("PVP", "afxdp+vhost", 1) > result.mpps("PVP", "afxdp+tap", 1)
    assert result.mpps("PVP", "dpdk+vhost", 1) > result.mpps("PVP", "afxdp+vhost", 1)
    # PCP: AF_XDP's XDP-redirect path wins (Outcome #2).
    assert result.mpps("PCP", "afxdp", 1) > result.mpps("PCP", "kernel", 1)
    assert result.mpps("PCP", "afxdp", 1) > result.mpps("PCP", "dpdk", 1)

    for (scenario, config, flows), m in result.cells.items():
        benchmark.extra_info[f"{scenario}/{config}/{flows}"] = round(m.mpps, 2)
