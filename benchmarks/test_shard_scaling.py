"""Wall-clock scale-out gate for sharded execution (DESIGN §17).

Not part of the tier-1 suite (wall-clock timing is machine-dependent);
runs in the CI ``shard`` job.  Drives ``repro.tools.bench_report``'s
``shard`` workload — the full fig9 cell set, 100k packets total, at
1/2/4 workers — and fails unless 4 workers beat the serial run by
``SHARD_TARGET_SPEEDUP`` (3x) **when the host actually has 4+ usable
CPUs**.  On smaller hosts the bench still runs, still requires the
returned Mpps values to be byte-identical at every worker count, and
still publishes an honest ``BENCH_shard.json`` (override the path with
``BENCH_SHARD_OUT``, the budget with ``BENCH_SHARD_PACKETS``), but the
physically-impossible speedup bar is recorded as not enforced rather
than faked.
"""

import json
import os
import pathlib

from repro.tools import bench_report

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_shard_scaleout_wallclock_speedup():
    out = os.environ.get("BENCH_SHARD_OUT",
                         str(REPO_ROOT / "BENCH_shard.json"))
    reps = int(os.environ.get("BENCH_REPS", "1"))
    packets = int(os.environ.get("BENCH_SHARD_PACKETS", "0"))
    bench_report.main(["--workload", "shard", "--out", out,
                       "--reps", str(reps), "--packets", str(packets)])

    report = json.loads(pathlib.Path(out).read_text())
    assert report["workload"] == "shard"
    assert report["units"] == 20
    assert set(report["workers"]) == {"1", "2", "4"}
    assert report["workers"]["1"]["n_shards"] == 1
    assert report["workers"]["4"]["n_shards"] == 4
    # Identical Mpps values at every worker count — scale-out must be
    # invisible to the measurement even when untraced.
    assert report["values_identical"]
    assert report["speedup_at_max_workers"] > 0
    if report["target_enforced"]:
        assert report["usable_cpus"] >= report["target_min_cpus"]
        assert report["speedup_at_max_workers"] >= \
            report["target_speedup"], (
                f"scale-out speedup "
                f"{report['speedup_at_max_workers']:.2f}x at 4 workers "
                f"is below the {report['target_speedup']:.1f}x bar on a "
                f"{report['usable_cpus']}-CPU host")
    assert report["meets_target"]
