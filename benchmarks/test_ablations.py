"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation isolates one mechanism the paper's design leans on and
measures the cost of taking it away:

* the flow-cache hierarchy (EMC -> megaflow -> classifier),
* umempool lock strategy (O2/O3),
* interrupt- vs poll-mode AF_XDP service (O1 / Figure 8a),
* XDP-redirect vs a userspace round trip for container traffic (path C
  vs path A of Figure 5),
* zero-copy vs copy-mode AF_XDP binding (§3.5 Limitations).
"""

import pytest
from conftest import run_once

from repro.afxdp.driver import AfxdpOptions
from repro.afxdp.umempool import LockStrategy
from repro.experiments.p2p import afxdp_p2p
from repro.experiments.pvp_pcp import afxdp_pcp, dpdk_pcp, kernel_pcp
from repro.traffic.trex import FlowSpec, TrexStream

PACKETS = 1_500


def _rate(bench, flows=16):
    return bench.drive(TrexStream(FlowSpec(flows), frame_len=64),
                       PACKETS).mpps


# ---------------------------------------------------------------------------
def test_ablation_cache_hierarchy(benchmark):
    """EMC -> megaflow -> classifier: each cache level earns its keep."""
    from repro.hosts.host import Host
    from repro.kernel.kernel import Kernel
    from repro.ovs.emc import ExactMatchCache
    from repro.ovs.match import Match
    from repro.ovs.ofactions import OutputAction
    from repro.ovs.openflow import OpenFlowConnection
    from repro.ovs.vswitchd import VSwitchd
    from repro.sim.cpu import CpuCategory, CpuModel, ExecContext
    from repro.traffic.trex import FlowSpec, TrexStream

    def run(emc_size, flush_megaflows):
        host = Host("dut", n_cpus=2)
        vs = host.install_ovs("netdev")
        vs.add_bridge("br0")
        p1, a1 = vs.add_sim_port("br0", "p1")
        p2, a2 = vs.add_sim_port("br0", "p2")
        of = OpenFlowConnection(vs.bridge("br0"))
        of.add_flow(0, 10, Match(in_port=p1.ofport), [OutputAction("p2")])
        ctx = ExecContext(host.cpu, 0, CpuCategory.USER)
        emc = ExactMatchCache(n_entries=emc_size)
        stream = TrexStream(FlowSpec(64), frame_len=64)
        # Warm.
        vs.dpif_netdev.process_batch(stream.burst(256), p1.dp_port_no,
                                     ctx, emc)
        before = host.cpu.busy_ns()
        n = 1_500
        sent = 0
        while sent < n:
            if flush_megaflows:
                vs.dpif_netdev.megaflows.flush()
            vs.dpif_netdev.process_batch(stream.burst(32), p1.dp_port_no,
                                         ctx, emc)
            sent += 32
        return (host.cpu.busy_ns() - before) / sent  # ns per packet

    def measure():
        return {
            "full (EMC + megaflow)": run(8192, False),
            "no EMC (megaflow only)": run(2, False),
            "no caches (classifier every miss)": run(2, True),
        }

    results = run_once(benchmark, measure)
    print()
    for label, nspp in results.items():
        print(f"  {label:36s} {nspp:8.0f} ns/pkt")
    full = results["full (EMC + megaflow)"]
    no_emc = results["no EMC (megaflow only)"]
    no_cache = results["no caches (classifier every miss)"]
    assert full < no_emc < no_cache
    assert no_cache > 2 * full  # the caches matter a lot
    benchmark.extra_info.update({k: round(v) for k, v in results.items()})


def test_ablation_lock_strategy(benchmark):
    """O2/O3: mutex vs spinlock vs batched spinlock in the umempool."""
    def measure():
        out = {}
        for label, options in [
            ("mutex, per-frame", AfxdpOptions(
                lock_strategy=LockStrategy.MUTEX, batched_locking=False)),
            ("spinlock, per-frame", AfxdpOptions(
                lock_strategy=LockStrategy.SPINLOCK, batched_locking=False)),
            ("spinlock, batched", AfxdpOptions()),
        ]:
            out[label] = _rate(afxdp_p2p(options=options, link_gbps=25))
        return out

    results = run_once(benchmark, measure)
    print()
    for label, mpps in results.items():
        print(f"  {label:24s} {mpps:6.2f} Mpps")
    assert (results["mutex, per-frame"]
            < results["spinlock, per-frame"]
            < results["spinlock, batched"])
    benchmark.extra_info.update({k: round(v, 2) for k, v in results.items()})


def test_ablation_interrupt_vs_polling(benchmark):
    """O1/Figure 8a: interrupt-driven service versus PMD busy polling."""
    def measure():
        polling = _rate(afxdp_p2p(link_gbps=25))
        interrupt = _rate(afxdp_p2p(
            options=AfxdpOptions(interrupt_mode=True, batch_size=8),
            link_gbps=25))
        return {"polling": polling, "interrupt": interrupt}

    results = run_once(benchmark, measure)
    print()
    print(f"  polling   {results['polling']:6.2f} Mpps")
    print(f"  interrupt {results['interrupt']:6.2f} Mpps")
    assert results["polling"] > 1.2 * results["interrupt"]
    benchmark.extra_info.update({k: round(v, 2) for k, v in results.items()})


def test_ablation_container_redirect_path(benchmark):
    """Figure 5 path C (XDP redirect) vs the kernel and DPDK container
    paths — the Outcome #2 comparison as an ablation."""
    def measure():
        spec = FlowSpec(16, vary_dst=False)
        out = {}
        for label, factory in [
            ("xdp-redirect (path C)", afxdp_pcp),
            ("kernel veth", kernel_pcp),
            ("dpdk af_packet", dpdk_pcp),
        ]:
            bench = factory(link_gbps=25)
            out[label] = bench.drive(
                TrexStream(spec, frame_len=64), PACKETS).mpps
        return out

    results = run_once(benchmark, measure)
    print()
    for label, mpps in results.items():
        print(f"  {label:24s} {mpps:6.2f} Mpps")
    assert results["xdp-redirect (path C)"] == max(results.values())
    benchmark.extra_info.update({k: round(v, 2) for k, v in results.items()})


def test_ablation_copy_vs_zerocopy(benchmark):
    """§3.5: the universal copy-mode fallback costs real throughput."""
    def measure():
        zerocopy = _rate(afxdp_p2p(
            options=AfxdpOptions(force_copy_mode=False), link_gbps=25))
        copy = _rate(afxdp_p2p(
            options=AfxdpOptions(force_copy_mode=True), link_gbps=25))
        return {"zerocopy": zerocopy, "copy": copy}

    results = run_once(benchmark, measure)
    print()
    print(f"  zero-copy {results['zerocopy']:6.2f} Mpps")
    print(f"  copy-mode {results['copy']:6.2f} Mpps")
    assert results["zerocopy"] > 1.1 * results["copy"]
    benchmark.extra_info.update({k: round(v, 2) for k, v in results.items()})
