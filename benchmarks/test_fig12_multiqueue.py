"""Figure 12 bench: multi-queue scaling on 25 GbE."""

from conftest import run_once

from repro.experiments.fig12_multiqueue import QUEUE_COUNTS, run_fig12


def test_fig12_multiqueue(benchmark):
    result = run_once(benchmark, run_fig12, 800)
    print()
    print(result.render())
    # 1518B: both datapaths reach the 25G line (AF_XDP by 6 queues).
    assert result.gbps("afxdp", 1518, 6) >= 24.9
    assert result.gbps("dpdk", 1518, 6) >= 24.9
    # 64B: AF_XDP tops out well below line rate (~12-19 Mpps), and DPDK
    # consistently outperforms it.
    assert result.mpps("afxdp", 64, 6) < 25
    for q in QUEUE_COUNTS:
        assert result.mpps("dpdk", 64, q) > result.mpps("afxdp", 64, q)
    # AF_XDP 64B scales with queues.
    assert result.mpps("afxdp", 64, 6) > result.mpps("afxdp", 64, 1)
    for (dp, frame, q), (mpps, gbps) in result.series.items():
        benchmark.extra_info[f"{dp}/{frame}B/{q}q"] = round(gbps, 1)
