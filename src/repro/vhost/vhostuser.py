"""vhost-user: the OVS-side backend of a VM's virtio queues.

OVS maps the guest's memory and serves the virtqueues directly from its
PMD threads — no tap, no syscall, one data copy per direction.  "Using
this vhostuser implementation, packets traverse path B, avoiding a hop
through the kernel" (§3.3).
"""

from __future__ import annotations

from typing import List

from repro.net.packet import Packet
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext
from repro.vhost.virtio import VirtioNic


class VhostUserPort:
    """The switch's endpoint for one VM interface."""

    def __init__(self, name: str, guest_nic: VirtioNic,
                 backend_polls: bool = True) -> None:
        self.name = name
        self.guest_nic = guest_nic
        guest_nic.backend_polls = backend_polls
        self.rx_packets = 0
        self.tx_packets = 0
        self.tx_dropped = 0

    def rx_burst(self, ctx: ExecContext, batch: int = 32) -> List[Packet]:
        """Pull guest->host frames (PMD thread context).

        One copy out of guest memory per packet; virtio offload metadata
        (csum_partial/gso_size) rides along untouched.
        """
        costs = DEFAULT_COSTS
        pkts = self.guest_nic.tx_queue.pop_batch(batch)
        for pkt in pkts:
            ctx.charge(costs.virtqueue_op_ns, label="virtqueue")
            ctx.charge(costs.copy_cost(len(pkt)), label="vhost_copy")
            self.rx_packets += 1
        return pkts

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext) -> int:
        """Push host->guest frames; kicks the guest once per burst.

        TSO to a VM needs no segmentation: the super-segment lands in
        guest memory whole, which is why Figure 8b's vhostuser+TSO bar
        beats even the kernel datapath.
        """
        costs = DEFAULT_COSTS
        sent = 0
        for pkt in pkts:
            ctx.charge(costs.virtqueue_op_ns, label="virtqueue")
            ctx.charge(costs.copy_cost(len(pkt)), label="vhost_copy")
            if not pkt.meta.csum_verified and not pkt.meta.csum_partial:
                # virtio requires a checksum verdict: OVS validates in
                # software before handing the frame to the guest (the
                # AF_XDP no-rx-offload penalty, §4).
                ctx.charge(costs.checksum_cost(len(pkt)), label="csum_fixup")
                pkt.meta.csum_verified = True
            if self.guest_nic.rx_queue.push(pkt):
                sent += 1
            else:
                self.tx_dropped += 1
        if sent:
            # The guest is interrupt-driven: one irq-style kick per burst.
            ctx.charge(costs.virtqueue_kick_ns, label="guest_kick")
        self.tx_packets += sent
        return sent

    def pending_rx(self) -> int:
        return len(self.guest_nic.tx_queue)
