"""Virtqueues and the guest-side virtio NIC."""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.kernel.netdev import NetDevice
from repro.net.addresses import MacAddress
from repro.net.packet import Packet
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext


class Virtqueue:
    """A descriptor ring shared between guest and backend.

    ``kick()``/``notifications`` model the eventfd doorbell: a busy-polling
    peer (OVS PMD) never needs it; a sleeping peer pays a wakeup.
    """

    def __init__(self, size: int = 1024) -> None:
        if size <= 0:
            raise ValueError("virtqueue needs a positive size")
        self.size = size
        self._ring: Deque[Packet] = deque()
        self.kicks = 0
        self.drops_full = 0

    def __len__(self) -> int:
        return len(self._ring)

    def push(self, pkt: Packet) -> bool:
        if len(self._ring) >= self.size:
            self.drops_full += 1
            return False
        self._ring.append(pkt)
        return True

    def pop_batch(self, max_n: int) -> List[Packet]:
        n = min(max_n, len(self._ring))
        return [self._ring.popleft() for _ in range(n)]

    def kick(self) -> None:
        self.kicks += 1


class VirtioNic(NetDevice):
    """The guest's eth0: a virtio-net device bound to two virtqueues.

    ``tx_queue`` carries guest->host frames, ``rx_queue`` host->guest.
    Guest-side costs are charged in the GUEST accounting category — this
    is the ``guest`` column of the paper's Table 4.

    Offload negotiation mirrors virtio-net features: with ``csum_offload``
    the guest sends CHECKSUM_PARTIAL frames; with ``tso`` it sends 64 kB
    super-segments (``gso_size`` set).
    """

    device_type = "virtio"

    def __init__(
        self,
        name: str,
        mac: MacAddress,
        csum_offload: bool = True,
        tso: bool = True,
        queue_size: int = 1024,
    ) -> None:
        super().__init__(name, mac, mtu=1500)
        self.csum_offload = csum_offload
        self.tso = tso
        self.tx_queue = Virtqueue(queue_size)
        self.rx_queue = Virtqueue(queue_size)
        #: Set when the backend busy-polls (vhostuser PMD); kicks skipped.
        self.backend_polls = False
        self.carrier = True

    def negotiated_gso(self) -> bool:
        return self.tso

    def _transmit(self, pkt: Packet, ctx: ExecContext) -> bool:
        costs = DEFAULT_COSTS
        if not self.csum_offload and pkt.meta.csum_partial:
            # No offload negotiated: the guest checksums in software.
            ctx.charge(costs.checksum_cost(len(pkt)), label="guest_csum")
            pkt.meta.csum_partial = False
        if not self.tso and pkt.meta.gso_size:
            payload = max(len(pkt) - 54, 1)
            segments = -(-payload // pkt.meta.gso_size)
            ctx.charge(segments * costs.software_gso_per_segment_ns
                       + costs.copy_cost(len(pkt)), label="guest_gso")
            pkt.meta.gso_size = 0
        ctx.charge(costs.virtqueue_op_ns, label="virtqueue")
        was_empty = len(self.tx_queue) == 0
        ok = self.tx_queue.push(pkt)
        if ok and not self.backend_polls and was_empty:
            # Kick suppression (VIRTIO_RING_F_EVENT_IDX): only the first
            # frame of a burst wakes the backend; while the queue is
            # non-empty the backend is known to be processing.
            ctx.charge(costs.virtqueue_kick_ns + costs.vmexit_ns,
                       label="vq_kick")
            self.tx_queue.kick()
        return ok

    def guest_service_rx(self, ctx: ExecContext, budget: int = 64) -> int:
        """The guest kernel's NAPI over the virtio rx queue (GUEST time)."""
        costs = DEFAULT_COSTS
        pkts = self.rx_queue.pop_batch(budget)
        for pkt in pkts:
            ctx.charge(costs.virtqueue_op_ns, label="virtqueue")
            if not pkt.meta.csum_verified and not pkt.meta.csum_partial:
                # Nobody vouched for the checksum (e.g. it crossed an
                # AF_XDP path with no rx offload): the guest verifies in
                # software before the data reaches its TCP stack.
                ctx.charge(costs.checksum_cost(len(pkt)),
                           label="guest_csum_verify")
                pkt.meta.csum_verified = True
            self.deliver(pkt, ctx)
        return len(pkts)
