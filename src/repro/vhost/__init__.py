"""virtio / vhost-user: paravirtual NICs and their userspace backend.

The paper's fastest VM path (§3.3 path B): the VM's virtio queues are
shared memory mapped by OVS itself ("vhostuser"), so a packet moves
between guest and switch with one copy and no kernel hop — versus the tap
path A, which costs a 2 µs syscall per packet.
"""

from repro.vhost.virtio import Virtqueue, VirtioNic
from repro.vhost.vhostuser import VhostUserPort

__all__ = ["Virtqueue", "VirtioNic", "VhostUserPort"]
