"""JIT-compile verified eBPF programs to native Python closures.

The real kernel escapes its eBPF interpreter with a per-architecture JIT;
this module is the simulator's equivalent.  A verified
:class:`~repro.ebpf.program.Program` is translated *once* into Python
source for a single function that executes the whole instruction stream —
ALU, branches, loads/stores through the same region/bounds model, helper
calls through :data:`~repro.ebpf.helpers.HELPERS`, map interaction through
:class:`~repro.ebpf.maps.BpfMap` — compiled with :func:`compile` and cached
on the program (invalidated whenever the program's instruction tuple or
map bindings change).

The contract is **charge-exactness**: a compiled run must be
observationally identical to an interpreted one.  Same verdict, same
packet bytes, same map contents and version bumps, same
``insns_retired``/``helper_calls``/``runs`` trace counters, and the same
virtual-time charges in the same order — ``dma_first_touch_ns`` at the
first packet-data load, then one aggregate
``executed * ebpf_insn_ns + helper_cost`` charge computed with the same
float operations the interpreter performs.  Only wall-clock time differs.
To keep that guarantee cheap, generated fast paths only inline the cases
whose semantics are locally obvious (int/int ALU, packet/stack memory,
the xdp_md context); everything else falls back to the *same* module
functions the interpreter itself runs (:func:`repro.ebpf.vm.alu`,
:func:`repro.ebpf.vm.branch_taken`, ``EbpfVm._load``/``_store``).

Control flow needs no goto: the verifier rejects back-edges, so a
program is a DAG over straight-line segments.  The generated function is
a ``while True`` loop of ``if label <= <segment start>:`` guards; a taken
jump sets ``label`` and ``continue``s, which skips every earlier segment
— a relooper for the forward-only case.

Programs the translator cannot prove it can compile are *declined* and
run on the interpreter forever (per-program, recorded in
:func:`stats`).  Gating: module switch :data:`ENABLED` (initialised from
``EBPF_JIT``, ``EBPF_JIT=0`` disables) AND the global
:mod:`repro.sim.fastpath` switch, checked by the attachment layers
(``ebpf/xdp.py``, ``kernel/tc.py``) per packet.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.ebpf.helpers import HELPERS
from repro.ebpf.isa import MEM_WIDTHS, U64, to_s64, to_u64
from repro.ebpf.program import Program
from repro.ebpf.vm import (
    CTX_LEN,
    CTX_REGION,
    EbpfVm,
    PKT_REGION,
    Pointer,
    STACK_REGION,
    VmFault,
    alu,
    branch_taken,
)
from repro.ebpf.verifier import MAX_INSNS, STACK_SIZE
from repro.sim import trace as _trace
from repro.sim.costs import DEFAULT_COSTS

#: ``EBPF_JIT=0`` in the environment is the escape hatch the kernel's
#: ``net.core.bpf_jit_enable=0`` sysctl provides.
ENABLED: bool = os.environ.get("EBPF_JIT", "1") != "0"


def set_enabled(on: bool) -> None:
    global ENABLED
    ENABLED = bool(on)


@contextmanager
def disabled():
    """Run a block with the JIT off (forces the interpreter path)."""
    global ENABLED
    saved = ENABLED
    ENABLED = False
    try:
        yield
    finally:
        ENABLED = saved


class JitDecline(Exception):
    """The translator refuses this program; the interpreter runs it."""


# ----------------------------------------------------------------------
# Per-program bookkeeping.
# ----------------------------------------------------------------------
class ProgramJitStats:
    """Hit/fallback counters for one program name (appctl fastpath/show)."""

    __slots__ = ("name", "compiled", "declined", "jit_runs", "interp_runs")

    def __init__(self, name: str) -> None:
        self.name = name
        self.compiled = False
        self.declined: Optional[str] = None
        self.jit_runs = 0
        self.interp_runs = 0


_STATS: Dict[str, ProgramJitStats] = {}

#: Monotonic id handed to (program, insns-tuple) pairs; memo keys use it.
_NEXT_TOKEN = 1


def stats_for(name: str) -> ProgramJitStats:
    st = _STATS.get(name)
    if st is None:
        st = _STATS[name] = ProgramJitStats(name)
    return st


def stats() -> Dict[str, ProgramJitStats]:
    """Live per-program stats, keyed by program name."""
    return dict(_STATS)


def reset_stats() -> None:
    _STATS.clear()


def program_token(program: Program) -> int:
    """A small int identifying this program *and* its instruction tuple.

    Replacing the program object, or rebinding ``program.insns``, yields
    a fresh token; the XDP verdict memo keys on it so a swapped program
    can never replay a stale verdict.
    """
    global _NEXT_TOKEN
    tok = getattr(program, "_jit_token", None)
    if tok is None or tok[0] is not program.insns:
        tok = (program.insns, _NEXT_TOKEN)
        _NEXT_TOKEN += 1
        program._jit_token = tok
    return tok[1]


class CompiledProgram:
    """A program's generated function plus everything needed to trust it."""

    __slots__ = ("program", "fn", "source", "stats", "maps_snapshot")

    def __init__(self, program: Program, fn, source: str,
                 st: ProgramJitStats, maps_snapshot: Dict) -> None:
        self.program = program
        self.fn = fn
        self.source = source
        self.stats = st
        self.maps_snapshot = maps_snapshot


class JitVm(EbpfVm):
    """An :class:`EbpfVm` whose :meth:`run` executes compiled code.

    Inherits the whole register/memory surface (helpers call straight
    into it), so helper semantics are shared with the interpreter by
    construction rather than re-implemented.
    """

    def __init__(self, compiled: CompiledProgram, exec_ctx=None,
                 ktime_ns: int = 0) -> None:
        super().__init__(compiled.program, exec_ctx=exec_ctx,
                         ktime_ns=ktime_ns)
        self._compiled = compiled

    def run(self, pkt_data: bytes, ingress_ifindex: int = 0,
            rx_queue_index: int = 0) -> int:
        compiled = self._compiled
        compiled.stats.jit_runs += 1
        return compiled.fn(self, pkt_data, ingress_ifindex, rx_queue_index)


# ----------------------------------------------------------------------
# Translation.
# ----------------------------------------------------------------------
_PRED_PYOP = {
    "jeq": "==", "jne": "!=", "jgt": ">", "jge": ">=", "jlt": "<", "jle": "<=",
}

_SUPPORTED_MISC = frozenset({"exit", "call", "ja", "ld_map", "neg", "be", "le"})
_ALU_BASES = frozenset(
    {"add", "sub", "mul", "div", "mod", "and", "or", "xor",
     "lsh", "rsh", "arsh", "mov"}
)
_JMP_PREDS = frozenset(_PRED_PYOP) | {"jset", "jsgt", "jsge"}

_P48 = 1 << 48  # synthetic pointer base used in NULL-check comparisons


class _Emitter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def __call__(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _split(op: str) -> Tuple[str, str]:
    base, _, mode = op.rpartition("_")
    return base, mode


def _translate(program: Program) -> Tuple[str, Dict[str, object]]:
    """Emit the source and globals of ``_jit_entry`` for ``program``."""
    insns = program.insns
    n = len(insns)
    if n == 0:
        raise JitDecline("empty program")
    if n > MAX_INSNS:
        raise JitDecline(f"program too large: {n} insns")

    # First pass: validate every opcode and collect jump-target segment
    # starts.  Anything unknown declines the whole program — the
    # interpreter defines the semantics of whatever we cannot prove.
    starts = set()
    for pc, insn in enumerate(insns):
        op = insn.op
        base, mode = _split(op)
        is_jump = op == "ja" or (mode in ("imm", "reg") and base in _JMP_PREDS)
        if is_jump:
            target = pc + 1 + insn.off
            if not 0 <= target < n:
                raise JitDecline(f"pc {pc}: branch target {target} out of range")
            starts.add(target)
            continue
        if op in _SUPPORTED_MISC:
            if op == "call" and insn.imm not in HELPERS:
                raise JitDecline(f"pc {pc}: unknown helper id {insn.imm}")
            if op == "ld_map" and insn.imm not in program.maps:
                raise JitDecline(f"pc {pc}: undeclared map id {insn.imm}")
            continue
        if mode in ("imm", "reg") and base in _ALU_BASES:
            continue
        if op.startswith("ldx") and op[3:] in MEM_WIDTHS:
            continue
        if op.startswith("stx") and op[3:] in MEM_WIDTHS:
            continue
        if op.startswith("st") and op[2:] in MEM_WIDTHS:
            continue
        raise JitDecline(f"pc {pc}: unsupported opcode {op!r}")

    glb: Dict[str, object] = {
        "U64": U64,
        "Pointer": Pointer,
        "VmFault": VmFault,
        "_COSTS": DEFAULT_COSTS,
        "_HELPERS": HELPERS,
        "_trace": _trace,
        "_branch": branch_taken,
        "_alu_op": alu,
        "_vm_load": EbpfVm._load,
        "_vm_store": EbpfVm._store,
        "_to_s64": to_s64,
        "_to_u64": to_u64,
        "_PTR_CTX": Pointer(CTX_REGION, 0),
        "_PTR_STACK": Pointer(STACK_REGION, STACK_SIZE),
        "_PTR_PKT0": Pointer(PKT_REGION, 0),
    }

    w = _Emitter()
    w("def _jit_entry(vm, pkt_data, ingress_ifindex, rx_queue_index):")
    w.indent = 1
    # Prologue — mirrors EbpfVm.run()'s reset exactly.  The stack region
    # deliberately persists across runs of one VM, as it does there.
    w("costs = _COSTS")
    w("pkt = bytearray(pkt_data)")
    w("vm._pkt = pkt")
    w("regions = vm._regions")
    w(f"regions['{CTX_REGION}'] = bytearray({CTX_LEN})")
    w(f"stack = regions['{STACK_REGION}']")
    w("vm._ctx_meta = (ingress_ifindex, rx_queue_index)")
    w("vm.redirect_target = None")
    w("regs = vm._regs")
    w("r1 = regs[1] = _PTR_CTX")
    w("r10 = regs[10] = _PTR_STACK")
    w("r0 = r2 = r3 = r4 = r5 = r6 = r7 = r8 = r9 = 0")
    w("n_ret = 0")
    w("ncall = 0")
    w("hcost = 0.0")
    w("label = 0")
    w("while True:")

    pending = 0
    alive = True
    for pc, insn in enumerate(insns):
        if pc == 0 or pc in starts:
            if pc != 0 and alive and pending:
                w.indent = 3
                w(f"n_ret += {pending}")
            pending = 0
            w.indent = 2
            w(f"if label <= {pc}:")
            w.indent = 3
            alive = True
        if not alive:
            continue  # statically unreachable (after exit/ja, no label)
        pending += 1
        op = insn.op
        d, s, off, imm = insn.dst, insn.src, insn.off, insn.imm

        if op == "exit":
            w(f"n_ret += {pending}")
            pending = 0
            w("break")
            alive = False
        elif op == "ja":
            w(f"n_ret += {pending}")
            pending = 0
            w(f"label = {pc + 1 + off}")
            w("continue")
            alive = False
        elif op == "call":
            _gen_call(w, imm)
        elif op == "ld_map":
            name = f"_map_{imm}"
            glb[name] = program.maps[imm]
            w(f"r{d} = {name}")
        elif op == "neg":
            w(f"_a = r{d}")
            w("if _a.__class__ is int:")
            w(f"    r{d} = (-_a) & U64")
            w("else:")
            w(f"    r{d} = (-vm.scalar_from_reg({d})) & U64")
        elif op in ("be", "le"):
            mask = (1 << imm) - 1
            w(f"_a = r{d}")
            w("if _a.__class__ is int:")
            w(f"    r{d} = _a & {mask}")
            w("else:")
            w(f"    r{d} = vm.scalar_from_reg({d}) & {mask}")
        else:
            base, mode = _split(op)
            if mode in ("imm", "reg") and base in _JMP_PREDS:
                pending = _gen_branch(w, insn, pc, pending)
            elif mode in ("imm", "reg") and base in _ALU_BASES:
                _gen_alu(w, insn)
            elif op.startswith("ldx"):
                _gen_load(w, d, s, off, MEM_WIDTHS[op[3:]])
            elif op.startswith("stx"):
                _gen_store_reg(w, d, s, off, MEM_WIDTHS[op[3:]])
            else:  # st<w> immediate store
                width = MEM_WIDTHS[op[2:]]
                value = to_u64(imm) & ((1 << (8 * width)) - 1)
                _gen_store_imm(w, d, off, width, value)

    if alive:  # pragma: no cover - verified programs end in exit/ja
        if pending:
            w(f"n_ret += {pending}")
        w("break")
    w.indent = 2
    w("break")

    # Epilogue — the same commit sequence, in the same order, as the
    # interpreter's run() tail.  Reached only on clean exit: a VmFault or
    # helper exception propagates before any of this, exactly as there.
    w.indent = 1
    w("vm.insns_executed += n_ret")
    w("vm.last_executed = n_ret")
    w("vm.last_helper_calls = ncall")
    w("_charge = n_ret * costs.ebpf_insn_ns + hcost")
    w("vm.last_charge_ns = _charge")
    w("_ec = vm.exec_ctx")
    w("if _ec is not None:")
    w("    _ec.charge(_charge, label='ebpf')")
    w("rec = _trace.ACTIVE")
    w("if rec is not None:")
    w("    rec.count('ebpf.insns_retired', n_ret)")
    w("    if ncall:")
    w("        rec.count('ebpf.helper_calls', ncall)")
    w("    rec.count('ebpf.runs')")
    w("if vm._map_values:")
    w("    vm._flush_map_values()")
    w("if r0.__class__ is int:")
    w("    return r0 & 0xFFFFFFFF")
    w("if isinstance(r0, Pointer):")
    w("    raise VmFault('program returned a pointer')")
    w("return _to_u64(int(r0)) & 0xFFFFFFFF")
    return w.source(), glb


def _gen_call(w: _Emitter, imm: int) -> None:
    # Sync the argument registers helpers may read (r1-r5), call through
    # the live HELPERS table, and accumulate the helper cost with the
    # same per-call float additions the interpreter makes.
    w("regs[1] = r1; regs[2] = r2; regs[3] = r3; regs[4] = r4; regs[5] = r5")
    w(f"r0 = _HELPERS[{imm}](vm)")
    w("vm.helper_calls += 1")
    w("ncall += 1")
    w("hcost += costs.ebpf_helper_ns")
    if imm == 1:  # map lookup
        w("hcost += costs.ebpf_map_lookup_ns")
    elif imm in (2, 3):  # map update / delete
        w("hcost += costs.ebpf_map_update_ns")


def _gen_branch(w: _Emitter, insn, pc: int, pending: int) -> int:
    """Emit a conditional jump; returns the new pending-insn count (0)."""
    base, mode = _split(insn.op)
    target = pc + 1 + insn.off
    d, s, imm = insn.dst, insn.src, insn.imm
    # Retire everything up to and including this branch before deciding:
    # both outcomes executed the same prefix.
    w(f"n_ret += {pending}")
    w(f"_a = r{d}")

    def taken(indent: str, cond: str) -> None:
        w(f"{indent}if {cond}:")
        w(f"{indent}    label = {target}")
        w(f"{indent}    continue")

    if mode == "imm":
        iu = to_u64(imm)
        w("if _a.__class__ is int:")
        if base in _PRED_PYOP:
            taken("    ", f"(_a & U64) {_PRED_PYOP[base]} {iu}")
        elif base == "jset":
            taken("    ", f"(_a & U64) & {iu}")
        else:  # jsgt / jsge
            pyop = ">" if base == "jsgt" else ">="
            taken("    ", f"_to_s64(_a) {pyop} {to_s64(iu)}")
        w("elif _a.__class__ is Pointer:")
        if base in _PRED_PYOP:
            taken("    ", f"(_a[1] + {_P48}) {_PRED_PYOP[base]} {iu}")
        elif base == "jset":
            taken("    ", f"(_a[1] + {_P48}) & {iu}")
        else:
            w(f"    if _branch('{base}', _a, {imm}):")
            w(f"        label = {target}")
            w("        continue")
        w(f"elif _branch('{base}', _a, {imm}):")
        w(f"    label = {target}")
        w("    continue")
    else:
        w(f"_b = r{s}")
        w("if _a.__class__ is int and _b.__class__ is int:")
        if base in _PRED_PYOP:
            taken("    ", f"(_a & U64) {_PRED_PYOP[base]} (_b & U64)")
        elif base == "jset":
            taken("    ", "(_a & U64) & (_b & U64)")
        else:
            pyop = ">" if base == "jsgt" else ">="
            taken("    ", f"_to_s64(_a) {pyop} _to_s64(_b)")
        if base in _PRED_PYOP or base == "jset":
            w("elif _a.__class__ is Pointer and _b.__class__ is Pointer:")
            w("    if _a[0] != _b[0]:")
            w("        raise VmFault('comparing pointers into different"
              " regions')")
            if base in _PRED_PYOP:
                taken("    ", f"_a[1] {_PRED_PYOP[base]} _b[1]")
            else:
                taken("    ", "_a[1] & _b[1]")
        w(f"elif _branch('{base}', _a, _b):")
        w(f"    label = {target}")
        w("    continue")
    return 0


def _gen_alu(w: _Emitter, insn) -> None:
    base, mode = _split(insn.op)
    d, s, imm = insn.dst, insn.src, insn.imm
    if base == "mov":
        w(f"r{d} = {imm}" if mode == "imm" else f"r{d} = r{s}")
        return
    if base in ("div", "mod"):
        rhs = imm if mode == "imm" else f"r{s}"
        w(f"r{d} = _alu_op('{base}', r{d}, {rhs})")
        return
    w(f"_a = r{d}")
    if mode == "imm":
        iu = to_u64(imm)
        # Python ints are two's-complement towers: +,-,*,<<,&,|,^ respect
        # congruence mod 2**64, so masking once at the end (or masking
        # operands only where sign matters) reproduces to_u64 exactly.
        int_expr = {
            "add": f"(_a + {imm}) & U64",
            "sub": f"(_a - {imm}) & U64",
            "mul": f"(_a * {imm}) & U64",
            "and": f"_a & {iu}",
            "or": f"(_a & U64) | {iu}",
            "xor": f"(_a & U64) ^ {iu}",
            "lsh": f"(_a << {iu & 63}) & U64",
            "rsh": f"(_a & U64) >> {iu & 63}",
            "arsh": f"(_to_s64(_a) >> {iu & 63}) & U64",
        }[base]
        w("if _a.__class__ is int:")
        w(f"    r{d} = {int_expr}")
        if base in ("add", "sub"):
            # Pointer +/- constant is the bread and butter of packet and
            # stack addressing; to_s64(to_u64(imm)) == imm for s32 imms.
            sign = "+" if base == "add" else "-"
            w("elif _a.__class__ is Pointer:")
            w(f"    r{d} = Pointer(_a[0], _a[1] {sign} {imm})")
        w("else:")
        w(f"    r{d} = _alu_op('{base}', _a, {imm})")
    else:
        w(f"_b = r{s}")
        int_expr = {
            "add": "(_a + _b) & U64",
            "sub": "(_a - _b) & U64",
            "mul": "(_a * _b) & U64",
            "and": "(_a & _b) & U64",
            "or": "(_a | _b) & U64",
            "xor": "(_a ^ _b) & U64",
            "lsh": "(_a << (_b & 63)) & U64",
            "rsh": "(_a & U64) >> (_b & 63)",
            "arsh": "(_to_s64(_a) >> (_b & 63)) & U64",
        }[base]
        w("if _a.__class__ is int and _b.__class__ is int:")
        w(f"    r{d} = {int_expr}")
        w("else:")
        w(f"    r{d} = _alu_op('{base}', _a, _b)")


def _gen_load(w: _Emitter, d: int, s: int, off: int, width: int) -> None:
    w(f"_p = r{s}")
    w("if _p.__class__ is not Pointer:")
    w("    raise VmFault('load through a non-pointer')")
    w("_rg = _p[0]")
    w(f"_st = _p[1] + {off}" if off else "_st = _p[1]")
    w(f"if _rg == '{PKT_REGION}':")
    w("    if not vm.touched_pkt_data:")
    w("        vm.touched_pkt_data = True")
    w("        _ec = vm.exec_ctx")
    w("        if _ec is not None:")
    w("            _ec.charge(costs.dma_first_touch_ns,"
      " label='dma_first_touch')")
    w(f"    _e = _st + {width}")
    w("    if _st < 0 or _e > len(pkt):")
    w("        raise VmFault(f'out-of-bounds load pkt[{_st}:{_e}] "
      "(size {len(pkt)})')")
    if width == 1:
        w(f"    r{d} = pkt[_st]")
    elif width == 2:
        w(f"    r{d} = (pkt[_st] << 8) | pkt[_st + 1]")
    else:
        w(f"    r{d} = int.from_bytes(pkt[_st:_e], 'big')")
    w(f"elif _rg == '{STACK_REGION}':")
    w(f"    _e = _st + {width}")
    w(f"    if _st < 0 or _e > {STACK_SIZE}:")
    w("        raise VmFault(f'out-of-bounds load stack[{_st}:{_e}] "
      f"(size {STACK_SIZE})')")
    if width == 1:
        w(f"    r{d} = stack[_st]")
    elif width == 2:
        w(f"    r{d} = stack[_st] | (stack[_st + 1] << 8)")
    else:
        w(f"    r{d} = int.from_bytes(stack[_st:_e], 'little')")
    w(f"elif _rg == '{CTX_REGION}':")
    w("    if _st == 0 or _st == 8:")
    w(f"        r{d} = _PTR_PKT0")
    w("    elif _st == 4:")
    w(f"        r{d} = Pointer('{PKT_REGION}', len(pkt))")
    w("    elif _st == 12:")
    w(f"        r{d} = ingress_ifindex")
    w("    elif _st == 16:")
    w(f"        r{d} = rx_queue_index")
    w("    else:")
    w("        raise VmFault(f'bad ctx offset {_st}')")
    w("else:")
    w(f"    r{d} = _vm_load(vm, _p, {off}, {width})")


def _store_body(w: _Emitter, d: int, off: int, width: int,
                stack_rhs: str, pkt_rhs: str, slow_value: str) -> None:
    w(f"_p = r{d}")
    w("if _p.__class__ is not Pointer:")
    w("    raise VmFault('store through a non-pointer')")
    w("_rg = _p[0]")
    w(f"_st = _p[1] + {off}" if off else "_st = _p[1]")
    w(f"if _rg == '{STACK_REGION}':")
    w(f"    _e = _st + {width}")
    w(f"    if _st < 0 or _e > {STACK_SIZE}:")
    w("        raise VmFault(f'out-of-bounds write stack[{_st}:{_e}]')")
    if width == 1:
        w(f"    stack[_st] = {stack_rhs}")
    else:
        w(f"    stack[_st:_e] = {stack_rhs}")
    w(f"elif _rg == '{PKT_REGION}':")
    w(f"    _e = _st + {width}")
    w("    if _st < 0 or _e > len(pkt):")
    w("        raise VmFault(f'out-of-bounds write pkt[{_st}:{_e}]')")
    if width == 1:
        w(f"    pkt[_st] = {pkt_rhs}")
    else:
        w(f"    pkt[_st:_e] = {pkt_rhs}")
    w("else:")
    w(f"    _vm_store(vm, _p, {off}, {width}, {slow_value})")


def _gen_store_reg(w: _Emitter, d: int, s: int, off: int, width: int) -> None:
    mask = (1 << (8 * width)) - 1
    # Interpreter order: the source scalar is extracted (and may fault on
    # a pointer) *before* the destination pointer is inspected.
    w(f"_v = r{s}")
    w("if _v.__class__ is int:")
    w(f"    _v = _v & {mask}")
    w("else:")
    w(f"    _v = vm.scalar_from_reg({s}) & {mask}")
    if width == 1:
        _store_body(w, d, off, width, "_v", "_v", "_v")
    else:
        _store_body(
            w, d, off, width,
            f"_v.to_bytes({width}, 'little')",
            f"_v.to_bytes({width}, 'big')",
            "_v",
        )


def _gen_store_imm(w: _Emitter, d: int, off: int, width: int,
                   value: int) -> None:
    if width == 1:
        _store_body(w, d, off, width, str(value), str(value), str(value))
    else:
        _store_body(
            w, d, off, width,
            repr(value.to_bytes(width, "little")),
            repr(value.to_bytes(width, "big")),
            str(value),
        )


# ----------------------------------------------------------------------
# Compile cache.
# ----------------------------------------------------------------------
def compile_program(program: Program) -> Optional[CompiledProgram]:
    """Translate + compile ``program``; ``None`` if declined."""
    st = stats_for(program.name)
    try:
        source, glb = _translate(program)
        code = compile(source, f"<ebpf-jit:{program.name}>", "exec")
        exec(code, glb)
    except JitDecline as exc:
        st.compiled = False
        st.declined = str(exc)
        return None
    except Exception as exc:  # pragma: no cover - codegen bug safety net
        # A translator defect must never take the datapath down: decline
        # and let the interpreter define the semantics.  The test suite
        # asserts every library program compiles, so this cannot hide.
        st.compiled = False
        st.declined = f"internal error: {exc!r}"
        return None
    compiled = CompiledProgram(
        program, glb["_jit_entry"], source, st, dict(program.maps)
    )
    st.compiled = True
    st.declined = None
    return compiled


def compiled_for(program: Program) -> Optional[CompiledProgram]:
    """The cached compiled form of ``program`` (or ``None`` if declined).

    Cache validity is checked per call: the instruction tuple must be
    the very object that was compiled and every map id must still bind
    the same map object (the generated code captured them), otherwise
    the program is recompiled — the "invalidated on program change" rule.
    """
    cached = getattr(program, "_jit_cache", None)
    if cached is not None and cached[0] is program.insns:
        compiled = cached[1]
        if compiled is None or compiled.maps_snapshot == program.maps:
            return compiled
    compiled = compile_program(program) if program.verified else None
    program._jit_cache = (program.insns, compiled)
    return compiled
