"""eBPF programs and the assembler used to write them.

:class:`ProgramBuilder` plays the role of clang/LLVM in Figure 4's workflow:
developers write restricted logic, the builder emits eBPF instructions, and
:func:`repro.ebpf.verifier.verify` plays the in-kernel verifier before a
program may attach anywhere.

Labels may only be *forward* references.  That is deliberate: the verifier
rejects back-edges (loops), so the assembler simply cannot express them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.ebpf.isa import ALU_OPS, JMP_OPS, Insn, Reg
from repro.ebpf.maps import BpfMap


@dataclass
class Program:
    """A loaded eBPF program: instructions plus its map references."""

    name: str
    insns: Sequence[Insn]
    maps: Dict[int, BpfMap] = field(default_factory=dict)
    verified: bool = False

    def __len__(self) -> int:
        return len(self.insns)


class _PendingLabel:
    __slots__ = ("name", "insn_index")

    def __init__(self, name: str, insn_index: int) -> None:
        self.name = name
        self.insn_index = insn_index


class ProgramBuilder:
    """Assemble an eBPF program with forward-only labels.

    Example::

        b = ProgramBuilder("drop_all")
        b.mov_imm(Reg.R0, XdpAction.DROP)
        b.exit_()
        prog = b.build()
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._insns: List[Insn] = []
        self._labels: Dict[str, int] = {}
        self._pending: List[_PendingLabel] = []
        self._maps: Dict[int, BpfMap] = {}
        self._next_map_id = 1

    # -- map plumbing ---------------------------------------------------
    def declare_map(self, bpf_map: BpfMap) -> int:
        """Register a map with the program; returns its handle id."""
        map_id = self._next_map_id
        self._next_map_id += 1
        self._maps[map_id] = bpf_map
        return map_id

    def ld_map(self, dst: Reg, map_id: int) -> "ProgramBuilder":
        """Load a map handle (the ld_imm64 map-fd pseudo instruction)."""
        if map_id not in self._maps:
            raise ValueError(f"map id {map_id} was not declared")
        return self._emit(Insn("ld_map", dst=int(dst), imm=map_id))

    # -- ALU ------------------------------------------------------------
    def _alu(self, op: str, dst: Reg, src: "Reg | None", imm: int) -> "ProgramBuilder":
        if op not in ALU_OPS:
            raise ValueError(f"not an ALU op: {op}")
        if src is None:
            return self._emit(Insn(f"{op}_imm", dst=int(dst), imm=imm))
        return self._emit(Insn(f"{op}_reg", dst=int(dst), src=int(src)))

    def mov_imm(self, dst: Reg, imm: int) -> "ProgramBuilder":
        return self._alu("mov", dst, None, imm)

    def mov_reg(self, dst: Reg, src: Reg) -> "ProgramBuilder":
        return self._alu("mov", dst, src, 0)

    def add_imm(self, dst: Reg, imm: int) -> "ProgramBuilder":
        return self._alu("add", dst, None, imm)

    def add_reg(self, dst: Reg, src: Reg) -> "ProgramBuilder":
        return self._alu("add", dst, src, 0)

    def sub_imm(self, dst: Reg, imm: int) -> "ProgramBuilder":
        return self._alu("sub", dst, None, imm)

    def sub_reg(self, dst: Reg, src: Reg) -> "ProgramBuilder":
        return self._alu("sub", dst, src, 0)

    def mul_imm(self, dst: Reg, imm: int) -> "ProgramBuilder":
        return self._alu("mul", dst, None, imm)

    def and_imm(self, dst: Reg, imm: int) -> "ProgramBuilder":
        return self._alu("and", dst, None, imm)

    def or_reg(self, dst: Reg, src: Reg) -> "ProgramBuilder":
        return self._alu("or", dst, src, 0)

    def xor_reg(self, dst: Reg, src: Reg) -> "ProgramBuilder":
        return self._alu("xor", dst, src, 0)

    def lsh_imm(self, dst: Reg, imm: int) -> "ProgramBuilder":
        return self._alu("lsh", dst, None, imm)

    def rsh_imm(self, dst: Reg, imm: int) -> "ProgramBuilder":
        return self._alu("rsh", dst, None, imm)

    def be(self, dst: Reg, width_bits: int) -> "ProgramBuilder":
        """Convert dst from big-endian (network) order, like bpf_ntohs."""
        if width_bits not in (16, 32, 64):
            raise ValueError("be width must be 16/32/64")
        return self._emit(Insn("be", dst=int(dst), imm=width_bits))

    # -- memory -----------------------------------------------------------
    def _mem(self, op: str, dst: Reg, src: Reg, off: int) -> "ProgramBuilder":
        return self._emit(Insn(op, dst=int(dst), src=int(src), off=off))

    def ldxb(self, dst: Reg, src: Reg, off: int = 0) -> "ProgramBuilder":
        return self._mem("ldxb", dst, src, off)

    def ldxh(self, dst: Reg, src: Reg, off: int = 0) -> "ProgramBuilder":
        return self._mem("ldxh", dst, src, off)

    def ldxw(self, dst: Reg, src: Reg, off: int = 0) -> "ProgramBuilder":
        return self._mem("ldxw", dst, src, off)

    def ldxdw(self, dst: Reg, src: Reg, off: int = 0) -> "ProgramBuilder":
        return self._mem("ldxdw", dst, src, off)

    def stxb(self, dst: Reg, src: Reg, off: int = 0) -> "ProgramBuilder":
        return self._mem("stxb", dst, src, off)

    def stxh(self, dst: Reg, src: Reg, off: int = 0) -> "ProgramBuilder":
        return self._mem("stxh", dst, src, off)

    def stxw(self, dst: Reg, src: Reg, off: int = 0) -> "ProgramBuilder":
        return self._mem("stxw", dst, src, off)

    def stxdw(self, dst: Reg, src: Reg, off: int = 0) -> "ProgramBuilder":
        return self._mem("stxdw", dst, src, off)

    def stw(self, dst: Reg, off: int, imm: int) -> "ProgramBuilder":
        return self._emit(Insn("stw", dst=int(dst), off=off, imm=imm))

    def stdw(self, dst: Reg, off: int, imm: int) -> "ProgramBuilder":
        return self._emit(Insn("stdw", dst=int(dst), off=off, imm=imm))

    # -- control flow -----------------------------------------------------
    def label(self, name: str) -> "ProgramBuilder":
        """Place a label at the current position, resolving forward refs."""
        if name in self._labels:
            raise ValueError(f"duplicate label: {name}")
        here = len(self._insns)
        self._labels[name] = here
        for pending in [p for p in self._pending if p.name == name]:
            insn = self._insns[pending.insn_index]
            off = here - pending.insn_index - 1
            if off < 0:
                raise ValueError("internal error: backward label")
            self._insns[pending.insn_index] = insn._replace(off=off)
            self._pending.remove(pending)
        return self

    def _branch_target(self, label: str) -> int:
        if label in self._labels:
            raise ValueError(
                f"label {label!r} is behind us — loops are not allowed in eBPF"
            )
        self._pending.append(_PendingLabel(label, len(self._insns)))
        return 0  # patched when the label is placed

    def ja(self, label: str) -> "ProgramBuilder":
        off = self._branch_target(label)
        return self._emit(Insn("ja", off=off))

    def _jmp(
        self, op: str, dst: Reg, src: Optional[Reg], imm: int, label: str
    ) -> "ProgramBuilder":
        if op not in JMP_OPS:
            raise ValueError(f"not a jump op: {op}")
        off = self._branch_target(label)
        if src is None:
            return self._emit(Insn(f"{op}_imm", dst=int(dst), off=off, imm=imm))
        return self._emit(Insn(f"{op}_reg", dst=int(dst), src=int(src), off=off))

    def jeq_imm(self, dst: Reg, imm: int, label: str) -> "ProgramBuilder":
        return self._jmp("jeq", dst, None, imm, label)

    def jne_imm(self, dst: Reg, imm: int, label: str) -> "ProgramBuilder":
        return self._jmp("jne", dst, None, imm, label)

    def jgt_imm(self, dst: Reg, imm: int, label: str) -> "ProgramBuilder":
        return self._jmp("jgt", dst, None, imm, label)

    def jlt_imm(self, dst: Reg, imm: int, label: str) -> "ProgramBuilder":
        return self._jmp("jlt", dst, None, imm, label)

    def jeq_reg(self, dst: Reg, src: Reg, label: str) -> "ProgramBuilder":
        return self._jmp("jeq", dst, src, 0, label)

    def jne_reg(self, dst: Reg, src: Reg, label: str) -> "ProgramBuilder":
        return self._jmp("jne", dst, src, 0, label)

    def jgt_reg(self, dst: Reg, src: Reg, label: str) -> "ProgramBuilder":
        return self._jmp("jgt", dst, src, 0, label)

    def jge_reg(self, dst: Reg, src: Reg, label: str) -> "ProgramBuilder":
        return self._jmp("jge", dst, src, 0, label)

    def call(self, helper_id: int) -> "ProgramBuilder":
        return self._emit(Insn("call", imm=helper_id))

    def exit_(self) -> "ProgramBuilder":
        return self._emit(Insn("exit"))

    # -- assembly ---------------------------------------------------------
    def _emit(self, insn: Insn) -> "ProgramBuilder":
        self._insns.append(insn)
        return self

    def build(self) -> Program:
        if self._pending:
            missing = sorted({p.name for p in self._pending})
            raise ValueError(f"unresolved labels: {missing}")
        if not self._insns or self._insns[-1].op != "exit":
            raise ValueError("program must end with exit")
        return Program(self.name, tuple(self._insns), dict(self._maps))
