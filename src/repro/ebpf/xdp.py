"""XDP attach semantics and verdicts.

An XDP program runs in the NIC driver on every received packet, *before*
an sk_buff is allocated (§2.2.3).  The driver interprets the verdict:

* ``DROP`` — recycle the buffer immediately (Table 5 task A),
* ``PASS`` — proceed into the normal kernel stack (skb allocation etc.),
* ``TX`` — bounce the (possibly rewritten) frame back out the same NIC,
* ``REDIRECT`` — send it to another device (devmap) or to an AF_XDP
  socket (xskmap), the paper's path to userspace,
* ``ABORTED`` — the program faulted; the packet is dropped and a trace
  event fires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.ebpf import jit as _jit
from repro.ebpf.program import Program
from repro.ebpf.vm import EbpfVm, VmFault
from repro.sim import costs as _costs
from repro.sim import fastpath
from repro.sim import faults as _faults
from repro.sim import trace as _trace
from repro.sim.cpu import ExecContext
from repro.telemetry.drops import DropReason


class XdpAction(enum.IntEnum):
    ABORTED = 0
    DROP = 1
    PASS = 2
    TX = 3
    REDIRECT = 4


def verdict_drop_reason(action: XdpAction) -> Optional[DropReason]:
    """Taxonomy reason when a verdict discards the frame, else None.

    DROP and ABORTED both recycle the buffer in place; drivers do not
    distinguish them in drop accounting and neither does the taxonomy.
    Note the sampling hook for the "xdp" point lives at the *dispatch*
    site (:meth:`repro.kernel.nic.PhysicalNic.service_queue`), never
    inside :meth:`XdpContext.run` — runs are memoized and replayed, and
    a replay must re-issue exactly the charges of a live run.
    """
    if action is XdpAction.DROP or action is XdpAction.ABORTED:
        return DropReason.NIC_XDP_DROP
    return None


@dataclass(slots=True)
class XdpVerdict:
    """Everything the driver needs to act on a program run."""

    action: XdpAction
    data: bytes
    #: ("map", map_obj, slot) or ("ifindex", n) when action == REDIRECT.
    redirect: Optional[Tuple] = None
    insns_executed: int = 0
    #: The program read the packet data (it is now cache-warm).
    touched_data: bool = False


class XdpContext:
    """A program attached at a driver hook, ready to run per packet.

    Interpreting the program is by far the slowest part of the simulated
    driver, so identical runs are memoized: a run over the same frame and
    context metadata, with every program map at the same version and the
    same cost table, must produce the same verdict and the same charges.
    A replay re-issues exactly the charge sequence a live run would have
    made (setup, first-touch, aggregate insn+helper cost) and the same
    trace counters — observables stay byte-identical.  Runs that fault,
    return unknown verdicts, or mutate a map are never memoized; the
    prandom helper is deterministic per run (the VM seeds a fresh RNG
    from the program name), so it needs no special casing.
    """

    #: Memo entries kept per attached program before a full clear.
    MEMO_MAX = 8192
    #: After this many consecutive misses the memo stands aside for a
    #: bypass window before probing again: on all-distinct traffic
    #: (every frame its own flow) the key build, lookup, and store are
    #: pure overhead on top of compiled execution.  The window doubles
    #: while probes stay fruitless (up to MEMO_BYPASS_MAX) and resets on
    #: the first hit, so cyclic traffic keeps full replay service while
    #: diverse traffic converges to near-zero memo overhead.  Replays
    #: and executions are observably identical, so the policy can never
    #: change a ledger byte — only wall-clock time.
    MEMO_MISS_LIMIT = 256
    MEMO_BYPASS_WINDOW = 256
    MEMO_BYPASS_MAX = 8192

    def __init__(self, program: Program) -> None:
        if not program.verified:
            raise ValueError(
                f"refusing to attach unverified program {program.name!r}"
            )
        self.program = program
        #: (data, ifindex, rx_queue, ktime) -> (tag, verdict,
        #: helper_calls, charge_ns).  The verdict object itself is
        #: shared across replays; consumers treat verdicts as read-only.
        self._memo: Dict[Tuple, Tuple] = {}
        self._memo_misses = 0
        self._memo_bypass = 0
        self._memo_window = self.MEMO_BYPASS_WINDOW

    def _maps_tag(self) -> Tuple:
        # The program token pins the memo to this exact instruction
        # stream: swapping the attached program (or rebinding its insns)
        # can never replay a stale verdict.
        return (
            tuple(m.version for m in self.program.maps.values()),
            _costs.VERSION,
            _jit.program_token(self.program),
        )

    def run(
        self,
        data: bytes,
        exec_ctx: Optional[ExecContext] = None,
        ingress_ifindex: int = 0,
        rx_queue_index: int = 0,
        ktime_ns: int = 0,
    ) -> XdpVerdict:
        """Run the program over one frame; never raises for program bugs."""
        # Profiler-only frame per attached program: this is what lets a
        # profile split Table 5's XDP cost by program (A-D) instead of
        # one undifferentiated "ebpf" bucket.
        rec = _trace.ACTIVE
        prof = rec.profiler if rec is not None else None
        if prof is None:
            return self._run(data, exec_ctx, ingress_ifindex,
                             rx_queue_index, ktime_ns)
        prof.enter(f"xdp:{self.program.name}")
        try:
            return self._run(data, exec_ctx, ingress_ifindex,
                             rx_queue_index, ktime_ns)
        finally:
            prof.exit_()

    def _run(
        self,
        data: bytes,
        exec_ctx: Optional[ExecContext] = None,
        ingress_ifindex: int = 0,
        rx_queue_index: int = 0,
        ktime_ns: int = 0,
    ) -> XdpVerdict:
        costs = _costs.DEFAULT_COSTS

        plan = _faults.ACTIVE
        if plan is not None and plan.should_fire("ebpf.map_lookup_fault"):
            # bpf_map_lookup_elem returned NULL under pressure: a robust
            # program falls through to XDP_PASS so the kernel slow path
            # carries the packet instead of the program aborting.  The
            # setup and the failed lookup were still paid; checked
            # *before* the memo so a faulted run is never replayed.
            if exec_ctx is not None:
                exec_ctx.charge(costs.xdp_ctx_setup_ns, label="xdp_setup")
                exec_ctx.charge(costs.ebpf_map_lookup_ns, label="ebpf")
            rec = _trace.ACTIVE
            if rec is not None:
                rec.count("ebpf.map_lookup_faults")
                rec.count("ebpf.runs")
            return XdpVerdict(XdpAction.PASS, data)

        memo_key = tag = None
        if fastpath.ENABLED and self._memo_bypass:
            self._memo_bypass -= 1
        elif fastpath.ENABLED:
            memo_key = (data, ingress_ifindex, rx_queue_index, ktime_ns)
            tag = self._maps_tag()
            hit = self._memo.get(memo_key)
            if hit is not None and hit[0] == tag:
                self._memo_misses = 0
                self._memo_window = self.MEMO_BYPASS_WINDOW
                _, verdict, helper_calls, charge_ns = hit
                if exec_ctx is not None:
                    exec_ctx.charge(costs.xdp_ctx_setup_ns, label="xdp_setup")
                    if verdict.touched_data:
                        exec_ctx.charge(costs.dma_first_touch_ns,
                                        label="dma_first_touch")
                    exec_ctx.charge(charge_ns, label="ebpf")
                rec = _trace.ACTIVE
                if rec is not None:
                    rec.count("ebpf.insns_retired", verdict.insns_executed)
                    if helper_calls:
                        rec.count("ebpf.helper_calls", helper_calls)
                    rec.count("ebpf.runs")
                return verdict
            self._memo_misses += 1
            if self._memo_misses >= self.MEMO_MISS_LIMIT:
                self._memo_misses = 0
                self._memo_bypass = self._memo_window
                self._memo_window = min(self._memo_window * 2,
                                        self.MEMO_BYPASS_MAX)

        if exec_ctx is not None:
            exec_ctx.charge(costs.xdp_ctx_setup_ns, label="xdp_setup")
        # Memo misses execute through compiled code when the fastpath
        # allows it: cyclic traffic replays from the memo, diverse
        # traffic runs the JIT, and the interpreter remains the fallback
        # for declined programs (or EBPF_JIT=0).  Charges and counters
        # are identical either way by the JIT's charge-exactness
        # contract, so memo entries are engine-agnostic.
        compiled = None
        if fastpath.ENABLED and _jit.ENABLED:
            compiled = _jit.compiled_for(self.program)
        if compiled is not None:
            vm: EbpfVm = _jit.JitVm(compiled, exec_ctx=exec_ctx,
                                    ktime_ns=ktime_ns)
        else:
            _jit.stats_for(self.program.name).interp_runs += 1
            vm = EbpfVm(self.program, exec_ctx=exec_ctx, ktime_ns=ktime_ns)
        try:
            verdict = vm.run(
                data,
                ingress_ifindex=ingress_ifindex,
                rx_queue_index=rx_queue_index,
            )
        except VmFault:
            return XdpVerdict(XdpAction.ABORTED, data)
        try:
            action = XdpAction(verdict)
        except ValueError:
            # Unknown verdicts are treated as ABORTED by drivers.
            return XdpVerdict(XdpAction.ABORTED, data)
        result = XdpVerdict(
            action,
            vm.pkt_bytes(),
            redirect=vm.redirect_target,
            insns_executed=vm.insns_executed,
            touched_data=vm.touched_pkt_data,
        )
        if memo_key is not None and tag[0] == tuple(
                m.version for m in self.program.maps.values()):
            # The run left its maps untouched (the cost table and the
            # program cannot change mid-run, so only the version vector
            # needs rechecking): it is a pure function of the memo key
            # and may be replayed.
            if len(self._memo) >= self.MEMO_MAX:
                self._memo.clear()
            self._memo[memo_key] = (
                tag, result, vm.last_helper_calls, vm.last_charge_ns,
            )
        return result
