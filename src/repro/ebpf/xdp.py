"""XDP attach semantics and verdicts.

An XDP program runs in the NIC driver on every received packet, *before*
an sk_buff is allocated (§2.2.3).  The driver interprets the verdict:

* ``DROP`` — recycle the buffer immediately (Table 5 task A),
* ``PASS`` — proceed into the normal kernel stack (skb allocation etc.),
* ``TX`` — bounce the (possibly rewritten) frame back out the same NIC,
* ``REDIRECT`` — send it to another device (devmap) or to an AF_XDP
  socket (xskmap), the paper's path to userspace,
* ``ABORTED`` — the program faulted; the packet is dropped and a trace
  event fires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.ebpf.program import Program
from repro.ebpf.vm import EbpfVm, VmFault
from repro.sim.cpu import ExecContext


class XdpAction(enum.IntEnum):
    ABORTED = 0
    DROP = 1
    PASS = 2
    TX = 3
    REDIRECT = 4


@dataclass
class XdpVerdict:
    """Everything the driver needs to act on a program run."""

    action: XdpAction
    data: bytes
    #: ("map", map_obj, slot) or ("ifindex", n) when action == REDIRECT.
    redirect: Optional[Tuple] = None
    insns_executed: int = 0
    #: The program read the packet data (it is now cache-warm).
    touched_data: bool = False


class XdpContext:
    """A program attached at a driver hook, ready to run per packet."""

    def __init__(self, program: Program) -> None:
        if not program.verified:
            raise ValueError(
                f"refusing to attach unverified program {program.name!r}"
            )
        self.program = program

    def run(
        self,
        data: bytes,
        exec_ctx: Optional[ExecContext] = None,
        ingress_ifindex: int = 0,
        rx_queue_index: int = 0,
        ktime_ns: int = 0,
    ) -> XdpVerdict:
        """Run the program over one frame; never raises for program bugs."""
        from repro.sim.costs import DEFAULT_COSTS

        if exec_ctx is not None:
            exec_ctx.charge(DEFAULT_COSTS.xdp_ctx_setup_ns, label="xdp_setup")
        vm = EbpfVm(self.program, exec_ctx=exec_ctx, ktime_ns=ktime_ns)
        try:
            verdict = vm.run(
                data,
                ingress_ifindex=ingress_ifindex,
                rx_queue_index=rx_queue_index,
            )
        except VmFault:
            return XdpVerdict(XdpAction.ABORTED, data)
        try:
            action = XdpAction(verdict)
        except ValueError:
            # Unknown verdicts are treated as ABORTED by drivers.
            return XdpVerdict(XdpAction.ABORTED, data)
        return XdpVerdict(
            action,
            vm.pkt_bytes(),
            redirect=vm.redirect_target,
            insns_executed=vm.insns_executed,
            touched_data=vm.touched_pkt_data,
        )
