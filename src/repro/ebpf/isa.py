"""The eBPF instruction set subset this VM implements.

Instructions follow the real eBPF layout: ``(op, dst, src, off, imm)`` where
``dst``/``src`` are register numbers, ``off`` a signed 16-bit branch/memory
offset, ``imm`` a signed 32-bit immediate.  Mnemonics are strings for
readability; the interpreter dispatches on them through a dict, and the
verifier knows the full legal set.
"""

from __future__ import annotations

import enum
from typing import NamedTuple


class Reg(enum.IntEnum):
    """eBPF registers and their calling convention roles."""

    R0 = 0  # return value / scratch
    R1 = 1  # first argument (the context pointer on entry)
    R2 = 2
    R3 = 3
    R4 = 4
    R5 = 5  # last argument register
    R6 = 6  # callee-saved
    R7 = 7
    R8 = 8
    R9 = 9
    R10 = 10  # frame pointer (read-only)


class Insn(NamedTuple):
    op: str
    dst: int = 0
    src: int = 0
    off: int = 0
    imm: int = 0


#: ALU operations, 64-bit, register or immediate source.
ALU_OPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "div",
        "mod",
        "and",
        "or",
        "xor",
        "lsh",
        "rsh",
        "arsh",
        "mov",
        "neg",
    }
)

#: Conditional jump predicates (plus unconditional "ja").
JMP_OPS = frozenset(
    {"jeq", "jne", "jgt", "jge", "jlt", "jle", "jset", "jsgt", "jsge"}
)

#: Memory access widths in bytes, by suffix.
MEM_WIDTHS = {"b": 1, "h": 2, "w": 4, "dw": 8}

#: Load (ldx<w>) and store (stx<w>, st<w>) op names.
LDX_OPS = frozenset({f"ldx{s}" for s in MEM_WIDTHS})
STX_OPS = frozenset({f"stx{s}" for s in MEM_WIDTHS})
ST_OPS = frozenset({f"st{s}" for s in MEM_WIDTHS})

#: Everything the verifier will accept.
ALL_OPS = (
    {f"{op}_imm" for op in ALU_OPS - {"neg"}}
    | {f"{op}_reg" for op in ALU_OPS - {"neg"}}
    | {"neg"}
    | {f"{op}_imm" for op in JMP_OPS}
    | {f"{op}_reg" for op in JMP_OPS}
    | {"ja", "call", "exit"}
    | LDX_OPS
    | STX_OPS
    | ST_OPS
    | {"ld_map"}  # pseudo ld_imm64 loading a map handle into a register
    | {"be", "le"}  # byteswap (endianness helpers used by parsers)
)

U64 = (1 << 64) - 1


def to_u64(value: int) -> int:
    return value & U64


def to_s64(value: int) -> int:
    value &= U64
    return value - (1 << 64) if value >= (1 << 63) else value
