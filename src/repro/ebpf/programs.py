"""A library of XDP programs used by OVS and the experiments.

These are the actual programs the paper discusses, written against our
assembler:

* :func:`xsk_redirect_program` — the tiny helper OVS attaches to feed every
  packet to userspace through AF_XDP (§2.2.3, §3.1),
* :func:`steering_program` — same, but punts management traffic to the
  kernel stack (§4's control-plane steering idea),
* :func:`drop_program`, :func:`parse_drop_program`,
  :func:`parse_lookup_drop_program`, :func:`parse_swap_tx_program` — the
  four tasks of Table 5 (§5.4),
* :func:`container_redirect_program` — path C of Figure 5: forward traffic
  for known container IPs straight to their veth, bypassing userspace,
* :func:`l4_load_balancer_program` — §3.5's example of extending OVS with
  eBPF: handle one 5-tuple entirely in the driver, pass the rest up.

Calling convention reminder: helpers clobber r1–r5, so programs save the
context pointer in r9 on entry, exactly as compiled C would.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.ebpf.helpers import Helper
from repro.ebpf.isa import Reg
from repro.ebpf.maps import DevMap, HashMap, XskMap
from repro.ebpf.program import Program, ProgramBuilder
from repro.ebpf.verifier import verify
from repro.ebpf.vm import CTX_DATA, CTX_DATA_END, CTX_RX_QUEUE_INDEX

# Frame offsets for Ethernet/IPv4/UDP (no VLAN).
OFF_ETH_DST = 0
OFF_ETH_SRC = 6
OFF_ETHERTYPE = 12
OFF_IP_PROTO = 23
OFF_IP_SRC = 26
OFF_IP_DST = 30
OFF_L4_SPORT = 34
OFF_L4_DPORT = 36
MIN_IPV4_LEN = 34
MIN_L4_LEN = 38


def _prologue(b: ProgramBuilder, need_len: int, fail_label: str) -> None:
    """r9 = ctx, r2 = data, r3 = data_end; bounds-check ``need_len``."""
    b.mov_reg(Reg.R9, Reg.R1)
    b.ldxw(Reg.R2, Reg.R9, CTX_DATA)
    b.ldxw(Reg.R3, Reg.R9, CTX_DATA_END)
    b.mov_reg(Reg.R4, Reg.R2)
    b.add_imm(Reg.R4, need_len)
    b.jgt_reg(Reg.R4, Reg.R3, fail_label)


def _epilogue_redirect_to_xsk(
    b: ProgramBuilder, map_id: int, label: str, fallback_action: int = 2
) -> None:
    """The shared tail: redirect to this queue's XSK, or fall back."""
    b.label(label)
    b.ldxw(Reg.R2, Reg.R9, CTX_RX_QUEUE_INDEX)
    b.ld_map(Reg.R1, map_id)
    b.mov_imm(Reg.R3, fallback_action)
    b.call(Helper.REDIRECT_MAP)
    b.exit_()


def drop_program() -> Program:
    """Table 5 task A: drop everything without looking at it."""
    b = ProgramBuilder("xdp_drop_all")
    b.mov_imm(Reg.R0, 1)  # XDP_DROP
    b.exit_()
    return verify(b.build())


def pass_program() -> Program:
    """Send everything up the normal kernel stack."""
    b = ProgramBuilder("xdp_pass_all")
    b.mov_imm(Reg.R0, 2)  # XDP_PASS
    b.exit_()
    return verify(b.build())


def parse_drop_program() -> Program:
    """Table 5 task B: parse Ethernet + IPv4 headers, then drop."""
    b = ProgramBuilder("xdp_parse_drop")
    _prologue(b, MIN_IPV4_LEN, "out")
    b.ldxh(Reg.R5, Reg.R2, OFF_ETHERTYPE)
    b.jne_imm(Reg.R5, 0x0800, "out")
    b.ldxb(Reg.R5, Reg.R2, OFF_IP_PROTO)
    b.ldxw(Reg.R6, Reg.R2, OFF_IP_SRC)
    b.ldxw(Reg.R7, Reg.R2, OFF_IP_DST)
    b.ldxb(Reg.R8, Reg.R2, 14)  # version/IHL
    b.and_imm(Reg.R8, 0x0F)
    b.label("out")
    b.mov_imm(Reg.R0, 1)  # XDP_DROP
    b.exit_()
    return verify(b.build())


def l2_key(mac_bytes: bytes) -> bytes:
    """Build the 8-byte L2-table key task C's program constructs on its
    stack: first 4 MAC bytes as a little-endian u32, next 2 as u16, zero pad.
    """
    if len(mac_bytes) != 6:
        raise ValueError("a MAC is 6 bytes")
    return struct.pack(
        "<IHH",
        int.from_bytes(mac_bytes[:4], "big"),
        int.from_bytes(mac_bytes[4:6], "big"),
        0,
    )


def parse_lookup_drop_program() -> Tuple[Program, HashMap]:
    """Table 5 task C: parse, look the dst MAC up in an L2 table, drop.

    Returns the program and its L2 table so tests/benches can populate it
    (use :func:`l2_key` to build keys).  The 4-byte value is an ifindex,
    unused because the task drops regardless, as in the paper.
    """
    l2_table = HashMap(key_size=8, value_size=4, max_entries=1024)
    b = ProgramBuilder("xdp_parse_lookup_drop")
    map_id = b.declare_map(l2_table)
    _prologue(b, MIN_IPV4_LEN, "out")
    b.ldxh(Reg.R5, Reg.R2, OFF_ETHERTYPE)
    b.jne_imm(Reg.R5, 0x0800, "out")
    # Build the key on the stack: dst MAC (4+2 bytes) zero-padded to 8.
    b.ldxw(Reg.R5, Reg.R2, OFF_ETH_DST)
    b.ldxh(Reg.R6, Reg.R2, OFF_ETH_DST + 4)
    b.stxw(Reg.R10, Reg.R5, -8)
    b.stw(Reg.R10, -4, 0)
    b.stxh(Reg.R10, Reg.R6, -4)
    b.ld_map(Reg.R1, map_id)
    b.mov_reg(Reg.R2, Reg.R10)
    b.add_imm(Reg.R2, -8)
    b.call(Helper.MAP_LOOKUP_ELEM)
    b.label("out")
    b.mov_imm(Reg.R0, 1)  # XDP_DROP
    b.exit_()
    return verify(b.build()), l2_table


def parse_swap_tx_program() -> Program:
    """Table 5 task D: parse, swap src/dst MAC, bounce out the same port."""
    b = ProgramBuilder("xdp_parse_swap_tx")
    _prologue(b, MIN_IPV4_LEN, "drop")
    b.ldxh(Reg.R5, Reg.R2, OFF_ETHERTYPE)
    b.jne_imm(Reg.R5, 0x0800, "drop")
    # Load dst MAC into r5:r6, src MAC into r7:r8, store swapped.
    b.ldxw(Reg.R5, Reg.R2, OFF_ETH_DST)
    b.ldxh(Reg.R6, Reg.R2, OFF_ETH_DST + 4)
    b.ldxw(Reg.R7, Reg.R2, OFF_ETH_SRC)
    b.ldxh(Reg.R8, Reg.R2, OFF_ETH_SRC + 4)
    b.stxw(Reg.R2, Reg.R7, OFF_ETH_DST)
    b.stxh(Reg.R2, Reg.R8, OFF_ETH_DST + 4)
    b.stxw(Reg.R2, Reg.R5, OFF_ETH_SRC)
    b.stxh(Reg.R2, Reg.R6, OFF_ETH_SRC + 4)
    b.mov_imm(Reg.R0, 3)  # XDP_TX
    b.exit_()
    b.label("drop")
    b.mov_imm(Reg.R0, 1)
    b.exit_()
    return verify(b.build())


def l2_forward_program(n_ports: int = 64) -> Tuple[Program, HashMap]:
    """The eBPF OVS datapath in miniature (§2.2.2): parse Ethernet/IPv4,
    look the destination MAC up in a flow table, and redirect to the
    ifindex the value names.  Attached at tc, this is the "OVS in eBPF"
    configuration of Figure 2 — same work as the kernel module, executed
    as sandboxed bytecode.

    Table key: :func:`l2_key` of the dst MAC; value: 4-byte little-endian
    ifindex.
    """
    fib = HashMap(key_size=8, value_size=4, max_entries=n_ports)
    b = ProgramBuilder("tc_ovs_l2_forward")
    map_id = b.declare_map(fib)
    _prologue(b, MIN_L4_LEN, "drop")
    b.ldxh(Reg.R5, Reg.R2, OFF_ETHERTYPE)
    b.jne_imm(Reg.R5, 0x0800, "drop")
    # Full flow-key extraction onto the stack, the way the eBPF datapath
    # prototype mirrored the kernel module's key (every field loaded,
    # masked where needed, and stored) — this is most of the program.
    b.ldxw(Reg.R5, Reg.R2, OFF_ETH_DST)          # eth_dst hi
    b.stxw(Reg.R10, Reg.R5, -64)
    b.ldxh(Reg.R5, Reg.R2, OFF_ETH_DST + 4)      # eth_dst lo
    b.stxh(Reg.R10, Reg.R5, -60)
    b.ldxw(Reg.R5, Reg.R2, OFF_ETH_SRC)          # eth_src hi
    b.stxw(Reg.R10, Reg.R5, -58)
    b.ldxh(Reg.R5, Reg.R2, OFF_ETH_SRC + 4)      # eth_src lo
    b.stxh(Reg.R10, Reg.R5, -54)
    b.ldxh(Reg.R5, Reg.R2, OFF_ETHERTYPE)        # eth_type
    b.stxh(Reg.R10, Reg.R5, -52)
    b.ldxb(Reg.R5, Reg.R2, 14)                   # version/ihl
    b.and_imm(Reg.R5, 0x0F)
    b.stxb(Reg.R10, Reg.R5, -50)
    b.ldxb(Reg.R5, Reg.R2, 15)                   # tos
    b.stxb(Reg.R10, Reg.R5, -49)
    b.ldxh(Reg.R5, Reg.R2, 20)                   # frag bits
    b.and_imm(Reg.R5, 0x3FFF)
    b.stxh(Reg.R10, Reg.R5, -48)
    b.ldxb(Reg.R5, Reg.R2, 22)                   # ttl
    b.stxb(Reg.R10, Reg.R5, -46)
    b.ldxb(Reg.R5, Reg.R2, OFF_IP_PROTO)         # proto
    b.stxb(Reg.R10, Reg.R5, -45)
    b.ldxw(Reg.R5, Reg.R2, OFF_IP_SRC)           # nw_src
    b.stxw(Reg.R10, Reg.R5, -44)
    b.ldxw(Reg.R5, Reg.R2, OFF_IP_DST)           # nw_dst
    b.stxw(Reg.R10, Reg.R5, -40)
    b.ldxb(Reg.R6, Reg.R10, -45)                 # L4 only for TCP/UDP
    b.jeq_imm(Reg.R6, 6, "l4")
    b.jeq_imm(Reg.R6, 17, "l4")
    b.ja("lookup")
    b.label("l4")
    b.ldxh(Reg.R5, Reg.R2, OFF_L4_SPORT)         # tp_src
    b.stxh(Reg.R10, Reg.R5, -36)
    b.ldxh(Reg.R5, Reg.R2, OFF_L4_DPORT)         # tp_dst
    b.stxh(Reg.R10, Reg.R5, -34)
    b.label("lookup")
    # L2 flow-table key: dst MAC padded to 8 bytes.
    b.ldxw(Reg.R5, Reg.R2, OFF_ETH_DST)
    b.ldxh(Reg.R6, Reg.R2, OFF_ETH_DST + 4)
    b.stxw(Reg.R10, Reg.R5, -8)
    b.stw(Reg.R10, -4, 0)
    b.stxh(Reg.R10, Reg.R6, -4)
    b.ld_map(Reg.R1, map_id)
    b.mov_reg(Reg.R2, Reg.R10)
    b.add_imm(Reg.R2, -8)
    b.call(Helper.MAP_LOOKUP_ELEM)
    b.jeq_imm(Reg.R0, 0, "drop")
    # Hit: bump the flow's packet counter (the module's per-flow stats),
    # then redirect to the ifindex in the value.
    b.ldxw(Reg.R7, Reg.R0, 0)                    # out ifindex
    b.mov_reg(Reg.R1, Reg.R7)
    b.call(Helper.REDIRECT)
    b.exit_()
    b.label("drop")
    b.mov_imm(Reg.R0, 2)  # TC_ACT_SHOT
    b.exit_()
    return verify(b.build()), fib


def xsk_redirect_program(n_queues: int = 64) -> Tuple[Program, XskMap]:
    """The OVS AF_XDP helper: redirect every packet to this queue's XSK.

    If no socket is bound to the queue the packet falls through to the
    kernel stack (fallback = XDP_PASS), so e.g. ssh keeps working while
    OVS is down — part of the compatibility story of §2.2.3.
    """
    xsks = XskMap(max_entries=n_queues)
    b = ProgramBuilder("ovs_xsk_redirect")
    map_id = b.declare_map(xsks)
    b.mov_reg(Reg.R9, Reg.R1)
    _epilogue_redirect_to_xsk(b, map_id, "to_xsk")
    return verify(b.build()), xsks


def steering_program(
    n_queues: int = 64, mgmt_ports: Tuple[int, ...] = (22, 6653, 6640)
) -> Tuple[Program, XskMap]:
    """Feed the datapath via AF_XDP but PASS management traffic (§4).

    TCP traffic to ssh/OpenFlow/OVSDB ports goes to the kernel stack so
    the control plane works over the same NIC the datapath uses.
    """
    xsks = XskMap(max_entries=n_queues)
    b = ProgramBuilder("ovs_xsk_steering")
    map_id = b.declare_map(xsks)
    _prologue(b, MIN_L4_LEN, "to_xsk")
    b.ldxh(Reg.R5, Reg.R2, OFF_ETHERTYPE)
    b.jne_imm(Reg.R5, 0x0800, "to_xsk")
    b.ldxb(Reg.R5, Reg.R2, OFF_IP_PROTO)
    b.jne_imm(Reg.R5, 6, "to_xsk")  # only TCP can be management here
    b.ldxh(Reg.R5, Reg.R2, OFF_L4_DPORT)
    for port in mgmt_ports:
        b.jeq_imm(Reg.R5, port, "to_stack")
    b.ja("to_xsk")
    b.label("to_stack")
    b.mov_imm(Reg.R0, 2)  # XDP_PASS
    b.exit_()
    _epilogue_redirect_to_xsk(b, map_id, "to_xsk")
    return verify(b.build()), xsks


def container_redirect_program(
    n_queues: int = 64, n_containers: int = 256
) -> Tuple[Program, XskMap, DevMap, HashMap]:
    """Figure 5 path C: packets for known container IPs go straight to
    the container's veth via XDP_REDIRECT; everything else goes to OVS
    userspace through the XSK map.

    Returns (program, xskmap, devmap, ip->slot hash table).  Populate the
    hash table with ``container_ip_key(ip)`` -> 4-byte little-endian
    devmap slot.
    """
    xsks = XskMap(max_entries=n_queues)
    devs = DevMap(max_entries=n_containers)
    ip_table = HashMap(key_size=4, value_size=4, max_entries=n_containers)
    b = ProgramBuilder("ovs_container_redirect")
    xsk_id = b.declare_map(xsks)
    dev_id = b.declare_map(devs)
    ip_id = b.declare_map(ip_table)
    _prologue(b, MIN_IPV4_LEN, "to_xsk")
    b.ldxh(Reg.R5, Reg.R2, OFF_ETHERTYPE)
    b.jne_imm(Reg.R5, 0x0800, "to_xsk")
    b.ldxw(Reg.R5, Reg.R2, OFF_IP_DST)
    b.stxw(Reg.R10, Reg.R5, -4)
    b.ld_map(Reg.R1, ip_id)
    b.mov_reg(Reg.R2, Reg.R10)
    b.add_imm(Reg.R2, -4)
    b.call(Helper.MAP_LOOKUP_ELEM)
    b.jeq_imm(Reg.R0, 0, "to_xsk")  # NULL: not a local container
    b.ldxw(Reg.R6, Reg.R0, 0)  # devmap slot
    b.ld_map(Reg.R1, dev_id)
    b.mov_reg(Reg.R2, Reg.R6)
    b.mov_imm(Reg.R3, 1)  # fallback: drop (slot must exist)
    b.call(Helper.REDIRECT_MAP)
    b.exit_()
    _epilogue_redirect_to_xsk(b, xsk_id, "to_xsk")
    return verify(b.build()), xsks, devs, ip_table


def container_ip_key(ip: int) -> bytes:
    """The ip->slot hash key as the container program builds it."""
    return struct.pack("<I", ip)


def lb_key(src_ip: int, dst_ip: int, sport: int, dport: int, proto: int) -> bytes:
    """The 16-byte 5-tuple key as the load-balancer program builds it."""
    return struct.pack("<IIHHI", src_ip, dst_ip, sport, dport, proto)


def l4_load_balancer_program(
    n_queues: int = 64, n_backends: int = 64
) -> Tuple[Program, XskMap, HashMap]:
    """§3.5's L4 load balancer: packets matching a configured 5-tuple are
    rewritten (dst IP -> backend) and bounced with XDP_TX; the rest go to
    OVS userspace.

    Populate the backend table with :func:`lb_key` -> backend IPv4 as a
    4-byte **little-endian** value: the program loads it with a (host
    order) ldxw and stores it into the packet in network order.
    """
    xsks = XskMap(max_entries=n_queues)
    backends = HashMap(key_size=16, value_size=4, max_entries=n_backends)
    b = ProgramBuilder("xdp_l4_lb")
    xsk_id = b.declare_map(xsks)
    be_id = b.declare_map(backends)
    _prologue(b, MIN_L4_LEN, "to_xsk")
    b.ldxh(Reg.R5, Reg.R2, OFF_ETHERTYPE)
    b.jne_imm(Reg.R5, 0x0800, "to_xsk")
    # Build the 5-tuple key on the stack.
    b.ldxw(Reg.R5, Reg.R2, OFF_IP_SRC)
    b.stxw(Reg.R10, Reg.R5, -16)
    b.ldxw(Reg.R5, Reg.R2, OFF_IP_DST)
    b.stxw(Reg.R10, Reg.R5, -12)
    b.ldxh(Reg.R5, Reg.R2, OFF_L4_SPORT)
    b.stxh(Reg.R10, Reg.R5, -8)
    b.ldxh(Reg.R5, Reg.R2, OFF_L4_DPORT)
    b.stxh(Reg.R10, Reg.R5, -6)
    b.ldxb(Reg.R5, Reg.R2, OFF_IP_PROTO)
    b.stxw(Reg.R10, Reg.R5, -4)  # proto byte + implicit zero padding
    b.ld_map(Reg.R1, be_id)
    b.mov_reg(Reg.R2, Reg.R10)
    b.add_imm(Reg.R2, -16)
    b.call(Helper.MAP_LOOKUP_ELEM)
    b.jeq_imm(Reg.R0, 0, "to_xsk")
    # Hit: rewrite dst IP with the backend and bounce it back out.
    # (r1-r5 were clobbered by the call; reload and re-bounds-check.)
    b.ldxw(Reg.R6, Reg.R0, 0)
    b.ldxw(Reg.R2, Reg.R9, CTX_DATA)
    b.ldxw(Reg.R3, Reg.R9, CTX_DATA_END)
    b.mov_reg(Reg.R4, Reg.R2)
    b.add_imm(Reg.R4, MIN_L4_LEN)
    b.jgt_reg(Reg.R4, Reg.R3, "to_xsk")
    b.stxw(Reg.R2, Reg.R6, OFF_IP_DST)
    b.mov_imm(Reg.R0, 3)  # XDP_TX
    b.exit_()
    _epilogue_redirect_to_xsk(b, xsk_id, "to_xsk")
    return verify(b.build()), xsks, backends
