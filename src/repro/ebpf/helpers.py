"""eBPF helper functions callable from programs.

Helper ids mirror the real kernel's numbering where one exists.  Each helper
is implemented against the VM's register/memory model; helpers are where an
eBPF program touches maps, redirects packets, or adjusts headroom.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.ebpf.vm import EbpfVm


class Helper(enum.IntEnum):
    MAP_LOOKUP_ELEM = 1
    MAP_UPDATE_ELEM = 2
    MAP_DELETE_ELEM = 3
    KTIME_GET_NS = 5
    GET_PRANDOM_U32 = 7
    CSUM_DIFF = 28
    REDIRECT = 23
    XDP_ADJUST_HEAD = 44
    REDIRECT_MAP = 51


def _helper_map_lookup(vm: "EbpfVm") -> object:
    bpf_map = vm.map_from_reg(1)
    key = vm.read_mem_via_pointer(vm.reg(2), bpf_map.key_size)
    value = bpf_map.lookup(bytes(key))
    if value is None:
        return 0
    return vm.expose_map_value(bpf_map, bytes(key), value)


def _helper_map_update(vm: "EbpfVm") -> object:
    bpf_map = vm.map_from_reg(1)
    key = vm.read_mem_via_pointer(vm.reg(2), bpf_map.key_size)
    value = vm.read_mem_via_pointer(vm.reg(3), bpf_map.value_size)
    try:
        bpf_map.update(bytes(key), bytes(value))
    except Exception:
        return -1 & ((1 << 64) - 1)
    return 0


def _helper_map_delete(vm: "EbpfVm") -> object:
    bpf_map = vm.map_from_reg(1)
    key = vm.read_mem_via_pointer(vm.reg(2), bpf_map.key_size)
    try:
        bpf_map.delete(bytes(key))
    except Exception:
        return -1 & ((1 << 64) - 1)
    return 0


def _helper_ktime(vm: "EbpfVm") -> object:
    return vm.ktime_ns


def _helper_prandom(vm: "EbpfVm") -> object:
    return vm.rng.getrandbits(32)


def _helper_redirect(vm: "EbpfVm") -> object:
    from repro.ebpf.xdp import XdpAction

    ifindex = vm.scalar_from_reg(1)
    vm.redirect_target = ("ifindex", ifindex)
    return int(XdpAction.REDIRECT)


def _helper_redirect_map(vm: "EbpfVm") -> object:
    from repro.ebpf.maps import DevMap
    from repro.ebpf.xdp import XdpAction

    bpf_map = vm.map_from_reg(1)
    slot = vm.scalar_from_reg(2)
    flags = vm.scalar_from_reg(3)
    if isinstance(bpf_map, DevMap) and bpf_map.get_dev(slot) is None:
        # No device/socket in that slot: return the fallback action carried
        # in the low bits of flags (bpf_redirect_map's documented contract).
        return flags & 0x3
    vm.redirect_target = ("map", bpf_map, slot)
    return int(XdpAction.REDIRECT)


def _helper_adjust_head(vm: "EbpfVm") -> object:
    delta = vm.scalar_signed_from_reg(2)
    return 0 if vm.adjust_pkt_head(delta) else -1 & ((1 << 64) - 1)


def _helper_csum_diff(vm: "EbpfVm") -> object:
    # bpf_csum_diff(from, from_size, to, to_size, seed); we implement the
    # common "fold new bytes into seed" usage.
    from repro.net.checksum import internet_checksum

    to_ptr, to_size = vm.reg(3), vm.scalar_from_reg(4)
    seed = vm.scalar_from_reg(5)
    data = vm.read_mem_via_pointer(to_ptr, to_size)
    return (seed + (~internet_checksum(bytes(data)) & 0xFFFF)) & 0xFFFFFFFF


HELPERS = {
    Helper.MAP_LOOKUP_ELEM: _helper_map_lookup,
    Helper.MAP_UPDATE_ELEM: _helper_map_update,
    Helper.MAP_DELETE_ELEM: _helper_map_delete,
    Helper.KTIME_GET_NS: _helper_ktime,
    Helper.GET_PRANDOM_U32: _helper_prandom,
    Helper.REDIRECT: _helper_redirect,
    Helper.REDIRECT_MAP: _helper_redirect_map,
    Helper.XDP_ADJUST_HEAD: _helper_adjust_head,
    Helper.CSUM_DIFF: _helper_csum_diff,
}

HELPER_IDS = frozenset(int(h) for h in HELPERS)
