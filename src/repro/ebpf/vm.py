"""The eBPF interpreter.

Registers hold either 64-bit scalars or tagged :class:`Pointer` values into
named memory regions (packet data, the 512-byte stack, exposed map values,
the xdp_md context).  Every executed instruction charges ``ebpf_insn_ns``
to the attached :class:`~repro.sim.cpu.ExecContext` — this is the sandbox
interpretation overhead that makes the eBPF datapath 10–20 % slower than
native kernel code (§2.2.2) and makes XDP program complexity cost
throughput (§5.4, Table 5).

Runtime faults (out-of-bounds access, bad pointer arithmetic) raise
:class:`VmFault`; the XDP hook translates a fault into ``XDP_ABORTED``.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.ebpf.helpers import HELPERS
from repro.ebpf.isa import MEM_WIDTHS, Insn, to_s64, to_u64
from repro.ebpf.maps import BpfMap
from repro.ebpf.program import Program
from repro.ebpf.verifier import STACK_SIZE
from repro.sim import trace as _trace
from repro.sim.cpu import ExecContext
from repro.sim.rng import make_rng


class VmFault(Exception):
    """A runtime safety violation; the program is aborted."""


class Pointer(NamedTuple):
    region: str
    offset: int


CTX_REGION = "ctx"
PKT_REGION = "pkt"
STACK_REGION = "stack"

#: xdp_md field offsets (as in the real uapi struct).
CTX_DATA = 0
CTX_DATA_END = 4
CTX_DATA_META = 8
CTX_INGRESS_IFINDEX = 12
CTX_RX_QUEUE_INDEX = 16
CTX_LEN = 20


class EbpfVm:
    """Interprets one program run over one packet/context."""

    def __init__(
        self,
        program: Program,
        exec_ctx: Optional[ExecContext] = None,
        ktime_ns: int = 0,
    ) -> None:
        if not program.verified:
            raise VmFault(
                f"program {program.name!r} was not verified before running"
            )
        self.program = program
        self.exec_ctx = exec_ctx
        self.ktime_ns = ktime_ns
        self._rng = None
        self.redirect_target: Optional[Tuple] = None
        self.insns_executed = 0
        self.helper_calls = 0
        self.touched_pkt_data = False
        #: Outcome of the most recent :meth:`run`, exposed so the XDP
        #: layer can memoize and later re-charge an identical run.
        self.last_executed = 0
        self.last_helper_calls = 0
        self.last_charge_ns = 0.0
        self._regs: List[object] = [0] * 11
        self._regions: Dict[str, bytearray] = {
            STACK_REGION: bytearray(STACK_SIZE)
        }
        self._pkt: bytearray = bytearray()
        self._map_values: List[Tuple[BpfMap, bytes, str, bytes]] = []
        self._headroom = 0

    # ------------------------------------------------------------------
    # Register / memory model (used by helpers too).
    # ------------------------------------------------------------------
    @property
    def rng(self):
        # Lazy: seeding a Random is far more expensive than most program
        # runs, and only the prandom helper ever draws from it.  The seed
        # depends solely on the program name, so the stream is unchanged.
        rng = self._rng
        if rng is None:
            rng = self._rng = make_rng("ebpf-prandom", self.program.name)
        return rng

    def reg(self, index: int) -> object:
        return self._regs[index]

    def scalar_from_reg(self, index: int) -> int:
        value = self._regs[index]
        if isinstance(value, Pointer):
            raise VmFault(f"r{index} holds a pointer where a scalar is needed")
        return to_u64(int(value))

    def scalar_signed_from_reg(self, index: int) -> int:
        return to_s64(self.scalar_from_reg(index))

    def map_from_reg(self, index: int) -> BpfMap:
        value = self._regs[index]
        if not isinstance(value, BpfMap):
            raise VmFault(f"r{index} does not hold a map handle")
        return value

    def _region_bytes(self, name: str) -> bytearray:
        if name == PKT_REGION:
            return self._pkt
        try:
            return self._regions[name]
        except KeyError:
            raise VmFault(f"dangling pointer into region {name!r}") from None

    def read_mem_via_pointer(self, ptr: object, size: int) -> bytearray:
        if not isinstance(ptr, Pointer):
            raise VmFault("memory access through a non-pointer")
        buf = self._region_bytes(ptr.region)
        if ptr.offset < 0 or ptr.offset + size > len(buf):
            raise VmFault(
                f"out-of-bounds read {ptr.region}[{ptr.offset}:{ptr.offset + size}]"
                f" (region size {len(buf)})"
            )
        return buf[ptr.offset : ptr.offset + size]

    def write_mem_via_pointer(self, ptr: object, data: bytes) -> None:
        if not isinstance(ptr, Pointer):
            raise VmFault("memory write through a non-pointer")
        if ptr.region == CTX_REGION:
            raise VmFault("the context is read-only")
        buf = self._region_bytes(ptr.region)
        if ptr.offset < 0 or ptr.offset + len(data) > len(buf):
            raise VmFault(
                f"out-of-bounds write {ptr.region}[{ptr.offset}:"
                f"{ptr.offset + len(data)}]"
            )
        buf[ptr.offset : ptr.offset + len(data)] = data

    def expose_map_value(self, bpf_map: BpfMap, key: bytes, value: bytes) -> Pointer:
        """Give the program a writable view of a map value."""
        name = f"mapval{len(self._map_values)}"
        self._regions[name] = bytearray(value)
        self._map_values.append((bpf_map, key, name, bytes(value)))
        return Pointer(name, 0)

    def adjust_pkt_head(self, delta: int) -> bool:
        """bpf_xdp_adjust_head: grow (delta<0) or shrink headroom."""
        if delta < 0:
            grow = -delta
            if grow > 256 - self._headroom:
                return False
            self._pkt[:0] = bytes(grow)
            self._headroom += grow
        else:
            if delta >= len(self._pkt):
                return False
            del self._pkt[:delta]
            self._headroom = max(0, self._headroom - delta)
        return True

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(
        self,
        pkt_data: bytes,
        ingress_ifindex: int = 0,
        rx_queue_index: int = 0,
    ) -> int:
        """Execute the program over a packet; returns r0 (the verdict)."""
        from repro.sim.costs import DEFAULT_COSTS

        costs = DEFAULT_COSTS
        self._pkt = bytearray(pkt_data)
        self._regions[CTX_REGION] = bytearray(CTX_LEN)
        self._ctx_meta = (ingress_ifindex, rx_queue_index)
        self._regs = [0] * 11
        self._regs[1] = Pointer(CTX_REGION, 0)
        self._regs[10] = Pointer(STACK_REGION, STACK_SIZE)
        self.redirect_target = None

        insns = self.program.insns
        decoded = decoded_insns(self.program)
        regs = self._regs
        pc = 0
        executed = 0
        helpers_before = self.helper_calls
        helper_cost = 0.0
        n = len(insns)
        while pc < n:
            kind, dst, src, arg, imm, aux = decoded[pc]
            executed += 1
            if kind == _K_ALU_IMM:
                regs[dst] = alu(aux, regs[dst], imm)
                pc += 1
            elif kind == _K_LDX:
                regs[dst] = self._load(regs[src], arg, aux)
                pc += 1
            elif kind == _K_JMP_IMM:
                pc = arg if branch_taken(aux, regs[dst], imm) else pc + 1
            elif kind == _K_ALU_REG:
                regs[dst] = alu(aux, regs[dst], regs[src])
                pc += 1
            elif kind == _K_JMP_REG:
                pc = arg if branch_taken(aux, regs[dst], regs[src]) else pc + 1
            elif kind == _K_STX:
                value = self.scalar_from_reg(src) & aux[1]
                self._store(regs[dst], arg, aux[0], value)
                pc += 1
            elif kind == _K_CALL:
                helper = HELPERS[imm]
                regs[0] = helper(self)
                self.helper_calls += 1
                helper_cost += costs.ebpf_helper_ns
                if imm == 1:  # map lookup
                    helper_cost += costs.ebpf_map_lookup_ns
                elif imm in (2, 3):
                    helper_cost += costs.ebpf_map_update_ns
                pc += 1
            elif kind == _K_EXIT:
                break
            elif kind == _K_JA:
                pc = arg
            elif kind == _K_ST:
                self._store(regs[dst], arg, aux[0], aux[1])
                pc += 1
            elif kind == _K_NEG:
                regs[dst] = to_u64(-self.scalar_from_reg(dst))
                pc += 1
            elif kind == _K_END:
                regs[dst] = self.scalar_from_reg(dst) & aux
                pc += 1
            elif kind == _K_LDMAP:
                regs[dst] = self.program.maps[imm]
                pc += 1
            else:
                pc = self._step(insns[pc], pc)

        self.insns_executed += executed
        self.last_executed = executed
        self.last_helper_calls = self.helper_calls - helpers_before
        self.last_charge_ns = executed * costs.ebpf_insn_ns + helper_cost
        if self.exec_ctx is not None:
            self.exec_ctx.charge(self.last_charge_ns, label="ebpf")
        rec = _trace.ACTIVE
        if rec is not None:
            rec.count("ebpf.insns_retired", executed)
            if self.last_helper_calls:
                rec.count("ebpf.helper_calls", self.last_helper_calls)
            rec.count("ebpf.runs")
        self._flush_map_values()
        verdict = self._regs[0]
        if isinstance(verdict, Pointer):
            raise VmFault("program returned a pointer")
        return to_u64(int(verdict)) & 0xFFFFFFFF

    def pkt_bytes(self) -> bytes:
        """The (possibly rewritten) packet after a run."""
        return bytes(self._pkt)

    def _flush_map_values(self) -> None:
        for bpf_map, key, region, original in self._map_values:
            buf = self._regions.pop(region, None)
            # Only write back values the program actually modified: the
            # write-back of an untouched view is a no-op, and skipping it
            # keeps read-only lookups from bumping the map version.
            if buf is not None and bytes(buf) != original:
                bpf_map.update(key, bytes(buf))
        self._map_values.clear()

    # ------------------------------------------------------------------
    def _step(self, insn: Insn, pc: int) -> int:
        op = insn.op
        regs = self._regs

        if op == "ld_map":
            regs[insn.dst] = self.program.maps[insn.imm]
            return pc + 1
        if op == "ja":
            return pc + 1 + insn.off

        base, _, mode = op.rpartition("_")
        if mode in ("imm", "reg") and base in (
            "jeq", "jne", "jgt", "jge", "jlt", "jle", "jset", "jsgt", "jsge",
        ):
            lhs = regs[insn.dst]
            rhs = insn.imm if mode == "imm" else regs[insn.src]
            if self._branch_taken(base, lhs, rhs):
                return pc + 1 + insn.off
            return pc + 1

        if mode in ("imm", "reg") and base in (
            "add", "sub", "mul", "div", "mod", "and", "or", "xor",
            "lsh", "rsh", "arsh", "mov",
        ):
            rhs = insn.imm if mode == "imm" else regs[insn.src]
            regs[insn.dst] = self._alu(base, regs[insn.dst], rhs)
            return pc + 1
        if op == "neg":
            regs[insn.dst] = to_u64(-self.scalar_from_reg(insn.dst))
            return pc + 1
        if op in ("be", "le"):
            # Our loads already produce host-order scalars from network-order
            # bytes where the program used ldxh/ldxw on packet data; the
            # byteswap narrows to the requested width (the observable effect
            # programs rely on after bpf_ntohs-style patterns).
            width = insn.imm
            regs[insn.dst] = self.scalar_from_reg(insn.dst) & ((1 << width) - 1)
            return pc + 1

        if op.startswith("ldx"):
            width = MEM_WIDTHS[op[3:]]
            regs[insn.dst] = self._load(regs[insn.src], insn.off, width)
            return pc + 1
        if op.startswith("stx"):
            width = MEM_WIDTHS[op[3:]]
            value = self.scalar_from_reg(insn.src) & ((1 << (8 * width)) - 1)
            self._store(regs[insn.dst], insn.off, width, value)
            return pc + 1
        if op.startswith("st"):
            width = MEM_WIDTHS[op[2:]]
            value = to_u64(insn.imm) & ((1 << (8 * width)) - 1)
            self._store(regs[insn.dst], insn.off, width, value)
            return pc + 1

        raise VmFault(f"unimplemented opcode {op!r}")  # pragma: no cover

    def _branch_taken(self, pred: str, lhs: object, rhs: object) -> bool:
        return branch_taken(pred, lhs, rhs)

    def _alu(self, op: str, lhs: object, rhs: object) -> object:
        return alu(op, lhs, rhs)

    def _load(self, ptr: object, off: int, width: int) -> object:
        if not isinstance(ptr, Pointer):
            raise VmFault("load through a non-pointer")
        if ptr.region == CTX_REGION:
            return self._load_ctx(ptr.offset + off)
        if ptr.region == PKT_REGION and not self.touched_pkt_data:
            # First touch of DMA'd data: the cache miss of §5.4 task B.
            self.touched_pkt_data = True
            if self.exec_ctx is not None:
                from repro.sim.costs import DEFAULT_COSTS as _C

                self.exec_ctx.charge(_C.dma_first_touch_ns,
                                     label="dma_first_touch")
        buf = self._region_bytes(ptr.region)
        start = ptr.offset + off
        if start < 0 or start + width > len(buf):
            raise VmFault(
                f"out-of-bounds load {ptr.region}[{start}:{start + width}] "
                f"(size {len(buf)})"
            )
        # Packet data is network order; stack/map data is little-endian
        # (host order), matching how real programs use ldx on each.
        order = "big" if ptr.region == PKT_REGION else "little"
        return int.from_bytes(buf[start : start + width], order)

    def _load_ctx(self, offset: int) -> object:
        if offset == CTX_DATA:
            return Pointer(PKT_REGION, 0)
        if offset == CTX_DATA_END:
            return Pointer(PKT_REGION, len(self._pkt))
        if offset == CTX_DATA_META:
            return Pointer(PKT_REGION, 0)
        if offset == CTX_INGRESS_IFINDEX:
            return self._ctx_meta[0]
        if offset == CTX_RX_QUEUE_INDEX:
            return self._ctx_meta[1]
        raise VmFault(f"bad ctx offset {offset}")

    def _store(self, ptr: object, off: int, width: int, value: int) -> None:
        if not isinstance(ptr, Pointer):
            raise VmFault("store through a non-pointer")
        order = "big" if ptr.region == PKT_REGION else "little"
        self.write_mem_via_pointer(
            Pointer(ptr.region, ptr.offset + off),
            value.to_bytes(width, order),
        )


# ----------------------------------------------------------------------
# Shared semantic primitives.  Module-level so the JIT (repro.ebpf.jit)
# uses the *same* code as the interpreter for every case its generated
# fast paths do not inline — equivalence by construction, not by copy.
# ----------------------------------------------------------------------
def branch_taken(pred: str, lhs: object, rhs: object) -> bool:
    if isinstance(lhs, Pointer) and isinstance(rhs, Pointer):
        if lhs.region != rhs.region:
            raise VmFault("comparing pointers into different regions")
        a, b = lhs.offset, rhs.offset
    else:
        # Pointer-vs-scalar comparisons are NULL checks in real programs;
        # a live pointer must compare as non-zero even at offset 0, so
        # give pointers (and map handles) a large synthetic base.
        def as_value(v: object) -> int:
            if isinstance(v, Pointer):
                return (1 << 48) + v.offset
            if isinstance(v, BpfMap):
                return 1 << 49
            return to_u64(int(v))  # type: ignore[arg-type]

        a, b = as_value(lhs), as_value(rhs)
    if pred == "jeq":
        return a == b
    if pred == "jne":
        return a != b
    if pred == "jgt":
        return a > b
    if pred == "jge":
        return a >= b
    if pred == "jlt":
        return a < b
    if pred == "jle":
        return a <= b
    if pred == "jset":
        return bool(a & b)
    if pred == "jsgt":
        return to_s64(a) > to_s64(b)
    if pred == "jsge":
        return to_s64(a) >= to_s64(b)
    raise VmFault(f"bad predicate {pred}")  # pragma: no cover


def alu(op: str, lhs: object, rhs: object) -> object:
    if op == "mov":
        return rhs
    if isinstance(lhs, Pointer):
        if isinstance(rhs, Pointer):
            if op == "sub" and lhs.region == rhs.region:
                return to_u64(lhs.offset - rhs.offset)
            raise VmFault("illegal pointer/pointer arithmetic")
        if op == "add":
            return Pointer(lhs.region, lhs.offset + to_s64(int(rhs)))
        if op == "sub":
            return Pointer(lhs.region, lhs.offset - to_s64(int(rhs)))
        raise VmFault(f"illegal pointer arithmetic: {op}")
    if isinstance(rhs, Pointer):
        if op == "add":
            return Pointer(rhs.region, rhs.offset + to_s64(int(lhs)))
        raise VmFault(f"illegal pointer arithmetic: {op}")
    a, b = to_u64(int(lhs)), to_u64(int(rhs))
    if op == "add":
        return to_u64(a + b)
    if op == "sub":
        return to_u64(a - b)
    if op == "mul":
        return to_u64(a * b)
    if op == "div":
        return 0 if b == 0 else a // b  # eBPF defines div-by-zero as 0
    if op == "mod":
        return a if b == 0 else a % b
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "lsh":
        return to_u64(a << (b & 63))
    if op == "rsh":
        return a >> (b & 63)
    if op == "arsh":
        return to_u64(to_s64(a) >> (b & 63))
    raise VmFault(f"bad ALU op {op}")  # pragma: no cover


# ----------------------------------------------------------------------
# Per-program instruction decode cache.
#
# The mnemonic strings are convenient to write and verify but expensive
# to re-parse on every executed instruction (rpartition + set membership
# per step).  Decode once per Program into flat tuples
# ``(kind, dst, src, arg, imm, aux)`` — ``arg`` is the resolved branch
# target for jumps and the memory offset for loads/stores — and cache on
# the Program keyed by the identity of its insns tuple, so swapping a
# program's instructions can never replay a stale decode.
# ----------------------------------------------------------------------
(
    _K_ALU_IMM,
    _K_LDX,
    _K_JMP_IMM,
    _K_ALU_REG,
    _K_JMP_REG,
    _K_STX,
    _K_CALL,
    _K_EXIT,
    _K_JA,
    _K_ST,
    _K_NEG,
    _K_END,
    _K_LDMAP,
    _K_OTHER,
) = range(14)

_JMP_PREDS = frozenset(
    {"jeq", "jne", "jgt", "jge", "jlt", "jle", "jset", "jsgt", "jsge"}
)
_ALU_BASES = frozenset(
    {"add", "sub", "mul", "div", "mod", "and", "or", "xor",
     "lsh", "rsh", "arsh", "mov"}
)


def _decode_insn(insn: Insn, pc: int) -> Tuple:
    op = insn.op
    if op == "exit":
        return (_K_EXIT, 0, 0, 0, 0, None)
    if op == "call":
        return (_K_CALL, 0, 0, 0, insn.imm, None)
    if op == "ja":
        return (_K_JA, 0, 0, pc + 1 + insn.off, 0, None)
    if op == "ld_map":
        return (_K_LDMAP, insn.dst, 0, 0, insn.imm, None)
    if op == "neg":
        return (_K_NEG, insn.dst, 0, 0, 0, None)
    if op in ("be", "le"):
        return (_K_END, insn.dst, 0, 0, insn.imm, (1 << insn.imm) - 1)
    base, _, mode = op.rpartition("_")
    if mode in ("imm", "reg") and base in _JMP_PREDS:
        kind = _K_JMP_IMM if mode == "imm" else _K_JMP_REG
        return (kind, insn.dst, insn.src, pc + 1 + insn.off, insn.imm, base)
    if mode in ("imm", "reg") and base in _ALU_BASES:
        kind = _K_ALU_IMM if mode == "imm" else _K_ALU_REG
        return (kind, insn.dst, insn.src, 0, insn.imm, base)
    if op.startswith("ldx"):
        return (_K_LDX, insn.dst, insn.src, insn.off, 0, MEM_WIDTHS[op[3:]])
    if op.startswith("stx"):
        width = MEM_WIDTHS[op[3:]]
        mask = (1 << (8 * width)) - 1
        return (_K_STX, insn.dst, insn.src, insn.off, 0, (width, mask))
    if op.startswith("st"):
        width = MEM_WIDTHS[op[2:]]
        value = to_u64(insn.imm) & ((1 << (8 * width)) - 1)
        return (_K_ST, insn.dst, 0, insn.off, insn.imm, (width, value))
    return (_K_OTHER, 0, 0, 0, 0, None)


def decoded_insns(program: Program) -> Tuple[Tuple, ...]:
    """Decoded form of ``program.insns``, cached on the program object."""
    cached = getattr(program, "_decoded_cache", None)
    if cached is not None and cached[0] is program.insns:
        return cached[1]
    decoded = tuple(
        _decode_insn(insn, pc) for pc, insn in enumerate(program.insns)
    )
    program._decoded_cache = (program.insns, decoded)
    return decoded
