"""eBPF maps: the only mutable state an eBPF program may touch.

The paper leans on maps twice: Table 5's task C does an "eBPF map table
lookup", and footnote 1 records that implementing the megaflow cache as a
new map type was rejected by kernel maintainers — so our map set contains
only the standard types a real 5.x kernel offers.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple


class MapError(Exception):
    pass


class BpfMap:
    """Base class: fixed key/value sizes, bounded capacity."""

    map_type = "base"

    def __init__(self, key_size: int, value_size: int, max_entries: int) -> None:
        if key_size <= 0 or value_size <= 0 or max_entries <= 0:
            raise ValueError("map dimensions must be positive")
        self.key_size = key_size
        self.value_size = value_size
        self.max_entries = max_entries
        #: Bumped by every successful mutation.  The XDP layer uses it to
        #: detect that a program run left its maps untouched (a run that
        #: wrote a map is never memoized).
        self.version = 0

    def _check_key(self, key: bytes) -> None:
        if len(key) != self.key_size:
            raise MapError(
                f"key size {len(key)} != declared {self.key_size}"
            )

    def _check_value(self, value: bytes) -> None:
        if len(value) != self.value_size:
            raise MapError(
                f"value size {len(value)} != declared {self.value_size}"
            )

    def lookup(self, key: bytes) -> Optional[bytes]:
        raise NotImplementedError

    def update(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError

    def delete(self, key: bytes) -> None:
        raise NotImplementedError


class HashMap(BpfMap):
    """BPF_MAP_TYPE_HASH."""

    map_type = "hash"

    def __init__(self, key_size: int, value_size: int, max_entries: int) -> None:
        super().__init__(key_size, value_size, max_entries)
        self._table: Dict[bytes, bytes] = {}

    def lookup(self, key: bytes) -> Optional[bytes]:
        self._check_key(key)
        return self._table.get(key)

    def update(self, key: bytes, value: bytes) -> None:
        self._check_key(key)
        self._check_value(value)
        if key not in self._table and len(self._table) >= self.max_entries:
            raise MapError("hash map full (E2BIG)")
        self._table[key] = bytes(value)
        self.version += 1

    def delete(self, key: bytes) -> None:
        self._check_key(key)
        if key not in self._table:
            raise MapError("no such key (ENOENT)")
        del self._table[key]
        self.version += 1

    def __len__(self) -> int:
        return len(self._table)

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        return iter(list(self._table.items()))


class ArrayMap(BpfMap):
    """BPF_MAP_TYPE_ARRAY: keys are u32 indexes; slots always exist."""

    map_type = "array"

    def __init__(self, value_size: int, max_entries: int) -> None:
        super().__init__(4, value_size, max_entries)
        self._slots = [bytes(value_size) for _ in range(max_entries)]

    def _index(self, key: bytes) -> int:
        self._check_key(key)
        return int.from_bytes(key, "little")

    def lookup(self, key: bytes) -> Optional[bytes]:
        idx = self._index(key)
        if idx >= self.max_entries:
            return None
        return self._slots[idx]

    def update(self, key: bytes, value: bytes) -> None:
        idx = self._index(key)
        self._check_value(value)
        if idx >= self.max_entries:
            raise MapError("array index out of range (E2BIG)")
        self._slots[idx] = bytes(value)
        self.version += 1

    def delete(self, key: bytes) -> None:
        raise MapError("array map entries cannot be deleted (EINVAL)")


class LpmTrieMap(BpfMap):
    """BPF_MAP_TYPE_LPM_TRIE over big-endian keys (prefix, data).

    Key bytes are ``u32 prefixlen (little-endian, as in the kernel ABI)``
    followed by ``key_size - 4`` bytes of data.
    """

    map_type = "lpm_trie"

    def __init__(self, data_size: int, value_size: int, max_entries: int) -> None:
        super().__init__(4 + data_size, value_size, max_entries)
        self.data_size = data_size
        self._entries: Dict[Tuple[int, bytes], bytes] = {}

    def _split(self, key: bytes) -> Tuple[int, bytes]:
        self._check_key(key)
        prefix_len = int.from_bytes(key[:4], "little")
        if prefix_len > self.data_size * 8:
            raise MapError("prefix longer than key data")
        return prefix_len, key[4:]

    @staticmethod
    def _prefix_bits(data: bytes, prefix_len: int) -> int:
        value = int.from_bytes(data, "big")
        width = len(data) * 8
        return value >> (width - prefix_len) if prefix_len else 0

    def update(self, key: bytes, value: bytes) -> None:
        prefix_len, data = self._split(key)
        self._check_value(value)
        entry = (prefix_len, self._prefix_bits(data, prefix_len).to_bytes(8, "big"))
        if entry not in self._entries and len(self._entries) >= self.max_entries:
            raise MapError("LPM trie full (E2BIG)")
        self._entries[entry] = bytes(value)
        self.version += 1

    def lookup(self, key: bytes) -> Optional[bytes]:
        """Longest-prefix match: the key's prefixlen is the upper bound."""
        max_len, data = self._split(key)
        for plen in range(max_len, -1, -1):
            entry = (plen, self._prefix_bits(data, plen).to_bytes(8, "big"))
            value = self._entries.get(entry)
            if value is not None:
                return value
        return None

    def delete(self, key: bytes) -> None:
        prefix_len, data = self._split(key)
        entry = (prefix_len, self._prefix_bits(data, prefix_len).to_bytes(8, "big"))
        if entry not in self._entries:
            raise MapError("no such key (ENOENT)")
        del self._entries[entry]
        self.version += 1


class DevMap(BpfMap):
    """BPF_MAP_TYPE_DEVMAP: ifindex slots for XDP_REDIRECT (§3.4 path C)."""

    map_type = "devmap"

    def __init__(self, max_entries: int) -> None:
        super().__init__(4, 4, max_entries)
        self._slots: Dict[int, int] = {}

    def set_dev(self, slot: int, ifindex: int) -> None:
        if slot >= self.max_entries:
            raise MapError("devmap slot out of range")
        self._slots[slot] = ifindex
        self.version += 1

    def lookup(self, key: bytes) -> Optional[bytes]:
        self._check_key(key)
        slot = int.from_bytes(key, "little")
        ifindex = self._slots.get(slot)
        if ifindex is None:
            return None
        return ifindex.to_bytes(4, "little")

    def get_dev(self, slot: int) -> Optional[int]:
        return self._slots.get(slot)

    def update(self, key: bytes, value: bytes) -> None:
        self._check_key(key)
        self._check_value(value)
        self.set_dev(
            int.from_bytes(key, "little"), int.from_bytes(value, "little")
        )

    def delete(self, key: bytes) -> None:
        self._check_key(key)
        slot = int.from_bytes(key, "little")
        if slot not in self._slots:
            raise MapError("no such key (ENOENT)")
        del self._slots[slot]
        self.version += 1


class XskMap(DevMap):
    """BPF_MAP_TYPE_XSKMAP: queue-index -> AF_XDP socket (§3.1).

    Slots hold opaque XSK identifiers; the XDP hook resolves them to the
    actual socket objects registered with the driver.
    """

    map_type = "xskmap"
