"""An eBPF virtual machine with verifier, maps and XDP semantics.

The paper's §2.2.2 explores replacing the OVS kernel module with an eBPF
program and rejects it for performance; §3 uses a *tiny* eBPF program at the
XDP hook to feed AF_XDP; §5.4 measures how added XDP program complexity
costs throughput.  To reproduce those experiments faithfully we implement a
real (subset) eBPF machine:

* a register ISA (:mod:`repro.ebpf.isa`) and assembler
  (:mod:`repro.ebpf.program`),
* a verifier (:mod:`repro.ebpf.verifier`) that enforces the sandbox limits
  the paper complains about — program size cap and **no loops**,
* an interpreter (:mod:`repro.ebpf.vm`) that charges ``ebpf_insn_ns`` per
  executed instruction,
* maps and helpers (:mod:`repro.ebpf.maps`, :mod:`repro.ebpf.helpers`),
* XDP attach/return semantics (:mod:`repro.ebpf.xdp`).
"""

from repro.ebpf.isa import Insn, Reg
from repro.ebpf.maps import ArrayMap, DevMap, HashMap, LpmTrieMap
from repro.ebpf.program import Program, ProgramBuilder
from repro.ebpf.verifier import VerifierError, verify
from repro.ebpf.vm import EbpfVm, VmFault
from repro.ebpf.xdp import XdpAction, XdpContext

__all__ = [
    "Insn",
    "Reg",
    "Program",
    "ProgramBuilder",
    "VerifierError",
    "verify",
    "EbpfVm",
    "VmFault",
    "ArrayMap",
    "HashMap",
    "LpmTrieMap",
    "DevMap",
    "XdpAction",
    "XdpContext",
]
