"""The in-kernel verifier.

This enforces the sandbox restrictions the paper's §2.2.2 describes as the
reason an eBPF OVS datapath "lacks some OVS datapath features":

* program size is capped (``MAX_INSNS``),
* **no loops**: every branch must jump strictly forward,
* only whitelisted opcodes, valid registers, and declared helper/map ids,
* r10 (the frame pointer) is read-only,
* every path must reach ``exit`` (guaranteed by forward-only branches plus
  a final-instruction check),
* stack accesses must stay within the 512-byte frame.

Runtime memory bounds against packet data are enforced by the interpreter
(:class:`repro.ebpf.vm.EbpfVm`), mirroring how the real verifier's
data_end-bounds proofs manifest as safe behaviour.
"""

from __future__ import annotations

from repro.ebpf.helpers import HELPER_IDS
from repro.ebpf.isa import ALL_OPS, LDX_OPS, ST_OPS, STX_OPS, Insn, Reg
from repro.ebpf.program import Program
from repro.sim import trace

#: Instruction-count cap.  4096 was the classic limit (the one in force for
#: unprivileged programs and the era the eBPF datapath prototype fought).
MAX_INSNS = 4096

STACK_SIZE = 512


class VerifierError(Exception):
    """The program was rejected; it can never attach."""


def _check_reg(value: int, what: str, insn_idx: int) -> None:
    if not 0 <= value <= 10:
        raise VerifierError(f"insn {insn_idx}: bad {what} register r{value}")


def verify(program: Program) -> Program:
    """Verify ``program`` in place; returns it with ``verified=True``."""
    insns = program.insns
    if not insns:
        raise VerifierError("empty program")
    if len(insns) > MAX_INSNS:
        raise VerifierError(
            f"program too large: {len(insns)} > {MAX_INSNS} instructions"
        )
    for idx, insn in enumerate(insns):
        _verify_insn(program, insn, idx, len(insns))
    if insns[-1].op not in ("exit", "ja"):
        raise VerifierError("control can fall off the end of the program")
    program.verified = True
    trace.count("ebpf.programs_verified")
    trace.count("ebpf.insns_verified", len(insns))
    return program


def _verify_insn(program: Program, insn: Insn, idx: int, n: int) -> None:
    if insn.op not in ALL_OPS:
        raise VerifierError(f"insn {idx}: unknown opcode {insn.op!r}")
    _check_reg(insn.dst, "dst", idx)
    _check_reg(insn.src, "src", idx)

    writes_dst = (
        insn.op.endswith("_imm")
        and not insn.op.startswith(("jeq", "jne", "jgt", "jge", "jlt", "jle", "jset", "jsgt", "jsge"))
        or insn.op.endswith("_reg")
        and not insn.op.startswith(("jeq", "jne", "jgt", "jge", "jlt", "jle", "jset", "jsgt", "jsge"))
        or insn.op in LDX_OPS
        or insn.op in ("neg", "be", "le", "ld_map")
    )
    if writes_dst and insn.dst == Reg.R10:
        raise VerifierError(f"insn {idx}: r10 is read-only")

    is_branch = insn.op == "ja" or (
        insn.op.rsplit("_", 1)[0]
        in ("jeq", "jne", "jgt", "jge", "jlt", "jle", "jset", "jsgt", "jsge")
        and insn.op.endswith(("_imm", "_reg"))
    )
    if is_branch:
        # A branch offset is relative to the *next* instruction, so 0 jumps
        # to the following insn (legal no-op) and anything negative is a
        # back-edge: the loop the sandbox forbids.
        if insn.off < 0:
            raise VerifierError(
                f"insn {idx}: back-edge (offset {insn.off}) — "
                "loops are not allowed"
            )
        target = idx + 1 + insn.off
        if target >= n:
            raise VerifierError(f"insn {idx}: jump past the end ({target})")

    if insn.op == "call" and insn.imm not in HELPER_IDS:
        raise VerifierError(f"insn {idx}: unknown helper id {insn.imm}")

    if insn.op == "ld_map" and insn.imm not in program.maps:
        raise VerifierError(f"insn {idx}: undeclared map id {insn.imm}")

    if insn.op in LDX_OPS or insn.op in STX_OPS or insn.op in ST_OPS:
        # Static stack-bounds check: accesses relative to r10 must stay in
        # the frame.  (Packet-pointer bounds are dynamic; the VM checks.)
        base = insn.dst if (insn.op in STX_OPS or insn.op in ST_OPS) else insn.src
        if base == Reg.R10:
            if insn.off >= 0 or insn.off < -STACK_SIZE:
                raise VerifierError(
                    f"insn {idx}: stack access at r10{insn.off:+d} outside "
                    f"the {STACK_SIZE}-byte frame"
                )
