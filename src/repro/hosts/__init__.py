"""Hosts, VMs, containers and testbeds.

These compose the substrates into the machines the paper's evaluation
runs on: back-to-back Xeon servers with multi-queue NICs, VMs attached by
tap or vhostuser, and containers in network namespaces joined by veth
pairs.
"""

from repro.hosts.host import Host
from repro.hosts.vm import QemuTapBackend, VirtualMachine
from repro.hosts.container import Container
from repro.hosts.testbed import Testbed

__all__ = ["Host", "VirtualMachine", "QemuTapBackend", "Container", "Testbed"]
