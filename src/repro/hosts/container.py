"""Containers: a network namespace plus a veth pair (§3.4)."""

from __future__ import annotations

from repro.hosts.host import Host
from repro.kernel.namespace import NetNamespace
from repro.kernel.veth import VethDevice, VethPair


class Container:
    """A namespace joined to the host by a veth pair.

    ``inside`` (eth0 in the container) has the container's IP and stack;
    ``outside`` (vethX on the host) is what gets plugged into OVS or the
    kernel bridge — or targeted by XDP_REDIRECT (Figure 5 path C).
    """

    def __init__(self, host: Host, name: str, ip: str,
                 prefix_len: int = 24) -> None:
        self.host = host
        self.name = name
        self.ip = ip
        self.ns: NetNamespace = host.kernel.add_namespace(name)
        pair = VethPair(f"veth-{name}", "eth0",
                        mac_a=Host._alloc_mac(), mac_b=Host._alloc_mac())
        self.outside: VethDevice = pair.a
        self.inside: VethDevice = pair.b
        host.kernel.init_ns.register(self.outside)
        self.ns.register(self.inside)
        self.outside.set_up()
        self.inside.set_up()
        self.ns.stack.attach(self.inside)
        self.ns.add_address("eth0", ip, prefix_len)

    @property
    def stack(self):
        return self.ns.stack
