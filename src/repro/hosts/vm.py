"""Virtual machines.

A VM is a guest kernel (whose packet work shows up as GUEST time on host
CPUs, per Table 4) with a virtio NIC attached to the host one of two ways:

* **vhostuser** (path B of Figure 5): OVS serves the virtqueues directly;
* **tap** (path A): a QEMU backend shuttles frames between the virtio
  queues and a host tap device, paying syscalls and copies — the 2 µs
  ``sendto`` path.
"""

from __future__ import annotations

from typing import Optional

from repro.hosts.host import Host
from repro.kernel.kernel import Kernel
from repro.kernel.tap import TapDevice
from repro.net.addresses import MacAddress
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, ExecContext
from repro.vhost.vhostuser import VhostUserPort
from repro.vhost.virtio import VirtioNic


class QemuTapBackend:
    """QEMU's net=tap backend: virtio queues <-> a host tap fd.

    Runs in host USER context (it is the QEMU process); every frame in
    either direction is a read()/write() on the tap plus a copy.
    """

    def __init__(self, tap: TapDevice, guest_nic: VirtioNic,
                 ctx: ExecContext) -> None:
        self.tap = tap
        self.guest_nic = guest_nic
        self.ctx = ctx
        guest_nic.backend_polls = False  # interrupt-driven QEMU

    def pump(self, budget: int = 64) -> int:
        costs = DEFAULT_COSTS
        moved = 0
        # Host -> guest: tap user face -> virtio rx queue.  QEMU copies
        # the frame from its buffer into the guest's virtio buffers (on
        # top of the tap read's own kernel->user copy).
        for _ in range(budget):
            if self.tap.user_pending() == 0:
                break
            pkt = self.tap.user_read(self.ctx)
            if pkt is None:
                break
            self.ctx.charge(costs.virtqueue_op_ns, label="virtqueue")
            self.ctx.charge(costs.copy_cost(len(pkt)), label="qemu_copy")
            if self.guest_nic.rx_queue.push(pkt):
                moved += 1
        # Guest -> host: virtio tx queue -> tap user face (sendto each).
        for pkt in self.guest_nic.tx_queue.pop_batch(budget):
            self.ctx.charge(costs.virtqueue_op_ns, label="virtqueue")
            self.ctx.charge(costs.copy_cost(len(pkt)), label="qemu_copy")
            self.tap.user_write(pkt, self.ctx)
            moved += 1
        return moved


class VhostNetBackend:
    """vhost-net: the kernel worker thread serving a tap-attached VM.

    Unlike the legacy userspace QEMU shuttle, vhost-net moves frames
    between the tap queue and guest memory entirely in the kernel: one
    copy per direction, no per-packet syscall.  Its time is SYSTEM time
    on its own core (the ``vhost-<pid>`` kernel threads ``top`` shows).
    """

    def __init__(self, tap: TapDevice, guest_nic: VirtioNic,
                 ctx: ExecContext) -> None:
        self.tap = tap
        self.guest_nic = guest_nic
        self.ctx = ctx
        guest_nic.backend_polls = False

    def pump(self, budget: int = 64) -> int:
        costs = DEFAULT_COSTS
        moved = 0
        with self.ctx.as_category(CpuCategory.SYSTEM):
            # Host -> guest: tap queue -> guest rx ring (one copy).
            pushed = 0
            for _ in range(budget):
                if self.tap.user_pending() == 0:
                    break
                pkt = self.tap._to_user.popleft()
                self.ctx.charge(costs.virtqueue_op_ns, label="virtqueue")
                self.ctx.charge(costs.copy_cost(len(pkt)), label="vhost_copy")
                if self.guest_nic.rx_queue.push(pkt):
                    pushed += 1
            if pushed:
                # One guest interrupt per burst.
                self.ctx.charge(costs.virtqueue_kick_ns, label="guest_kick")
            moved += pushed
            # Guest -> host: guest tx ring -> the tap's kernel face.
            for pkt in self.guest_nic.tx_queue.pop_batch(budget):
                self.ctx.charge(costs.virtqueue_op_ns, label="virtqueue")
                self.ctx.charge(costs.copy_cost(len(pkt)), label="vhost_copy")
                self.tap.deliver(pkt, self.ctx)
                moved += 1
        return moved


class VirtualMachine:
    """A guest with its own kernel and one virtio interface."""

    def __init__(
        self,
        host: Host,
        name: str,
        ip: str,
        vcpu_core: int,
        prefix_len: int = 24,
        csum_offload: bool = True,
        tso: bool = True,
        mac: Optional[MacAddress] = None,
    ) -> None:
        self.host = host
        self.name = name
        self.vcpu_core = vcpu_core
        # Guest kernel time is GUEST time on the host CPUs.
        self.kernel = Kernel(host.cpu, clock=host.clock,
                             softirq_category=CpuCategory.GUEST)
        self.nic = VirtioNic(
            "eth0", mac or Host._alloc_mac(),
            csum_offload=csum_offload, tso=tso,
        )
        self.kernel.init_ns.register(self.nic)
        self.nic.set_up()
        self.kernel.init_ns.stack.attach(self.nic)
        self.kernel.init_ns.add_address("eth0", ip, prefix_len)
        self.ip = ip
        self.ctx = host.guest_ctx(vcpu_core, name=f"{name}-vcpu")
        self.tap: Optional[TapDevice] = None
        self.qemu: Optional[QemuTapBackend] = None
        self.vhost: Optional[VhostUserPort] = None
        host.pumpables.append(self.pump)

    # ------------------------------------------------------------------
    # Attachment modes.
    # ------------------------------------------------------------------
    def attach_vhostuser(self) -> VhostUserPort:
        """Path B: give OVS direct access to the virtqueues."""
        if self.vhost or self.tap:
            raise ValueError(f"{self.name} is already attached")
        self.vhost = VhostUserPort(f"vhost-{self.name}", self.nic)
        return self.vhost

    def attach_tap(self, qemu_core: int, vhost_net: bool = True) -> TapDevice:
        """Path A: a tap device on the host.

        With ``vhost_net`` (the production default) a kernel worker
        thread shuttles frames; without it, the legacy userspace QEMU
        backend pays a read/write syscall per frame.
        """
        if self.vhost or self.tap:
            raise ValueError(f"{self.name} is already attached")
        self.tap = TapDevice(f"tap-{self.name}", Host._alloc_mac())
        self.host.kernel.init_ns.register(self.tap)
        self.tap.set_up()
        if vhost_net:
            ctx = self.host.user_ctx(qemu_core, name=f"vhost-{self.name}")
            self.qemu = VhostNetBackend(self.tap, self.nic, ctx)
        else:
            qemu_ctx = self.host.user_ctx(qemu_core, name=f"qemu-{self.name}")
            self.qemu = QemuTapBackend(self.tap, self.nic, qemu_ctx)
        self.host.pumpables.append(self.qemu.pump)
        return self.tap

    # ------------------------------------------------------------------
    def pump(self, budget: int = 256) -> int:
        """Guest-side NAPI: deliver queued virtio rx frames to the guest
        stack, then drain any guest kernel work."""
        moved = self.nic.guest_service_rx(
            self.kernel.softirq_ctx(self.vcpu_core), budget=budget
        )
        moved += self.kernel.pump()
        return moved
