"""Back-to-back testbeds, like the paper's evaluation setups."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.hosts.host import Host
from repro.kernel.netdev import Wire
from repro.kernel.nic import NicFeatures


class Testbed:
    """Two servers connected NIC-to-NIC.

    §5.1 uses dual-port Intel X540 10 GbE; §5.2+ uses Mellanox
    ConnectX-6Dx 25 GbE.  ``dual_port=True`` wires two NIC pairs (for the
    loopback TRex configurations).
    """

    __test__ = False  # not a pytest test class, despite the name

    def __init__(
        self,
        link_gbps: float = 10.0,
        n_cpus: int = 16,
        n_queues: int = 1,
        dual_port: bool = False,
        features: Optional[NicFeatures] = None,
    ) -> None:
        self.link_gbps = link_gbps
        self.a = Host("host-a", n_cpus=n_cpus)
        self.b = Host("host-b", n_cpus=n_cpus)
        self.wires: List[Wire] = []
        ports = 2 if dual_port else 1
        for i in range(ports):
            nic_a = self.a.add_nic(f"ens{i + 1}", n_queues=n_queues,
                                   features=features)
            nic_b = self.b.add_nic(f"ens{i + 1}", n_queues=n_queues,
                                   features=features)
            self.wires.append(Wire(nic_a, nic_b, gbps=link_gbps))

    @property
    def hosts(self) -> Tuple[Host, Host]:
        return self.a, self.b

    def configure_underlay(self, subnet: str = "192.168.1") -> None:
        """Give each side an IP on the first link and prime ARP, the way
        a testbed is hand-configured before a run."""
        from repro.net.addresses import ip_to_int

        ip_a, ip_b = f"{subnet}.1", f"{subnet}.2"
        nic_a = self.a.nics["ens1"]
        nic_b = self.b.nics["ens1"]
        self.a.kernel.init_ns.add_address("ens1", ip_a, 24)
        self.b.kernel.init_ns.add_address("ens1", ip_b, 24)
        self.a.kernel.init_ns.neighbors.update(
            ip_to_int(ip_b), nic_b.mac, nic_a.ifindex, permanent=True)
        self.b.kernel.init_ns.neighbors.update(
            ip_to_int(ip_a), nic_a.mac, nic_b.ifindex, permanent=True)

    def pump(self, max_rounds: int = 500) -> int:
        """Drive both hosts to quiescence (control-plane interactions)."""
        total = 0
        for _ in range(max_rounds):
            moved = self.a.pump() + self.b.pump()
            total += moved
            if not moved:
                return total
        raise RuntimeError("testbed did not quiesce")

    def line_rate_mpps(self, frame_bytes: int) -> float:
        from repro.sim.stats import line_rate_mpps

        return line_rate_mpps(self.link_gbps, frame_bytes)
