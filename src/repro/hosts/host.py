"""A simulated server."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.kernel.kernel import Kernel
from repro.kernel.nic import NicFeatures, PhysicalNic
from repro.net.addresses import MacAddress
from repro.ovs.vswitchd import VSwitchd
from repro.sim.clock import Clock
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext


class Host:
    """One server: CPUs, a kernel, NICs, and optionally ovs-vswitchd.

    The paper's testbeds are 8-core/16-HT and 12-core Xeons; ``n_cpus``
    counts logical CPUs (hyperthreads), matching Table 4's units.
    """

    _mac_counter = 0x100000

    def __init__(self, name: str, n_cpus: int = 16) -> None:
        self.name = name
        self.cpu = CpuModel(n_cpus)
        self.clock: Clock = self.cpu.clock
        self.kernel = Kernel(self.cpu)
        self.nics: Dict[str, PhysicalNic] = {}
        self.vswitchd: Optional[VSwitchd] = None
        #: Callables invoked by pump() to move pended work (QEMU backends,
        #: PMD threads in control-plane mode, VM guests...).
        self.pumpables: List = []

    @classmethod
    def _alloc_mac(cls) -> MacAddress:
        cls._mac_counter += 1
        return MacAddress.local(cls._mac_counter)

    # ------------------------------------------------------------------
    def add_nic(
        self,
        name: str,
        n_queues: int = 1,
        features: Optional[NicFeatures] = None,
        mtu: int = 1500,
    ) -> PhysicalNic:
        nic = PhysicalNic(name, self._alloc_mac(), n_queues=n_queues,
                          features=features, mtu=mtu)
        self.kernel.init_ns.register(nic)
        nic.set_up()
        self.nics[name] = nic
        return nic

    def install_ovs(self, datapath_type: str = "netdev") -> VSwitchd:
        if self.vswitchd is not None:
            raise ValueError("ovs-vswitchd already running")
        self.vswitchd = VSwitchd(self.kernel, datapath_type=datapath_type)
        return self.vswitchd

    # ------------------------------------------------------------------
    def user_ctx(self, core: int, name: str = "") -> ExecContext:
        return ExecContext(self.cpu, core, CpuCategory.USER,
                           name=name or f"{self.name}-user{core}")

    def guest_ctx(self, core: int, name: str = "") -> ExecContext:
        return ExecContext(self.cpu, core, CpuCategory.GUEST,
                           name=name or f"{self.name}-guest{core}")

    # ------------------------------------------------------------------
    def pump(self, max_rounds: int = 200) -> int:
        """Drive all pended work to quiescence (control-plane helper).

        Used for multi-step interactions — ARP, TCP handshakes, OVSDB —
        not for throughput measurement (experiments drive their own
        loops with precise contexts).
        """
        total = 0
        for _ in range(max_rounds):
            moved = self.kernel.pump()
            for pumpable in self.pumpables:
                moved += pumpable()
            total += moved
            if not moved:
                return total
        raise RuntimeError(f"{self.name}: pump did not quiesce")
