"""TRex-style stateless traffic streams.

§5.2: "we assigned each packet random source and destination IPs out of
1,000 possibilities, which is a worst case scenario for the OVS datapath
because it causes a high miss rate in the OVS caching layer."

A :class:`TrexStream` produces that exact workload deterministically.
Pre-built packets are cycled, so generation cost never pollutes the
device-under-test's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.net.addresses import MacAddress, ip_to_int
from repro.net.builder import make_udp_packet
from repro.net.packet import Packet
from repro.sim.rng import make_rng
from repro.sim.stats import line_rate_mpps
from repro.traffic.lossless import (
    LosslessSearch,
    SearchResult,
    aggregate_capacity_mpps,
    capacity_loss_model,
)


@dataclass(frozen=True)
class FlowSpec:
    """The flow-diversity knob: 1 flow, or N random-IP flows.

    ``vary_dst=False`` pins the destination (PVP/PCP loopbacks target one
    VM/container IP) while still varying sources for flow diversity.
    """

    n_flows: int = 1
    src_base: str = "16.0.0.1"
    dst_base: str = "48.0.0.1"
    src_port: int = 1026
    dst_port: int = 12
    vary_dst: bool = True

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ValueError("need at least one flow")


class TrexStream:
    def __init__(
        self,
        flows: FlowSpec,
        frame_len: int = 64,
        src_mac: Optional[MacAddress] = None,
        dst_mac: Optional[MacAddress] = None,
        seed: int = 42,
    ) -> None:
        self.flows = flows
        self.frame_len = frame_len
        src_mac = src_mac or MacAddress.local(0xE0001)
        dst_mac = dst_mac or MacAddress.local(0xE0002)
        rng = make_rng("trex", flows.n_flows, frame_len, seed)
        src_base = ip_to_int(flows.src_base)
        dst_base = ip_to_int(flows.dst_base)
        self._packets: List[Packet] = []
        # Flows differ only in src/dst IP (and the IPv4 header checksum
        # those feed), so the first frame serves as a template and the
        # rest are built by patching 10 bytes — byte-identical to a full
        # make_udp_packet() build at a fraction of the cost, which keeps
        # large-n_flows stream setup from dwarfing the datapath under
        # test in wall-clock benchmarks.
        template: Optional[bytes] = None
        base_sum = 0
        for i in range(flows.n_flows):
            # "random source and destination IPs out of 1,000 possibilities"
            vary = flows.n_flows > 1
            src = src_base + (rng.randrange(100_000) if vary else 0)
            dst = dst_base + (
                rng.randrange(100_000) if vary and flows.vary_dst else 0
            )
            if template is None:
                pkt = make_udp_packet(
                    src_mac, dst_mac, src, dst,
                    flows.src_port, flows.dst_port,
                    frame_len=frame_len,
                    fill_checksum=False,  # generator-side offload
                )
                template = pkt.data
                # Ones'-complement sum of the IPv4 header words with the
                # src, dst, and checksum fields zeroed; each flow's
                # header checksum is this plus its own address words.
                hdr = template[14:34]
                base_sum = sum(
                    int.from_bytes(hdr[o:o + 2], "big")
                    for o in range(0, 10, 2)
                )
            else:
                total = (base_sum + (src >> 16) + (src & 0xFFFF)
                         + (dst >> 16) + (dst & 0xFFFF))
                while total >> 16:
                    total = (total & 0xFFFF) + (total >> 16)
                frame = b"".join((
                    template[:24],
                    ((~total) & 0xFFFF).to_bytes(2, "big"),
                    src.to_bytes(4, "big"),
                    dst.to_bytes(4, "big"),
                    template[34:],
                ))
                pkt = Packet(frame)
                pkt.meta.l3_offset = 14
                pkt.meta.l4_offset = 34
            self._packets.append(pkt)
        self._cursor = 0

    @property
    def src_ips(self) -> List[int]:
        """Distinct source IPs across the prebuilt packets (sorted).

        Lets a bench install one OpenFlow rule per source so every flow
        costs its own upcall + megaflow instead of collapsing into one
        wildcard entry.
        """
        return sorted({
            int.from_bytes(p.data[26:30], "big") for p in self._packets
        })

    @property
    def distinct_flows(self) -> int:
        return len({
            (p.data[26:30], p.data[30:34]) for p in self._packets
        })

    def next_packet(self) -> Packet:
        pkt = self._packets[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._packets)
        return pkt.clone()

    def burst(self, n: int) -> List[Packet]:
        return [self.next_packet() for _ in range(n)]

    def __iter__(self) -> Iterator[Packet]:
        while True:
            yield self.next_packet()


def max_lossless_mpps(
    per_lane_busy_ns: Sequence[float],
    packets_per_lane: Sequence[int],
    link_gbps: float,
    frame_len: int,
) -> float:
    """The maximum lossless forwarding rate of a multi-lane pipeline.

    Each lane (a PMD thread, a softirq core) can sustain
    ``packets / busy_ns`` before its queue grows without bound; the
    aggregate is their sum, capped by the wire.  This is the closed form
    of the quantity the TRex binary search converges to on the real
    testbed; :class:`repro.traffic.lossless.LosslessSearch` finds the
    same rate probe by probe and keeps the search trace.
    """
    total = aggregate_capacity_mpps(per_lane_busy_ns, packets_per_lane)
    return min(total, line_rate_mpps(link_gbps, frame_len))


def lossless_search_from_lanes(
    per_lane_busy_ns: Sequence[float],
    packets_per_lane: Sequence[int],
    link_gbps: float,
    frame_len: int,
    resolution_mpps: float = 0.01,
    loss_tolerance: float = 0.0,
) -> "SearchResult":
    """Run the TRex-style binary search against a measured pipeline.

    The lanes define the capacity (as in :func:`max_lossless_mpps`); the
    wire defines the search ceiling.  Returns the full
    :class:`~repro.traffic.lossless.SearchResult`, whose ``rate_mpps``
    agrees with the closed form to within ``resolution_mpps``.
    """
    capacity = aggregate_capacity_mpps(per_lane_busy_ns, packets_per_lane)
    search = LosslessSearch(
        max_rate_mpps=line_rate_mpps(link_gbps, frame_len),
        resolution_mpps=resolution_mpps,
        loss_tolerance=loss_tolerance,
    )
    return search.run(capacity_loss_model(capacity))
