"""netperf TCP_RR: request/response latency and transaction rate.

§5.3: "netperf's TCP_RR test ... sends a single byte of data back and
forth between a client and a server as quickly as possible and reports
the latency distribution."  We reproduce that: the caller provides a
``transaction`` callable that moves one byte each way through the
simulated path while every involved execution context carries a shared
:class:`~repro.sim.cpu.LatencyTrace`; stochastic service terms (IRQ
wait, scheduler wakeup) draw per-transaction jitter, yielding the
P50/P90/P99 columns of Figures 10 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from repro.sim.cpu import ExecContext, LatencyTrace
from repro.sim.rng import lognormal_jitter, make_rng
from repro.sim.stats import Histogram


@dataclass
class NetperfResult:
    p50_us: float
    p90_us: float
    p99_us: float
    mean_us: float
    transactions_per_s: float
    component_means_us: Dict[str, float]

    def row(self) -> str:  # pragma: no cover - display helper
        return (
            f"P50={self.p50_us:.0f}us P90={self.p90_us:.0f}us "
            f"P99={self.p99_us:.0f}us ({self.transactions_per_s:,.0f} tps)"
        )


class TcpRrRunner:
    """Drive n request/response transactions and collect the distribution.

    ``jitter_terms`` maps a label to ``(median_ns, sigma)``: each
    transaction adds one lognormal sample per term — the wakeups and
    interrupt service variance that create the latency *tail*.  A purely
    polling path (DPDK) has small sigma; an interrupt-driven path
    (kernel) has more and heavier terms.
    """

    def __init__(
        self,
        contexts: Sequence[ExecContext],
        jitter_terms: Dict[str, "tuple[float, float]"],
        seed: int = 3,
    ) -> None:
        self.contexts = list(contexts)
        self.jitter_terms = dict(jitter_terms)
        self._rng = make_rng("netperf", seed)

    def run(
        self,
        transaction: Callable[[], None],
        n_transactions: int = 400,
    ) -> NetperfResult:
        if n_transactions <= 0:
            raise ValueError("need at least one transaction")
        samples = Histogram()
        component_acc: Dict[str, float] = {}
        for _ in range(n_transactions):
            trace = LatencyTrace()
            for ctx in self.contexts:
                ctx.trace = trace
            try:
                transaction()
            finally:
                for ctx in self.contexts:
                    ctx.trace = None
            for label, (median, sigma) in self.jitter_terms.items():
                trace.add(lognormal_jitter(self._rng, median, sigma), label)
            samples.add(trace.total_ns / 1_000.0)  # us
            for label, ns in trace.components.items():
                component_acc[label] = component_acc.get(label, 0.0) + ns
        mean_us = samples.mean()
        return NetperfResult(
            p50_us=samples.percentile(50),
            p90_us=samples.percentile(90),
            p99_us=samples.percentile(99),
            mean_us=mean_us,
            transactions_per_s=1e6 / mean_us,
            component_means_us={
                k: v / n_transactions / 1_000.0
                for k, v in component_acc.items()
            },
        )
