"""Workload generators: TRex-, iperf- and netperf-shaped drivers.

These reproduce the paper's measurement methodology:

* :mod:`repro.traffic.trex` — packet streams (64 B / 1518 B, 1 or 1000
  flows) and maximum-lossless-rate arithmetic (§5.2, §5.5);
* :mod:`repro.traffic.iperf` — single-flow bulk TCP throughput with a
  pipeline-bottleneck reduction (§5.1);
* :mod:`repro.traffic.netperf` — TCP_RR latency distributions and
  transaction rates (§5.3).
"""

from repro.traffic.trex import FlowSpec, TrexStream, max_lossless_mpps
from repro.traffic.iperf import IperfResult, measure_throughput
from repro.traffic.netperf import NetperfResult, TcpRrRunner

__all__ = [
    "FlowSpec",
    "TrexStream",
    "max_lossless_mpps",
    "IperfResult",
    "measure_throughput",
    "NetperfResult",
    "TcpRrRunner",
]
