"""TRex-style maximum-lossless-rate binary search.

The real harnesses (``ovs_perf``, the NFV-benchmarking methodology of
Niu et al. and Zhang et al.) find a device's maximum lossless rate by
*offering* traffic at a trial rate, counting loss, and bisecting: a
lossless trial raises the floor, a lossy one lowers the ceiling, until
the bracket is narrower than the requested resolution.

:class:`LosslessSearch` reproduces that discipline against any loss
model — a callable mapping an offered rate (Mpps) to the fraction of
packets lost at that rate.  For the simulator the loss model is derived
from a measured capacity (see :func:`capacity_loss_model`): a pipeline
whose bottleneck lane processes a packet in ``t`` ns drops nothing
until the offered rate exceeds ``1/t``, after which its queues grow
without bound and the excess is lost.  The search therefore converges
to the same quantity :func:`repro.traffic.trex.max_lossless_mpps`
computes in closed form — but it converges the way the physical TRex
harness does, probe by probe, and records the full search trace so a
regression gate can audit *how* a rate was found, not just the rate.

Every step is deterministic: identical inputs produce an identical
trace, which is what lets ``matrix.json`` be byte-diffed in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

__all__ = [
    "LossModel",
    "Probe",
    "SearchResult",
    "LosslessSearch",
    "capacity_loss_model",
    "aggregate_capacity_mpps",
]

#: offered rate (Mpps) -> fraction of offered packets lost in [0, 1].
LossModel = Callable[[float], float]


@dataclass(frozen=True)
class Probe:
    """One trial of the binary search."""

    offered_mpps: float
    loss_fraction: float
    lossless: bool


@dataclass
class SearchResult:
    """The converged rate plus the evidence that produced it."""

    rate_mpps: float
    #: Highest offered rate observed lossless / lowest observed lossy.
    #: ``bracket_hi`` is ``max_rate_mpps`` when no trial ever lost.
    bracket_lo: float
    bracket_hi: float
    iterations: int
    converged: bool
    trace: List[Probe] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "rate_mpps": self.rate_mpps,
            "bracket": [self.bracket_lo, self.bracket_hi],
            "iterations": self.iterations,
            "converged": self.converged,
            "trace": [
                {
                    "offered_mpps": p.offered_mpps,
                    "loss": p.loss_fraction,
                    "lossless": p.lossless,
                }
                for p in self.trace
            ],
        }


class LosslessSearch:
    """Binary search for the maximum lossless rate.

    ``resolution_mpps`` bounds the final bracket width (the returned
    rate is within one resolution of the true capacity); a trial counts
    as lossless while its loss fraction is at most ``loss_tolerance``
    (0.0 = strictly zero loss, the paper's definition).
    ``max_iterations`` is a safety net only — the bisection needs
    ``log2(range / resolution)`` trials and is marked unconverged if it
    runs out first.
    """

    def __init__(
        self,
        max_rate_mpps: float,
        min_rate_mpps: float = 0.0,
        resolution_mpps: float = 0.01,
        loss_tolerance: float = 0.0,
        max_iterations: int = 64,
    ) -> None:
        if max_rate_mpps <= 0:
            raise ValueError("max rate must be positive")
        if not 0 <= min_rate_mpps < max_rate_mpps:
            raise ValueError("need 0 <= min rate < max rate")
        if resolution_mpps <= 0:
            raise ValueError("resolution must be positive")
        if not 0 <= loss_tolerance < 1:
            raise ValueError("loss tolerance must be in [0, 1)")
        if max_iterations < 1:
            raise ValueError("need at least one iteration")
        self.max_rate_mpps = max_rate_mpps
        self.min_rate_mpps = min_rate_mpps
        self.resolution_mpps = resolution_mpps
        self.loss_tolerance = loss_tolerance
        self.max_iterations = max_iterations

    def run(self, loss_model: LossModel) -> SearchResult:
        trace: List[Probe] = []

        def probe(rate: float) -> bool:
            loss = loss_model(rate)
            if not 0.0 <= loss <= 1.0:
                raise ValueError(
                    f"loss model returned {loss!r} at {rate} Mpps"
                )
            ok = loss <= self.loss_tolerance
            trace.append(Probe(rate, loss, ok))
            return ok

        # Trial 1 is always the line: if the wire itself is lossless
        # there is nothing to bisect (TRex does the same first probe).
        if probe(self.max_rate_mpps):
            return SearchResult(
                rate_mpps=self.max_rate_mpps,
                bracket_lo=self.max_rate_mpps,
                bracket_hi=self.max_rate_mpps,
                iterations=len(trace),
                converged=True,
                trace=trace,
            )
        lo, hi = self.min_rate_mpps, self.max_rate_mpps
        converged = False
        while len(trace) < self.max_iterations:
            if hi - lo <= self.resolution_mpps:
                converged = True
                break
            mid = (lo + hi) / 2.0
            if probe(mid):
                lo = mid
            else:
                hi = mid
        else:  # pragma: no cover - needs a pathological resolution
            converged = hi - lo <= self.resolution_mpps
        return SearchResult(
            rate_mpps=lo,
            bracket_lo=lo,
            bracket_hi=hi,
            iterations=len(trace),
            converged=converged,
            trace=trace,
        )


def aggregate_capacity_mpps(
    per_lane_busy_ns: Sequence[float],
    packets_per_lane: Sequence[int],
) -> float:
    """Sum of per-lane sustainable rates, in Mpps (uncapped).

    Each lane (a PMD thread, a softirq core) sustains
    ``packets / busy_ns`` before its queue grows without bound; the
    pipeline aggregate is their sum.  Shared by the closed form
    (:func:`repro.traffic.trex.max_lossless_mpps`) and the probe-based
    search (:func:`capacity_loss_model`).
    """
    if len(per_lane_busy_ns) != len(packets_per_lane):
        raise ValueError("lane arrays must align")
    total = 0.0
    for busy, pkts in zip(per_lane_busy_ns, packets_per_lane):
        if pkts == 0:
            continue
        if busy <= 0:
            raise ValueError("a lane that processed packets must have cost")
        total += pkts / busy * 1e3  # Mpps
    return total


def capacity_loss_model(capacity_mpps: float) -> LossModel:
    """The open-loop UDP loss model of a fixed-capacity pipeline.

    Below capacity every offered packet is forwarded; above it the
    bottleneck lane saturates and the overflow — and only the
    overflow — is dropped.  This is exactly what a TRex trial observes
    against a DUT whose per-packet cost does not depend on offered rate
    (true of every datapath here: costs are charged per packet, queues
    are serviced to empty between bursts).
    """
    if capacity_mpps <= 0:
        raise ValueError("capacity must be positive")

    def loss(offered_mpps: float) -> float:
        if offered_mpps <= capacity_mpps:
            return 0.0
        return (offered_mpps - capacity_mpps) / offered_mpps

    return loss
