"""iperf-style bulk TCP throughput measurement.

The paper's §5.1 runs "iperf to send a single flow of bulk TCP packets"
and reports Gbps.  Here the caller supplies a *send step* (push one chunk
through an established simulated TCP connection and pump the path); this
module measures where virtual CPU time went and reduces it to goodput:

the path is a pipeline of stages on different cores (sender guest, OVS
PMD, receiver guest, softirq...), so sustained throughput is limited by
the **busiest core**, and by the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Union

from repro.sim.cpu import CpuModel


@dataclass
class IperfResult:
    bytes_delivered: int
    bottleneck_busy_ns: float
    gbps: float
    per_cpu_busy_ns: Dict[int, float]
    capped_by_link: bool

    def __str__(self) -> str:  # pragma: no cover - display helper
        cap = " (line rate)" if self.capped_by_link else ""
        return f"{self.gbps:.2f} Gbps{cap}"


def measure_throughput(
    cpu: Union[CpuModel, Sequence[CpuModel]],
    send_step: Callable[[], int],
    total_bytes: int,
    link_gbps: Optional[float] = None,
) -> IperfResult:
    """Run ``send_step`` until ``total_bytes`` have been delivered.

    ``send_step`` returns the payload bytes it delivered end-to-end in
    one call.  CPU accounting is snapshotted around the whole run; the
    goodput is ``bytes / busiest-core-time``, capped by the link.
    ``cpu`` may be one host's CpuModel or several (cross-host pipelines:
    the bottleneck core can be on either side).
    """
    if total_bytes <= 0:
        raise ValueError("need a positive byte budget")
    cpus = list(cpu) if isinstance(cpu, (list, tuple)) else [cpu]
    before = {
        (h, c): m.busy_ns(cpu=c)
        for h, m in enumerate(cpus) for c in range(m.n_cpus)
    }
    delivered = 0
    while delivered < total_bytes:
        got = send_step()
        if got <= 0:
            raise RuntimeError("send step made no progress")
        delivered += got
    per_cpu = {
        (h, c): m.busy_ns(cpu=c) - before[(h, c)]
        for h, m in enumerate(cpus) for c in range(m.n_cpus)
    }
    if len(cpus) == 1:
        # Single-host runs keep plain cpu-number keys.
        per_cpu = {c: v for (_h, c), v in per_cpu.items()}
    bottleneck = max(per_cpu.values())
    if bottleneck <= 0:
        raise RuntimeError("no CPU time was charged; nothing was measured")
    gbps = delivered * 8 / bottleneck  # bytes/ns * 8 = Gbps
    capped = False
    if link_gbps is not None and gbps > link_gbps:
        gbps = link_gbps
        capped = True
    return IperfResult(
        bytes_delivered=delivered,
        bottleneck_busy_ns=bottleneck,
        gbps=gbps,
        per_cpu_busy_ns=per_cpu,
        capped_by_link=capped,
    )
