"""Wall-clock benchmark harness for the burst-classified datapath.

Simulator throughput (how many *real* seconds a fig9-style run takes) is
what bounds every experiment sweep in this repo, so the batching work is
judged on two axes at once:

* **speed** — best-of-N wall-clock time of each configuration with the
  burst classifier + wall-clock memo layers on, against the retained
  reference mode (``BATCH_CLASSIFY = False`` and
  ``repro.sim.fastpath`` disabled: the pre-batching behaviour);
* **fidelity** — every virtual-time observable (Mpps, ns/packet, the
  CPU-utilisation split, and for ledger workloads the trace ledger) must
  be byte-identical between the two modes and across repetitions.

Usage::

    PYTHONPATH=src python -m repro.tools.bench_report \
        --workload fig9 --out BENCH_pr2.json

The default workload drives the fig9 P2P userspace-datapath
configurations (AF_XDP and DPDK at 1 and 1000 flows) with 64-byte
frames; longer streams than the figure's default are used so the
steady-state (cache-warm) regime the paper's lossless-rate search
operates in dominates the measurement.
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import json
import time
from typing import Callable, Dict, List, Tuple

from repro.ovs import dpif_netdev
from repro.sim import fastpath, trace

#: The acceptance bar: batched fig9 runs at least this much faster.
TARGET_SPEEDUP = 2.0

#: PR 5 (JIT) acceptance bars, measured against the full reference mode
#: (burst classifier, memo layers, and JIT all off — the retained
#: pre-fastpath behaviour): the fig9 AF_XDP configurations in aggregate,
#: and the diverse-flow table5 workload where every charged nanosecond
#: is eBPF execution.
PR5_FIG9_AFXDP_TARGET = 1.5
PR5_TABLE5_TARGET = 2.0

#: PR 7 (dp-JIT) acceptance bars vs the full reference mode: the
#: diverse-flow table5 column again (the ruleset-scale eBPF workload)
#: and a dp-heavy multi-action workload where every packet executes a
#: compiled megaflow closure.
PR7_TABLE5_TARGET = 2.0
PR7_DP_TARGET = 2.0

#: PR 10 (multi-process scale-out) acceptance bar: the sharded fig9
#: workload at the highest worker count runs at least this much faster
#: than the serial (inline) run.  Only *enforced* on hosts with at
#: least ``SHARD_TARGET_MIN_CPUS`` usable CPUs — a speedup from
#: parallelism is physically impossible on fewer cores, so smaller
#: hosts measure and record honestly but do not fail the gate.
SHARD_TARGET_SPEEDUP = 3.0
SHARD_TARGET_MIN_CPUS = 4


def _set_mode(batched: bool) -> None:
    dpif_netdev.BATCH_CLASSIFY = batched
    fastpath.set_enabled(batched)


@contextlib.contextmanager
def _gc_paused():
    """Collect, then pause the cyclic GC for one timed repetition.

    The simulator allocates heavily, so a gen-2 collection landing
    inside one mode's timing (but not the other's) swings wall-clock
    ratios by 20 %+; both modes are timed under the same discipline.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _fig9_configs(link_gbps: float) -> List[Tuple[str, Callable, int]]:
    from repro.experiments.p2p import afxdp_p2p, dpdk_p2p

    out: List[Tuple[str, Callable, int]] = []
    for label, factory in (("afxdp", afxdp_p2p), ("dpdk", dpdk_p2p)):
        for flows in (1, 1000):
            out.append((f"{label}/flows={flows}",
                        lambda f=factory: f(link_gbps=link_gbps), flows))
    return out


def _time_fig9_config(factory: Callable, flows: int, packets: int,
                      reps: int, batched: bool) -> Tuple[float, Tuple]:
    """Best-of-``reps`` wall seconds plus the virtual observables, which
    must not vary across repetitions."""
    from repro.traffic.trex import FlowSpec, TrexStream

    _set_mode(batched)
    best = float("inf")
    observed = None
    for _ in range(reps):
        bench = factory()
        stream = TrexStream(FlowSpec(n_flows=flows), frame_len=64)
        with _gc_paused():
            t0 = time.perf_counter()
            m = bench.drive(stream, packets)
            wall = time.perf_counter() - t0
        best = min(best, wall)
        virt = (m.mpps, m.ns_per_packet, tuple(sorted(m.cpu_util.items())))
        if observed is None:
            observed = virt
        elif observed != virt:
            raise AssertionError(
                f"virtual results varied across repetitions: "
                f"{observed!r} vs {virt!r}"
            )
    return best, observed


def run_fig9_bench(packets: int = 6000, reps: int = 3,
                   link_gbps: float = 25.0) -> Dict:
    configs = {}
    agg_ref = agg_bat = 0.0
    for name, factory, flows in _fig9_configs(link_gbps):
        ref_wall, ref_virt = _time_fig9_config(
            factory, flows, packets, reps, batched=False)
        bat_wall, bat_virt = _time_fig9_config(
            factory, flows, packets, reps, batched=True)
        if ref_virt != bat_virt:
            raise AssertionError(
                f"{name}: batched virtual results diverged from the "
                f"reference: {bat_virt!r} vs {ref_virt!r}"
            )
        agg_ref += ref_wall
        agg_bat += bat_wall
        configs[name] = {
            "ref_wall_s": ref_wall,
            "batched_wall_s": bat_wall,
            "speedup": ref_wall / bat_wall,
            "ref_wall_pps": packets / ref_wall,
            "batched_wall_pps": packets / bat_wall,
            "virtual_mpps": ref_virt[0],
            "virtual_ns_per_packet": ref_virt[1],
            "virtual_identical": True,
        }
    aggregate = {
        "ref_wall_s": agg_ref,
        "batched_wall_s": agg_bat,
        "speedup": agg_ref / agg_bat,
    }
    return {
        "workload": "fig9",
        "packets": packets,
        "reps": reps,
        "frame_len": 64,
        "link_gbps": link_gbps,
        "configs": configs,
        "aggregate": aggregate,
        "target_speedup": TARGET_SPEEDUP,
        "meets_target": aggregate["speedup"] >= TARGET_SPEEDUP,
    }


def _time_table5(packets: int, n_flows: int, reps: int,
                 batched: bool) -> Tuple[float, Tuple, str]:
    """Best-of-``reps`` wall seconds for a diverse-flow table5 run plus
    the virtual Mpps table and one recorded trace ledger."""
    from repro.experiments.table5_xdp_cost import run_table5

    _set_mode(batched)
    best = float("inf")
    observed = None
    for _ in range(reps):
        with _gc_paused():
            t0 = time.perf_counter()
            res = run_table5(packets=packets, n_flows=n_flows)
            best = min(best, time.perf_counter() - t0)
        virt = tuple(sorted(res.mpps.items()))
        if observed is None:
            observed = virt
        elif observed != virt:
            raise AssertionError(
                f"table5 virtual results varied across repetitions: "
                f"{observed!r} vs {virt!r}"
            )
    with trace.recording() as rec:
        run_table5(packets=packets, n_flows=n_flows)
    return best, observed, rec.ledger()


def run_pr5_bench(fig9_packets: int = 6000, table5_packets: int = 6000,
                  reps: int = 3, link_gbps: float = 25.0) -> Dict:
    """The PR 5 JIT report: fig9 AF_XDP configs plus a diverse-flow
    table5 column, JIT mode against the full reference mode."""
    configs = {}
    agg_ref = agg_jit = 0.0
    for name, factory, flows in _fig9_configs(link_gbps):
        if not name.startswith("afxdp"):
            continue
        ref_wall, ref_virt = _time_fig9_config(
            factory, flows, fig9_packets, reps, batched=False)
        jit_wall, jit_virt = _time_fig9_config(
            factory, flows, fig9_packets, reps, batched=True)
        if ref_virt != jit_virt:
            raise AssertionError(
                f"{name}: JIT virtual results diverged from the "
                f"reference: {jit_virt!r} vs {ref_virt!r}"
            )
        agg_ref += ref_wall
        agg_jit += jit_wall
        configs[name] = {
            "ref_wall_s": ref_wall,
            "jit_wall_s": jit_wall,
            "speedup": ref_wall / jit_wall,
            "virtual_mpps": ref_virt[0],
            "virtual_identical": True,
        }
    t5_flows = table5_packets  # every frame its own flow: no memo hits
    t5_ref, t5_virt_ref, t5_led_ref = _time_table5(
        table5_packets, t5_flows, reps, batched=False)
    t5_jit, t5_virt_jit, t5_led_jit = _time_table5(
        table5_packets, t5_flows, reps, batched=True)
    if t5_virt_ref != t5_virt_jit:
        raise AssertionError(
            f"table5: JIT Mpps diverged from the reference: "
            f"{t5_virt_jit!r} vs {t5_virt_ref!r}"
        )
    if t5_led_ref != t5_led_jit:
        raise AssertionError("table5: JIT ledger diverged from reference")
    fig9_speedup = agg_ref / agg_jit
    table5_speedup = t5_ref / t5_jit
    return {
        "workload": "pr5",
        "reps": reps,
        "fig9_afxdp": {
            "packets": fig9_packets,
            "configs": configs,
            "ref_wall_s": agg_ref,
            "jit_wall_s": agg_jit,
            "speedup": fig9_speedup,
            "target_speedup": PR5_FIG9_AFXDP_TARGET,
        },
        "table5": {
            "packets": table5_packets,
            "n_flows": t5_flows,
            "ref_wall_s": t5_ref,
            "jit_wall_s": t5_jit,
            "speedup": table5_speedup,
            "target_speedup": PR5_TABLE5_TARGET,
            "virtual_mpps": dict(t5_virt_ref),
            "ledger_identical": True,
        },
        "meets_target": (fig9_speedup >= PR5_FIG9_AFXDP_TARGET
                         and table5_speedup >= PR5_TABLE5_TARGET),
    }


def _pr7_dp_world(n_flows: int):
    """A table3-style datapath: every flow translates to a multi-action
    chain (header rewrite + VLAN push + output), so the generic walk —
    not the single-output shortcut — is the baseline being compiled."""
    from repro.net.addresses import MacAddress
    from repro.net.builder import make_udp_packet
    from repro.net.flow import mask_from_fields
    from repro.ovs import odp
    from repro.ovs.dpif_netdev import DpifNetdev
    from repro.ovs.emc import ExactMatchCache
    from repro.ovs.netdevs import SimAdapter
    from repro.sim.cpu import CpuCategory, CpuModel, ExecContext

    dpif = DpifNetdev()
    rx, out_a, out_b = SimAdapter(), SimAdapter(), SimAdapter()
    p_rx = dpif.add_port("rx", rx)
    p_a = dpif.add_port("a", out_a)
    p_b = dpif.add_port("b", out_b)
    mask = mask_from_fields(eth_type=-1, nw_dst=-1)

    def upcall(key, ctx):
        out = p_a.port_no if key.nw_dst & 1 else p_b.port_no
        return ((odp.SetField("nw_ttl", 17), odp.PushVlan(7, 1),
                 odp.Output(out)), mask)

    dpif.upcall_fn = upcall
    frames = [
        make_udp_packet(
            MacAddress.local(1), MacAddress.local(2), "192.168.31.1",
            f"10.{(i >> 16) & 0xFF}.{(i >> 8) & 0xFF}.{i & 0xFF}",
            1000 + (i & 0xFF), 2000,
        ).data
        for i in range(n_flows)
    ]
    ctx = ExecContext(CpuModel(1), 0, CpuCategory.USER)
    emc = ExactMatchCache()
    return dpif, ctx, emc, p_rx, (out_a, out_b), frames


def _drive_pr7_dp(packets: int, n_flows: int) -> Tuple:
    """Run the dp workload once; returns the virtual observables."""
    from repro.net.packet import Packet

    dpif, ctx, emc, p_rx, outs, frames = _pr7_dp_world(n_flows)
    burst_size = 32
    sent = 0
    i = 0
    while sent < packets:
        burst = [Packet(frames[(i + j) % n_flows])
                 for j in range(min(burst_size, packets - sent))]
        dpif.process_batch(burst, p_rx.port_no, ctx, emc)
        sent += len(burst)
        i += len(burst)
    s = dpif.stats
    tx = tuple(sum(len(p.data) for p in o.take_transmitted())
               for o in outs)
    return (ctx.local_time_ns, tx,
            (s.packets, s.passes, s.emc_hits, s.megaflow_hits,
             s.upcalls, s.dropped))


def _time_pr7_dp(packets: int, n_flows: int, reps: int,
                 batched: bool, dpjit_on: bool = True) -> Tuple[float, Tuple, str]:
    """Best-of-``reps`` wall seconds for the dp workload plus the
    virtual observables and one recorded trace ledger."""
    from repro.ovs import dpjit

    _set_mode(batched)
    best = float("inf")
    observed = None
    with contextlib.ExitStack() as stack:
        if not dpjit_on:
            stack.enter_context(dpjit.disabled())
        for _ in range(reps):
            with _gc_paused():
                t0 = time.perf_counter()
                virt = _drive_pr7_dp(packets, n_flows)
                best = min(best, time.perf_counter() - t0)
            if observed is None:
                observed = virt
            elif observed != virt:
                raise AssertionError(
                    f"pr7-dp virtual results varied across repetitions: "
                    f"{observed!r} vs {virt!r}"
                )
        with trace.recording() as rec:
            _drive_pr7_dp(packets, n_flows)
    return best, observed, rec.ledger()


def run_pr7_bench(dp_packets: int = 24000, dp_flows: int = 0,
                  table5_packets: int = 6000, reps: int = 3) -> Dict:
    """The PR 7 dp-JIT report: the dp-heavy multi-action workload and
    the diverse-flow table5 column, fastpath mode against the full
    reference mode, plus the dp-JIT's own marginal (fastpath on, dp-JIT
    off) for attribution."""
    from repro.ovs import dpjit

    # ~48 packets per flow: the steady-state regime where a megaflow
    # (and its closure) is reused, as under the paper's lossless-rate
    # search — not the install-churn regime, which the flow-limit tests
    # cover functionally.
    dp_flows = dp_flows or max(50, dp_packets // 48)
    dp_ref, dp_virt_ref, dp_led_ref = _time_pr7_dp(
        dp_packets, dp_flows, reps, batched=False)
    dispatched_before = dpjit.STATS.dispatched
    dp_jit, dp_virt_jit, dp_led_jit = _time_pr7_dp(
        dp_packets, dp_flows, reps, batched=True)
    dispatched = dpjit.STATS.dispatched - dispatched_before
    if not dispatched:
        raise AssertionError(
            "pr7-dp: no compiled megaflow dispatched — the bench is "
            "not measuring the dp-JIT")
    dp_nojit, dp_virt_nojit, _ = _time_pr7_dp(
        dp_packets, dp_flows, reps, batched=True, dpjit_on=False)
    if dp_virt_ref != dp_virt_jit or dp_virt_ref != dp_virt_nojit:
        raise AssertionError(
            f"pr7-dp: virtual results diverged across modes: "
            f"{dp_virt_ref!r} / {dp_virt_jit!r} / {dp_virt_nojit!r}"
        )
    if dp_led_ref != dp_led_jit:
        raise AssertionError("pr7-dp: dp-JIT ledger diverged from reference")
    t5_flows = table5_packets  # every frame its own flow: no memo hits
    t5_ref, t5_virt_ref, t5_led_ref = _time_table5(
        table5_packets, t5_flows, reps, batched=False)
    t5_jit, t5_virt_jit, t5_led_jit = _time_table5(
        table5_packets, t5_flows, reps, batched=True)
    if t5_virt_ref != t5_virt_jit:
        raise AssertionError(
            f"table5: fastpath Mpps diverged from the reference: "
            f"{t5_virt_jit!r} vs {t5_virt_ref!r}"
        )
    if t5_led_ref != t5_led_jit:
        raise AssertionError("table5: fastpath ledger diverged from reference")
    dp_speedup = dp_ref / dp_jit
    table5_speedup = t5_ref / t5_jit
    return {
        "workload": "pr7",
        "reps": reps,
        "dp_multiaction": {
            "packets": dp_packets,
            "n_flows": dp_flows,
            "ref_wall_s": dp_ref,
            "jit_wall_s": dp_jit,
            "nodpjit_wall_s": dp_nojit,
            "speedup": dp_speedup,
            "dpjit_marginal_speedup": dp_nojit / dp_jit,
            "dpjit_dispatched": dispatched,
            "target_speedup": PR7_DP_TARGET,
            "ledger_identical": True,
        },
        "table5": {
            "packets": table5_packets,
            "n_flows": t5_flows,
            "ref_wall_s": t5_ref,
            "jit_wall_s": t5_jit,
            "speedup": table5_speedup,
            "target_speedup": PR7_TABLE5_TARGET,
            "virtual_mpps": dict(t5_virt_ref),
            "ledger_identical": True,
        },
        "meets_target": (dp_speedup >= PR7_DP_TARGET
                         and table5_speedup >= PR7_TABLE5_TARGET),
    }


def _ledger_workload(workload: str, packets: int) -> Callable[[], str]:
    def run() -> str:
        with trace.recording() as rec:
            if workload == "fig2":
                from repro.experiments.fig2_single_flow import run_fig2

                run_fig2(packets=packets)
            elif workload == "table2":
                from repro.experiments.table2_optimizations import run_table2

                run_table2(packets=packets)
            else:
                raise ValueError(f"unknown workload {workload!r}")
        return rec.ledger()

    return run


def run_ledger_bench(workload: str, packets: int = 800,
                     reps: int = 3) -> Dict:
    """fig2/table2: wall-clock A/B plus byte-identical-ledger check."""
    run = _ledger_workload(workload, packets)
    walls = {}
    ledgers = {}
    for mode, batched in (("ref", False), ("batched", True)):
        _set_mode(batched)
        best = float("inf")
        ledger = None
        for _ in range(reps):
            with _gc_paused():
                t0 = time.perf_counter()
                led = run()
                best = min(best, time.perf_counter() - t0)
            if ledger is None:
                ledger = led
            elif ledger != led:
                raise AssertionError(f"{workload}/{mode}: ledger varied")
        walls[mode] = best
        ledgers[mode] = ledger
    if ledgers["ref"] != ledgers["batched"]:
        raise AssertionError(
            f"{workload}: batched ledger diverged from reference")
    return {
        "workload": workload,
        "packets": packets,
        "reps": reps,
        "ref_wall_s": walls["ref"],
        "batched_wall_s": walls["batched"],
        "speedup": walls["ref"] / walls["batched"],
        "ledger_identical": True,
    }


def run_shard_bench(packets: int = 100_000,
                    workers: Tuple[int, ...] = (1, 2, 4),
                    reps: int = 1) -> Dict:
    """PR 10: multi-process scale-out of the full fig9 cell set.

    ``packets`` is the *total* stream budget, split evenly across the
    20 fig9 cells (all three scenarios, both flow counts) — a fig9-style
    workload big enough that worker startup cost is amortized.  Each
    worker count is timed (best of ``reps``) running the identical unit
    list through :func:`repro.sim.shard.run_units`; the returned Mpps
    values must be byte-identical across every worker count (the
    byte-identity of traced observables is the shard gate's job — this
    bench runs untraced, like a real sweep).

    The report records the host honestly (usable CPUs, start method):
    the 3x bar at 4 workers is enforced only when the host has at least
    4 usable CPUs, never faked on smaller machines.
    """
    from repro.experiments.fig9_forwarding import cell_units
    from repro.sim.shard import (
        default_start_method,
        run_units,
        usable_cpus,
    )

    units = cell_units(max(1, packets // 20))
    per_worker: Dict[str, Dict] = {}
    serial_values = None
    values_identical = True
    for n in workers:
        best = float("inf")
        barriers = 0
        for _ in range(reps):
            with _gc_paused():
                t0 = time.perf_counter()
                run = run_units(units, shards=n)
                best = min(best, time.perf_counter() - t0)
            barriers = run.report.barriers
            if serial_values is None:
                serial_values = run.values
            elif run.values != serial_values:
                values_identical = False
        per_worker[str(n)] = {
            "wall_s": best,
            "n_shards": run.report.n_shards,
            "barriers": barriers,
        }
    top = str(max(workers))
    speedup = per_worker["1"]["wall_s"] / per_worker[top]["wall_s"]
    cpus = usable_cpus()
    enforced = cpus >= SHARD_TARGET_MIN_CPUS
    return {
        "workload": "shard",
        "packets_total": len(units) * max(1, packets // 20),
        "units": len(units),
        "workers": per_worker,
        "speedup_at_max_workers": speedup,
        "target_speedup": SHARD_TARGET_SPEEDUP,
        "target_min_cpus": SHARD_TARGET_MIN_CPUS,
        "usable_cpus": cpus,
        "start_method": default_start_method(),
        "values_identical": values_identical,
        "target_enforced": enforced,
        "meets_target": (speedup >= SHARD_TARGET_SPEEDUP
                         if enforced else True),
    }


def run_bench(workload: str = "fig9", packets: int = 0,
              reps: int = 3) -> Dict:
    if workload == "fig9":
        return run_fig9_bench(packets=packets or 6000, reps=reps)
    if workload == "pr5":
        return run_pr5_bench(fig9_packets=packets or 6000,
                             table5_packets=packets or 6000, reps=reps)
    if workload == "pr7":
        return run_pr7_bench(dp_packets=(packets or 6000) * 4,
                             table5_packets=packets or 6000, reps=reps)
    if workload == "shard":
        return run_shard_bench(packets=packets or 100_000, reps=reps)
    return run_ledger_bench(workload, packets=packets or 800, reps=reps)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="fig9",
                        choices=["fig9", "fig2", "table2", "pr5", "pr7",
                                 "shard"])
    parser.add_argument("--packets", type=int, default=0,
                        help="stream length (0 = workload default)")
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--out", default="BENCH_pr2.json")
    args = parser.parse_args(argv)

    prev_batch, prev_fast = dpif_netdev.BATCH_CLASSIFY, fastpath.ENABLED
    try:
        report = run_bench(args.workload, packets=args.packets,
                           reps=args.reps)
    finally:
        dpif_netdev.BATCH_CLASSIFY = prev_batch
        fastpath.set_enabled(prev_fast)
    report["generated_unix"] = int(time.time())

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    if args.workload == "pr7":
        dp = report["dp_multiaction"]
        print(f"{'dp multi-action':18s} ref={dp['ref_wall_s'] * 1e3:8.1f}ms "
              f"jit={dp['jit_wall_s'] * 1e3:8.1f}ms "
              f"speedup={dp['speedup']:.2f}x "
              f"(target {dp['target_speedup']:.1f}x; "
              f"dp-jit marginal {dp['dpjit_marginal_speedup']:.2f}x, "
              f"{dp['dpjit_dispatched']} dispatches)")
        t5 = report["table5"]
        print(f"{'table5 diverse':18s} ref={t5['ref_wall_s'] * 1e3:8.1f}ms "
              f"jit={t5['jit_wall_s'] * 1e3:8.1f}ms "
              f"speedup={t5['speedup']:.2f}x "
              f"(target {t5['target_speedup']:.1f}x)")
        print(f"meets_target: {report['meets_target']}")
    elif args.workload == "pr5":
        fig9 = report["fig9_afxdp"]
        for name, cfg in fig9["configs"].items():
            print(f"{name:18s} ref={cfg['ref_wall_s'] * 1e3:8.1f}ms "
                  f"jit={cfg['jit_wall_s'] * 1e3:8.1f}ms "
                  f"speedup={cfg['speedup']:.2f}x")
        print(f"{'fig9 afxdp agg':18s} speedup={fig9['speedup']:.2f}x "
              f"(target {fig9['target_speedup']:.1f}x)")
        t5 = report["table5"]
        print(f"{'table5 diverse':18s} ref={t5['ref_wall_s'] * 1e3:8.1f}ms "
              f"jit={t5['jit_wall_s'] * 1e3:8.1f}ms "
              f"speedup={t5['speedup']:.2f}x "
              f"(target {t5['target_speedup']:.1f}x)")
        print(f"meets_target: {report['meets_target']}")
    elif args.workload == "shard":
        for n, row in sorted(report["workers"].items(),
                             key=lambda kv: int(kv[0])):
            print(f"{'workers=' + n:18s} wall={row['wall_s']:8.2f}s "
                  f"shards={row['n_shards']} barriers={row['barriers']}")
        bar = (f"target {report['target_speedup']:.1f}x: "
               f"{'MET' if report['meets_target'] else 'NOT MET'}"
               if report["target_enforced"]
               else f"target not enforced: host has "
                    f"{report['usable_cpus']} usable CPU(s), "
                    f"needs {report['target_min_cpus']}")
        print(f"{'scale-out':18s} "
              f"speedup={report['speedup_at_max_workers']:.2f}x "
              f"({bar}; start method {report['start_method']}, "
              f"values identical: {report['values_identical']})")
    elif args.workload == "fig9":
        for name, cfg in report["configs"].items():
            print(f"{name:18s} ref={cfg['ref_wall_s'] * 1e3:8.1f}ms "
                  f"batched={cfg['batched_wall_s'] * 1e3:8.1f}ms "
                  f"speedup={cfg['speedup']:.2f}x")
        agg = report["aggregate"]
        print(f"{'aggregate':18s} ref={agg['ref_wall_s'] * 1e3:8.1f}ms "
              f"batched={agg['batched_wall_s'] * 1e3:8.1f}ms "
              f"speedup={agg['speedup']:.2f}x "
              f"(target {report['target_speedup']:.1f}x: "
              f"{'MET' if report['meets_target'] else 'NOT MET'})")
    else:
        print(f"{report['workload']}: speedup={report['speedup']:.2f}x "
              f"(ledger identical: {report['ledger_identical']})")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
