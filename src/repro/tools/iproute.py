"""``ip``: link, address, route and neighbor subcommands."""

from __future__ import annotations

from typing import List

from repro.kernel.namespace import NetNamespace
from repro.kernel.netlink import RtNetlink


class ToolError(Exception):
    """What the shell would show on stderr (exit status 1)."""


class IpCommand:
    """``ip`` against one namespace, rendering kernel state as text."""

    def __init__(self, namespace: NetNamespace) -> None:
        self.rtnl = RtNetlink(namespace)

    # -- ip link -----------------------------------------------------------
    def link_show(self, dev: str = "") -> str:
        if dev:
            try:
                links = [self.rtnl.get_link(dev)]
            except KeyError:
                raise ToolError(f'Device "{dev}" does not exist.') from None
        else:
            links = self.rtnl.get_links()
        lines: List[str] = []
        for link in links:
            state = "UP" if link.up else "DOWN"
            carrier = "" if link.carrier else " NO-CARRIER"
            lines.append(
                f"{link.ifindex}: {link.name}: <{state}{carrier}> "
                f"mtu {link.mtu}"
            )
            lines.append(f"    link/ether {link.mac}")
        return "\n".join(lines)

    def link_set(self, dev: str, up: bool) -> str:
        try:
            self.rtnl.set_link_up(dev, up)
        except KeyError:
            raise ToolError(f'Device "{dev}" does not exist.') from None
        return ""

    def link_stats(self, dev: str) -> dict:
        try:
            return self.rtnl.get_link(dev).stats
        except KeyError:
            raise ToolError(f'Device "{dev}" does not exist.') from None

    # -- ip address ----------------------------------------------------------
    def address_show(self, dev: str = "") -> str:
        if dev and not self.rtnl.ns.has_device(dev):
            raise ToolError(f'Device "{dev}" does not exist.')
        lines = []
        for addr in self.rtnl.get_addresses():
            if dev and addr["dev"] != dev:
                continue
            lines.append(f"    inet {addr['address']} dev {addr['dev']}")
        return "\n".join(lines)

    def address_add(self, dev: str, cidr: str) -> str:
        if not self.rtnl.ns.has_device(dev):
            raise ToolError(f'Device "{dev}" does not exist.')
        ip, _, plen = cidr.partition("/")
        self.rtnl.add_address(dev, ip, int(plen or "32"))
        return ""

    # -- ip route -----------------------------------------------------------
    def route_show(self) -> str:
        return "\n".join(r.render() for r in self.rtnl.get_routes())

    def route_add(self, prefix: int, prefix_len: int, dev: str,
                  gateway: int = 0) -> str:
        if not self.rtnl.ns.has_device(dev):
            raise ToolError(f'Device "{dev}" does not exist.')
        self.rtnl.add_route(prefix, prefix_len, dev, gateway)
        return ""

    # -- ip neigh -----------------------------------------------------------
    def neigh_show(self) -> str:
        return "\n".join(n.render() for n in self.rtnl.get_neighbors())
