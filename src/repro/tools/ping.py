"""``ping`` and ``arping``: L3 and L2 reachability checks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.kernel.namespace import NetNamespace
from repro.net.addresses import ip_to_int
from repro.net.builder import make_arp_request
from repro.net.icmp import IcmpHeader, IcmpType
from repro.net.ipv4 import IPProto
from repro.sim.cpu import ExecContext
from repro.tools.iproute import ToolError


@dataclass
class PingResult:
    transmitted: int
    received: int

    @property
    def loss_pct(self) -> float:
        if self.transmitted == 0:
            return 0.0
        return 100.0 * (self.transmitted - self.received) / self.transmitted

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.transmitted} packets transmitted, {self.received} "
            f"received, {self.loss_pct:.0f}% packet loss"
        )


def ping(
    namespace: NetNamespace,
    dst: str,
    ctx: ExecContext,
    pump: Callable[[], object],
    count: int = 3,
) -> PingResult:
    """ICMP echo through the namespace's own stack.

    ``pump`` drives the simulated world between send and receive (the
    real tool just sleeps while the kernel does this).
    """
    dst_ip = ip_to_int(dst)
    if namespace.routes.lookup(dst_ip) is None:
        raise ToolError(f"connect: Network is unreachable")
    received = 0
    for seq in range(1, count + 1):
        replies = _count_echo_replies(namespace)
        body = IcmpHeader(IcmpType.ECHO_REQUEST, identifier=0x1234,
                          sequence=seq).pack(b"\x00" * 48)
        namespace.stack.ip_output(dst_ip, IPProto.ICMP, body, ctx)
        pump()
        if _count_echo_replies(namespace) > replies:
            received += 1
    return PingResult(transmitted=count, received=received)


def _count_echo_replies(namespace: NetNamespace) -> int:
    # The stack counts inbound ICMP; replies to us arrive as ECHO_REPLY
    # and are tallied under IcmpInMsgs.  We track a dedicated counter.
    return namespace.stack.counters.get("IcmpEchoRepliesReceived", 0)


def arping(
    namespace: NetNamespace,
    dev: str,
    dst: str,
    ctx: ExecContext,
    pump: Callable[[], object],
    count: int = 1,
) -> PingResult:
    """ARP who-has probes out of a specific device."""
    try:
        device = namespace.device(dev)
    except KeyError:
        raise ToolError(f"Interface {dev!r} not found") from None
    dst_ip = ip_to_int(dst)
    addrs = namespace.addresses(dev)
    if not addrs:
        raise ToolError(f"no IPv4 address on {dev}")
    src_ip = addrs[0][1]
    received = 0
    for _ in range(count):
        request = make_arp_request(device.mac, src_ip, dst_ip)
        device.transmit(request, ctx)
        pump()
        neighbor = namespace.neighbors.lookup(dst_ip)
        if neighbor is not None:
            received += 1
    return PingResult(transmitted=count, received=received)
