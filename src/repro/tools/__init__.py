"""The Linux networking tools of the paper's Table 1.

Each command here works the way its real counterpart does: through
rtnetlink and kernel facilities.  That is the paper's compatibility
argument in executable form — they all work on any kernel-managed device
(including one feeding OVS through AF_XDP), and all of them fail with
``Device does not exist`` on a NIC bound to DPDK.
"""

from repro.tools.iproute import IpCommand
from repro.tools.ping import arping, ping
from repro.tools.nstat import nstat
from repro.tools.tcpdump import Tcpdump
from repro.tools.ethtool import Ethtool

__all__ = ["IpCommand", "ping", "arping", "nstat", "Tcpdump", "Ethtool"]
