"""``ethtool``: NIC feature inspection and ntuple steering.

``ethtool --config-ntuple`` is how the paper steers traffic classes to
specific queues under the Mellanox per-queue XDP model (Figure 6b).
"""

from __future__ import annotations

from repro.kernel.namespace import NetNamespace
from repro.kernel.nic import NtupleRule, PhysicalNic
from repro.tools.iproute import ToolError


class Ethtool:
    def __init__(self, namespace: NetNamespace, dev: str) -> None:
        try:
            device = namespace.device(dev)
        except KeyError:
            raise ToolError(
                f"Cannot get device settings: No such device ({dev})"
            ) from None
        if not isinstance(device, PhysicalNic):
            raise ToolError(f"{dev}: not an ethtool-capable device")
        self.nic = device

    def show_features(self) -> str:
        f = self.nic.features
        def onoff(flag: bool) -> str:
            return "on" if flag else "off"

        return "\n".join(
            [
                f"rx-checksumming: {onoff(f.rx_checksum)}",
                f"tx-checksumming: {onoff(f.tx_checksum)}",
                f"tcp-segmentation-offload: {onoff(f.tso)}",
                f"receive-hashing: {onoff(f.rx_hash)}",
            ]
        )

    def show_channels(self) -> str:
        return f"Combined: {self.nic.n_queues}"

    def config_ntuple(
        self,
        queue: int,
        proto: "int | None" = None,
        dst_ip: "int | None" = None,
        dst_port: "int | None" = None,
    ) -> str:
        """flow-type ... action <queue>."""
        try:
            self.nic.add_ntuple_rule(
                NtupleRule(queue=queue, proto=proto, dst_ip=dst_ip,
                           dst_port=dst_port)
            )
        except ValueError as exc:
            raise ToolError(f"rxclass: {exc}") from None
        return f"Added rule with ID {len(self.nic.ntuple_rules) - 1}"

    def show_ntuple(self) -> str:
        lines = [f"{len(self.nic.ntuple_rules)} RX rings available"]
        for i, rule in enumerate(self.nic.ntuple_rules):
            lines.append(f"Filter: {i}  Action: queue {rule.queue}")
        return "\n".join(lines)
