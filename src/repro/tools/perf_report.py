"""perf report for virtual time: render a trace ledger as a profile.

``ovs-appctl dpif-netdev/pmd-perf-show`` answers "where do the cycles
go" on a live vswitchd; this is the offline equivalent for the
simulator.  Feed it a :class:`~repro.sim.trace.TraceRecorder` and it
prints the per-stage breakdown, wait time, nested (inclusive) spans,
event counters and the conservation audit.

As a CLI it runs one experiment under a fresh recorder::

    PYTHONPATH=src python -m repro.tools.perf_report fig2
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.sim import trace
from repro.sim.trace import TraceRecorder


def format_report(rec: TraceRecorder,
                  title: str = "virtual-time profile") -> str:
    """The full profile: stages, waits, nested spans, counters, audit."""
    lines: List[str] = [rec.render(title)]
    if rec.waits:
        lines.append("")
        lines.append("waits (wall time, no CPU):")
        for stage, (count, ns) in sorted(
            rec.waits.items(), key=lambda kv: -kv[1][1]
        ):
            lines.append(f"  {stage:24s} {ns:>14.0f} ns  (x{int(count)})")
    if rec.span_totals:
        lines.append("")
        lines.append("nested spans (inclusive):")
        for path, (count, ns) in sorted(rec.span_totals.items()):
            lines.append(f"  {path:24s} {ns:>14.0f} ns  (x{int(count)})")
    if rec.counters:
        lines.append("")
        lines.append("event counters:")
        for name, count in sorted(rec.counters.items()):
            lines.append(f"  {name:32s} {count:>12d}")
    lines.append("")
    status = "OK" if rec.conserved() else "VIOLATED"
    lines.append(
        f"conservation: spans {rec.total_ns:.0f} ns vs "
        f"cpu {rec.cpu_charged_ns:.0f} ns -> {status}"
    )
    return "\n".join(lines)


def profile_experiment(name: str) -> TraceRecorder:
    """Run one ``python -m repro`` experiment under a fresh recorder."""
    import importlib

    from repro.__main__ import EXPERIMENTS

    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        )
    _title, module_name = EXPERIMENTS[name]
    module = importlib.import_module(module_name)
    with trace.recording() as rec:
        module.main()
    return rec


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if "--help" in argv or "-h" in argv:
        print(__doc__)
        return 0
    name = argv[0] if argv else "fig2"
    try:
        rec = profile_experiment(name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print()
    print(format_report(rec, title=f"virtual-time profile: {name}"))
    return 0 if rec.conserved() else 1


if __name__ == "__main__":
    raise SystemExit(main())
