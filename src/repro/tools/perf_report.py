"""perf report for virtual time: render a trace ledger as a profile.

``ovs-appctl dpif-netdev/pmd-perf-show`` answers "where do the cycles
go" on a live vswitchd; this is the offline equivalent for the
simulator.  Feed it a :class:`~repro.sim.trace.TraceRecorder` and it
prints the per-stage breakdown, wait time, nested (inclusive) spans,
event counters and the conservation audit.

As a CLI it runs any ``python -m repro`` experiment under a fresh
recorder (with a call-tree profiler attached)::

    PYTHONPATH=src python -m repro.tools.perf_report fig9
    PYTHONPATH=src python -m repro.tools.perf_report fig9 --tree
    PYTHONPATH=src python -m repro.tools.perf_report fig9 --flame out.folded
    PYTHONPATH=src python -m repro.tools.perf_report table5 --json prof.json
    PYTHONPATH=src python -m repro.tools.perf_report fig2 table2 --diff

``--flame`` writes Brendan Gregg collapsed stacks (one ``path ns`` line
per call-tree node) ready for ``flamegraph.pl``; ``--diff`` profiles two
experiments and prints the per-path inclusive-ns deltas.  Exit status is
nonzero when the ledger fails its conservation audit.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.sim import profile, trace
from repro.sim.trace import TraceRecorder

USAGE = """\
usage: python -m repro.tools.perf_report EXPERIMENT [EXPERIMENT2] [options]

Run one experiment (any name `python -m repro --list` knows) under a
fresh trace recorder with a call-tree profiler attached, then render
the requested views.

options:
  -h, --help       show this message and exit
  --tree           print the perf-report-style call tree
  --min-share PCT  hide tree paths below this inclusive share (default 0.05)
  --flame [PATH]   write collapsed stacks for flamegraph.pl
                   (to PATH, or stdout when PATH is omitted)
  --json [PATH]    write the profile as JSON (tree + conservation legs)
  --diff           profile two experiments and print per-path deltas
                   (requires exactly two experiment names)
"""


def format_report(rec: TraceRecorder,
                  title: str = "virtual-time profile") -> str:
    """The full profile: stages, waits, nested spans, counters, audit."""
    lines: List[str] = [rec.render(title)]
    if rec.waits:
        lines.append("")
        lines.append("waits (wall time, no CPU):")
        for stage, (count, ns) in sorted(
            rec.waits.items(), key=lambda kv: -kv[1][1]
        ):
            lines.append(f"  {stage:24s} {ns:>14.0f} ns  (x{int(count)})")
    if rec.span_totals:
        lines.append("")
        lines.append("nested spans (inclusive):")
        for path, (count, ns) in sorted(rec.span_totals.items()):
            lines.append(f"  {path:24s} {ns:>14.0f} ns  (x{int(count)})")
    if rec.counters:
        lines.append("")
        lines.append("event counters:")
        for name, count in sorted(rec.counters.items()):
            lines.append(f"  {name:32s} {count:>12d}")
    lines.append("")
    status = "OK" if rec.conserved() else "VIOLATED"
    lines.append(
        f"conservation: spans {rec.total_ns:.0f} ns vs "
        f"cpu {rec.cpu_charged_ns:.0f} ns -> {status}"
    )
    return "\n".join(lines)


def _call_main(module) -> None:
    """Invoke an experiment's ``main`` with an empty argv.

    Experiment mains come in two shapes: ``main()`` and
    ``main(argv=None)`` where None means "read sys.argv".  The latter
    must get an explicit ``[]`` here, or this tool's own flags
    (``--flame``, ...) would leak into the experiment's parser.
    """
    import inspect

    main_fn = module.main
    try:
        takes_argv = bool(inspect.signature(main_fn).parameters)
    except (TypeError, ValueError):  # pragma: no cover - C callables
        takes_argv = False
    if takes_argv:
        main_fn([])
    else:
        main_fn()


def profile_experiment(name: str,
                       with_profiler: bool = True) -> TraceRecorder:
    """Run one ``python -m repro`` experiment under a fresh recorder."""
    import importlib

    from repro.__main__ import EXPERIMENTS

    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        )
    _title, module_name = EXPERIMENTS[name]
    module = importlib.import_module(module_name)
    if with_profiler:
        with profile.profiling() as rec:
            _call_main(module)
    else:
        with trace.recording() as rec:
            _call_main(module)
    return rec


def _optional_path(argv: List[str], flag: str) -> "tuple[bool, Optional[str]]":
    """Consume ``flag [PATH]`` from argv: (present, path-or-None)."""
    if flag not in argv:
        return False, None
    i = argv.index(flag)
    argv.pop(i)
    if i < len(argv) and not argv[i].startswith("-"):
        return True, argv.pop(i)
    return True, None


def _emit(text: str, path: Optional[str]) -> None:
    if path is None:
        print(text)
    else:
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {path}")


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--help" in argv or "-h" in argv:
        print(USAGE)
        return 0
    want_flame, flame_path = _optional_path(argv, "--flame")
    want_json, json_path = _optional_path(argv, "--json")
    want_tree = "--tree" in argv
    if want_tree:
        argv.remove("--tree")
    want_diff = "--diff" in argv
    if want_diff:
        argv.remove("--diff")
    min_share = 0.05
    if "--min-share" in argv:
        i = argv.index("--min-share")
        argv.pop(i)
        try:
            min_share = float(argv.pop(i))
        except (IndexError, ValueError):
            print("--min-share needs a number", file=sys.stderr)
            return 2
    unknown = [a for a in argv if a.startswith("-")]
    if unknown:
        print(f"unknown option(s): {', '.join(unknown)}", file=sys.stderr)
        print(USAGE, file=sys.stderr)
        return 2
    names = argv or ["fig2"]
    if want_diff and len(names) != 2:
        print("--diff needs exactly two experiment names", file=sys.stderr)
        return 2
    if not want_diff and len(names) != 1:
        print("one experiment at a time (or use --diff)", file=sys.stderr)
        return 2

    try:
        recs = [profile_experiment(name) for name in names]
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    if want_diff:
        a, b = (rec.profiler.root.to_dict() for rec in recs)
        print()
        print(profile.diff_profiles(a, b, names[0], names[1]))
        return 0 if all(rec.conserved() for rec in recs) else 1

    rec = recs[0]
    name = names[0]
    print()
    print(format_report(rec, title=f"virtual-time profile: {name}"))
    if want_tree:
        print()
        print(profile.render_tree(
            rec.profiler.root,
            title=f"call tree: {name}",
            min_share=min_share,
        ))
    if want_flame:
        _emit(profile.collapse(rec.profiler.root), flame_path)
    if want_json:
        _emit(profile.profile_json(rec), json_path)
    return 0 if rec.conserved() else 1


if __name__ == "__main__":
    raise SystemExit(main())
