"""Packet-conservation audit for the AF_XDP forwarding pipeline.

The trace layer's invariant is ``spans == cpu_charged_ns``; this is the
packet-side analogue: every frame offered to the ingress NIC must be
accounted for — forwarded out, dropped at a *named* layer counter, or
diverted to the kernel stack.  A sink nobody counts is exactly the kind
of silent loss the fault-injection layer exists to expose, so the
degradation experiment and the Hypothesis property suite both assert
:meth:`PacketLedger.conserved` at every sweep point.

Layer map (ingress to egress)::

    NIC hw ring      nic.rx_missed
    XDP dispatch     nic.xdp_drops / xdp_passes / xdp_redirect_failed
    XSK rx           sock.rx_dropped_no_fill / rx_dropped_overrun
    dpif-netdev      stats.dropped  (lost upcalls, action drops, ...)
    XSK tx           sock.tx_dropped_no_umem / _ring_full / _kick
    wire             sock.tx_sent
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.telemetry.drops import (
    DropReason,
    XSK_RX_REASONS,
    XSK_TX_REASONS,
)


@dataclass
class PacketLedger:
    """One audit of ``offered`` packets against per-layer outcomes.

    ``sinks`` maps a named terminal outcome (a drop counter or a
    diversion like "to the kernel stack") to a packet count.
    """

    offered: int
    forwarded: int
    sinks: Dict[str, int] = field(default_factory=dict)

    @property
    def total_dropped(self) -> int:
        return sum(self.sinks.values())

    @property
    def accounted(self) -> int:
        return self.forwarded + self.total_dropped

    def conserved(self) -> bool:
        return self.offered == self.accounted

    def render(self) -> str:
        lines = [f"offered    {self.offered}",
                 f"forwarded  {self.forwarded}"]
        for name in sorted(self.sinks):
            if self.sinks[name]:
                lines.append(f"{name:26s} {self.sinks[name]}")
        status = "balanced" if self.conserved() else (
            f"UNACCOUNTED {self.offered - self.accounted}")
        lines.append(f"accounted  {self.accounted} ({status})")
        return "\n".join(lines)


def afxdp_packet_ledger(
    offered: int,
    nic_in,
    driver_in,
    driver_out,
    dpif,
    extra_sinks: "Dict[str, int] | None" = None,
) -> PacketLedger:
    """Audit an AF_XDP P2P world after its queues have drained.

    ``driver_in``/``driver_out`` are the :class:`~repro.afxdp.driver.
    AfxdpDriver` instances on the ingress and egress NICs; ``offered``
    is the number of frames the traffic generator put on the wire
    toward ``nic_in``.  ``extra_sinks`` merges additional named
    outcomes the drivers cannot see themselves — e.g. the supervisor's
    ``crash.xsk_rx_inflight`` count of frames that died in a crashed
    process's rings.
    """
    sinks: Dict[str, int] = {}

    def sink(name: str, n: int) -> None:
        if n:
            sinks[name] = sinks.get(name, 0) + n

    for name, n in (extra_sinks or {}).items():
        sink(name, n)

    # Every sink name comes from the drop-reason taxonomy, so the
    # ledger's vocabulary and the telemetry layer's can never drift:
    # reconciliation matches them string-for-string.
    sink(DropReason.NIC_RX_MISSED.value, nic_in.rx_missed)
    sink(DropReason.NIC_XDP_DROP.value, nic_in.xdp_drops)
    # PASS verdicts leave the AF_XDP pipeline for the kernel stack; in
    # a P2P bench nothing consumes them, but they are *diverted*, not
    # lost: the dispatch accounted for them.
    sink(DropReason.NIC_XDP_PASS_TO_STACK.value, nic_in.xdp_passes)
    sink(DropReason.NIC_XDP_REDIRECT_FAILED.value,
         nic_in.xdp_redirect_failed)
    forwarded = 0
    for sock in driver_in.sockets.values():
        for reason in XSK_RX_REASONS:
            sink(reason.value, getattr(sock, reason.counter))
    for reason in XSK_RX_REASONS:
        sink(reason.value, driver_in.retired.get(reason.counter, 0))
    sink(DropReason.DP_DROPPED.value, dpif.stats.dropped)
    # Tx-side outcomes on every distinct driver (a hairpin config reuses
    # the ingress NIC for output; don't double-count it).  Counters of
    # sockets retired by a supervised restart live in ``driver.retired``.
    drivers = ([driver_in] if driver_in is driver_out
               else [driver_in, driver_out])
    for driver in drivers:
        for sock in driver.sockets.values():
            for reason in XSK_TX_REASONS:
                sink(reason.value, getattr(sock, reason.counter))
            forwarded += sock.tx_sent
        for reason in XSK_TX_REASONS:
            sink(reason.value, driver.retired.get(reason.counter, 0))
        forwarded += driver.retired.get("tx_sent", 0)
    return PacketLedger(offered=offered, forwarded=forwarded, sinks=sinks)
