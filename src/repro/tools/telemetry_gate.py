"""CI gate: telemetry off means *zero* overhead, byte for byte.

For each experiment (fig2, fig9, table2, table5) this runs the workload
twice — once plain, once with an inert :class:`~repro.telemetry.
Telemetry` session installed (both the sampler and the exporter off) —
and byte-diffs the trace ledger, the counter map, and the
collapsed-stack flamegraph.  An installed-but-disabled session must be
indistinguishable from no session at all; any difference means a hot
path charges, counts, or draws randomness even when monitoring is off.

A third run with full sampling (1/1) plus IPFIX must *differ* from the
plain run — otherwise the hooks are dead and the identity check proves
nothing.

Usage::

    PYTHONPATH=src python -m repro.tools.telemetry_gate [--experiments fig2,...]

Exit status 0 when every experiment passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import contextlib
from typing import Dict, Optional, Tuple

from repro import telemetry
from repro.sim import profile
from repro.sim.profile import collapse
from repro.telemetry import IpfixConfig, SflowConfig, Telemetry
from repro.telemetry.sflow import SAMPLE_POINTS

PACKETS = {"fig2": 400, "fig9": 300, "table2": 400, "table5": 500}


def _run_experiment(experiment: str, packets: int) -> None:
    if experiment == "fig2":
        from repro.experiments.fig2_single_flow import run_fig2

        run_fig2(packets=packets)
    elif experiment == "fig9":
        from repro.experiments.fig9_forwarding import run_fig9

        run_fig9(packets=packets, scenarios=("P2P",))
    elif experiment == "table2":
        from repro.experiments.table2_optimizations import run_table2

        run_table2(packets=packets)
    else:
        from repro.experiments.table5_xdp_cost import run_table5

        run_table5(packets=packets)


def _observe(experiment: str,
             session: Optional[Telemetry]) -> Tuple[str, Dict, str]:
    with contextlib.ExitStack() as stack:
        if session is not None:
            stack.enter_context(telemetry.monitoring(session))
        rec = stack.enter_context(profile.profiling())
        _run_experiment(experiment, PACKETS[experiment])
    return rec.ledger(), dict(rec.counters), collapse(rec.profiler.root)


def _diff(label, on, off):
    led_on, counters_on, flame_on = on
    led_off, counters_off, flame_off = off
    if led_on != led_off:
        return f"{label}: trace ledger differs"
    if counters_on != counters_off:
        diff = {
            k: (counters_on.get(k), counters_off.get(k))
            for k in set(counters_on) | set(counters_off)
            if counters_on.get(k) != counters_off.get(k)
        }
        return f"{label}: counters differ: {diff!r}"
    if flame_on != flame_off:
        return f"{label}: collapsed-stack flamegraph differs"
    return None


def check_experiment(experiment: str) -> Tuple[bool, str]:
    """(ok, detail): plain vs inert session, plus hooks-alive check."""
    plain = _observe(experiment, None)
    inert = _observe(experiment, Telemetry())
    detail = _diff("inert session", plain, inert)
    if detail is not None:
        return False, detail
    led, counters, flame = plain
    if not (led and flame):
        return False, "vacuous run: no ledger/flame activity"
    # Hooks must be alive: a fully monitored run observes packets
    # somewhere, so *something* diverges from the plain run.
    full = _observe(experiment, Telemetry(
        sflow=SflowConfig(rate=1, points=SAMPLE_POINTS),
        ipfix=IpfixConfig()))
    if _diff("full sampling", plain, full) is None:
        return False, "vacuous gate: 1/1 sampling changed nothing"
    return True, (f"ledger {len(led)}B, {len(counters)} counters, "
                  f"flame {len(flame)}B identical with inert session; "
                  f"1/1 sampling diverges")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiments",
                        default=",".join(sorted(PACKETS)),
                        help="comma-separated subset to check")
    args = parser.parse_args(argv)

    failed = False
    for experiment in args.experiments.split(","):
        experiment = experiment.strip()
        if experiment not in PACKETS:
            print(f"{experiment}: unknown experiment")
            failed = True
            continue
        ok, detail = check_experiment(experiment)
        print(f"{experiment:8s} {'OK' if ok else 'FAIL'}  {detail}")
        failed = failed or not ok
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
