"""pcap file output, so captures can leave the simulation.

``tcpdump -w capture.pcap`` equivalent: simulated captures serialize to
the classic libpcap format (magic 0xa1b2c3d4, LINKTYPE_ETHERNET) and open
in Wireshark/tcpdump — handy for debugging pipelines by inspecting the
actual bytes the simulated datapath produced.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple

from repro.net.packet import Packet

PCAP_MAGIC = 0xA1B2C3D4
LINKTYPE_ETHERNET = 1
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


def pcap_bytes(
    packets: Iterable["Packet | bytes"],
    snaplen: int = 65535,
    timestamps_us: Sequence[int] = (),
) -> bytes:
    """Serialize frames to a classic pcap capture."""
    out = [
        _GLOBAL_HEADER.pack(PCAP_MAGIC, 2, 4, 0, 0, snaplen,
                            LINKTYPE_ETHERNET)
    ]
    for i, pkt in enumerate(packets):
        data = pkt.data if isinstance(pkt, Packet) else bytes(pkt)
        ts = timestamps_us[i] if i < len(timestamps_us) else i
        captured = data[:snaplen]
        out.append(_RECORD_HEADER.pack(ts // 1_000_000, ts % 1_000_000,
                                       len(captured), len(data)))
        out.append(captured)
    return b"".join(out)


def write_pcap(
    path: str,
    packets: Iterable["Packet | bytes"],
    timestamps_us: Sequence[int] = (),
) -> int:
    """Write a capture file; returns the number of frames written."""
    frames = list(packets)
    with open(path, "wb") as f:
        f.write(pcap_bytes(frames, timestamps_us=timestamps_us))
    return len(frames)


def read_pcap(path: str) -> List[Tuple[int, bytes]]:
    """Read a classic pcap back as ``[(timestamp_us, frame_bytes)]``."""
    with open(path, "rb") as f:
        blob = f.read()
    if len(blob) < _GLOBAL_HEADER.size:
        raise ValueError("not a pcap file (truncated header)")
    magic, _maj, _min, _tz, _sig, _snap, linktype = _GLOBAL_HEADER.unpack_from(
        blob, 0)
    if magic != PCAP_MAGIC:
        raise ValueError(f"not a pcap file (magic {magic:#x})")
    if linktype != LINKTYPE_ETHERNET:
        raise ValueError(f"unsupported linktype {linktype}")
    frames = []
    offset = _GLOBAL_HEADER.size
    while offset + _RECORD_HEADER.size <= len(blob):
        sec, usec, incl, _orig = _RECORD_HEADER.unpack_from(blob, offset)
        offset += _RECORD_HEADER.size
        if offset + incl > len(blob):
            raise ValueError("truncated pcap record")
        frames.append((sec * 1_000_000 + usec, blob[offset:offset + incl]))
        offset += incl
    return frames
