"""``tcpdump``: packet capture on a kernel-managed device.

Attaches a tap to the device (the AF_PACKET capture point) and renders
one summary line per frame — which works on a NIC feeding OVS through
AF_XDP because the device stays under kernel management (§2.2.3), and is
impossible on a DPDK-bound NIC because the device is gone from the
kernel (Table 1).
"""

from __future__ import annotations

import struct
from typing import List

from repro.kernel.namespace import NetNamespace
from repro.net.addresses import int_to_ip
from repro.net.ethernet import EtherType
from repro.net.flow import extract_flow
from repro.net.ipv4 import IPProto
from repro.net.packet import Packet
from repro.tools.iproute import ToolError


class Tcpdump:
    def __init__(self, namespace: NetNamespace, dev: str) -> None:
        try:
            self.device = namespace.device(dev)
        except KeyError:
            raise ToolError(
                f"tcpdump: {dev}: No such device exists"
            ) from None
        self.lines: List[str] = []
        self.packets: List[Packet] = []
        self._tap = self._capture
        self.device.add_tap(self._tap)
        self._open = True

    def _capture(self, pkt: Packet, direction: str) -> None:
        self.lines.append(f"[{direction}] {render_packet(pkt)}")
        self.packets.append(pkt)

    def stop(self) -> List[str]:
        if self._open:
            self.device.remove_tap(self._tap)
            self._open = False
        return list(self.lines)

    def save(self, path: str) -> int:
        """tcpdump -w: write the capture as a real pcap file."""
        from repro.tools.pcap import write_pcap

        return write_pcap(path, self.packets)

    def __enter__(self) -> "Tcpdump":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def render_packet(pkt: Packet) -> str:
    key = extract_flow(pkt.data)
    if key.eth_type == EtherType.ARP:
        op = "request" if key.nw_proto == 1 else "reply"
        return (
            f"ARP, {op} who-has {int_to_ip(key.nw_dst)} "
            f"tell {int_to_ip(key.nw_src)}, length {len(pkt)}"
        )
    if key.eth_type == EtherType.IPV4:
        proto = {
            IPProto.TCP: "TCP", IPProto.UDP: "UDP", IPProto.ICMP: "ICMP",
            IPProto.GRE: "GRE",
        }.get(key.nw_proto, f"proto-{key.nw_proto}")
        if key.nw_proto in (IPProto.TCP, IPProto.UDP):
            return (
                f"IP {int_to_ip(key.nw_src)}.{key.tp_src} > "
                f"{int_to_ip(key.nw_dst)}.{key.tp_dst}: {proto}, "
                f"length {len(pkt)}"
            )
        return (
            f"IP {int_to_ip(key.nw_src)} > {int_to_ip(key.nw_dst)}: "
            f"{proto}, length {len(pkt)}"
        )
    (ethertype,) = struct.unpack_from("!H", pkt.data, 12)
    return f"ethertype {ethertype:#06x}, length {len(pkt)}"
