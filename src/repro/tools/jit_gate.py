"""CI gate: the eBPF JIT and the dp-JIT must be invisible to every
observable.

For each experiment (fig2, fig9, table2, table5) this runs the workload
three times — once with every compiler enabled (the default fastpath),
once with the eBPF JIT disabled (interpreter + verdict memo), and once
with the megaflow dp-JIT disabled (generic action walk) — and byte-diffs
the trace ledger, the counter map, and the collapsed-stack flamegraph.
Any difference is a charge-exactness bug in one of the translators and
fails the build.

Usage::

    PYTHONPATH=src python -m repro.tools.jit_gate [--experiments fig2,...]

Exit status 0 when every experiment is byte-identical, 1 otherwise.
"""

from __future__ import annotations

import argparse
import contextlib
from typing import Dict, Tuple

from repro.ebpf import jit
from repro.ovs import dpjit
from repro.sim import profile
from repro.sim.profile import collapse

PACKETS = {"fig2": 400, "fig9": 300, "table2": 400, "table5": 500}
#: Experiments that exercise DpifNetdev (table5 is pure XDP: no megaflow
#: dispatch happens there, so no dp-JIT vacuousness check applies).
DP_EXPERIMENTS = {"fig2", "fig9", "table2"}


def _run_experiment(experiment: str, packets: int) -> None:
    if experiment == "fig2":
        from repro.experiments.fig2_single_flow import run_fig2

        run_fig2(packets=packets)
    elif experiment == "fig9":
        from repro.experiments.fig9_forwarding import run_fig9

        run_fig9(packets=packets, scenarios=("P2P",))
    elif experiment == "table2":
        from repro.experiments.table2_optimizations import run_table2

        run_table2(packets=packets)
    else:
        from repro.experiments.table5_xdp_cost import run_table5

        run_table5(packets=packets)


def _observe(experiment: str, jit_on: bool = True,
             dpjit_on: bool = True) -> Tuple[str, Dict, str]:
    with contextlib.ExitStack() as stack:
        if not jit_on:
            stack.enter_context(jit.disabled())
        if not dpjit_on:
            stack.enter_context(dpjit.disabled())
        rec = stack.enter_context(profile.profiling())
        _run_experiment(experiment, PACKETS[experiment])
    return rec.ledger(), dict(rec.counters), collapse(rec.profiler.root)


def _diff(label, on, off):
    led_on, counters_on, flame_on = on
    led_off, counters_off, flame_off = off
    if led_on != led_off:
        return f"{label}: trace ledger differs"
    if counters_on != counters_off:
        diff = {
            k: (counters_on.get(k), counters_off.get(k))
            for k in set(counters_on) | set(counters_off)
            if counters_on.get(k) != counters_off.get(k)
        }
        return f"{label}: counters differ: {diff!r}"
    if flame_on != flame_off:
        return f"{label}: collapsed-stack flamegraph differs"
    return None


def check_experiment(experiment: str) -> Tuple[bool, str]:
    """(ok, detail): both-compilers-on vs each compiler disabled."""
    dispatched_before = dpjit.STATS.dispatched
    on = _observe(experiment)
    dispatched = dpjit.STATS.dispatched - dispatched_before
    no_ebpf = _observe(experiment, jit_on=False)
    no_dpjit = _observe(experiment, dpjit_on=False)
    for label, other in (("ebpf-jit off", no_ebpf),
                         ("dp-jit off", no_dpjit)):
        detail = _diff(label, on, other)
        if detail is not None:
            return False, detail
    led_on, counters_on, flame_on = on
    if not (led_on and flame_on and counters_on.get("ebpf.runs")):
        return False, "vacuous run: no ledger/flame/ebpf activity"
    if experiment in DP_EXPERIMENTS and not dispatched:
        return False, "vacuous run: no compiled megaflow dispatched"
    return True, (f"ledger {len(led_on)}B, {len(counters_on)} counters, "
                  f"flame {len(flame_on)}B identical across 3 configs"
                  + (f"; {dispatched} dp-jit dispatches"
                     if experiment in DP_EXPERIMENTS else ""))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiments",
                        default=",".join(sorted(PACKETS)),
                        help="comma-separated subset to check")
    args = parser.parse_args(argv)

    failed = False
    for experiment in args.experiments.split(","):
        experiment = experiment.strip()
        if experiment not in PACKETS:
            print(f"{experiment}: unknown experiment")
            failed = True
            continue
        ok, detail = check_experiment(experiment)
        print(f"{experiment:8s} {'OK' if ok else 'FAIL'}  {detail}")
        failed = failed or not ok
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
