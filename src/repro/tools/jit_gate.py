"""CI gate: the eBPF JIT must be invisible to every observable.

For each experiment (fig2, fig9, table2, table5) this runs the workload
twice — once with the JIT enabled (the default fastpath) and once with
it disabled (interpreter + verdict memo) — and byte-diffs the trace
ledger, the counter map, and the collapsed-stack flamegraph.  Any
difference is a charge-exactness bug in the translator and fails the
build.

Usage::

    PYTHONPATH=src python -m repro.tools.jit_gate [--experiments fig2,...]

Exit status 0 when every experiment is byte-identical, 1 otherwise.
"""

from __future__ import annotations

import argparse
import contextlib
from typing import Dict, Tuple

from repro.ebpf import jit
from repro.sim import profile
from repro.sim.profile import collapse

PACKETS = {"fig2": 400, "fig9": 300, "table2": 400, "table5": 500}


def _run_experiment(experiment: str, packets: int) -> None:
    if experiment == "fig2":
        from repro.experiments.fig2_single_flow import run_fig2

        run_fig2(packets=packets)
    elif experiment == "fig9":
        from repro.experiments.fig9_forwarding import run_fig9

        run_fig9(packets=packets, scenarios=("P2P",))
    elif experiment == "table2":
        from repro.experiments.table2_optimizations import run_table2

        run_table2(packets=packets)
    else:
        from repro.experiments.table5_xdp_cost import run_table5

        run_table5(packets=packets)


def _observe(experiment: str, jit_on: bool) -> Tuple[str, Dict, str]:
    with contextlib.ExitStack() as stack:
        if not jit_on:
            stack.enter_context(jit.disabled())
        rec = stack.enter_context(profile.profiling())
        _run_experiment(experiment, PACKETS[experiment])
    return rec.ledger(), dict(rec.counters), collapse(rec.profiler.root)


def check_experiment(experiment: str) -> Tuple[bool, str]:
    """(ok, detail) for one experiment's JIT-on vs JIT-off diff."""
    led_on, counters_on, flame_on = _observe(experiment, jit_on=True)
    led_off, counters_off, flame_off = _observe(experiment, jit_on=False)
    if led_on != led_off:
        return False, "trace ledger differs"
    if counters_on != counters_off:
        diff = {
            k: (counters_on.get(k), counters_off.get(k))
            for k in set(counters_on) | set(counters_off)
            if counters_on.get(k) != counters_off.get(k)
        }
        return False, f"counters differ: {diff!r}"
    if flame_on != flame_off:
        return False, "collapsed-stack flamegraph differs"
    if not (led_on and flame_on and counters_on.get("ebpf.runs")):
        return False, "vacuous run: no ledger/flame/ebpf activity"
    return True, (f"ledger {len(led_on)}B, {len(counters_on)} counters, "
                  f"flame {len(flame_on)}B identical")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiments",
                        default=",".join(sorted(PACKETS)),
                        help="comma-separated subset to check")
    args = parser.parse_args(argv)

    failed = False
    for experiment in args.experiments.split(","):
        experiment = experiment.strip()
        if experiment not in PACKETS:
            print(f"{experiment}: unknown experiment")
            failed = True
            continue
        ok, detail = check_experiment(experiment)
        print(f"{experiment:8s} {'OK' if ok else 'FAIL'}  {detail}")
        failed = failed or not ok
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
