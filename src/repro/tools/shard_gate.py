"""CI gate: sharded execution must be invisible to every observable.

For each experiment (fig2, fig9, table2, table5) this runs the workload
serially and then across {2, 4} worker processes, byte-diffing the trace
ledger, the counter map, and the collapsed-stack flamegraph of every
run.  Any difference is a merge-exactness bug in :mod:`repro.sim.shard`
— a float folded out of serial unit order, a counter double-merged, a
profiler path lost in the snapshot — and fails the build.

``--prove-trips`` runs the mutation checks instead: it perturbs the
coordinator's merge (reversed unit order; run-length groups collapsed
into one multiplication each) and asserts the gate *fails* — proof that
a byte-identity gate over these workloads has the power to catch a real
merge bug, not just vacuously pass.

Usage::

    PYTHONPATH=src python -m repro.tools.shard_gate [--experiments ...]
                                                    [--workers 2,4]
                                                    [--prove-trips]

Exit status 0 when every experiment is byte-identical at every worker
count (or, under ``--prove-trips``, when every mutation trips), 1
otherwise.
"""

from __future__ import annotations

import argparse
from typing import Dict, Optional, Tuple

from repro.sim import profile
from repro.sim.profile import collapse

PACKETS = {"fig2": 400, "fig9": 300, "table2": 400, "table5": 500}
WORKERS = (2, 4)

#: Merge mutations that must each trip the gate (satellite: "perturb
#: merge order -> gate fails").
MUTATIONS = ("reorder", "collapse")


def _run_experiment(experiment: str, packets: int, shards: int,
                    mutate: Optional[str] = None) -> None:
    if mutate is not None:
        # Route through run_units directly so the mutation hook is
        # reachable; the public experiment entry points never expose it.
        from repro.sim.shard import run_units

        if experiment == "fig9":
            from repro.experiments.fig9_forwarding import cell_units

            run_units(cell_units(packets, scenarios=("P2P",)),
                      shards=shards, _mutate_merge=mutate)
            return
        raise ValueError("mutation checks run on fig9 only")
    if experiment == "fig2":
        from repro.experiments.fig2_single_flow import run_fig2

        run_fig2(packets=packets, shards=shards)
    elif experiment == "fig9":
        from repro.experiments.fig9_forwarding import run_fig9

        run_fig9(packets=packets, scenarios=("P2P",), shards=shards)
    elif experiment == "table2":
        from repro.experiments.table2_optimizations import run_table2

        run_table2(packets=packets, shards=shards)
    else:
        from repro.experiments.table5_xdp_cost import run_table5

        run_table5(packets=packets, shards=shards)


def _observe(experiment: str, shards: int,
             mutate: Optional[str] = None) -> Tuple[str, Dict, str]:
    with profile.profiling() as rec:
        _run_experiment(experiment, PACKETS[experiment], shards,
                        mutate=mutate)
    return rec.ledger(), dict(rec.counters), collapse(rec.profiler.root)


def _diff(label, serial, sharded):
    led_a, counters_a, flame_a = serial
    led_b, counters_b, flame_b = sharded
    if led_a != led_b:
        return f"{label}: trace ledger differs"
    if counters_a != counters_b:
        diff = {
            k: (counters_a.get(k), counters_b.get(k))
            for k in set(counters_a) | set(counters_b)
            if counters_a.get(k) != counters_b.get(k)
        }
        return f"{label}: counters differ: {diff!r}"
    if flame_a != flame_b:
        return f"{label}: collapsed-stack flamegraph differs"
    return None


def check_experiment(experiment: str,
                     workers=WORKERS) -> Tuple[bool, str]:
    """(ok, detail): serial vs every sharded worker count."""
    serial = _observe(experiment, shards=1)
    for n in workers:
        detail = _diff(f"shards={n}", serial,
                       _observe(experiment, shards=n))
        if detail is not None:
            return False, detail
    ledger, counters, flame = serial
    if not (ledger and flame and counters):
        return False, "vacuous run: no ledger/counters/flame recorded"
    return True, (f"ledger {len(ledger)}B, {len(counters)} counters, "
                  f"flame {len(flame)}B identical at workers "
                  f"{{1,{','.join(str(n) for n in workers)}}}")


def check_mutations(workers=WORKERS) -> Tuple[bool, str]:
    """Every merge mutation must change at least one observable."""
    serial = _observe("fig9", shards=1)
    n = workers[0]
    for mutation in MUTATIONS:
        mutated = _observe("fig9", shards=n, mutate=mutation)
        if _diff(mutation, serial, mutated) is None:
            return False, (f"mutation {mutation!r} did NOT trip the "
                           f"gate at shards={n}: the byte-identity "
                           f"check is vacuous")
    return True, (f"{len(MUTATIONS)} merge mutations "
                  f"({', '.join(MUTATIONS)}) each tripped the gate "
                  f"at shards={n}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiments",
                        default=",".join(sorted(PACKETS)),
                        help="comma-separated subset to check")
    parser.add_argument("--workers", default=",".join(
        str(n) for n in WORKERS),
        help="comma-separated worker counts to compare against serial")
    parser.add_argument("--prove-trips", action="store_true",
                        help="run the merge-mutation checks instead")
    args = parser.parse_args(argv)
    workers = tuple(int(w) for w in args.workers.split(","))

    if args.prove_trips:
        ok, detail = check_mutations(workers)
        print(f"mutations {'OK' if ok else 'FAIL'}  {detail}")
        return 0 if ok else 1

    failed = False
    for experiment in args.experiments.split(","):
        experiment = experiment.strip()
        if experiment not in PACKETS:
            print(f"{experiment}: unknown experiment")
            failed = True
            continue
        ok, detail = check_experiment(experiment, workers)
        print(f"{experiment:8s} {'OK' if ok else 'FAIL'}  {detail}")
        failed = failed or not ok
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
