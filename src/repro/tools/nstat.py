"""``nstat``: network stack statistics."""

from __future__ import annotations

from typing import Dict

from repro.kernel.namespace import NetNamespace


def nstat(namespace: NetNamespace) -> str:
    """Render non-zero stack counters, nstat-style."""
    lines = ["#kernel"]
    for name, value in sorted(namespace.stack.counters.items()):
        if value:
            lines.append(f"{name:<32}{value:>16}")
    return "\n".join(lines)


def nstat_dict(namespace: NetNamespace) -> Dict[str, int]:
    return dict(namespace.stack.counters)
