"""CI gate: fresh matrix.json vs the committed BASELINE_matrix.json.

Every baseline cell must exist in the fresh run and agree on its
maximum lossless rate within a per-cell relative tolerance; cells the
fresh run adds that the baseline lacks are also an error (the baseline
must be regenerated deliberately, never drift silently).  Because the
simulator is deterministic, an *unchanged* tree reproduces the baseline
exactly — the tolerance only gives intentional cost-model tweaks room
to land without re-baselining every cell they brush.

Per-cell tolerances: a baseline cell may carry a ``"tolerance"`` key
(relative, e.g. ``0.02``); cells without one use ``--tolerance``
(default 5%, so an injected 10% regression always trips the gate).

Usage::

    PYTHONPATH=src python -m repro matrix --quick --out matrix.json
    PYTHONPATH=src python -m repro.tools.matrix_gate matrix.json
    PYTHONPATH=src python -m repro.tools.matrix_gate --write-baseline

Exit status 0 when every cell is within tolerance, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
from typing import List, Optional, Tuple

from repro.perfmatrix.matrix import QUICK_GRID, canonical_json, run_matrix
from repro.perfmatrix.schema import validate_matrix

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_BASELINE = REPO_ROOT / "BASELINE_matrix.json"
DEFAULT_TOLERANCE = 0.05


def _load(path: pathlib.Path, what: str) -> Tuple[Optional[dict], List[str]]:
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return None, [f"{what}: cannot load {path}: {exc}"]
    problems = [f"{what}: {p}" for p in validate_matrix(doc)]
    return (None, problems) if problems else (doc, [])


def compare(
    baseline: dict,
    fresh: dict,
    default_tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """All the ways ``fresh`` fails the gate against ``baseline``."""
    problems: List[str] = []
    base_cells = {c["id"]: c for c in baseline["cells"]}
    fresh_cells = {c["id"]: c for c in fresh["cells"]}
    for cell_id in sorted(set(base_cells) - set(fresh_cells)):
        problems.append(f"{cell_id}: missing from the fresh run")
    for cell_id in sorted(set(fresh_cells) - set(base_cells)):
        problems.append(
            f"{cell_id}: not in the baseline (regenerate it with "
            f"--write-baseline to adopt new cells)"
        )
    for cell_id in sorted(set(base_cells) & set(fresh_cells)):
        base, new = base_cells[cell_id], fresh_cells[cell_id]
        tolerance = float(base.get("tolerance", default_tolerance))
        if base["rate_mpps"] <= 0:
            if new["rate_mpps"] > 0:
                problems.append(f"{cell_id}: baseline rate is zero but "
                                f"fresh is {new['rate_mpps']:.4f}")
            continue
        rel = (new["rate_mpps"] - base["rate_mpps"]) / base["rate_mpps"]
        if rel < -tolerance:
            problems.append(
                f"{cell_id}: rate regressed {-rel:.1%} "
                f"({base['rate_mpps']:.4f} -> {new['rate_mpps']:.4f} Mpps, "
                f"tolerance {tolerance:.1%})"
            )
        elif rel > tolerance:
            problems.append(
                f"{cell_id}: rate improved {rel:.1%} beyond tolerance "
                f"({base['rate_mpps']:.4f} -> {new['rate_mpps']:.4f} Mpps) "
                f"— real wins must be adopted with --write-baseline"
            )
        for field in ("frame_len", "n_flows", "datapath", "topology",
                      "packets", "link_gbps"):
            if base[field] != new[field]:
                problems.append(
                    f"{cell_id}: {field} changed "
                    f"({base[field]!r} -> {new[field]!r}); cells are only "
                    f"comparable at identical coordinates"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", nargs="?", default=None, metavar="MATRIX",
                        help="fresh matrix.json (omit to run the quick "
                             "grid in-process)")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        metavar="PATH")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE, metavar="REL",
                        help="default per-cell relative rate tolerance")
    parser.add_argument("--write-baseline", action="store_true",
                        help="run the quick grid and (re)write the "
                             "baseline instead of gating")
    args = parser.parse_args(argv)

    baseline_path = pathlib.Path(args.baseline)
    if args.write_baseline:
        doc = run_matrix(QUICK_GRID)
        baseline_path.write_text(canonical_json(doc))
        print(f"wrote {len(doc['cells'])} cells to {baseline_path}")
        return 0

    baseline, problems = _load(baseline_path, "baseline")
    if problems:
        for p in problems:
            print(p)
        return 1
    if args.fresh is not None:
        fresh, problems = _load(pathlib.Path(args.fresh), "fresh")
        if problems:
            for p in problems:
                print(p)
            return 1
    else:
        fresh = run_matrix(QUICK_GRID)

    problems = compare(baseline, fresh, default_tolerance=args.tolerance)
    for p in problems:
        print(f"FAIL  {p}")
    n = len(baseline["cells"])
    if problems:
        print(f"matrix gate: {len(problems)} problem(s) across {n} cells")
        return 1
    print(f"matrix gate: OK — {n} cells within tolerance")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
