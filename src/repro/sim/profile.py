"""Hierarchical virtual-time profiling: call trees, flamegraphs, sampling.

The trace ledger (:mod:`repro.sim.trace`) keeps *flat* per-stage totals —
enough for conservation audits, not enough to answer the paper's
diagnosis questions ("where do the XDP cycles go", Table 5; "what did
each optimization buy", Table 2).  This module adds the missing
dimension: a :class:`Profiler` snapshots the live span *stack* on every
charge, folding it into a call tree with inclusive/exclusive virtual
nanoseconds and call counts per path, the way ``perf report`` presents
sampled stacks.

Three consumers sit on top:

* ``render_tree`` — a ``perf report``-style indented tree,
* ``collapse`` — Brendan Gregg collapsed-stack lines
  (``all;pmd-c0;dp.input;emc 1234``) ready for ``flamegraph.pl``,
* ``diff_profiles`` — per-path regression deltas between two profiles
  (batched vs reference, O1–O5 ablation pairs).

A :class:`MetricsSampler` rides the same recorder hooks: it snapshots
the counter ledger at fixed *virtual-time* intervals (thresholds on
``cpu_charged_ns``, so two identical runs sample at identical instants)
into a JSONL time-series, and feeds a bounded-memory
:class:`~repro.sim.stats.StreamingHistogram` of ns-per-packet.

Overhead discipline
===================

Both objects attach *passively* to a :class:`~repro.sim.trace
.TraceRecorder` (``rec.profiler`` / ``rec.sampler``, default ``None``).
The recorder's hot methods guard with one attribute load; with neither
attached, every ledger stays byte-identical to an unprofiled run — the
integration suite pins this down by string comparison.

Conservation
============

Every nanosecond the ledger records flows through :meth:`Profiler.leaf`,
so the root's inclusive time equals ``rec.total_ns`` equals
``rec.cpu_charged_ns`` (within float-summation tolerance)::

    with profile.profiling() as rec:
        bench.drive(stream, packets)
    print(profile.render_tree(rec.profiler.root))
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim import trace
from repro.sim.stats import StreamingHistogram
from repro.sim.trace import TraceRecorder

#: Synthetic root frame label used in collapsed-stack exports so every
#: line shares one base frame (flamegraph.pl then shows one tower).
ROOT_LABEL = "all"


class CallNode:
    """One node of the call tree.

    ``ns`` is *exclusive* (self) time: charges recorded while this node
    was the innermost open frame.  Inclusive time is derived
    (:meth:`inclusive_ns`), never stored, so there is nothing to keep
    consistent while the tree is being built.
    """

    __slots__ = ("label", "calls", "ns", "children")

    def __init__(self, label: str) -> None:
        self.label = label
        #: Entries (for span nodes) or charges folded in (for leaves).
        self.calls = 0
        #: Exclusive virtual ns charged directly at this node.
        self.ns = 0.0
        self.children: Dict[str, "CallNode"] = {}

    def child(self, label: str) -> "CallNode":
        node = self.children.get(label)
        if node is None:
            node = self.children[label] = CallNode(label)
        return node

    def inclusive_ns(self) -> float:
        total = self.ns
        for node in self.children.values():
            total += node.inclusive_ns()
        return total

    def to_dict(self) -> Dict:
        """JSON-ready form; children sorted by label for determinism."""
        return {
            "label": self.label,
            "calls": self.calls,
            "self_ns": self.ns,
            "inclusive_ns": self.inclusive_ns(),
            "children": [
                self.children[k].to_dict() for k in sorted(self.children)
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CallNode({self.label!r}, x{self.calls}, "
                f"self={self.ns:.0f} ns, "
                f"incl={self.inclusive_ns():.0f} ns, "
                f"{len(self.children)} children)")


class Profiler:
    """Folds the live span stack into a call tree.

    Attach as ``recorder.profiler``; the recorder then forwards

    * ``span(stage)`` enter/exit -> :meth:`enter`/:meth:`exit_`
      (interior nodes), and
    * every ``record``/``record_n`` charge -> :meth:`leaf`/:meth:`leaf_n`
      (leaf accumulation under the current frame),

    so the tree partitions exactly the ledger's conservation set.
    Subsystems may also open *profiler-only* frames (PMD iterations,
    XDP program runs) via :func:`span` — those group the tree without
    adding entries to the recorder's ``span_totals`` ledger.
    """

    __slots__ = ("root", "_stack")

    def __init__(self) -> None:
        self.root = CallNode(ROOT_LABEL)
        self._stack: List[CallNode] = [self.root]

    # -- frame management (span enter/exit) -----------------------------
    def enter(self, label: str) -> None:
        node = self._stack[-1].child(label)
        node.calls += 1
        self._stack.append(node)

    def exit_(self) -> None:
        if len(self._stack) > 1:
            self._stack.pop()

    # -- charge accumulation --------------------------------------------
    def leaf(self, label: str, ns: float) -> None:
        node = self._stack[-1].children.get(label)
        if node is None:
            node = self._stack[-1].children[label] = CallNode(label)
        node.calls += 1
        node.ns += ns

    def leaf_n(self, label: str, ns: float, n: int) -> None:
        """``n`` individual :meth:`leaf` folds (float order preserved)."""
        node = self._stack[-1].children.get(label)
        if node is None:
            node = self._stack[-1].children[label] = CallNode(label)
        node.calls += n
        for _ in range(n):
            node.ns += ns

    def reset(self) -> None:
        self.root = CallNode(ROOT_LABEL)
        self._stack = [self.root]

    @property
    def depth(self) -> int:
        return len(self._stack) - 1


# ----------------------------------------------------------------------
# Rendering.
# ----------------------------------------------------------------------
def render_tree(root: CallNode,
                title: str = "virtual-time call tree",
                min_share: float = 0.0) -> str:
    """A ``perf report``-style tree: share, inclusive, self, calls."""
    total = root.inclusive_ns() or 1.0
    lines = [
        f"{title} (root inclusive {root.inclusive_ns():.0f} ns)",
        f"{'share':>7}  {'inclusive ns':>14}  {'self ns':>14}  "
        f"{'calls':>8}  path",
    ]

    def walk(node: CallNode, depth: int) -> None:
        incl = node.inclusive_ns()
        share = 100.0 * incl / total
        if share < min_share:
            return
        lines.append(
            f"{share:>6.2f}%  {incl:>14.0f}  {node.ns:>14.0f}  "
            f"{node.calls:>8}  {'  ' * depth}{node.label}"
        )
        for child in sorted(node.children.values(),
                            key=lambda c: (-c.inclusive_ns(), c.label)):
            walk(child, depth + 1)

    if root.ns:
        lines.append(
            f"{100.0 * root.ns / total:>6.2f}%  {root.ns:>14.0f}  "
            f"{root.ns:>14.0f}  {root.calls:>8}  (outside any span)"
        )
    for child in sorted(root.children.values(),
                        key=lambda c: (-c.inclusive_ns(), c.label)):
        walk(child, 0)
    return "\n".join(lines)


def collapse(root: CallNode) -> str:
    """Brendan Gregg collapsed-stack export.

    One line per tree node with nonzero self time:
    ``all;frame;...;leaf <int ns>``, sorted lexicographically so two
    identical runs export byte-identical files (feed straight into
    ``flamegraph.pl``).
    """
    lines: List[str] = []

    def walk(node: CallNode, prefix: str) -> None:
        path = f"{prefix};{node.label}"
        if node.ns:
            lines.append(f"{path} {int(round(node.ns))}")
        for child in node.children.values():
            walk(child, path)

    if root.ns:
        lines.append(f"{root.label} {int(round(root.ns))}")
    for child in root.children.values():
        walk(child, root.label)
    return "\n".join(sorted(lines))


def flatten(node_dict: Dict) -> Dict[str, Tuple[int, float, float]]:
    """``to_dict`` tree -> path -> (calls, self_ns, inclusive_ns)."""
    out: Dict[str, Tuple[int, float, float]] = {}

    def walk(node: Dict, prefix: str) -> None:
        path = f"{prefix};{node['label']}" if prefix else node["label"]
        out[path] = (node["calls"], node["self_ns"], node["inclusive_ns"])
        for child in node["children"]:
            walk(child, path)

    walk(node_dict, "")
    return out


def diff_profiles(a: Dict, b: Dict,
                  label_a: str = "a", label_b: str = "b",
                  min_delta_ns: float = 0.5) -> str:
    """Per-path inclusive-time deltas between two ``to_dict`` profiles.

    The ablation reduction: profile a run per configuration (say Table
    2's O-levels, or batched vs reference classification) and diff the
    pairs — every path that got cheaper or dearer shows up with its
    inclusive delta, sorted by magnitude.
    """
    fa, fb = flatten(a), flatten(b)
    rows = []
    for path in sorted(set(fa) | set(fb)):
        incl_a = fa.get(path, (0, 0.0, 0.0))[2]
        incl_b = fb.get(path, (0, 0.0, 0.0))[2]
        delta = incl_b - incl_a
        if abs(delta) < min_delta_ns:
            continue
        pct = (100.0 * delta / incl_a) if incl_a else float("inf")
        rows.append((delta, pct, path, incl_a, incl_b))
    lines = [
        f"profile diff: {label_b} - {label_a} (inclusive ns per path)",
        f"{'delta ns':>14}  {'delta':>8}  {label_a + ' ns':>14}  "
        f"{label_b + ' ns':>14}  path",
    ]
    if not rows:
        lines.append("(no differences)")
        return "\n".join(lines)
    for delta, pct, path, incl_a, incl_b in sorted(
        rows, key=lambda r: (-abs(r[0]), r[2])
    ):
        pct_s = f"{pct:+7.1f}%" if pct != float("inf") else "    new"
        lines.append(
            f"{delta:>+14.0f}  {pct_s:>8}  {incl_a:>14.0f}  "
            f"{incl_b:>14.0f}  {path}"
        )
    return "\n".join(lines)


def profile_json(rec: TraceRecorder) -> str:
    """Machine-readable profile: tree + conservation legs, deterministic."""
    prof = rec.profiler
    if prof is None:
        raise ValueError("recorder has no profiler attached")
    return json.dumps(
        {
            "tree": prof.root.to_dict(),
            "root_inclusive_ns": prof.root.inclusive_ns(),
            "total_ns": rec.total_ns,
            "cpu_charged_ns": rec.cpu_charged_ns,
        },
        sort_keys=True,
        indent=2,
    )


# ----------------------------------------------------------------------
# Virtual-time metrics sampling.
# ----------------------------------------------------------------------
class MetricsSampler:
    """Snapshots the counter ledger at fixed virtual-time intervals.

    Attach as ``recorder.sampler``; the recorder's ``note_cpu`` hooks
    call :meth:`tick` whenever ``cpu_charged_ns`` crosses the next due
    threshold.  Because virtual time advances identically on two
    identical runs (the charge sequence is byte-identical by the
    batching equivalence discipline), the sample instants — and hence
    the exported JSONL — are deterministic.

    Each sample carries the virtual timestamp, the full counter
    snapshot, and per-virtual-second rates over the window since the
    previous sample.  The packet-rate window also feeds a bounded-memory
    ns-per-packet :class:`StreamingHistogram` (the long-run latency
    series; per-sample storage would defeat long runs).
    """

    __slots__ = ("interval_ns", "next_due_ns", "samples", "latency_hist",
                 "_prev_t", "_prev_counters")

    #: Counter whose deltas define the packets-per-window rate.
    PACKET_COUNTER = "dp.rx_packets"

    def __init__(self, interval_ns: float = 1_000_000.0,
                 rel_error: float = 0.01) -> None:
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.interval_ns = float(interval_ns)
        #: Read by the recorder's hot guard: sample when
        #: ``cpu_charged_ns >= next_due_ns``.
        self.next_due_ns = float(interval_ns)
        self.samples: List[Dict] = []
        self.latency_hist = StreamingHistogram(rel_error=rel_error)
        self._prev_t = 0.0
        self._prev_counters: Dict[str, int] = {}

    def tick(self, rec: TraceRecorder) -> None:
        """Take one sample; called with the threshold already crossed."""
        t = rec.cpu_charged_ns
        counters = dict(rec.counters)
        dt = t - self._prev_t
        rates: Dict[str, float] = {}
        if dt > 0:
            per_s = 1e9 / dt
            for name, count in counters.items():
                delta = count - self._prev_counters.get(name, 0)
                if delta:
                    rates[name] = round(delta * per_s, 3)
        d_pkts = (counters.get(self.PACKET_COUNTER, 0)
                  - self._prev_counters.get(self.PACKET_COUNTER, 0))
        if d_pkts > 0 and dt > 0:
            self.latency_hist.add(dt / d_pkts)
        self.samples.append({
            "seq": len(self.samples),
            "t_ns": t,
            "counters": counters,
            "rates": rates,
        })
        self._prev_t = t
        self._prev_counters = counters
        # Skip any intervals the crossing charge jumped over: sample
        # timestamps stay actual charge instants, never interpolations.
        self.next_due_ns = t + self.interval_ns

    def reset(self) -> None:
        self.next_due_ns = self.interval_ns
        self.samples = []
        self.latency_hist = StreamingHistogram(
            rel_error=self.latency_hist.rel_error)
        self._prev_t = 0.0
        self._prev_counters = {}

    def to_jsonl(self, extra: Optional[Dict] = None) -> str:
        """One JSON object per line, key-sorted (deterministic)."""
        lines = []
        for sample in self.samples:
            row = dict(sample)
            if extra:
                row.update(extra)
            lines.append(json.dumps(row, sort_keys=True))
        return "\n".join(lines)

    def render(self) -> str:
        """The ``appctl metrics/show`` body."""
        lines = [
            f"metrics sampler: {len(self.samples)} samples, "
            f"interval {self.interval_ns:.0f} virtual ns"
        ]
        if not self.samples:
            lines.append("(no samples yet)")
            return "\n".join(lines)
        last = self.samples[-1]
        lines.append(f"latest sample (t={last['t_ns']:.0f} ns):")
        for name in sorted(last["counters"]):
            rate = last["rates"].get(name)
            rate_s = f"{rate:>14.1f}/s" if rate is not None else f"{'-':>16}"
            lines.append(
                f"  {name:32s} {last['counters'][name]:>12d} {rate_s}"
            )
        hist = self.latency_hist
        if len(hist):
            lines.append(
                f"ns per packet (streaming, n={len(hist)}): "
                f"p50={hist.percentile(50):.0f} "
                f"p90={hist.percentile(90):.0f} "
                f"p99={hist.percentile(99):.0f} "
                f"mean={hist.mean():.0f}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Attachment helpers.
# ----------------------------------------------------------------------
@contextmanager
def profiling(
    recorder: Optional[TraceRecorder] = None,
    sampler: Optional[MetricsSampler] = None,
) -> Iterator[TraceRecorder]:
    """``trace.recording()`` with a :class:`Profiler` attached.

    The profiler must observe every charge the recorder does (else the
    tree would not conserve against the ledger), hence one combined
    entry point instead of attaching mid-run.
    """
    rec = recorder if recorder is not None else TraceRecorder()
    if rec.profiler is None:
        rec.profiler = Profiler()
    if sampler is not None:
        rec.sampler = sampler
    with trace.recording(rec):
        yield rec


def active_profiler() -> Optional[Profiler]:
    """The attached recorder's profiler, if both exist.

    Hot paths should inline both attribute loads instead of calling
    this (one function call per packet is real overhead at simulation
    scale); cold paths and tests use it for clarity.
    """
    rec = trace.ACTIVE
    return rec.profiler if rec is not None else None


@contextmanager
def span(label: str) -> Iterator[None]:
    """A profiler-only frame: groups the call tree without touching the
    recorder's ``span_totals`` ledger (so pre-profiler golden ledgers
    stay byte-identical).  A passthrough when no profiler is attached."""
    prof = active_profiler()
    if prof is None:
        yield
        return
    prof.enter(label)
    try:
        yield
    finally:
        prof.exit_()
