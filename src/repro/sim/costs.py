"""The calibrated cost model.

Every performance-relevant primitive in the simulated stack (a syscall, a
lock acquisition, a byte copied, an eBPF instruction interpreted, a cache
line missed) has a cost constant here, expressed in virtual nanoseconds.
Substrate code charges these constants to the executing
:class:`~repro.sim.cpu.ExecContext` as it performs the corresponding real
work, and all reported throughput/CPU/latency numbers emerge from the sum.

Calibration
===========

Constants are calibrated against numbers the paper itself reports, plus
well-known micro-architectural figures for the papers' Xeon E5 v2/v3 testbeds:

* ``sendto`` is 2 µs — measured directly in the paper (§3.3).
* a mutex lock/unlock shows up as ~5 % CPU for a single uncontended thread
  (§3.2 O2); a spinlock is "less than 1 % overhead".
* the checksum cost is proportional to payload size (§3.2 O5) and the
  measured O5 delta for 64-byte packets is ~10 ns/packet (6.6→7.1 Mpps).
* eBPF interpretation is 10–20 % slower than equivalent native kernel code
  (§2.2.2, Figure 2).
* interrupt-driven AF_XDP loses ~35 % versus polling for bulk TCP
  (Figure 8a: 1.9 vs ~3 Gbps).

The emergent per-packet totals are validated against the paper's tables and
figures in ``tests/integration`` and reported in EXPERIMENTS.md.  Users can
construct a modified model (``dataclasses.replace``) to explore sensitivity.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Per-operation virtual-time costs, in nanoseconds unless noted."""

    # ------------------------------------------------------------------
    # Syscalls and kernel entry/exit.
    # ------------------------------------------------------------------
    #: Generic syscall entry+exit (mode switch, no real work).
    syscall_base_ns: float = 500.0
    #: ``sendto`` on a tap/AF_XDP fd — measured at ~2 us in the paper (§3.3).
    sendto_ns: float = 2_000.0
    #: ``recvfrom``/``read`` on a packet fd.
    recvfrom_ns: float = 1_800.0
    #: ``poll``/``epoll_wait`` returning ready (no sleep).
    poll_ns: float = 1_200.0
    #: ``mmap`` for buffer allocation (§3.2 O4 observed this as significant).
    mmap_ns: float = 4_000.0
    #: ``ioctl``/``setsockopt`` style control-path call.
    ioctl_ns: float = 1_500.0

    # ------------------------------------------------------------------
    # Scheduling, interrupts, context switches.
    # ------------------------------------------------------------------
    #: Full involuntary context switch (futex sleep, tap read wakeup...).
    context_switch_ns: float = 3_500.0
    #: Hardware interrupt entry + NAPI schedule.
    irq_entry_ns: float = 1_500.0
    #: Waking a sleeping thread (schedule latency until it runs again).
    thread_wakeup_ns: float = 2_500.0
    #: One NAPI poll-loop iteration's fixed overhead (driver housekeeping).
    napi_poll_ns: float = 150.0
    #: VM exit / guest notification (virtio kick through KVM).
    vmexit_ns: float = 2_800.0

    # ------------------------------------------------------------------
    # Locking (§3.2 O2/O3).
    # ------------------------------------------------------------------
    #: Uncontended pthread mutex lock+unlock (includes atomic + fence +
    #: occasional amortised futex fast path).  Chosen so a mutex per
    #: packet costs ~5 % of CPU at ~1.6 Mpkt/core/s, as the paper observed.
    mutex_ns: float = 18.0
    #: Uncontended spinlock lock+unlock ("less than 1% overhead").
    spinlock_ns: float = 6.0

    # ------------------------------------------------------------------
    # Memory.
    # ------------------------------------------------------------------
    #: Copy cost per byte (~14 GB/s effective single-core memcpy with
    #: cache interference).
    copy_per_byte_ns: float = 0.07
    #: Software checksum: fixed setup plus a per-byte load+add chain
    #: (§3.2 O5: "the checksum's cost is proportional to the packet's
    #: payload size").
    checksum_fixed_ns: float = 10.0
    checksum_per_byte_ns: float = 0.35
    #: One LLC miss (DRAM access).
    cache_miss_ns: float = 42.0
    #: First CPU touch of freshly DMA'd packet data.  With DDIO the DMA
    #: lands in the LLC, so this is an L3 hit, not a DRAM miss — the
    #: cache-miss cost §5.4's task B observes.
    dma_first_touch_ns: float = 28.0
    #: Allocate + initialise an sk_buff (slab fast path + memset of cb).
    skb_alloc_ns: float = 120.0
    skb_free_ns: float = 60.0
    #: dp_packet metadata init when preallocated in a contiguous array (O4).
    dp_packet_init_ns: float = 6.0
    #: Extra cost per packet of the pre-O4 scheme (mmap-backed allocation
    #: amortised over a batch, poorer locality).
    dp_packet_malloc_extra_ns: float = 2.0
    #: DPDK mbuf alloc/free from a per-core mempool cache.
    mbuf_alloc_ns: float = 12.0
    mbuf_free_ns: float = 8.0

    # ------------------------------------------------------------------
    # eBPF / XDP (§2.2.2, §5.4).
    # ------------------------------------------------------------------
    #: Interpreting one eBPF instruction in the in-kernel sandbox.
    ebpf_insn_ns: float = 2.1
    #: Native-code equivalent of the same logical operation, for comparing
    #: eBPF datapath vs the C kernel module (Figure 2's 10-20 % gap).
    native_op_ns: float = 0.85
    #: Fixed per-packet XDP context setup (metadata, invariants).
    xdp_ctx_setup_ns: float = 15.0
    #: eBPF hash-map lookup helper (hash + bucket walk).
    ebpf_map_lookup_ns: float = 12.0
    ebpf_map_update_ns: float = 30.0
    #: Other helper call overhead (crossing into the kernel helper).
    ebpf_helper_ns: float = 4.0
    #: XDP_REDIRECT to another device (map lookup + enqueue to its ring).
    xdp_redirect_ns: float = 26.0
    #: XDP_TX: recycle the rx descriptor onto the tx ring + doorbell.
    xdp_tx_ns: float = 55.0

    # ------------------------------------------------------------------
    # Flow lookup machinery (OVS caches, §5.2's 1 vs 1000 flows).
    # ------------------------------------------------------------------
    #: Exact-match cache hit (one hash, one compare).
    emc_hit_ns: float = 12.0
    emc_insert_ns: float = 55.0
    #: Megaflow (wildcarded) lookup cost per subtable probed.
    megaflow_subtable_ns: float = 55.0
    megaflow_insert_ns: float = 300.0
    #: OpenFlow classifier full lookup, per table traversed per subtable.
    classifier_subtable_ns: float = 70.0
    #: Kernel->userspace upcall round trip (miss in kernel datapath).
    upcall_ns: float = 25_000.0
    #: Userspace datapath miss path (classifier consult, no kernel crossing).
    userspace_slowpath_ns: float = 1_200.0
    #: Connection tracking lookup / commit.
    conntrack_lookup_ns: float = 90.0
    conntrack_commit_ns: float = 260.0

    # ------------------------------------------------------------------
    # Rings & drivers (AF_XDP §3.1-3.2, DPDK).
    # ------------------------------------------------------------------
    #: Push/pop one descriptor on an SPSC ring.
    ring_op_ns: float = 5.0
    #: Fixed cost of a batched ring operation (doorbell, barriers).
    ring_batch_ns: float = 20.0
    #: NIC driver per-packet rx descriptor handling (DMA completion).
    nic_rx_ns: float = 18.0
    nic_tx_ns: float = 18.0
    #: AF_XDP copy-mode extra (skb bounce; "fallback mode ... extra copy").
    #: charged per byte via copy_per_byte_ns plus this fixed part.
    afxdp_copy_mode_ns: float = 120.0
    #: Base wait after a tx-kick sendto returns EAGAIN; each retry doubles
    #: it (bounded exponential backoff, see netdev-afxdp's retry loop).
    #: Waited, not burned: the thread could poll other queues meanwhile.
    tx_kick_backoff_ns: float = 1_000.0
    #: Kernel rxhash computation when hardware hash is unavailable (§5.5).
    software_rxhash_ns: float = 14.0
    #: veth crossing (namespace switch, no copy).
    veth_xmit_ns: float = 160.0
    #: tap device kernel-side processing excluding the syscall itself.
    tap_xmit_ns: float = 350.0
    #: vhost-user/virtio: per-descriptor virtqueue handling.
    virtqueue_op_ns: float = 45.0
    #: eventfd kick for a virtqueue batch when the peer is sleeping.
    virtqueue_kick_ns: float = 900.0

    # ------------------------------------------------------------------
    # Protocol stacks.
    # ------------------------------------------------------------------
    #: Kernel TCP/IP per-segment processing (in or out, excluding copies):
    #: the general path (connection setup, out-of-order, control flags).
    tcp_segment_ns: float = 1_350.0
    #: Header-prediction receive fast path: in-order data on an
    #: established connection (the common bulk-transfer case).
    tcp_rx_fastpath_ns: float = 350.0
    #: Transmit-side per-segment cost (no demux or state lookup: cheaper
    #: than the general receive path).
    tcp_tx_segment_ns: float = 450.0
    #: Emitting a pure ACK (no payload, no state transition).
    tcp_ack_tx_ns: float = 400.0
    #: IP input processing before the L4 demux.
    ip_rcv_ns: float = 150.0
    udp_datagram_ns: float = 450.0
    ip_forward_ns: float = 220.0
    #: Socket read/write per-byte copy user<->kernel.
    socket_copy_per_byte_ns: float = 0.07
    #: GSO/TSO segmentation per produced segment when done in software.
    software_gso_per_segment_ns: float = 250.0

    # ------------------------------------------------------------------
    # Crash recovery / restart (§6's upgrade story, repro.sim.supervisor).
    #
    # Sources: exec+link time is the dominant term of an ovs-vswitchd
    # start (~100 ms to fork/exec, map ~40 shared objects and parse the
    # schema — the same order `systemd-analyze blame` reports for
    # openvswitch-switch).  OVSDB reconnect is one jsonrpc connect plus
    # a monitor snapshot replayed row by row.  AF_XDP rebind costs are
    # dominated by umem page pinning (~0.5–1 µs/page for get_user_pages)
    # and, for zero-copy, the driver's queue-pair restart
    # (ethtool-style channel reset, several ms per queue — the reason
    # netdev-afxdp serializes queue reconfiguration).  DPDK pays EAL
    # init (hugepage mapping + PCI scan, hundreds of ms) plus per-port
    # dev_configure/start.  Kernel `system` ports only need a netlink
    # vport dump/re-attach (tens of µs per port).  The supervisor's
    # health probe is a unixctl round trip.
    # ------------------------------------------------------------------
    #: fork+exec ovs-vswitchd, dynamic linking, config parse — until the
    #: daemon answers its first unixctl ping.
    exec_restart_ns: float = 120_000_000.0
    #: One OVSDB jsonrpc connect + schema/monitor handshake.
    ovsdb_connect_ns: float = 2_000_000.0
    #: Replaying one monitored row from the OVSDB snapshot.
    ovsdb_row_read_ns: float = 15_000.0
    #: Wait between OVSDB reconnect attempts (the client's backoff).
    ovsdb_reconnect_wait_ns: float = 1_000_000.0
    #: Fixed part of registering one umem region (XDP_UMEM_REG + rings).
    afxdp_umem_create_ns: float = 1_000_000.0
    #: Pinning one umem frame's page (get_user_pages, amortised).
    afxdp_frame_pin_ns: float = 600.0
    #: socket(AF_XDP) + bind() for one queue, copy mode.
    afxdp_socket_bind_ns: float = 500_000.0
    #: Extra per-queue cost of a zero-copy bind: the driver restarts the
    #: queue pair (disable IRQ, free/refill hw rings, re-enable).
    afxdp_zc_queue_restart_ns: float = 5_000_000.0
    #: close() of one XSK (unpin pages, free rings) on graceful teardown.
    afxdp_socket_unbind_ns: float = 200_000.0
    #: Loading + verifying + attaching the XDP redirect program.
    xdp_attach_ns: float = 2_000_000.0
    #: rte_eal_init: hugepage mapping, PCI scan, memory zones.
    dpdk_eal_init_ns: float = 500_000_000.0
    #: rte_eth_dev_configure + queue setup + start for one port.
    dpdk_port_config_ns: float = 50_000_000.0
    #: Re-reading/re-attaching one datapath vport over netlink.
    netlink_port_dump_ns: float = 30_000.0
    #: Allocating a fresh userspace conntrack table (hash array, locks).
    conntrack_init_ns: float = 2_000_000.0
    #: Tearing down one tracked connection on a graceful restart.
    conntrack_destroy_per_conn_ns: float = 150.0
    #: Re-installing one OpenFlow rule during NSX desired-state re-sync
    #: (bundled flow_mods, ~100k rules/s — the rate §4's agent sustains).
    nsx_resync_per_rule_ns: float = 10_000.0
    #: One supervisor health probe: a unixctl ping round trip.
    heartbeat_probe_ns: float = 50_000.0

    # ------------------------------------------------------------------
    # Misc pipeline costs.
    # ------------------------------------------------------------------
    #: Parse a packet's headers to a flow key (miniflow extract).
    flow_extract_ns: float = 16.0
    #: Apply one datapath action (output, set-field, push/pop header).
    action_ns: float = 12.0
    #: Encapsulate / decapsulate a tunnel header (Geneve/VXLAN/GRE).
    tunnel_encap_ns: float = 180.0
    tunnel_decap_ns: float = 150.0
    #: Recirculation: re-inject the packet into the datapath pipeline.
    recirculate_ns: float = 120.0

    # ------------------------------------------------------------------
    # Telemetry (sFlow sampling + IPFIX export, repro.telemetry).
    #
    # Sampling is datapath work: real sFlow agents pay a per-packet rate
    # test at every armed observation point, and each taken sample pays
    # a header scrape plus datagram encode on the hot path.  The IPFIX
    # flow cache adds a hash + counter bump per observed packet and an
    # encode per flushed record.  These constants are what the
    # observer-effect experiment sweeps into a degradation curve.
    # ------------------------------------------------------------------
    #: Per-packet sampling rate test (counter increment + PRNG draw).
    sflow_sample_test_ns: float = 2.0
    #: Copying a sampled frame's header into the sample buffer.
    sflow_header_scrape_ns: float = 45.0
    #: Encoding + queueing the sFlow datagram toward the collector.
    sflow_encode_ns: float = 180.0
    #: IPFIX flow-cache update (hash, lookup, counter bump) per packet.
    ipfix_flow_update_ns: float = 30.0
    #: Encoding one IPFIX record at flush time.
    ipfix_encode_ns: float = 220.0

    def scaled(self, **overrides: float) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def copy_cost(self, nbytes: int) -> float:
        """Cost of copying ``nbytes`` of packet data."""
        return self.copy_per_byte_ns * nbytes

    def checksum_cost(self, nbytes: int) -> float:
        """Cost of software-checksumming ``nbytes``."""
        return self.checksum_fixed_ns + self.checksum_per_byte_ns * nbytes


#: The calibrated default model used by all experiments.
DEFAULT_COSTS = CostModel()

#: Bumped whenever ``DEFAULT_COSTS`` is mutated (see :func:`overridden`).
#: Wall-clock memo layers that cache *derived charge values* (e.g. the XDP
#: verdict memo) tag entries with this so a sensitivity override can never
#: replay charges computed under different constants.
VERSION: int = 0


@contextmanager
def overridden(**overrides: float):
    """Temporarily change cost constants for sensitivity studies.

    Every substrate module holds a reference to the ``DEFAULT_COSTS``
    singleton, so overrides propagate everywhere::

        with costs.overridden(upcall_ns=50_000):
            result = run_fig9(scenarios=("P2P",))

    The previous values are restored on exit, even on error.
    """
    from repro.sim import trace

    global VERSION
    saved = {}
    for name, value in overrides.items():
        if not hasattr(DEFAULT_COSTS, name):
            raise AttributeError(f"no cost constant named {name!r}")
        saved[name] = getattr(DEFAULT_COSTS, name)
        object.__setattr__(DEFAULT_COSTS, name, value)
        # Sensitivity overrides must show up in any attached trace ledger:
        # a perf report over doctored constants should say so.
        trace.count(f"costs.overridden.{name}")
    VERSION += 1
    try:
        yield DEFAULT_COSTS
    finally:
        for name, value in saved.items():
            object.__setattr__(DEFAULT_COSTS, name, value)
        VERSION += 1
