"""Deterministic fault injection and overload degradation.

The paper's operability argument (§6) is not only that the userspace
AF_XDP datapath is fast, but that it *fails well*: tx kicks return
EAGAIN under pressure, rings overrun, drivers without zero-copy force
the copy-mode fallback, upcall storms must be shed rather than amplified.
The happy-path simulation cannot exercise any of that, so this module
adds the missing misfortune — deterministically.

A :class:`FaultPlan` names the faults to inject at registered *fault
points* (see :data:`FAULT_POINTS`).  Each point draws from its own
:func:`repro.sim.rng.make_rng` stream, so two runs with the same seed
fire the same faults at the same packets, byte for byte, and adding a
rule for one point never perturbs another point's stream.  The plan also
carries the overload-degradation knobs that mirror real ovs-vswitchd:
``emc_insert_inv_prob`` (the ``emc-insert-inv-prob`` storm breaker),
``upcall_queue_cap`` (the bounded upcall queue behind ``lost:``
accounting) and ``flow_limit`` (the revalidator's megaflow budget).

Overhead discipline mirrors :mod:`repro.sim.trace`: with no plan
installed, hot paths pay a single module-attribute load
(``faults.ACTIVE is None``) and the observable behaviour — including
every trace ledger — is byte-identical to a build without this module.
A plan whose rules never fire (zero rate) draws nothing and changes
nothing either; the determinism suite pins both properties down.

Usage::

    plan = FaultPlan(seed=7, rules=[FaultRule("afxdp.tx_kick_eagain",
                                              rate=0.05)])
    with faults.injecting(plan):
        bench.drive(stream, packets)
    print(plan.render())
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence

from repro.sim import trace
from repro.sim.rng import make_rng

#: Every place the substrate consults the active plan, with the real
#: failure it models.  Plans may only name points registered here —
#: a typo'd point name would otherwise silently never fire.
FAULT_POINTS: Dict[str, str] = {
    "afxdp.tx_kick_eagain":
        "sendto(MSG_DONTWAIT) on the XSK fd returns EAGAIN (§3.3); the "
        "driver retries with bounded exponential backoff",
    "afxdp.fill_ring_overrun":
        "fill-ring producer/consumer raced under overload; the frame is "
        "dropped with a per-ring counter",
    "afxdp.comp_ring_overrun":
        "completion ring full at kick time; completed frames leak until "
        "the pool runs dry (emergent umem exhaustion)",
    "afxdp.umem_exhausted":
        "umem pool has no free frames for a tx burst; the burst is "
        "dropped and counted",
    "afxdp.zc_fallback":
        "driver loses zero-copy support (paper's driver matrix, §3.5); "
        "the socket rebinds in copy mode and pays the extra copy",
    "dp.upcall_overload":
        "userspace upcall queue overflowed (handler overloaded); the "
        "miss is recorded as lost, the packet dropped",
    "kernel.upcall_overload":
        "netlink upcall socket buffer overflowed; the kernel reports it "
        "in the dpctl/show lost: column",
    "ebpf.map_lookup_fault":
        "bpf_map_lookup_elem failed (map under pressure); the program "
        "degrades to XDP_PASS so the kernel slow path carries the packet",
    "ebpf.verifier_reject":
        "the verifier rejected the XDP program at load time; the port "
        "degrades to the generic copy-mode path instead of failing",
    "vswitchd.crash":
        "ovs-vswitchd dies mid-traffic (SIGSEGV/OOM-kill); the supervisor "
        "detects the missed heartbeats and drives the charged restart "
        "sequence (see repro.sim.supervisor)",
    "ovsdb.disconnect":
        "the OVSDB jsonrpc session drops during reconnect; the client "
        "retries with its reconnect backoff, stretching recovery",
    "netlink.enobufs":
        "a netlink dump overflows the socket buffer (ENOBUFS) while "
        "re-reading datapath ports; the whole dump restarts from scratch",
    "telemetry.collector_loss":
        "an exported sFlow/IPFIX record is lost on the way to the "
        "collector (UDP transport); the exporter tallies the loss so "
        "reconciliation stays exact",
}


@dataclass(frozen=True)
class FaultRule:
    """When one fault point fires.

    ``rate`` fires on each event with that probability (its own RNG
    stream); ``nth`` fires deterministically on every nth event
    (1-based, so ``nth=1`` fires always); ``max_fires`` caps the total.
    ``rate`` and ``nth`` compose with OR; a rule with neither never
    fires.
    """

    point: str
    rate: float = 0.0
    nth: Optional[int] = None
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            known = ", ".join(sorted(FAULT_POINTS))
            raise ValueError(
                f"unknown fault point {self.point!r}; known: {known}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.nth is not None and self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError("max_fires must be >= 0")


class FaultPlan:
    """A seeded set of fault rules plus overload-degradation knobs.

    Instances are consulted from hot paths through the module-global
    :data:`ACTIVE` (see :func:`install` / :func:`injecting`); they track
    per-point event and fire counts for ``appctl faults/show``.
    """

    def __init__(
        self,
        seed: int = 0,
        rules: Sequence[FaultRule] = (),
        emc_insert_inv_prob: int = 1,
        upcall_queue_cap: Optional[int] = None,
        flow_limit: Optional[int] = None,
    ) -> None:
        if emc_insert_inv_prob < 1:
            raise ValueError("emc_insert_inv_prob must be >= 1")
        if upcall_queue_cap is not None and upcall_queue_cap < 0:
            raise ValueError("upcall_queue_cap must be >= 0")
        if flow_limit is not None and flow_limit < 0:
            raise ValueError("flow_limit must be >= 0")
        self.seed = seed
        self.rules: Dict[str, FaultRule] = {}
        for rule in rules:
            if rule.point in self.rules:
                raise ValueError(f"duplicate rule for {rule.point!r}")
            self.rules[rule.point] = rule
        #: One independent stream per ruled point: adding a rule for a
        #: new point never shifts an existing point's draws.
        self._rngs = {
            point: make_rng("faults", point, seed=seed)
            for point in self.rules
        }
        self._emc_rng = make_rng("faults", "emc_insert", seed=seed)
        #: point -> times the point was consulted / times it fired.
        self.events: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}
        #: Real-ovs-vswitchd ``other_config:emc-insert-inv-prob``: insert
        #: into the EMC with probability 1/P (default 1 = always).
        self.emc_insert_inv_prob = emc_insert_inv_prob
        #: Bounded per-burst upcall budget; misses beyond it are ``lost``
        #: (the netlink socket buffer analogue of dpif-netdev).
        self.upcall_queue_cap = upcall_queue_cap
        #: Initial megaflow budget (the revalidator adjusts the
        #: datapath's own limit from here under pressure).
        self.flow_limit = flow_limit

    # ------------------------------------------------------------------
    def should_fire(self, point: str) -> bool:
        """One event at ``point``; does the fault fire?

        Unruled points consume no randomness (so a zero-rule plan is
        observationally inert), but are still tallied in ``events``.
        """
        n = self.events.get(point, 0) + 1
        self.events[point] = n
        rule = self.rules.get(point)
        if rule is None:
            return False
        fired = self.fired.get(point, 0)
        if rule.max_fires is not None and fired >= rule.max_fires:
            return False
        fire = False
        if rule.nth is not None and n % rule.nth == 0:
            fire = True
        if not fire and rule.rate > 0.0:
            fire = self._rngs[point].random() < rule.rate
        if fire:
            self.fired[point] = fired + 1
            trace.count(f"fault.{point}")
        return fire

    def should_insert_emc(self) -> bool:
        """The ``emc-insert-inv-prob`` draw: insert with probability 1/P.

        With the default P=1 no randomness is consumed and the answer is
        always yes — byte-identical to a plan-less run.
        """
        if self.emc_insert_inv_prob <= 1:
            return True
        return self._emc_rng.randrange(self.emc_insert_inv_prob) == 0

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-oriented ``faults/show`` body."""
        lines = [f"fault plan: seed={self.seed}"]
        lines.append(f"  emc-insert-inv-prob: {self.emc_insert_inv_prob}")
        lines.append(f"  upcall-queue-cap: {self.upcall_queue_cap}")
        lines.append(f"  flow-limit: {self.flow_limit}")
        if not self.rules:
            lines.append("  (no fault rules)")
        for point in sorted(self.rules):
            rule = self.rules[point]
            trig = []
            if rule.rate:
                trig.append(f"rate={rule.rate}")
            if rule.nth is not None:
                trig.append(f"nth={rule.nth}")
            if rule.max_fires is not None:
                trig.append(f"max_fires={rule.max_fires}")
            lines.append(
                f"  {point}: {' '.join(trig) or 'inert'} — "
                f"events:{self.events.get(point, 0)} "
                f"fired:{self.fired.get(point, 0)}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, "
                f"fired={sum(self.fired.values())})")


#: The installed plan, or None (injection disabled).  Hot paths read
#: this attribute directly — keep it a plain module global.
ACTIVE: Optional[FaultPlan] = None


def active() -> Optional[FaultPlan]:
    return ACTIVE


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the active fault plan.  Nesting is not supported:
    installing over an existing plan is an error (silently swapping RNG
    streams mid-run would break reproducibility)."""
    global ACTIVE
    if ACTIVE is not None:
        raise RuntimeError("a FaultPlan is already installed")
    ACTIVE = plan
    return plan


def uninstall() -> None:
    global ACTIVE
    ACTIVE = None


@contextmanager
def injecting(plan: Optional[FaultPlan] = None) -> Iterator[FaultPlan]:
    """Install a plan (a fresh inert one by default) for the block."""
    installed = install(plan if plan is not None else FaultPlan())
    try:
        yield installed
    finally:
        uninstall()
