"""A virtual clock, measured in integer nanoseconds.

The clock is advanced explicitly by whoever owns it (an experiment loop, an
event scheduler, a CPU context).  Simulated components never look at wall
time; they read ``clock.now`` so that expiry-based logic (conntrack timeouts,
interrupt coalescing, adaptive polling) is deterministic and reproducible.
"""

from __future__ import annotations


class Clock:
    """Monotonic virtual time in nanoseconds."""

    __slots__ = ("_now",)

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = int(start_ns)

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    def advance(self, delta_ns: int) -> int:
        """Move time forward by ``delta_ns`` and return the new time."""
        if delta_ns < 0:
            raise ValueError(f"cannot move time backwards by {delta_ns} ns")
        self._now += int(delta_ns)
        return self._now

    def advance_to(self, t_ns: int) -> int:
        """Move time forward to the absolute instant ``t_ns``.

        Advancing to the current instant (or earlier) is a no-op rather than
        an error: concurrent lanes of execution frequently "catch up" to a
        shared clock.
        """
        if t_ns > self._now:
            self._now = int(t_ns)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now} ns)"


# Handy unit multipliers so call sites read naturally: 2 * USEC, 10 * MSEC.
NSEC = 1
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000
