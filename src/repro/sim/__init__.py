"""Simulation substrate: virtual time, cost model, CPU accounting, statistics.

Everything in this reproduction that claims a performance number derives it
from this package.  Code under :mod:`repro.kernel`, :mod:`repro.afxdp`,
:mod:`repro.dpdk` and :mod:`repro.ovs` performs *real work* on real data
structures; as it does so it charges virtual nanoseconds to the executing
:class:`~repro.sim.cpu.ExecContext`.  Experiments then read busy time off the
:class:`~repro.sim.cpu.CpuModel` to compute throughput, CPU utilisation and
latency, exactly the way ``perf`` and ``top`` were used in the paper.
"""

from repro.sim.clock import Clock
from repro.sim.costs import CostModel, DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext
from repro.sim.stats import Histogram, RateEstimator, percentile
from repro.sim.trace import TraceRecorder, recording

__all__ = [
    "Clock",
    "CostModel",
    "DEFAULT_COSTS",
    "CpuCategory",
    "CpuModel",
    "ExecContext",
    "Histogram",
    "RateEstimator",
    "percentile",
    "TraceRecorder",
    "recording",
]
