"""Wall-clock fast-path switches.

The burst-classification work (PR 2) added cross-packet memo layers that
change *no* observable simulation output — virtual-time charges, trace
ledgers, counters and packet bytes are byte-identical — but make the
simulator run several times faster in real time: the XDP verdict memo,
NIC steering/rxhash memos, and the datapath's cross-burst flow cache
consult this flag.

``ENABLED`` exists so the benchmark harness (``repro.tools.bench_report``)
and the equivalence test suites can A/B the optimized stack against the
pre-batching behaviour in one process.  Production runs leave it on.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

ENABLED: bool = True


def set_enabled(on: bool) -> None:
    global ENABLED
    ENABLED = bool(on)


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block with every wall-clock memo layer bypassed."""
    global ENABLED
    prev, ENABLED = ENABLED, False
    try:
        yield
    finally:
        ENABLED = prev
