"""Supervised crash-recovery for ovs-vswitchd (§6 made measurable).

The paper's operational argument for the userspace datapath — "upgrades
are a daemon restart, not a reboot" — cuts both ways: a restart is also
what a *crash* costs you, and how much it costs depends entirely on
which state survives the process.  This module turns that into a
virtual-time event the experiments can measure:

* a :class:`Supervisor` (think ``systemd`` with ``Restart=always``)
  watches the daemon through periodic heartbeats on the virtual clock;
* the seeded fault plan (:mod:`repro.sim.faults`, point
  ``vswitchd.crash``) kills the daemon mid-traffic;
* the supervisor notices after ``miss_threshold`` missed heartbeats and
  drives a *charged* restart sequence, phase by phase, as the
  experiment's clock passes each phase's end time.

Recovery phases (each one a named span in the trace ledger)::

    detect    the missed-heartbeat window (probes charged)
    backoff   bounded exponential restart throttle (waited, not charged)
    exec      fork/exec + library init + config parse
    ovsdb     reconnect (retried on ``ovsdb.disconnect`` faults) and
              re-read of every row
    ports     per-type re-bind: AF_XDP sockets + umem recreated, DPDK
              EAL + per-port config, kernel ports re-dumped over
              netlink (re-dumped from scratch on ``netlink.enobufs``)
    state     datapath-divergent: the netdev DP comes back with cold
              EMC/megaflow caches and a fresh (empty) userspace
              conntrack; the kernel DP keeps megaflows + netfilter
              conntrack and skips this phase
    resync    NSX replays the desired rule set over OpenFlow

While the daemon is up the supervisor is strictly passive — no charges,
no waits, no RNG draws, no trace counters — so a world that never
crashes produces a byte-identical ledger with or without one (the
zero-overhead-off contract of the fault layer applies here too).

Packet conservation through a crash: frames sitting in a crashed
process's AF_XDP rings die with its file descriptors and are returned
by :meth:`~repro.afxdp.driver.AfxdpDriver.drop_sockets_on_crash` as
named sinks (``crash.xsk_rx_inflight`` / ``crash.xsk_tx_inflight``);
frames that accumulated in a DPDK device's hardware rings while nobody
polled are discarded by the re-init's queue reset and land in
``crash.dpdk_ring_reset``.  :data:`Supervisor.crash_sinks` aggregates
these for the experiment's :class:`~repro.tools.conservation.
PacketLedger`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import telemetry
from repro.sim import faults, trace
from repro.sim.clock import Clock, MSEC
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext
from repro.telemetry.drops import DropReason

#: Cap on fault-stretched retries inside one recovery (ovsdb reconnects
#: and netlink re-dumps).  A real init system would escalate to a human
#: well before this; for us it bounds the RNG draws per restart so a
#: recovery's cost stays a pure function of (plan, state).
MAX_RETRIES = 5


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the watchdog, defaults shaped like systemd's.

    ``heartbeat_interval_ns``/``miss_threshold`` mirror a watchdog of
    ``WatchdogSec=30ms`` probed at 10 ms; ``backoff_base_ns`` is
    systemd's ``RestartSec=100ms`` default, doubled per consecutive
    crash up to ``backoff_cap_ns``.  A daemon that stays up for
    ``stable_uptime_ns`` earns its crash counter back."""

    heartbeat_interval_ns: float = 10 * MSEC
    miss_threshold: int = 3
    backoff_base_ns: float = 100 * MSEC
    backoff_cap_ns: float = 10_000 * MSEC
    stable_uptime_ns: float = 1_000 * MSEC


@dataclass
class _Phase:
    name: str
    duration_ns: float
    end_ns: float = 0.0
    charge_ns: float = 0.0
    wait_ns: float = 0.0
    action: Optional[Callable[[ExecContext], None]] = None


@dataclass
class RestartRecord:
    """One completed crash→recovery cycle, for ``supervisor/show``."""

    cause: str
    crashed_at_ns: int
    detected_at_ns: float
    recovered_at_ns: float
    backoff_ns: float
    ovsdb_retries: int
    netlink_redumps: int
    phase_ns: Dict[str, float] = field(default_factory=dict)

    @property
    def downtime_ns(self) -> float:
        return self.recovered_at_ns - self.crashed_at_ns


class Supervisor:
    """Watches one ovs-vswitchd; restarts it when the fault plan kills it.

    ``ctx`` is the control-plane execution context recovery work is
    charged to (the supervisor is a userspace process too).  ``pmds``
    lists the PMD threads whose EMCs must be flushed on a netdev-DP
    cold start.  ``vs=None`` supervises a daemon-less world (the eBPF
    flavor, where the dataplane lives in the kernel and only the
    control process dies): recovery is detect + backoff + exec.

    The supervisor never advances the clock itself; the experiment's
    burst loop does, and calls :meth:`poll` so phases complete as their
    end times pass.  :meth:`finish` completes a recovery that runs past
    the offered-load window.
    """

    def __init__(
        self,
        ctx: ExecContext,
        clock: Clock,
        vs=None,
        pmds: "tuple | list" = (),
        nsx_agent=None,
        config: Optional[SupervisorConfig] = None,
    ) -> None:
        self.ctx = ctx
        self.clock = clock
        self.vs = vs
        self.pmds = list(pmds)
        self.nsx_agent = nsx_agent
        self.cfg = config or SupervisorConfig()
        self.up = True
        self.restarts = 0
        self.consecutive_crashes = 0
        self.epoch_ns = clock.now          # heartbeat schedule anchor
        self.started_at_ns: float = clock.now
        self.last_cause: Optional[str] = None
        self.history: List[RestartRecord] = []
        self.crash_sinks: Dict[str, int] = {}
        self._pending: List[_Phase] = []
        self._rec: Optional[RestartRecord] = None

    # ------------------------------------------------------------------
    # Port discovery (which state must be re-bound).
    # ------------------------------------------------------------------
    def _afxdp_drivers(self) -> list:
        if self.vs is None or self.vs.dpif_netdev is None:
            return []
        return [port.adapter.driver
                for port in self.vs.dpif_netdev.ports.values()
                if getattr(port.adapter, "driver", None) is not None]

    def _dpdk_ethdevs(self) -> list:
        if self.vs is None or self.vs.dpif_netdev is None:
            return []
        return [port.adapter.ethdev
                for port in self.vs.dpif_netdev.ports.values()
                if getattr(port.adapter, "ethdev", None) is not None]

    def _n_kernel_ports(self) -> int:
        if self.vs is None or self.vs.dpif_netlink is None:
            return 0
        return len(self.vs.dpif_netlink.dp.ports)

    # ------------------------------------------------------------------
    # Crash entry points.
    # ------------------------------------------------------------------
    def maybe_crash(self) -> bool:
        """Consult the ``vswitchd.crash`` fault point once.

        Call once per burst from the drive loop.  Passive without an
        installed plan (no RNG, no counters) and while already down (a
        dead daemon cannot die again)."""
        plan = faults.ACTIVE
        if plan is None or not self.up:
            return False
        if not plan.should_fire("vswitchd.crash"):
            return False
        self.crash("vswitchd.crash")
        return True

    def crash(self, cause: str = "vswitchd.crash") -> None:
        """The daemon just died; sever its attachments and plan recovery.

        Dying is free — the cost model charges the *recovery*.  In-flight
        frames in the dead process's AF_XDP rings are retired into
        :data:`crash_sinks` so the packet ledger still balances."""
        if not self.up:
            raise RuntimeError("supervised daemon is already down")
        now = self.clock.now
        self.up = False
        self.last_cause = cause
        uptime = now - self.started_at_ns
        if self.consecutive_crashes and uptime >= self.cfg.stable_uptime_ns:
            self.consecutive_crashes = 0
        self.consecutive_crashes += 1
        trace.count("supervisor.crashes")
        for driver in self._afxdp_drivers():
            for name, n in driver.drop_sockets_on_crash().items():
                self.crash_sinks[name] = self.crash_sinks.get(name, 0) + n
        if self.vs is not None:
            self.vs.crash()
        self._plan_recovery(now, cause)

    # ------------------------------------------------------------------
    # Recovery planning: every duration, retry and charge is fixed at
    # crash time (fault retries drawn from the plan's per-point RNG
    # streams), so the whole sequence is a deterministic function of
    # (seed, world state at the crash).
    # ------------------------------------------------------------------
    def _plan_recovery(self, now: int, cause: str) -> None:
        cfg, costs = self.cfg, DEFAULT_COSTS
        plan = faults.ACTIVE
        phases: List[_Phase] = []

        # detect: probes tick on the absolute schedule epoch + k*h; the
        # first probe after the crash is the first one missed.
        h = cfg.heartbeat_interval_ns
        k0 = int((now - self.epoch_ns) // h) + 1
        detected_at = self.epoch_ns + (k0 + cfg.miss_threshold - 1) * h
        phases.append(_Phase(
            "detect", detected_at - now,
            charge_ns=cfg.miss_threshold * costs.heartbeat_probe_ns,
        ))

        # backoff: free restart on the first crash, then doubling.
        n = self.consecutive_crashes
        backoff = 0.0 if n <= 1 else min(
            cfg.backoff_cap_ns, cfg.backoff_base_ns * (2 ** (n - 2)))
        if backoff:
            phases.append(_Phase("backoff", backoff, wait_ns=backoff))

        phases.append(_Phase("exec", costs.exec_restart_ns,
                             charge_ns=costs.exec_restart_ns))

        # ovsdb: reconnect (fault-stretched) + full re-read.
        ovsdb_retries = 0
        if self.vs is not None:
            while (plan is not None and ovsdb_retries < MAX_RETRIES
                   and plan.should_fire("ovsdb.disconnect")):
                ovsdb_retries += 1
            n_rows = len(self.vs.ovsdb._rows)
            connect = (ovsdb_retries + 1) * costs.ovsdb_connect_ns
            read = n_rows * costs.ovsdb_row_read_ns
            waited = ovsdb_retries * costs.ovsdb_reconnect_wait_ns
            phases.append(_Phase("ovsdb", connect + read + waited,
                                 charge_ns=connect + read, wait_ns=waited))

        # ports: per-type re-bind.  The action runs at phase end so new
        # sockets/queues appear only once recovery reaches this point.
        afxdp = self._afxdp_drivers()
        dpdk = self._dpdk_ethdevs()
        n_kports = self._n_kernel_ports()
        redumps = 0
        if n_kports and plan is not None:
            while (redumps < MAX_RETRIES
                   and plan.should_fire("netlink.enobufs")):
                redumps += 1
        ports_ns = sum(drv.setup_cost_ns() for drv in afxdp)
        if dpdk:
            ports_ns += costs.dpdk_eal_init_ns
            ports_ns += len(dpdk) * costs.dpdk_port_config_ns
        if n_kports:
            ports_ns += (redumps + 1) * n_kports * costs.netlink_port_dump_ns

        def rebind(ctx: ExecContext) -> None:
            for drv in afxdp:
                drv.setup(ctx)
            if dpdk:
                ctx.charge(costs.dpdk_eal_init_ns, label="dpdk_eal_init")
                stale = 0
                for eth in dpdk:
                    ctx.charge(costs.dpdk_port_config_ns,
                               label="dpdk_port_config")
                    # Queue re-init resets the hardware rings; frames
                    # that piled up while nobody polled are discarded.
                    for q in range(eth.n_queues):
                        ring = eth.nic.rx_rings[q]
                        stale += len(ring)
                        ring.clear()
                if stale:
                    reset = DropReason.CRASH_DPDK_RING_RESET
                    self.crash_sinks[reset.value] = (
                        self.crash_sinks.get(reset.value, 0) + stale)
                    telemetry.drop_event(reset, n=stale)
            if n_kports:
                ctx.charge((redumps + 1) * n_kports
                           * costs.netlink_port_dump_ns,
                           label="netlink_port_dump")

        if ports_ns:
            phases.append(_Phase("ports", ports_ns, action=rebind))

        # state: only the netdev DP diverged (caches + userspace
        # conntrack died with the process); the kernel DP's megaflows
        # and netfilter conntrack survived and need nothing.
        if self.vs is not None and self.vs.dpif_netdev is not None:
            emcs = [pmd.emc for pmd in self.pmds]
            dpif = self.vs.dpif_netdev

            def cold(ctx: ExecContext) -> None:
                dpif.cold_start(ctx, emcs=emcs)

            phases.append(_Phase("state", costs.conntrack_init_ns,
                                 action=cold))

        # resync: NSX replays desired state over OpenFlow.
        if self.vs is not None:
            n_rules = sum(bridge.n_flows()
                          for bridge in self.vs.ofproto.bridges.values())
            resync_ns = n_rules * costs.nsx_resync_per_rule_ns
            if self.nsx_agent is not None:
                agent = self.nsx_agent
                phases.append(_Phase(
                    "resync", resync_ns,
                    action=lambda ctx: agent.resync(ctx)))
            elif n_rules:
                phases.append(_Phase("resync", resync_ns,
                                     charge_ns=resync_ns))

        t = float(now)
        for ph in phases:
            t += ph.duration_ns
            ph.end_ns = t
        self._pending = phases
        self._rec = RestartRecord(
            cause=cause, crashed_at_ns=now, detected_at_ns=detected_at,
            recovered_at_ns=t, backoff_ns=backoff,
            ovsdb_retries=ovsdb_retries, netlink_redumps=redumps,
        )

    # ------------------------------------------------------------------
    # Phase execution.
    # ------------------------------------------------------------------
    def poll(self) -> None:
        """Execute every pending phase whose end time has passed."""
        if self.up or not self._pending:
            return
        now = self.clock.now
        while self._pending and self._pending[0].end_ns <= now:
            self._run_phase(self._pending.pop(0))
        if not self._pending:
            self._restarted()

    def finish(self) -> None:
        """Complete an in-progress recovery, advancing the clock to its
        scheduled end (for runs whose offered load stops mid-recovery,
        and for the non-clocked degradation sweep)."""
        if self.up or not self._pending:
            return
        self.clock.advance_to(int(math.ceil(self._pending[-1].end_ns)))
        self.poll()

    def _run_phase(self, ph: _Phase) -> None:
        if ph.charge_ns:
            self.ctx.charge(ph.charge_ns, label=f"supervisor.{ph.name}")
        if ph.wait_ns:
            self.ctx.wait(ph.wait_ns, label=f"supervisor.{ph.name}")
        if ph.action is not None:
            ph.action(self.ctx)
        assert self._rec is not None
        self._rec.phase_ns[ph.name] = (
            self._rec.phase_ns.get(ph.name, 0.0) + ph.duration_ns)

    def _restarted(self) -> None:
        rec = self._rec
        assert rec is not None
        self._rec = None
        if self.vs is not None:
            self.vs.recover()
            self.vs.restarts += 1
        self.up = True
        self.restarts += 1
        self.started_at_ns = rec.recovered_at_ns
        self.history.append(rec)
        trace.count("supervisor.restarts")

    # ------------------------------------------------------------------
    # Introspection (``appctl supervisor/show``).
    # ------------------------------------------------------------------
    def render(self) -> str:
        cfg = self.cfg
        lines = [
            f"status: {'up' if self.up else 'restarting'}",
            f"restarts: {self.restarts}",
            f"consecutive crashes: {self.consecutive_crashes}",
            f"heartbeat: every {cfg.heartbeat_interval_ns / MSEC:g} ms, "
            f"miss threshold {cfg.miss_threshold}",
        ]
        if self.up:
            uptime = self.clock.now - self.started_at_ns
            lines.insert(1, f"uptime: {uptime / MSEC:.3f} ms")
        else:
            assert self._rec is not None
            done = [p for p in (self._rec.phase_ns or {})]
            nxt = self._pending[0]
            lines.append(
                f"recovery: phase {nxt.name!r} ends at "
                f"{nxt.end_ns / MSEC:.3f} ms"
                + (f" (done: {', '.join(done)})" if done else ""))
        if self.last_cause is not None:
            lines.append(f"last crash cause: {self.last_cause}")
        n = self.consecutive_crashes
        next_backoff = 0.0 if n == 0 else min(
            cfg.backoff_cap_ns, cfg.backoff_base_ns * (2 ** (n - 1)))
        lines.append(
            f"next backoff: {next_backoff / MSEC:g} ms "
            f"(resets after {cfg.stable_uptime_ns / MSEC:g} ms stable)")
        for i, rec in enumerate(self.history):
            lines.append(
                f"restart[{i}]: cause={rec.cause} "
                f"downtime={rec.downtime_ns / MSEC:.3f}ms "
                f"backoff={rec.backoff_ns / MSEC:g}ms "
                f"ovsdb_retries={rec.ovsdb_retries} "
                f"netlink_redumps={rec.netlink_redumps}")
            for name in ("detect", "backoff", "exec", "ovsdb", "ports",
                         "state", "resync"):
                if name in rec.phase_ns:
                    lines.append(
                        f"  {name:8s} {rec.phase_ns[name] / MSEC:.3f} ms")
        if self.crash_sinks:
            for name in sorted(self.crash_sinks):
                lines.append(f"sink {name}: {self.crash_sinks[name]}")
        return "\n".join(lines)
