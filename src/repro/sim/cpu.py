"""CPU cores, execution contexts and time accounting.

The paper reports CPU consumption split into the categories ``top`` shows
(Table 4: system, softirq, guest, user).  We reproduce that: every piece of
substrate code runs on behalf of an :class:`ExecContext` — a simulated thread
of execution pinned to a logical CPU and running in one accounting category —
and charges virtual nanoseconds to it.  A :class:`CpuModel` aggregates busy
time per (cpu, category) so experiments can report utilisation exactly the
way the paper's Table 4 does.

Latency tracing
===============

For latency experiments a :class:`LatencyTrace` can be attached to a context
(usually with batch size 1); every charge is then also added to the trace,
with a component label, so we can report where each microsecond of a netperf
TCP_RR round trip went.

Trace ledger
============

When a :class:`~repro.sim.trace.TraceRecorder` is attached (see
:mod:`repro.sim.trace`), every charge is additionally recorded as a
per-stage span and every :meth:`CpuModel.charge` is tallied on the
CPU side, so the two ledgers can be audited against each other
(the cost-conservation invariant).  With no recorder attached the
hooks are a single ``is None`` check.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.sim import trace as _trace
from repro.sim.clock import Clock


class CpuCategory(enum.Enum):
    """Accounting buckets, mirroring the columns of the paper's Table 4."""

    USER = "user"
    SYSTEM = "system"
    SOFTIRQ = "softirq"
    GUEST = "guest"
    #: Busy-wait burn of poll-mode threads while no packets are available.
    #: ``top`` reports this as user time; we keep it separate so experiments
    #: can distinguish useful work from poll spin, then fold it into USER.
    POLL_IDLE = "poll_idle"


# Dense index per category so the per-packet accounting path can use list
# indexing instead of hashing an enum member (a measurable share of the
# wall-clock cost of ExecContext.charge).
for _i, _cat in enumerate(CpuCategory):
    _cat.idx = _i
N_CATEGORIES = len(CpuCategory)


class LatencyTrace:
    """Accumulates per-component latency along one packet's path."""

    __slots__ = ("total_ns", "components")

    def __init__(self) -> None:
        self.total_ns: float = 0.0
        self.components: Dict[str, float] = {}

    def add(self, ns: float, label: str) -> None:
        self.total_ns += ns
        self.components[label] = self.components.get(label, 0.0) + ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.0f}" for k, v in self.components.items())
        return f"LatencyTrace({self.total_ns:.0f} ns: {parts})"


class CpuModel:
    """A host's logical CPUs with per-(cpu, category) busy accounting."""

    def __init__(self, n_cpus: int, clock: Optional[Clock] = None) -> None:
        if n_cpus < 1:
            raise ValueError("a host needs at least one CPU")
        self.n_cpus = n_cpus
        self.clock = clock if clock is not None else Clock()
        # busy[cpu][category.idx] = ns.  A dense list, not a dict: the
        # accounting path runs once per charge, and enum hashing is the
        # single hottest Python-level operation of a forwarding run.
        # Each (cpu, category) pair keeps its own accumulator, so the
        # per-bucket float values are bit-identical to the dict scheme.
        self._busy: list[list[float]] = [
            [0.0] * N_CATEGORIES for _ in range(n_cpus)
        ]

    def charge(self, cpu: int, category: CpuCategory, ns: float) -> None:
        if ns < 0:
            raise ValueError(f"negative charge: {ns}")
        self._busy[cpu][category.idx] += ns
        rec = _trace.ACTIVE
        if rec is not None:
            rec.note_cpu(ns)

    def busy_ns(
        self,
        cpu: Optional[int] = None,
        category: Optional[CpuCategory] = None,
    ) -> float:
        """Total busy time, optionally filtered by cpu and/or category."""
        cpus = range(self.n_cpus) if cpu is None else (cpu,)
        total = 0.0
        for c in cpus:
            lane = self._busy[c]
            if category is None:
                total += sum(lane)
            else:
                total += lane[category.idx]
        return total

    def utilisation(
        self, wall_ns: float, category: Optional[CpuCategory] = None
    ) -> float:
        """Busy time over a wall-clock window, in units of whole CPUs.

        This is the quantity the paper's Table 4 reports ("in units of a CPU
        hyperthread"): 1.0 means one logical CPU fully busy.
        """
        if wall_ns <= 0:
            raise ValueError("wall window must be positive")
        return self.busy_ns(category=category) / wall_ns

    def utilisation_by_category(self, wall_ns: float) -> Dict[str, float]:
        """Table-4-style breakdown.  POLL_IDLE is folded into ``user``."""
        out: Dict[str, float] = {}
        for cat in CpuCategory:
            v = self.busy_ns(category=cat) / wall_ns
            if cat is CpuCategory.POLL_IDLE:
                out["user"] = out.get("user", 0.0) + v
            else:
                out[cat.value] = out.get(cat.value, 0.0) + v
        out["total"] = sum(
            v for k, v in out.items() if k != "total"
        )
        return out

    def reset(self) -> None:
        # Zero in place: ExecContexts cache a reference to their lane.
        for lane in self._busy:
            for i in range(N_CATEGORIES):
                lane[i] = 0.0


class ExecContext:
    """A simulated thread of execution.

    Parameters
    ----------
    cpu_model:
        Where busy time is accounted.
    cpu:
        The logical CPU this context is pinned to (PMD threads and softirq
        lanes are pinned; that is how the paper's setups run).
    category:
        Default accounting category for charges.
    """

    def __init__(
        self,
        cpu_model: CpuModel,
        cpu: int,
        category: CpuCategory,
        name: str = "",
    ) -> None:
        if not 0 <= cpu < cpu_model.n_cpus:
            raise ValueError(f"cpu {cpu} out of range")
        self.cpu_model = cpu_model
        self.cpu = cpu
        self.category = category
        self.name = name or f"ctx-{category.value}@cpu{cpu}"
        self.local_time_ns: float = 0.0
        self.trace: Optional[LatencyTrace] = None
        #: Cached busy lane; valid because contexts are pinned and
        #: CpuModel.reset() zeroes lanes in place.
        self._lane = cpu_model._busy[cpu]

    def charge(
        self,
        ns: float,
        label: str = "work",
        category: Optional[CpuCategory] = None,
    ) -> None:
        """Consume ``ns`` of CPU time in this context.

        This is the accounting funnel for the whole simulator (it runs
        several times per packet), so the CpuModel side is inlined: the
        lane update below is exactly what :meth:`CpuModel.charge` does.
        """
        if ns == 0:
            return
        if ns < 0:
            raise ValueError(f"negative charge: {ns}")
        cat = category if category is not None else self.category
        self._lane[cat.idx] += ns
        self.local_time_ns += ns
        if self.trace is not None:
            self.trace.add(ns, label)
        rec = _trace.ACTIVE
        if rec is not None:
            rec.note_cpu(ns)
            rec.record(label, ns)

    def charge_n(
        self,
        ns: float,
        n: int,
        label: str = "work",
        category: Optional[CpuCategory] = None,
    ) -> None:
        """Charge ``ns`` exactly ``n`` times (one per packet of a batch).

        Byte-identical to ``n`` separate :meth:`charge` calls: every
        accumulator (busy lane, local time, latency trace, ledger span)
        receives ``n`` individual float additions in the same order —
        batching must never collapse them into one ``n * ns`` term,
        because float addition is not associative and the trace ledger
        records per-charge span counts.
        """
        if n <= 0 or ns == 0:
            return
        if ns < 0:
            raise ValueError(f"negative charge: {ns}")
        cat = category if category is not None else self.category
        idx = cat.idx
        lane = self._lane
        tr = self.trace
        rec = _trace.ACTIVE
        if tr is None and rec is None:
            local = self.local_time_ns
            for _ in range(n):
                lane[idx] += ns
                local += ns
            self.local_time_ns = local
            return
        for _ in range(n):
            lane[idx] += ns
            self.local_time_ns += ns
            if tr is not None:
                tr.add(ns, label)
            if rec is not None:
                rec.note_cpu(ns)
                rec.record(label, ns)

    def wait(self, ns: float, label: str = "wait") -> None:
        """Pass ``ns`` of wall time without consuming CPU (sleep/block).

        The time still counts toward any latency trace: a sleeping thread
        adds to a packet's latency without burning a core.
        """
        if ns < 0:
            raise ValueError(f"negative wait: {ns}")
        self.local_time_ns += ns
        if self.trace is not None:
            self.trace.add(ns, label)
        rec = _trace.ACTIVE
        if rec is not None:
            rec.record_wait(label, ns)

    @contextmanager
    def tracing(self, trace: LatencyTrace) -> Iterator[LatencyTrace]:
        """Attach a latency trace for the duration of the block."""
        prev, self.trace = self.trace, trace
        try:
            yield trace
        finally:
            self.trace = prev

    @contextmanager
    def as_category(self, category: CpuCategory) -> Iterator[None]:
        """Temporarily run this context in a different accounting bucket.

        Used when a userspace thread enters the kernel (USER -> SYSTEM) or
        when the kernel borrows the current CPU for softirq work.
        """
        prev, self.category = self.category, category
        try:
            yield
        finally:
            self.category = prev

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecContext({self.name}, cpu={self.cpu}, "
            f"t={self.local_time_ns:.0f} ns)"
        )
