"""Measurement helpers: histograms, percentiles, rate estimation.

The paper reports P50/P90/P99 latencies (netperf) and maximum lossless
packet rates (TRex).  These helpers provide the corresponding reductions
over simulated samples.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def percentile(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile, ``0 < p <= 100``.

    Matches the convention netperf's omni output uses: the value below
    which ``p`` percent of observations fall.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0 < p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    ordered = sorted(samples)
    rank = math.ceil(p / 100.0 * len(ordered))
    return ordered[rank - 1]


class Histogram:
    """A simple sample accumulator with summary statistics."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        self._samples.append(value)

    def extend(self, values: Iterable[float]) -> None:
        self._samples.extend(values)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Sequence[float]:
        return tuple(self._samples)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("empty histogram")
        return sum(self._samples) / len(self._samples)

    def min(self) -> float:
        return min(self._samples)

    def max(self) -> float:
        return max(self._samples)

    def percentile(self, p: float) -> float:
        return percentile(self._samples, p)

    def percentiles(self, ps: Sequence[float] = (50, 90, 99)) -> Dict[float, float]:
        return {p: percentile(self._samples, p) for p in ps}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._samples:
            return "Histogram(empty)"
        return (
            f"Histogram(n={len(self._samples)}, mean={self.mean():.1f}, "
            f"p50={self.percentile(50):.1f}, p99={self.percentile(99):.1f})"
        )


class RateEstimator:
    """Convert work done in virtual time into packet/bit rates."""

    def __init__(self, packets: int, busy_ns: float, bytes_total: int = 0) -> None:
        if packets < 0 or busy_ns < 0:
            raise ValueError("negative work")
        self.packets = packets
        self.busy_ns = busy_ns
        self.bytes_total = bytes_total

    @property
    def ns_per_packet(self) -> float:
        if self.packets == 0:
            return math.inf
        return self.busy_ns / self.packets

    @property
    def mpps(self) -> float:
        """Millions of packets per second sustained by this lane."""
        if self.busy_ns == 0:
            return math.inf
        return self.packets / self.busy_ns * 1e3

    @property
    def gbps(self) -> float:
        """Goodput in gigabits per second (based on ``bytes_total``)."""
        if self.busy_ns == 0:
            return math.inf
        return self.bytes_total * 8 / self.busy_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RateEstimator({self.packets} pkts / {self.busy_ns:.0f} ns = "
            f"{self.mpps:.2f} Mpps)"
        )


def line_rate_mpps(link_gbps: float, frame_bytes: int) -> float:
    """Maximum packet rate of an Ethernet link.

    Accounts for the 20 bytes of per-frame overhead on the wire (7 preamble
    + 1 SFD + 12 interframe gap) plus the 4-byte FCS not included in the
    L2 frame length used throughout the paper (64 B, 1518 B frames include
    FCS per Ethernet convention; TRex line-rate numbers in §5.5 — 33 Mpps
    at 64 B and 2.1 Mpps at 1518 B on 25 GbE — imply FCS-inclusive sizes,
    which we match).
    """
    if frame_bytes < 64:
        raise ValueError("minimum Ethernet frame is 64 bytes")
    wire_bits = (frame_bytes + 20) * 8
    return link_gbps * 1e3 / wire_bits


def effective_parallel_rate(per_lane_mpps: Sequence[float], line_mpps: float) -> float:
    """Aggregate independent lanes, capped by the wire."""
    return min(sum(per_lane_mpps), line_mpps)


#: Throughput multiplier for a logical CPU whose hyperthread sibling is
#: also saturated.  Two HTs share one physical core's execution resources;
#: for packet-processing loads each runs at roughly 55 % of a solo thread
#: (the standard SMT yield for memory-bound networking work).  This is
#: why the kernel "uses almost 8 CPU cores" (~10 HT) for modest rates in
#: the paper's Table 4.
SMT_SIBLING_EFFICIENCY = 0.55


def smt_effective_lanes(n_busy_hyperthreads: int, n_hyperthreads: int) -> float:
    """Effective full-speed lanes when ``n_busy`` HTs are saturated.

    HTs pair up: 2i and 2i+1 share a physical core.  Busy HTs fill
    distinct physical cores first (irqbalance spreads them), then start
    doubling up at reduced per-thread efficiency.
    """
    if n_busy_hyperthreads < 0 or n_busy_hyperthreads > n_hyperthreads:
        raise ValueError("busy HT count out of range")
    n_physical = n_hyperthreads // 2 if n_hyperthreads > 1 else 1
    solo = min(n_busy_hyperthreads, n_physical)
    paired = max(0, n_busy_hyperthreads - n_physical)
    # A paired physical core yields 2 * efficiency instead of 1.0 + 1.0,
    # and the previously-solo sibling also drops to the shared rate.
    return (solo - paired) + paired * 2 * SMT_SIBLING_EFFICIENCY
