"""Measurement helpers: histograms, percentiles, rate estimation.

The paper reports P50/P90/P99 latencies (netperf) and maximum lossless
packet rates (TRex).  These helpers provide the corresponding reductions
over simulated samples.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def percentile(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile, ``0 < p <= 100``.

    Matches the convention netperf's omni output uses: the value below
    which ``p`` percent of observations fall.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0 < p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    ordered = sorted(samples)
    rank = math.ceil(p / 100.0 * len(ordered))
    return ordered[rank - 1]


class Histogram:
    """A simple sample accumulator with summary statistics."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        self._samples.append(value)

    def extend(self, values: Iterable[float]) -> None:
        self._samples.extend(values)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Sequence[float]:
        return tuple(self._samples)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("empty histogram")
        return sum(self._samples) / len(self._samples)

    def min(self) -> float:
        return min(self._samples)

    def max(self) -> float:
        return max(self._samples)

    def percentile(self, p: float) -> float:
        return percentile(self._samples, p)

    def percentiles(self, ps: Sequence[float] = (50, 90, 99)) -> Dict[float, float]:
        return {p: percentile(self._samples, p) for p in ps}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._samples:
            return "Histogram(empty)"
        return (
            f"Histogram(n={len(self._samples)}, mean={self.mean():.1f}, "
            f"p50={self.percentile(50):.1f}, p99={self.percentile(99):.1f})"
        )


class StreamingHistogram:
    """A log-bucketed streaming histogram (the DDSketch construction).

    Long-running series (the metrics sampler's ns-per-packet track, hour
    -scale latency sweeps) cannot afford :class:`Histogram`'s
    per-sample storage.  This sketch keeps one counter per logarithmic
    bucket: value ``v`` lands in bucket ``ceil(log_gamma(v))`` with
    ``gamma = (1 + a) / (1 - a)``, and a bucket's representative is its
    midpoint — so any percentile estimate is within relative error ``a``
    of the true sample value, regardless of how many samples streamed
    through.

    Memory is bounded twice over: bucket count grows with the *dynamic
    range* of the data (log-many buckets), and ``max_buckets`` caps even
    that by collapsing the lowest pair (sacrificing low-end accuracy,
    exactly DDSketch's trade).  Exact ``n``/``sum``/``min``/``max`` are
    kept on the side.
    """

    __slots__ = ("rel_error", "max_buckets", "gamma", "_log_gamma",
                 "_buckets", "_zero", "_n", "_sum", "_min", "_max")

    def __init__(self, rel_error: float = 0.01,
                 max_buckets: int = 4096) -> None:
        if not 0.0 < rel_error < 1.0:
            raise ValueError(f"relative error out of range: {rel_error}")
        if max_buckets < 2:
            raise ValueError("need at least two buckets")
        self.rel_error = rel_error
        self.max_buckets = max_buckets
        self.gamma = (1.0 + rel_error) / (1.0 - rel_error)
        self._log_gamma = math.log(self.gamma)
        #: bucket index -> count; index i covers (gamma^(i-1), gamma^i].
        self._buckets: Dict[int, int] = {}
        #: values <= 0 (no logarithm): counted exactly, reported as 0.0.
        self._zero = 0
        self._n = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        self._n += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= 0.0:
            self._zero += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        if len(self._buckets) > self.max_buckets:
            self._collapse_lowest()

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def _collapse_lowest(self) -> None:
        low, second = sorted(self._buckets)[:2]
        self._buckets[second] += self._buckets.pop(low)

    def _bucket_value(self, index: int) -> float:
        # Midpoint of (gamma^(i-1), gamma^i]: 2*gamma^i / (gamma + 1).
        return 2.0 * self.gamma ** index / (self.gamma + 1.0)

    def __len__(self) -> int:
        return self._n

    @property
    def n_buckets(self) -> int:
        return len(self._buckets)

    def mean(self) -> float:
        if not self._n:
            raise ValueError("empty histogram")
        return self._sum / self._n

    def min(self) -> float:
        if not self._n:
            raise ValueError("empty histogram")
        return self._min

    def max(self) -> float:
        if not self._n:
            raise ValueError("empty histogram")
        return self._max

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (same convention as :func:`percentile`),
        accurate to ``rel_error`` relative to the true sample value."""
        if not self._n:
            raise ValueError("no samples")
        if not 0 < p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        rank = math.ceil(p / 100.0 * self._n)
        if rank <= self._zero:
            return 0.0
        cumulative = self._zero
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                # The true sample lies in this bucket; clamping to the
                # exact extremes only ever tightens the estimate.
                return min(max(self._bucket_value(index), self._min),
                           self._max)
        return self._max

    def percentiles(self, ps: Sequence[float] = (50, 90, 99)) -> Dict[float, float]:
        return {p: self.percentile(p) for p in ps}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._n:
            return "StreamingHistogram(empty)"
        return (
            f"StreamingHistogram(n={self._n}, {len(self._buckets)} buckets, "
            f"p50={self.percentile(50):.1f}, p99={self.percentile(99):.1f})"
        )


class RateEstimator:
    """Convert work done in virtual time into packet/bit rates."""

    def __init__(self, packets: int, busy_ns: float, bytes_total: int = 0) -> None:
        if packets < 0 or busy_ns < 0:
            raise ValueError("negative work")
        self.packets = packets
        self.busy_ns = busy_ns
        self.bytes_total = bytes_total

    @property
    def ns_per_packet(self) -> float:
        if self.packets == 0:
            return math.inf
        return self.busy_ns / self.packets

    @property
    def mpps(self) -> float:
        """Millions of packets per second sustained by this lane."""
        if self.busy_ns == 0:
            return math.inf
        return self.packets / self.busy_ns * 1e3

    @property
    def gbps(self) -> float:
        """Goodput in gigabits per second (based on ``bytes_total``)."""
        if self.busy_ns == 0:
            return math.inf
        return self.bytes_total * 8 / self.busy_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RateEstimator({self.packets} pkts / {self.busy_ns:.0f} ns = "
            f"{self.mpps:.2f} Mpps)"
        )


def line_rate_mpps(link_gbps: float, frame_bytes: int) -> float:
    """Maximum packet rate of an Ethernet link.

    Accounts for the 20 bytes of per-frame overhead on the wire (7 preamble
    + 1 SFD + 12 interframe gap) plus the 4-byte FCS not included in the
    L2 frame length used throughout the paper (64 B, 1518 B frames include
    FCS per Ethernet convention; TRex line-rate numbers in §5.5 — 33 Mpps
    at 64 B and 2.1 Mpps at 1518 B on 25 GbE — imply FCS-inclusive sizes,
    which we match).
    """
    if frame_bytes < 64:
        raise ValueError("minimum Ethernet frame is 64 bytes")
    wire_bits = (frame_bytes + 20) * 8
    return link_gbps * 1e3 / wire_bits


def effective_parallel_rate(per_lane_mpps: Sequence[float], line_mpps: float) -> float:
    """Aggregate independent lanes, capped by the wire."""
    return min(sum(per_lane_mpps), line_mpps)


#: Throughput multiplier for a logical CPU whose hyperthread sibling is
#: also saturated.  Two HTs share one physical core's execution resources;
#: for packet-processing loads each runs at roughly 55 % of a solo thread
#: (the standard SMT yield for memory-bound networking work).  This is
#: why the kernel "uses almost 8 CPU cores" (~10 HT) for modest rates in
#: the paper's Table 4.
SMT_SIBLING_EFFICIENCY = 0.55


def smt_effective_lanes(n_busy_hyperthreads: int, n_hyperthreads: int) -> float:
    """Effective full-speed lanes when ``n_busy`` HTs are saturated.

    HTs pair up: 2i and 2i+1 share a physical core.  Busy HTs fill
    distinct physical cores first (irqbalance spreads them), then start
    doubling up at reduced per-thread efficiency.
    """
    if n_busy_hyperthreads < 0 or n_busy_hyperthreads > n_hyperthreads:
        raise ValueError("busy HT count out of range")
    n_physical = n_hyperthreads // 2 if n_hyperthreads > 1 else 1
    solo = min(n_busy_hyperthreads, n_physical)
    paired = max(0, n_busy_hyperthreads - n_physical)
    # A paired physical core yields 2 * efficiency instead of 1.0 + 1.0,
    # and the previously-solo sibling also drops to the shared rate.
    return (solo - paired) + paired * 2 * SMT_SIBLING_EFFICIENCY
