"""Deterministic multi-process scale-out of the simulator (DESIGN §17).

After PR 2/5/7 made the per-packet path ~5x faster, the remaining
wall-clock ceiling is the one CPython interpreter every PMD, softirq
lane and experiment cell shares.  Real OVS scales by adding PMD threads
(§5.5); the simulator scales the same way — by partitioning work across
``multiprocessing`` workers — but with one extra obligation real OVS
does not have: **the merged observables must be byte-identical to the
single-process run**.  The charge-exactness contract of PR 2/5/7 (same
floats, in the same order, into the same accumulators) now has to hold
across process boundaries.

Two sharding modes share this module:

* **Unit sharding** (:func:`run_units`) — an experiment is a fixed
  serial sequence of *units* (fig9 cells, fig12 points, matrix cells;
  each builds its own world, clock, RNG streams, recorder, conservation
  ledger).  A deterministic plan places units on shards; workers run
  them with shard-local state; the coordinator merges outcomes **in the
  serial unit order**, replaying each unit's recorded charge stream so
  every float accumulator folds in exactly the order the serial run
  would have used.  Float addition is not associative: merging by
  adding per-shard *totals* would change the last ulps, so snapshots
  carry run-length-compressed event streams instead (lean on the wire:
  repeated identical charges — the common case, costs are constants —
  collapse to ``(value, count)`` pairs).

* **Pipeline sharding** (:func:`run_pipeline`) — one world whose PMDs
  are partitioned across workers.  Stages are chained through charged
  SPSC rings (:class:`repro.ovs.netdevs.RingPortAdapter`); rings whose
  producer and consumer PMDs live in different shards become
  **cross-shard TX handoff queues**: the producer's tx charges land in
  its shard, the coordinator ships the frames at the next burst
  barrier, and the consumer's rx charges land in its own shard — the
  same charges, on the same lanes, as the serial run.  Every lane is
  owned by exactly one shard, so per-lane busy time needs no replay at
  all: the floats are exact by construction.

Determinism guards
==================

Sharding refuses ambient cross-unit state it cannot partition: a
module-global :data:`repro.sim.faults.ACTIVE` plan (its per-point RNG
streams would interleave across units in serial but not when sharded),
an ambient telemetry session, or a metrics sampler.  Fault plans are
instead *unit-scoped*: :attr:`Unit.plan` carries a plan spec that the
worker (and the serial path, identically) installs around just that
unit, so the streams are a pure function of the unit, not of the
schedule.

Everything here is spawn-safe: workers are module-level functions fed
picklable payloads, so the suite passes under the ``fork``, ``spawn``
and ``forkserver`` start methods alike (macOS and Windows default to
``spawn``).
"""

from __future__ import annotations

import importlib
import os
import pickle
import time
from contextlib import contextmanager, ExitStack
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sim import faults as _faults
from repro.sim import trace as _trace
from repro.sim.profile import Profiler
from repro.sim.trace import TraceRecorder


class ShardError(RuntimeError):
    """A sharding contract violation (ambient state, bad plan, ...)."""


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - macOS/Windows
        return os.cpu_count() or 1


def default_start_method() -> str:
    """``fork`` where available (cheap), else the platform default."""
    import multiprocessing as mp

    override = os.environ.get("REPRO_SHARD_START")
    if override:
        return override
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


# ----------------------------------------------------------------------
# Run-length logs: the lean snapshot encoding.
# ----------------------------------------------------------------------
class RunLog:
    """Per-key run-length log of float additions.

    ``runs[key]`` is a flat ``[v0, n0, v1, n1, ...]`` list: the addition
    sequence was ``n0`` times ``v0``, then ``n1`` times ``v1``, ...
    Replaying performs every individual addition again, so the fold is
    bit-identical to the original sequence; the encoding is merely a
    compression of *consecutive equal values* (cost constants repeat,
    so ledger streams compress extremely well).
    """

    __slots__ = ("runs",)

    def __init__(self) -> None:
        self.runs: Dict[Any, List[float]] = {}

    def add(self, key: Any, value: float) -> None:
        runs = self.runs.get(key)
        if runs is None:
            self.runs[key] = [value, 1]
        elif runs[-2] == value:
            runs[-1] += 1
        else:
            runs.append(value)
            runs.append(1)

    def add_n(self, key: Any, value: float, n: int) -> None:
        runs = self.runs.get(key)
        if runs is None:
            self.runs[key] = [value, n]
        elif runs[-2] == value:
            runs[-1] += n
        else:
            runs.append(value)
            runs.append(n)


def _fold_runs(entry: List[float], runs: Sequence[float],
               collapse: bool = False) -> None:
    """Replay ``runs`` into a ``[count, total]`` ledger entry.

    ``collapse=True`` is the *mutation* used to prove the byte-identity
    gate has teeth: it folds each run as one ``n * v`` addition instead
    of ``n`` additions — numerically "the same", byte-wise not.
    """
    it = iter(runs)
    for v in it:
        n = int(next(it))
        entry[0] += n
        if collapse:
            entry[1] += n * v
        else:
            total = entry[1]
            for _ in range(n):
                total += v
            entry[1] = total


def _fold_value(value: float, runs: Sequence[float],
                collapse: bool = False) -> float:
    it = iter(runs)
    for v in it:
        n = int(next(it))
        if collapse:
            value += n * v
        else:
            for _ in range(n):
                value += v
    return value


# ----------------------------------------------------------------------
# Shard-local recording: a TraceRecorder that also logs its streams.
# ----------------------------------------------------------------------
class ShardRecorder(TraceRecorder):
    """A recorder that additionally keeps replayable event streams.

    Workers attach one per unit; its :meth:`snapshot` is shipped back
    and replayed into the coordinator's recorder so the merged ledger is
    byte-identical to a serial run.  Slower than the plain recorder —
    only attached when the outer run is being traced anyway.
    """

    __slots__ = ("span_log", "wait_log", "nested_log", "cpu_log")

    def __init__(self) -> None:
        super().__init__()
        self.span_log = RunLog()
        self.wait_log = RunLog()
        self.nested_log = RunLog()
        self.cpu_log = RunLog()

    def record(self, stage: str, ns: float) -> None:
        super().record(stage, ns)
        self.span_log.add(stage, ns)

    def record_n(self, stage: str, ns: float, n: int) -> None:
        if n <= 0:
            return
        super().record_n(stage, ns, n)
        self.span_log.add_n(stage, ns, n)

    def record_wait(self, stage: str, ns: float) -> None:
        super().record_wait(stage, ns)
        self.wait_log.add(stage, ns)

    def note_cpu(self, ns: float) -> None:
        super().note_cpu(ns)
        self.cpu_log.add("cpu", ns)

    def note_cpu_n(self, ns: float, n: int) -> None:
        super().note_cpu_n(ns, n)
        self.cpu_log.add_n("cpu", ns, n)

    @contextmanager
    def span(self, stage: str) -> Iterator[None]:
        # Reimplements TraceRecorder.span so the inclusive total written
        # at exit can be logged (the parent's contextmanager offers no
        # hook at that point).
        path = "/".join([str(f[0]) for f in self._stack] + [stage])
        frame: List[object] = [path, 0.0]
        self._stack.append(frame)
        prof = self.profiler
        if prof is not None:
            prof.enter(stage)
        try:
            yield
        finally:
            if prof is not None:
                prof.exit_()
            self._stack.pop()
            entry = self.span_totals.get(path)
            if entry is None:
                self.span_totals[path] = [1, frame[1]]
            else:
                entry[0] += 1
                entry[1] += frame[1]
            self.nested_log.add(path, frame[1])

    def snapshot(self) -> "TraceSnapshot":
        prof_enters: Dict[Tuple[str, ...], int] = {}
        prof_leaves: Dict[Tuple[str, ...], List[float]] = {}
        prof = self.profiler
        if isinstance(prof, LogProfiler):
            prof_enters = prof.enter_log
            prof_leaves = prof.leaf_log.runs
        return TraceSnapshot(
            spans=self.span_log.runs,
            waits=self.wait_log.runs,
            nested=self.nested_log.runs,
            cpu=self.cpu_log.runs.get("cpu", []),
            counters=dict(self.counters),
            batch_sizes={k: dict(v) for k, v in self.batch_sizes.items()},
            prof_enters=prof_enters,
            prof_leaves=prof_leaves,
        )


class LogProfiler(Profiler):
    """A Profiler that also logs per-node events for exact tree merge.

    Nodes are addressed by their label path from the root; interior
    entries (``enter``) are integer counts, leaf folds are run-length
    float logs — replayed per node in unit order, the merged call tree
    (and its collapsed-stack flamegraph) is byte-identical to the
    serial profiler's.
    """

    __slots__ = ("enter_log", "leaf_log", "_path")

    def __init__(self) -> None:
        super().__init__()
        self.enter_log: Dict[Tuple[str, ...], int] = {}
        self.leaf_log = RunLog()
        self._path: List[str] = []

    def enter(self, label: str) -> None:
        super().enter(label)
        self._path.append(label)
        key = tuple(self._path)
        self.enter_log[key] = self.enter_log.get(key, 0) + 1

    def exit_(self) -> None:
        super().exit_()
        if self._path:
            self._path.pop()

    def leaf(self, label: str, ns: float) -> None:
        super().leaf(label, ns)
        self.leaf_log.add(tuple(self._path) + (label,), ns)

    def leaf_n(self, label: str, ns: float, n: int) -> None:
        super().leaf_n(label, ns, n)
        self.leaf_log.add_n(tuple(self._path) + (label,), ns, n)


@dataclass
class TraceSnapshot:
    """One unit's replayable observables, lean enough to pickle cheaply.

    Float families (spans, waits, nested span totals, the CPU-side
    conservation tally, profiler leaf folds) are run-length event
    streams; counters, span counts and batch histograms are plain ints.
    ``replay_into`` folds everything into a coordinator-side recorder
    with exactly the serial run's addition sequence.
    """

    spans: Dict[str, List[float]]
    waits: Dict[str, List[float]]
    nested: Dict[str, List[float]]
    cpu: List[float]
    counters: Dict[str, int]
    batch_sizes: Dict[str, Dict[int, int]]
    prof_enters: Dict[Tuple[str, ...], int] = field(default_factory=dict)
    prof_leaves: Dict[Tuple[str, ...], List[float]] = field(
        default_factory=dict)

    def replay_into(self, rec: TraceRecorder,
                    collapse: bool = False) -> None:
        if rec._stack:
            raise ShardError(
                "cannot merge a shard snapshot while a span is open on "
                "the target recorder (merge at a barrier, outside spans)")
        for stage, runs in self.spans.items():
            entry = rec.spans.get(stage)
            if entry is None:
                entry = rec.spans[stage] = [0, 0.0]
            _fold_runs(entry, runs, collapse=collapse)
        for stage, runs in self.waits.items():
            entry = rec.waits.get(stage)
            if entry is None:
                entry = rec.waits[stage] = [0, 0.0]
            _fold_runs(entry, runs, collapse=collapse)
        for path, runs in self.nested.items():
            entry = rec.span_totals.get(path)
            if entry is None:
                entry = rec.span_totals[path] = [0, 0.0]
            _fold_runs(entry, runs, collapse=collapse)
        rec.cpu_charged_ns = _fold_value(rec.cpu_charged_ns, self.cpu,
                                         collapse=collapse)
        for name, n in self.counters.items():
            rec.counters[name] = rec.counters.get(name, 0) + n
        for stage, hist in self.batch_sizes.items():
            out = rec.batch_sizes.setdefault(stage, {})
            for size, n in hist.items():
                out[size] = out.get(size, 0) + n
        prof = rec.profiler
        if prof is not None and (self.prof_enters or self.prof_leaves):
            if prof.depth:
                raise ShardError(
                    "cannot merge a profiler snapshot while frames are "
                    "open on the target profiler")
            self._replay_profiler(prof, collapse=collapse)

    def _replay_profiler(self, prof: Profiler, collapse: bool) -> None:
        def node_at(path: Tuple[str, ...]):
            node = prof.root
            for label in path:
                node = node.child(label)
            return node

        for path, count in self.prof_enters.items():
            node_at(path).calls += count
        for path, runs in self.prof_leaves.items():
            node = node_at(path)
            it = iter(runs)
            for v in it:
                n = int(next(it))
                node.calls += n
                if collapse:
                    node.ns += n * v
                else:
                    ns = node.ns
                    for _ in range(n):
                        ns += v
                    node.ns = ns


# ----------------------------------------------------------------------
# Units and placement.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Unit:
    """One shardable work item of an experiment.

    ``runner`` is a ``"package.module:function"`` string resolved *in
    the worker* (spawn-safe: no callables cross the process boundary);
    ``params`` are its picklable keyword arguments.  ``weight`` is a
    relative cost estimate that only steers placement — it can be
    arbitrarily wrong without affecting any observable, only the load
    balance.  ``plan`` optionally carries a unit-scoped fault-plan spec
    (``FaultPlan`` constructor kwargs) installed around just this unit,
    identically on the serial and sharded paths.  ``phase`` groups
    units between deterministic sync barriers: all units of phase k
    complete (and merge) before any unit of phase k+1 starts.
    """

    key: Any
    runner: str
    params: Dict[str, Any] = field(default_factory=dict)
    weight: float = 1.0
    plan: Optional[Dict[str, Any]] = None
    phase: str = ""


@dataclass
class ShardPlan:
    """Deterministic unit -> shard placement (LPT with stable ties).

    ``shards[s]`` lists unit indices (into the serial order) owned by
    shard ``s``.  Placement never affects merged observables — merging
    always walks the serial index order — only wall-clock balance.
    """

    n_shards: int
    shards: List[List[int]]

    @classmethod
    def from_partition(cls, partition: Sequence[int],
                       n_shards: int) -> "ShardPlan":
        """An explicit unit->shard map (property tests, manual pinning)."""
        if n_shards < 1:
            raise ShardError("need at least one shard")
        shards: List[List[int]] = [[] for _ in range(n_shards)]
        for i, s in enumerate(partition):
            if not 0 <= s < n_shards:
                raise ShardError(
                    f"unit {i} placed on shard {s}, have {n_shards}")
            shards[s].append(i)
        return cls(n_shards=n_shards, shards=shards)

    @classmethod
    def build(cls, units: Sequence[Unit], n_shards: int) -> "ShardPlan":
        if n_shards < 1:
            raise ShardError("need at least one shard")
        shards: List[List[int]] = [[] for _ in range(n_shards)]
        loads = [0.0] * n_shards
        # Longest-processing-time-first, ties broken by serial index and
        # lowest shard id: a pure function of (units, n_shards).
        order = sorted(range(len(units)),
                       key=lambda i: (-units[i].weight, i))
        for i in order:
            s = min(range(n_shards), key=lambda j: (loads[j], j))
            shards[s].append(i)
            loads[s] += units[i].weight
        for bucket in shards:
            bucket.sort()
        return cls(n_shards=n_shards, shards=shards)

    def shard_of(self, index: int) -> int:
        for s, bucket in enumerate(self.shards):
            if index in bucket:
                return s
        raise KeyError(index)


def partition_round_robin(n_items: int, n_shards: int) -> List[int]:
    """The default port->shard partition: item i on shard i % n."""
    if n_shards < 1:
        raise ShardError("need at least one shard")
    return [i % n_shards for i in range(n_items)]


# ----------------------------------------------------------------------
# The worker side (module-level: spawn-safe).
# ----------------------------------------------------------------------
def _resolve_runner(spec: str) -> Callable:
    module_name, _, func_name = spec.partition(":")
    if not func_name:
        raise ShardError(f"runner {spec!r} is not 'module:function'")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, func_name)
    except AttributeError as exc:
        raise ShardError(f"runner {spec!r} not found") from exc


@dataclass
class UnitOutcome:
    index: int
    value: Any
    snapshot: Optional[TraceSnapshot]
    wall_s: float


@dataclass
class WorkerTask:
    shard_id: int
    units: List[Tuple[int, Unit]]
    record: str  # "off" | "trace" | "profile"


@dataclass
class WorkerResult:
    shard_id: int
    outcomes: List[UnitOutcome]
    wall_s: float


def _clear_inherited_globals() -> None:
    """Forked workers inherit the parent's module globals; shard-local
    state must start clean (spawned workers start clean anyway)."""
    if _trace.ACTIVE is not None:
        _trace.detach()
    if _faults.ACTIVE is not None:
        _faults.ACTIVE = None
    try:
        from repro import telemetry as _telemetry
        if _telemetry.ACTIVE is not None:
            _telemetry.ACTIVE = None
    except ImportError:  # pragma: no cover - partial builds
        pass


def run_one_unit(unit: Unit, record: str) -> Tuple[Any,
                                                   Optional[TraceSnapshot]]:
    """Run one unit under its own recorder/plan; shared by the worker
    and (with ``record="off"`` and no ambient recorder talk) nothing
    else — the serial path runs units inline instead."""
    runner = _resolve_runner(unit.runner)
    with ExitStack() as stack:
        if unit.plan is not None:
            plan = _faults.FaultPlan(**unit.plan)
            stack.enter_context(_faults.injecting(plan))
        rec: Optional[ShardRecorder] = None
        if record != "off":
            rec = ShardRecorder()
            if record == "profile":
                rec.profiler = LogProfiler()
            stack.enter_context(_trace.recording(rec))
        value = runner(**unit.params)
    return value, (rec.snapshot() if rec is not None else None)


def _run_assigned(task: WorkerTask) -> WorkerResult:
    """Worker entry point: run this shard's units in serial-index order."""
    _clear_inherited_globals()
    started = time.perf_counter()
    outcomes: List[UnitOutcome] = []
    for index, unit in task.units:
        t0 = time.perf_counter()
        value, snapshot = run_one_unit(unit, task.record)
        outcomes.append(UnitOutcome(
            index=index, value=value, snapshot=snapshot,
            wall_s=time.perf_counter() - t0,
        ))
    return WorkerResult(shard_id=task.shard_id, outcomes=outcomes,
                        wall_s=time.perf_counter() - started)


# ----------------------------------------------------------------------
# Reporting (the data plane of ``appctl shard/show``).
# ----------------------------------------------------------------------
@dataclass
class HandoffStat:
    """One cross-shard TX handoff queue's lifetime accounting."""

    name: str
    from_shard: int
    to_shard: int
    transfers: int = 0
    packets: int = 0
    peak_depth: int = 0


@dataclass
class ShardReport:
    """What a sharded run looked like, for ``appctl shard/show``.

    Wall times are real seconds (reporting only — never an observable).
    """

    n_shards: int
    start_method: str
    degenerate: bool = False
    record: str = "off"
    barriers: int = 0
    #: (unit key, shard id, weight) in serial order.
    placement: List[Tuple[Any, int, float]] = field(default_factory=list)
    #: (pmd name, core, shard) rows for pipeline mode.
    pmd_placement: List[Tuple[str, int, int]] = field(default_factory=list)
    handoffs: List[HandoffStat] = field(default_factory=list)
    shard_walls: Dict[int, float] = field(default_factory=dict)
    merge_wall_s: float = 0.0
    payload_bytes: int = 0

    def render(self) -> str:
        lines = [
            f"shards: {self.n_shards} (start method: {self.start_method}"
            f"{', degenerate: ran inline' if self.degenerate else ''})",
            f"record: {self.record}",
            f"barriers: {self.barriers}",
        ]
        if self.pmd_placement:
            lines.append("pmd placement:")
            for name, core, shard in self.pmd_placement:
                lines.append(f"  {name} core {core} -> shard {shard}")
        if self.placement:
            by_shard: Dict[int, List[str]] = {}
            for key, shard, weight in self.placement:
                by_shard.setdefault(shard, []).append(
                    f"{key!r} (w={weight:g})")
            for shard in range(self.n_shards):
                units = by_shard.get(shard, [])
                wall = self.shard_walls.get(shard)
                suffix = f"  wall {wall:.3f}s" if wall is not None else ""
                lines.append(f"shard {shard}: {len(units)} unit"
                             f"{'s' if len(units) != 1 else ''}{suffix}")
                for u in units:
                    lines.append(f"  {u}")
        if self.handoffs:
            lines.append("cross-shard handoff queues:")
            for h in self.handoffs:
                lines.append(
                    f"  {h.name}: shard {h.from_shard} -> {h.to_shard}  "
                    f"transfers:{h.transfers} packets:{h.packets} "
                    f"peak-depth:{h.peak_depth}")
        lines.append(f"merge wall: {self.merge_wall_s * 1e3:.2f} ms "
                     f"({self.payload_bytes} snapshot bytes)")
        return "\n".join(lines)


@dataclass
class ShardRun:
    """The merged result of a sharded (or degenerate serial) run."""

    values: List[Any]
    report: ShardReport

    def by_key(self, units: Sequence[Unit]) -> Dict[Any, Any]:
        return {u.key: v for u, v in zip(units, self.values)}


#: The report of the most recent sharded run, for ``appctl shard/show``
#: (mirrors how ``faults.ACTIVE`` / ``trace.ACTIVE`` expose themselves).
LAST_REPORT: Optional[ShardReport] = None


# ----------------------------------------------------------------------
# The coordinator.
# ----------------------------------------------------------------------
def _guard_ambient_state(units: Sequence[Unit], shards: int) -> None:
    if shards > 1 and _faults.ACTIVE is not None:
        raise ShardError(
            "an ambient FaultPlan is installed; its per-point RNG "
            "streams interleave across units in serial order and cannot "
            "be partitioned — scope the plan per unit (Unit.plan) "
            "instead")
    if any(u.plan is not None for u in units) and _faults.ACTIVE is not None:
        raise ShardError(
            "unit-scoped fault plans cannot nest inside an ambient "
            "FaultPlan")
    if shards > 1:
        try:
            from repro import telemetry as _telemetry
        except ImportError:  # pragma: no cover - partial builds
            _telemetry = None
        if _telemetry is not None and _telemetry.ACTIVE is not None:
            raise ShardError(
                "an ambient telemetry session is active; its exporter "
                "state is cross-unit and cannot be partitioned")
    rec = _trace.ACTIVE
    if shards > 1 and rec is not None and rec.sampler is not None:
        raise ShardError(
            "a MetricsSampler is attached; interval samples interleave "
            "units and cannot be merged byte-identically — run sampled "
            "experiments serially")


def _record_mode() -> str:
    rec = _trace.ACTIVE
    if rec is None:
        return "off"
    return "profile" if rec.profiler is not None else "trace"


def run_units(
    units: Sequence[Unit],
    shards: int = 1,
    start_method: Optional[str] = None,
    placement: Optional[Sequence[int]] = None,
    _mutate_merge: Optional[str] = None,
) -> ShardRun:
    """Run ``units`` across ``shards`` workers; merge deterministically.

    ``shards <= 1`` is the degenerate case: units run inline, in serial
    order, in this process, under whatever recorder/plan is ambient —
    byte-for-byte the pre-sharding behaviour.  With ``shards > 1``,
    units execute in worker processes with shard-local recorders and
    the coordinator replays their snapshots in serial unit order at
    each phase barrier.

    ``_mutate_merge`` exists for the gate's mutation test only:
    ``"reorder"`` replays units in reversed order, ``"collapse"`` folds
    run-length groups as single multiplications.  Both must make the
    byte-identity gate fail — proving it can.
    """
    global LAST_REPORT
    units = list(units)
    _guard_ambient_state(units, shards)
    record = _record_mode()
    # An explicit placement keeps its shard ids even if some end up
    # empty; the planner otherwise never opens more shards than units.
    n_shards = (shards if placement is not None
                else max(1, min(shards, len(units))))

    if shards <= 1:
        values: List[Any] = []
        for unit in units:
            if unit.plan is not None:
                plan = _faults.FaultPlan(**unit.plan)
                with _faults.injecting(plan):
                    values.append(_resolve_runner(unit.runner)(**unit.params))
            else:
                values.append(_resolve_runner(unit.runner)(**unit.params))
        report = ShardReport(
            n_shards=1, start_method="inline", degenerate=True,
            record=record, barriers=0,
            placement=[(u.key, 0, u.weight) for u in units],
        )
        LAST_REPORT = report
        return ShardRun(values=values, report=report)

    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor

    method = start_method or default_start_method()
    if placement is not None:
        if len(placement) != len(units):
            raise ShardError("placement must name one shard per unit")
        plan = ShardPlan.from_partition(placement, n_shards)
    else:
        plan = ShardPlan.build(units, n_shards)
    phases: List[str] = []
    for u in units:
        if u.phase not in phases:
            phases.append(u.phase)

    rec = _trace.ACTIVE
    values = [None] * len(units)
    report = ShardReport(
        n_shards=n_shards, start_method=method, record=record,
        placement=[(u.key, plan.shard_of(i), u.weight)
                   for i, u in enumerate(units)],
    )
    ctx = mp.get_context(method)
    merge_wall = 0.0
    payload_bytes = 0
    with ProcessPoolExecutor(max_workers=n_shards,
                             mp_context=ctx) as pool:
        for phase in phases:
            futures = []
            for shard_id, bucket in enumerate(plan.shards):
                assigned = [(i, units[i]) for i in bucket
                            if units[i].phase == phase]
                if not assigned:
                    continue
                futures.append(pool.submit(_run_assigned, WorkerTask(
                    shard_id=shard_id, units=assigned, record=record)))
            outcomes: List[UnitOutcome] = []
            for future in futures:
                result = future.result()  # the phase barrier
                report.shard_walls[result.shard_id] = (
                    report.shard_walls.get(result.shard_id, 0.0)
                    + result.wall_s)
                outcomes.extend(result.outcomes)
            report.barriers += 1
            t0 = time.perf_counter()
            outcomes.sort(key=lambda o: o.index)
            if _mutate_merge == "reorder":
                outcomes.reverse()
            for outcome in outcomes:
                values[outcome.index] = outcome.value
                if outcome.snapshot is not None:
                    payload_bytes += len(pickle.dumps(
                        outcome.snapshot, protocol=pickle.HIGHEST_PROTOCOL))
                    if rec is not None:
                        outcome.snapshot.replay_into(
                            rec, collapse=(_mutate_merge == "collapse"))
            merge_wall += time.perf_counter() - t0
    report.merge_wall_s = merge_wall
    report.payload_bytes = payload_bytes
    LAST_REPORT = report
    return ShardRun(values=values, report=report)


# ----------------------------------------------------------------------
# Conservation-ledger merge.
# ----------------------------------------------------------------------
def merge_ledgers(ledgers: Sequence) -> "Any":
    """Merge per-shard :class:`~repro.tools.conservation.PacketLedger`s.

    All counts are integers, so summation in fixed shard order is exact
    (no replay needed); the merged ledger balances iff every shard's
    does plus no packet crossed shards unaccounted.
    """
    from repro.tools.conservation import PacketLedger

    offered = forwarded = 0
    sinks: Dict[str, int] = {}
    for ledger in ledgers:
        offered += ledger.offered
        forwarded += ledger.forwarded
        for name, n in ledger.sinks.items():
            sinks[name] = sinks.get(name, 0) + n
    return PacketLedger(offered=offered, forwarded=forwarded, sinks=sinks)


# ----------------------------------------------------------------------
# Pipeline sharding: one world, PMDs partitioned across workers.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PipelineSpec:
    """A chain of PMD stages linked by charged SPSC rings.

    Stage i polls ring i and outputs to ring i+1; the coordinator
    injects bursts into ring 0 and collects the last ring.  Every stage
    is one PMD pinned to its own CPU lane, so partitioning stages across
    shards partitions lanes exactly (DESIGN §17).
    """

    n_stages: int = 4
    n_flows: int = 8
    burst: int = 32
    ring_capacity: int = 4096
    seed: int = 0


class PipelineWorld:
    """The built world: dpif + PMD per stage, rings between them."""

    def __init__(self, spec: PipelineSpec) -> None:
        from repro.net.flow import mask_from_fields
        from repro.ovs import odp
        from repro.ovs.dpif_netdev import DpifNetdev
        from repro.ovs.netdevs import RingPortAdapter
        from repro.ovs.pmd import PmdThread
        from repro.sim.cpu import CpuModel

        self.spec = spec
        self.cpu = CpuModel(spec.n_stages)
        self.rings = [RingPortAdapter(name=f"ring{i}",
                                      capacity=spec.ring_capacity)
                      for i in range(spec.n_stages + 1)]
        self.pmds = []
        self.dpifs = []
        self.out_ports = []
        mask = mask_from_fields(eth_type=-1, nw_dst=-1)
        for i in range(spec.n_stages):
            dpif = DpifNetdev(name=f"dp{i}")
            p_in = dpif.add_port("in", self.rings[i])
            p_out = dpif.add_port("out", self.rings[i + 1])

            def upcall(key, ctx, _out=p_out.port_no):
                return ((odp.Output(_out),), mask)

            dpif.upcall_fn = upcall
            pmd = PmdThread(dpif, self.cpu, core=i, name=f"pmd-c{i}")
            pmd.add_rxq(p_in)
            self.dpifs.append(dpif)
            self.pmds.append(pmd)
            self.out_ports.append(p_out)

    def frames(self, n: int) -> List[bytes]:
        """The deterministic workload: ``n`` UDP frames over the spec's
        flow set (pure function of the spec, same in every process)."""
        from repro.net.addresses import MacAddress
        from repro.net.builder import make_udp_packet

        spec = self.spec
        out = []
        for i in range(n):
            f = (i + spec.seed) % spec.n_flows
            out.append(make_udp_packet(
                MacAddress.local(1), MacAddress.local(2),
                "192.168.31.1",
                f"10.0.{(f >> 8) & 0xFF}.{f & 0xFF}",
                1000 + (f & 0xFF), 2000,
            ).data)
        return out

    def run_stage(self, i: int) -> int:
        return self.pmds[i].run_until_idle()

    def lane_busy(self) -> Dict[int, Dict[str, float]]:
        from repro.sim.cpu import CpuCategory

        return {
            c: {cat.name: self.cpu.busy_ns(cpu=c, category=cat)
                for cat in CpuCategory
                if self.cpu.busy_ns(cpu=c, category=cat)}
            for c in range(self.cpu.n_cpus)
        }

    def stage_stats(self, i: int) -> Dict[str, int]:
        s = self.dpifs[i].stats
        return {
            "packets": s.packets,
            "emc_hits": s.emc_hits,
            "megaflow_hits": s.megaflow_hits,
            "upcalls": s.upcalls,
            "dropped": s.dropped,
        }


@dataclass
class PipelineResult:
    """Merged observables of one pipeline run (serial or sharded)."""

    forwarded: int
    digest: str
    lanes: Dict[int, Dict[str, float]]
    stages: List[Dict[str, int]]
    rounds: int
    report: ShardReport

    def identity(self) -> str:
        """Canonical byte-comparable dump (floats via repr)."""
        lines = [f"forwarded {self.forwarded}", f"digest {self.digest}"]
        for c in sorted(self.lanes):
            for cat in sorted(self.lanes[c]):
                lines.append(f"lane {c} {cat} {self.lanes[c][cat]!r}")
        for i, stats in enumerate(self.stages):
            for k in sorted(stats):
                lines.append(f"stage {i} {k} {stats[k]}")
        return "\n".join(lines)


def _digest(frames: Sequence[bytes]) -> "Any":
    import hashlib

    h = hashlib.sha256()
    for data in frames:
        h.update(len(data).to_bytes(4, "big"))
        h.update(data)
    return h


def _pipeline_worker_main(conn, spec: PipelineSpec,
                          stages: List[int]) -> None:
    """Child process: run my stages each round, ship crossing frames."""
    _clear_inherited_globals()
    world = PipelineWorld(spec)
    my = sorted(stages)
    while True:
        msg = conn.recv()
        cmd = msg[0]
        if cmd == "round":
            feeds: Dict[int, List] = msg[1]
            for ring_idx, pkts in feeds.items():
                world.rings[ring_idx].feed(pkts)
            processed = 0
            for i in my:
                processed += world.run_stage(i)
            crossing: Dict[int, List] = {}
            for i in my:
                out_ring = i + 1
                if out_ring == spec.n_stages or (out_ring not in
                                                 [s for s in my]):
                    pkts = world.rings[out_ring].take_all()
                    if pkts:
                        crossing[out_ring] = pkts
            conn.send((processed, crossing))
        elif cmd == "finish":
            conn.send({
                "lanes": world.lane_busy(),
                "stages": {i: world.stage_stats(i) for i in my},
                "rings": {
                    i: {
                        "enqueued": world.rings[i].enqueued,
                        "dequeued": world.rings[i].dequeued,
                        "peak_depth": world.rings[i].peak_depth,
                        "transfers": world.rings[i].transfers,
                    } for i in range(spec.n_stages + 1)
                },
            })
            conn.close()
            return


def run_pipeline(
    spec: PipelineSpec,
    n_packets: int,
    shards: int = 1,
    partition: Optional[Sequence[int]] = None,
    start_method: Optional[str] = None,
) -> PipelineResult:
    """Drive one pipeline world, optionally partitioned across workers.

    The serial path (``shards <= 1``) advances the stages in order
    between burst boundaries.  The sharded path gives each worker a
    replica world but only its own stages to run; at each burst barrier
    the coordinator ships frames queued on cross-shard rings to the
    consumer's replica.  Each CPU lane and each stage's datapath state
    is owned by exactly one process, so the merged per-lane busy time,
    per-stage stats and the forwarded-frame digest are byte-identical
    to the serial run — no replay needed.

    Tracing is refused when sharded: a global trace ledger interleaves
    lanes in an order a barrier-based schedule cannot reproduce; use
    unit sharding (:func:`run_units`) for traced byte-identity gates.
    """
    from repro.net.packet import Packet

    if shards > 1 and _trace.ACTIVE is not None:
        raise ShardError(
            "pipeline sharding cannot run under an ambient trace "
            "recorder (lane charges interleave in serial order); "
            "run traced pipelines with shards=1")
    _guard_ambient_state((), shards)

    if partition is None:
        partition = partition_round_robin(spec.n_stages, max(1, shards))
    partition = list(partition)
    if len(partition) != spec.n_stages:
        raise ShardError("partition must name one shard per stage")
    n_shards = max(partition) + 1 if partition else 1

    world = PipelineWorld(spec)
    frames = world.frames(n_packets)
    bursts = [frames[i:i + spec.burst]
              for i in range(0, len(frames), spec.burst)]

    if shards <= 1 or n_shards <= 1:
        sink: List[bytes] = []
        digest = _digest([])
        rounds = 0
        for burst in bursts:
            world.rings[0].feed([Packet(data) for data in burst])
            for i in range(spec.n_stages):
                world.run_stage(i)
            rounds += 1
            for pkt in world.rings[spec.n_stages].take_all():
                digest.update(len(pkt.data).to_bytes(4, "big"))
                digest.update(pkt.data)
                sink.append(True)
        report = ShardReport(
            n_shards=1, start_method="inline", degenerate=True,
            barriers=rounds,
            pmd_placement=[(p.ctx.name, p.ctx.cpu, 0)
                           for p in world.pmds],
        )
        LAST_REPORT_set(report)
        return PipelineResult(
            forwarded=len(sink), digest=digest.hexdigest(),
            lanes=world.lane_busy(),
            stages=[world.stage_stats(i)
                    for i in range(spec.n_stages)],
            rounds=rounds, report=report,
        )

    import multiprocessing as mp

    method = start_method or default_start_method()
    ctx = mp.get_context(method)
    owners: Dict[int, List[int]] = {}
    for stage, s in enumerate(partition):
        owners.setdefault(s, []).append(stage)
    # Mark cross-shard egress ports on the coordinator's replica for the
    # report (workers mark their own identically).
    for stage, s in enumerate(partition):
        nxt = partition[stage + 1] if stage + 1 < spec.n_stages else None
        if nxt != s:
            world.out_ports[stage].handoff = True
            world.out_ports[stage].shard = s

    procs = {}
    conns = {}
    for s, stages in sorted(owners.items()):
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_pipeline_worker_main,
                           args=(child, spec, stages), daemon=True)
        proc.start()
        child.close()
        procs[s], conns[s] = proc, parent

    #: ring index -> owning shard of its consumer stage (None = sink).
    consumer_of = {i: partition[i] for i in range(spec.n_stages)}
    digest = _digest([])
    forwarded = 0
    rounds = 0
    pending: Dict[int, List] = {}
    burst_iter = iter(bursts)
    handoff_stats: Dict[int, HandoffStat] = {}
    remaining = len(bursts)
    try:
        while True:
            feeds_by_shard: Dict[int, Dict[int, List]] = {s: {}
                                                          for s in owners}
            burst = next(burst_iter, None)
            if burst is not None:
                remaining -= 1
                feeds_by_shard[consumer_of[0]][0] = [
                    Packet(data) for data in burst]
            moved = False
            for ring_idx, pkts in pending.items():
                feeds_by_shard[consumer_of[ring_idx]][ring_idx] = pkts
                moved = True
            pending = {}
            if burst is None and not moved:
                break
            for s in sorted(owners):
                conns[s].send(("round", feeds_by_shard[s]))
            processed_total = 0
            # Fixed shard order: the barrier and the merge order.
            for s in sorted(owners):
                processed, crossing = conns[s].recv()
                processed_total += processed
                for ring_idx in sorted(crossing):
                    pkts = crossing[ring_idx]
                    if ring_idx == spec.n_stages:
                        for pkt in pkts:
                            digest.update(
                                len(pkt.data).to_bytes(4, "big"))
                            digest.update(pkt.data)
                        forwarded += len(pkts)
                    else:
                        pending[ring_idx] = pkts
                        stat = handoff_stats.get(ring_idx)
                        if stat is None:
                            stat = handoff_stats[ring_idx] = HandoffStat(
                                name=f"ring{ring_idx}",
                                from_shard=partition[ring_idx - 1],
                                to_shard=consumer_of[ring_idx],
                            )
                        stat.transfers += 1
                        stat.packets += len(pkts)
                        if len(pkts) > stat.peak_depth:
                            stat.peak_depth = len(pkts)
            rounds += 1
        lanes: Dict[int, Dict[str, float]] = {}
        stages_out: List[Optional[Dict[str, int]]] = (
            [None] * spec.n_stages)
        for s in sorted(owners):
            conns[s].send(("finish",))
            summary = conns[s].recv()
            for stage in owners[s]:
                lanes[stage] = summary["lanes"][stage]
                stages_out[stage] = summary["stages"][stage]
            # Lanes not owned by this shard stayed zero in its replica.
    finally:
        for s, proc in procs.items():
            if proc.is_alive():
                proc.terminate()
            proc.join()
    report = ShardReport(
        n_shards=n_shards, start_method=method, barriers=rounds,
        pmd_placement=[(p.ctx.name, p.ctx.cpu, partition[i])
                       for i, p in enumerate(world.pmds)],
        handoffs=[handoff_stats[k] for k in sorted(handoff_stats)],
    )
    LAST_REPORT_set(report)
    return PipelineResult(
        forwarded=forwarded, digest=digest.hexdigest(),
        lanes=lanes, stages=list(stages_out), rounds=rounds,
        report=report,
    )


def LAST_REPORT_set(report: ShardReport) -> None:
    """Module-global assignment helper (keeps callers one-liners)."""
    global LAST_REPORT
    LAST_REPORT = report
