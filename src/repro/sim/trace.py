"""The trace ledger: per-stage span accounting and event counters.

The cost model charges virtual nanoseconds through a single funnel —
:meth:`repro.sim.cpu.ExecContext.charge` — but until now only the *sums*
were observable (per-CPU busy time, end-to-end latency).  This module
turns the cost model into an auditable ledger, the way the delay-
attribution literature instruments real datapaths: every charge is
attributed to a named stage, every interesting event (EMC hit, upcall,
ring stall, tx kick syscall, eBPF instruction retired) bumps a counter,
and the whole ledger is deterministic so two identical runs produce
byte-identical traces.

Conservation invariant
======================

Every nanosecond the simulation charges to a CPU must appear in exactly
one span of the ledger::

    recorder.total_ns == recorder.cpu_charged_ns

``total_ns`` sums the per-stage spans recorded at the
:class:`~repro.sim.cpu.ExecContext` layer (where the stage label lives);
``cpu_charged_ns`` independently accumulates at the
:class:`~repro.sim.cpu.CpuModel` layer (where busy time is banked).  The
two meet only if no code path charges a CPU while bypassing the labelled
funnel and the ledger neither drops nor double-counts — a cross-cutting
correctness check the test suite enforces on real experiment runs.
Waits (sleeps — wall time without CPU burn) are kept in a separate
ledger and are deliberately *not* part of the invariant.

Overhead discipline
===================

Tracing defaults to off.  The hot paths guard with a single module-
attribute load (``trace.ACTIVE is None``) and make **no function call
and no allocation per packet** when disabled; a test pins this down with
``tracemalloc``.  Attach a recorder around the region of interest::

    with trace.recording() as rec:
        bench.drive(stream, packets)
    print(rec.render())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class TraceRecorder:
    """Accumulates spans (virtual ns per stage), waits and counters.

    ``spans``/``waits`` map a stage label to a ``[count, total_ns]``
    pair; ``counters`` maps an event name to an integer.  ``span()``
    opens a *nested* span: charges recorded while it is open are also
    folded into its inclusive total under the ``/``-joined path of every
    open span (e.g. ``pmd/upcall``), so a stage's inclusive cost can be
    read even when its work is spread over many leaf labels.
    """

    __slots__ = ("spans", "waits", "counters", "span_totals",
                 "cpu_charged_ns", "batch_sizes", "profiler", "sampler",
                 "_stack")

    def __init__(self) -> None:
        #: stage label -> [count, total_ns]; the conservation set.
        self.spans: Dict[str, List[float]] = {}
        #: like spans, for wall-time waits (no CPU burned).
        self.waits: Dict[str, List[float]] = {}
        #: event name -> count.
        self.counters: Dict[str, int] = {}
        #: "/"-joined span path -> [count, inclusive_ns].
        self.span_totals: Dict[str, List[float]] = {}
        #: independently accumulated at the CpuModel layer.
        self.cpu_charged_ns: float = 0.0
        #: stage -> {batch size -> occurrences}: the packets-per-batch
        #: histograms (see :meth:`note_batch`).  Deliberately *not* part
        #: of :meth:`ledger`: the ledger predates batching and must stay
        #: byte-comparable against pre-batching golden traces.
        self.batch_sizes: Dict[str, Dict[int, int]] = {}
        #: Optional passive observers (see :mod:`repro.sim.profile`):
        #: a Profiler folds charges into a call tree, a MetricsSampler
        #: snapshots counters on virtual-time thresholds.  Both default
        #: to None; every hook below guards with one attribute load, so
        #: the ledger is byte-identical whether or not they are attached
        #: (the zero-overhead-off gate of the integration suite).
        self.profiler = None
        self.sampler = None
        self._stack: List[List[object]] = []

    # ------------------------------------------------------------------
    # Recording (called from the ExecContext/CpuModel hooks).
    # ------------------------------------------------------------------
    def record(self, stage: str, ns: float) -> None:
        """Attribute ``ns`` of charged CPU time to ``stage``."""
        entry = self.spans.get(stage)
        if entry is None:
            self.spans[stage] = [1, ns]
        else:
            entry[0] += 1
            entry[1] += ns
        for frame in self._stack:
            frame[1] += ns
        prof = self.profiler
        if prof is not None:
            prof.leaf(stage, ns)

    def record_wait(self, stage: str, ns: float) -> None:
        """Attribute ``ns`` of waited (non-CPU) wall time to ``stage``."""
        entry = self.waits.get(stage)
        if entry is None:
            self.waits[stage] = [1, ns]
        else:
            entry[0] += 1
            entry[1] += ns

    def record_n(self, stage: str, ns: float, n: int) -> None:
        """Attribute ``ns`` to ``stage`` exactly ``n`` times.

        Batch-aware span attribution: byte-identical to ``n`` separate
        :meth:`record` calls (``n`` float additions to every open
        accumulator, span count advanced by ``n``) with the dict lookup
        hoisted out of the loop.  Collapsing into one ``n * ns`` addition
        would change the ledger — float addition is not associative and
        the per-stage call counts are part of the canonical dump.
        """
        if n <= 0:
            return
        entry = self.spans.get(stage)
        if entry is None:
            entry = self.spans[stage] = [0, 0.0]
        stack = self._stack
        for _ in range(n):
            entry[0] += 1
            entry[1] += ns
            for frame in stack:
                frame[1] += ns
        prof = self.profiler
        if prof is not None:
            prof.leaf_n(stage, ns, n)

    def note_cpu(self, ns: float) -> None:
        """CpuModel-side tally; the other leg of the conservation check."""
        self.cpu_charged_ns += ns
        sampler = self.sampler
        if sampler is not None and self.cpu_charged_ns >= sampler.next_due_ns:
            sampler.tick(self)

    def note_cpu_n(self, ns: float, n: int) -> None:
        """``n`` individual CpuModel-side tallies (see :meth:`record_n`)."""
        sampler = self.sampler
        if sampler is None:
            for _ in range(n):
                self.cpu_charged_ns += ns
            return
        for _ in range(n):
            self.cpu_charged_ns += ns
            if self.cpu_charged_ns >= sampler.next_due_ns:
                sampler.tick(self)

    def note_batch(self, stage: str, n: int) -> None:
        """Record that ``stage`` handled a batch of ``n`` packets.

        Feeds the packets-per-batch histograms behind
        ``dpif-netdev/pmd-perf-show``.  Kept out of :meth:`ledger` so
        golden ledgers recorded before batching existed stay comparable.
        """
        hist = self.batch_sizes.get(stage)
        if hist is None:
            hist = self.batch_sizes[stage] = {}
        hist[n] = hist.get(n, 0) + 1

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    # ------------------------------------------------------------------
    # Nested spans.
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, stage: str) -> Iterator[None]:
        """Group every charge inside the block under ``stage``'s path.

        Inclusive: a parent span's total contains its children's.  The
        flat ``spans`` ledger is unaffected (no double counting there).
        """
        path = "/".join([str(f[0]) for f in self._stack] + [stage])
        frame: List[object] = [path, 0.0]
        self._stack.append(frame)
        prof = self.profiler
        if prof is not None:
            prof.enter(stage)
        try:
            yield
        finally:
            if prof is not None:
                prof.exit_()
            self._stack.pop()
            entry = self.span_totals.get(path)
            if entry is None:
                self.span_totals[path] = [1, frame[1]]
            else:
                entry[0] += 1
                entry[1] += frame[1]

    # ------------------------------------------------------------------
    # Reduction.
    # ------------------------------------------------------------------
    @property
    def total_ns(self) -> float:
        """Sum of all recorded CPU spans (the conservation set)."""
        return sum(entry[1] for entry in self.spans.values())

    @property
    def total_wait_ns(self) -> float:
        return sum(entry[1] for entry in self.waits.values())

    def span_ns(self, stage: str) -> float:
        entry = self.spans.get(stage)
        return entry[1] if entry is not None else 0.0

    def span_count(self, stage: str) -> int:
        entry = self.spans.get(stage)
        return int(entry[0]) if entry is not None else 0

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def conserved(self, rel_tol: float = 1e-9) -> bool:
        """Does the span ledger balance against the CPU-side tally?"""
        a, b = self.total_ns, self.cpu_charged_ns
        return abs(a - b) <= rel_tol * max(abs(a), abs(b), 1.0)

    def reset(self) -> None:
        self.spans.clear()
        self.waits.clear()
        self.counters.clear()
        self.span_totals.clear()
        self.cpu_charged_ns = 0.0
        self.batch_sizes.clear()
        if self.profiler is not None:
            self.profiler.reset()
        if self.sampler is not None:
            self.sampler.reset()
        self._stack.clear()

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def ledger(self) -> str:
        """A canonical, deterministic dump of the whole ledger.

        Sorted by name, floats via ``repr`` — two identical runs must
        produce byte-identical ledgers (the determinism regression test
        compares these strings directly).
        """
        lines = []
        for stage in sorted(self.spans):
            count, ns = self.spans[stage]
            lines.append(f"span {stage} count={int(count)} ns={ns!r}")
        for stage in sorted(self.waits):
            count, ns = self.waits[stage]
            lines.append(f"wait {stage} count={int(count)} ns={ns!r}")
        for path in sorted(self.span_totals):
            count, ns = self.span_totals[path]
            lines.append(f"nested {path} count={int(count)} ns={ns!r}")
        for name in sorted(self.counters):
            lines.append(f"counter {name} {self.counters[name]}")
        lines.append(f"cpu_charged_ns={self.cpu_charged_ns!r}")
        return "\n".join(lines)

    def render(self, title: str = "per-stage virtual time") -> str:
        """A human-oriented table: stage, calls, total ns, share."""
        total = self.total_ns or 1.0
        rows = sorted(self.spans.items(), key=lambda kv: -kv[1][1])
        width = max([len(s) for s, _ in rows] or [5])
        lines = [title, f"{'stage'.ljust(width)}  {'calls':>10}  "
                        f"{'total ns':>14}  {'share':>6}"]
        for stage, (count, ns) in rows:
            lines.append(f"{stage.ljust(width)}  {int(count):>10}  "
                         f"{ns:>14.0f}  {100.0 * ns / total:>5.1f}%")
        lines.append(f"{'TOTAL'.ljust(width)}  "
                     f"{sum(int(c) for c, _ in self.spans.values()):>10}  "
                     f"{self.total_ns:>14.0f}  100.0%")
        return "\n".join(lines)

    def render_batches(self) -> str:
        """Human-oriented packets-per-batch histograms per stage."""
        if not self.batch_sizes:
            return "(no batches recorded)"
        lines = []
        for stage in sorted(self.batch_sizes):
            hist = self.batch_sizes[stage]
            batches = sum(hist.values())
            pkts = sum(size * n for size, n in hist.items())
            mean = pkts / batches if batches else 0.0
            dist = " ".join(f"{size}:{hist[size]}" for size in sorted(hist))
            lines.append(f"{stage}: {batches} batches, "
                         f"avg {mean:.2f} pkts/batch [{dist}]")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceRecorder({len(self.spans)} stages, "
                f"{len(self.counters)} counters, "
                f"total={self.total_ns:.0f} ns)")


#: The attached recorder, or None (tracing disabled).  Hot paths read
#: this attribute directly — keep it a plain module global.
ACTIVE: Optional[TraceRecorder] = None


def active() -> Optional[TraceRecorder]:
    return ACTIVE


def attach(recorder: TraceRecorder) -> TraceRecorder:
    """Make ``recorder`` the active ledger.  Nesting is not supported:
    attach over an existing recorder is an error (a silently swallowed
    ledger would break the conservation audit)."""
    global ACTIVE
    if ACTIVE is not None:
        raise RuntimeError("a TraceRecorder is already attached")
    ACTIVE = recorder
    return recorder


def detach() -> None:
    global ACTIVE
    ACTIVE = None


@contextmanager
def recording(
    recorder: Optional[TraceRecorder] = None,
) -> Iterator[TraceRecorder]:
    """Attach a recorder (a fresh one by default) for the block."""
    rec = attach(recorder if recorder is not None else TraceRecorder())
    try:
        yield rec
    finally:
        detach()


def count(name: str, n: int = 1) -> None:
    """Convenience counter bump for cold paths (checks ACTIVE itself;
    hot paths should inline the ``ACTIVE is None`` guard instead)."""
    rec = ACTIVE
    if rec is not None:
        rec.count(name, n)


@contextmanager
def span(stage: str) -> Iterator[None]:
    """Module-level nested span; a plain passthrough when disabled.

    Use on cold/medium paths (an upcall, a revalidator sweep) — the
    generator machinery is not free, so per-packet code should guard on
    ``trace.ACTIVE`` instead.
    """
    rec = ACTIVE
    if rec is None:
        yield
        return
    with rec.span(stage):
        yield
