"""Deterministic randomness for experiments.

Every stochastic element of the simulation (flow IP selection, interrupt
arrival jitter, scheduler wakeup variance) draws from a seeded
``random.Random`` so runs are exactly reproducible.  Experiments create one
:func:`make_rng` per logical purpose so adding a new consumer does not
perturb existing streams.
"""

from __future__ import annotations

import random
import zlib


def make_rng(*scope: object, seed: int = 0x5EED) -> random.Random:
    """Return a Random whose stream is a pure function of ``scope``.

    ``make_rng("fig9", "flows")`` and ``make_rng("fig9", "jitter")`` are
    independent deterministic streams.
    """
    tag = "/".join(str(s) for s in scope)
    derived = zlib.crc32(tag.encode("utf-8")) ^ seed
    return random.Random(derived)


def lognormal_jitter(rng: random.Random, median_ns: float, sigma: float) -> float:
    """A heavy-tailed positive jitter sample.

    Scheduler wakeups and interrupt service times are well modelled by a
    log-normal: most samples near the median, a long tail for the unlucky
    P99 — exactly the shape of the paper's Figure 10/11 latency columns.
    """
    if median_ns <= 0:
        raise ValueError("median must be positive")
    return median_ns * rng.lognormvariate(0.0, sigma)
