"""The automated performance matrix (the scenario-coverage flywheel).

``ovs_perf``-style harness over the simulated testbed: sweep packet
size × flow count × datapath × topology, find each cell's maximum
lossless rate with the TRex-style binary search
(:class:`repro.traffic.lossless.LosslessSearch`), and emit one
machine-readable ``matrix.json`` that CI diffs cell-by-cell against the
committed ``BASELINE_matrix.json`` via
:mod:`repro.tools.matrix_gate` — so regressions in *virtual*
performance are caught the way ``benchmarks/test_wallclock.py`` catches
wall-clock ones.

Entry points::

    python -m repro matrix --quick --out matrix.json
    python -m repro.tools.matrix_gate matrix.json

The harness is observably read-only: it builds every cell from the same
topology factories the paper experiments use and never mutates global
state, so a matrix run leaves the fig2/fig9 trace ledgers byte-identical
to runs without it (gated by ``tests/integration/test_matrix_determinism``).
"""

from repro.perfmatrix.cells import (  # noqa: F401
    DATAPATHS,
    TOPOLOGIES,
    CellSpec,
    UnsupportedCell,
    cell_support,
    run_cell,
)
from repro.perfmatrix.matrix import (  # noqa: F401
    FULL_GRID,
    QUICK_GRID,
    MatrixGrid,
    canonical_json,
    run_matrix,
)
from repro.perfmatrix.schema import SCHEMA_ID, validate_matrix  # noqa: F401
