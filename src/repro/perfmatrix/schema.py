"""Schema validation for ``matrix.json`` (no external dependency).

``validate_matrix`` returns a list of human-readable problems (empty =
valid).  Both the emitter and the gate run it, so a malformed document
can never silently pass CI, and a hand-edited baseline is caught the
first time the gate loads it.
"""

from __future__ import annotations

from typing import Any, List

SCHEMA_ID = "repro.perfmatrix/1"

_CELL_REQUIRED = {
    "id": str,
    "topology": str,
    "datapath": str,
    "frame_len": int,
    "n_flows": int,
    "packets": int,
    "link_gbps": (int, float),
    "rate_mpps": (int, float),
    "capacity_mpps": (int, float),
    "ns_per_packet": (int, float),
    "cycles_per_packet": (int, float),
    "capped_by_line": bool,
    "n_busy_lanes": int,
    "cpu_util": dict,
    "drops": dict,
    "search": dict,
}

_SEARCH_REQUIRED = {
    "rate_mpps": (int, float),
    "bracket": list,
    "iterations": int,
    "converged": bool,
    "trace": list,
}

_GRID_REQUIRED = {
    "frame_lens": list,
    "flow_counts": list,
    "datapaths": list,
    "topologies": list,
}


def _check_keys(obj: dict, required: dict, where: str,
                problems: List[str]) -> bool:
    ok = True
    for key, typ in required.items():
        if key not in obj:
            problems.append(f"{where}: missing key {key!r}")
            ok = False
        elif not isinstance(obj[key], typ):
            problems.append(
                f"{where}: {key!r} should be {typ}, got "
                f"{type(obj[key]).__name__}"
            )
            ok = False
    return ok


def _check_cell(cell: Any, index: int, problems: List[str]) -> None:
    where = f"cells[{index}]"
    if not isinstance(cell, dict):
        problems.append(f"{where}: not an object")
        return
    if not _check_keys(cell, _CELL_REQUIRED, where, problems):
        return
    where = f"cells[{index}] ({cell['id']})"
    if cell["rate_mpps"] < 0:
        problems.append(f"{where}: negative rate")
    if cell["rate_mpps"] > cell["capacity_mpps"] + 1e-9:
        problems.append(f"{where}: lossless rate exceeds measured capacity")
    search = cell["search"]
    if not _check_keys(search, _SEARCH_REQUIRED, f"{where}.search", problems):
        return
    if search["rate_mpps"] != cell["rate_mpps"]:
        problems.append(f"{where}: cell rate disagrees with search result")
    bracket = search["bracket"]
    if len(bracket) != 2 or bracket[0] > bracket[1]:
        problems.append(f"{where}: malformed search bracket {bracket!r}")
    elif not bracket[0] <= cell["rate_mpps"] <= bracket[1]:
        problems.append(f"{where}: rate outside its search bracket")
    if not search["trace"]:
        problems.append(f"{where}: empty search trace")
        return
    for j, probe in enumerate(search["trace"]):
        if not isinstance(probe, dict) or not {
            "offered_mpps", "loss", "lossless"
        } <= set(probe):
            problems.append(f"{where}: malformed trace probe [{j}]")
            return
    lossless = [p["offered_mpps"] for p in search["trace"] if p["lossless"]]
    lossy = [p["offered_mpps"] for p in search["trace"] if not p["lossless"]]
    if lossless and abs(max(lossless) - cell["rate_mpps"]) > 1e-9:
        problems.append(
            f"{where}: returned rate is not the highest lossless probe"
        )
    if not lossless and cell["rate_mpps"] != 0:
        problems.append(f"{where}: nonzero rate but no lossless probe")
    if lossy and min(lossy) <= cell["rate_mpps"]:
        problems.append(f"{where}: a lossy probe at or below the rate")


def validate_matrix(doc: Any) -> List[str]:
    """All the ways ``doc`` fails to be a valid matrix (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != SCHEMA_ID:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {SCHEMA_ID!r}"
        )
    grid = doc.get("grid")
    if not isinstance(grid, dict):
        problems.append("missing grid object")
    else:
        _check_keys(grid, _GRID_REQUIRED, "grid", problems)
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append("cells must be a non-empty list")
        return problems
    for i, cell in enumerate(cells):
        _check_cell(cell, i, problems)
    ids = [c.get("id") for c in cells if isinstance(c, dict)]
    dupes = {i for i in ids if ids.count(i) > 1}
    if dupes:
        problems.append(f"duplicate cell ids: {sorted(dupes)}")
    skipped = doc.get("skipped")
    if not isinstance(skipped, list):
        problems.append("missing skipped list")
    else:
        for i, entry in enumerate(skipped):
            if not isinstance(entry, dict) or not {
                "datapath", "topology", "reason"
            } <= set(entry):
                problems.append(f"skipped[{i}]: malformed entry")
    return problems
