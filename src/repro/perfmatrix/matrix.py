"""The full-sweep driver: grid × :func:`~repro.perfmatrix.cells.run_cell`.

Two committed grids:

* ``QUICK_GRID`` — the CI surface: {64B, 1518B} × {1, 1000 flows} ×
  {kernel, AF_XDP copy, AF_XDP zero-copy, DPDK} × {P2P, PVP}.  This is
  what ``BASELINE_matrix.json`` pins and the ``perf-matrix`` CI job
  gates.
* ``FULL_GRID`` — the paper-scale surface: {64B, 256B, 1024B, 1518B} ×
  {1, 1k, 100k flows} × all five datapaths × {P2P, PVP, PCP}.  The
  100k-flow column warms up 200k packets per cell; expect the full
  sweep to take tens of minutes (run it offline, not in CI).

Everything is deterministic — no timestamps, no wall-clock, floats
straight from the virtual cost model — so two runs of the same grid
produce byte-identical canonical JSON, and the gate can afford tight
per-cell tolerances.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import format_table
from repro.perfmatrix.cells import (
    DATAPATHS,
    TOPOLOGIES,
    CellSpec,
    cell_support,
    run_cell,
)
from repro.perfmatrix.schema import SCHEMA_ID, validate_matrix


@dataclass(frozen=True)
class MatrixGrid:
    """One sweep surface plus the per-cell measurement knobs."""

    label: str
    frame_lens: Tuple[int, ...]
    flow_counts: Tuple[int, ...]
    datapaths: Tuple[str, ...]
    topologies: Tuple[str, ...]
    packets: int = 400
    link_gbps: float = 25.0
    resolution_mpps: float = 0.01
    loss_tolerance: float = 0.0

    def specs(self) -> List[CellSpec]:
        return [
            CellSpec(topology=topo, datapath=dp,
                     frame_len=size, n_flows=flows)
            for topo in self.topologies
            for dp in self.datapaths
            for size in self.frame_lens
            for flows in self.flow_counts
        ]


QUICK_GRID = MatrixGrid(
    label="quick",
    frame_lens=(64, 1518),
    flow_counts=(1, 1000),
    datapaths=("kernel", "afxdp_copy", "afxdp_zc", "dpdk"),
    topologies=("P2P", "PVP"),
    packets=400,
)

FULL_GRID = MatrixGrid(
    label="full",
    frame_lens=(64, 256, 1024, 1518),
    flow_counts=(1, 1000, 100_000),
    datapaths=DATAPATHS,
    topologies=TOPOLOGIES,
    packets=1500,
)


def _shard_cell(spec: CellSpec, packets: int, link_gbps: float,
                resolution_mpps: float, loss_tolerance: float) -> dict:
    """Shard-unit wrapper around :func:`run_cell` (DESIGN §17)."""
    return run_cell(spec, packets=packets, link_gbps=link_gbps,
                    resolution_mpps=resolution_mpps,
                    loss_tolerance=loss_tolerance)


def run_matrix(grid: MatrixGrid, progress: bool = False,
               shards: int = 1) -> dict:
    """Sweep the grid; returns the schema-valid matrix document."""
    from repro.sim.shard import Unit, run_units

    skipped: Dict[Tuple[str, str], str] = {}
    units: List[Unit] = []
    for spec in grid.specs():
        reason = cell_support(spec.datapath, spec.topology)
        if reason is not None:
            skipped[(spec.datapath, spec.topology)] = reason
            continue
        units.append(Unit(
            key=spec.cell_id,
            runner="repro.perfmatrix.matrix:_shard_cell",
            params=dict(spec=spec, packets=grid.packets,
                        link_gbps=grid.link_gbps,
                        resolution_mpps=grid.resolution_mpps,
                        loss_tolerance=grid.loss_tolerance),
            # The lossless-rate search re-drives the cell per probe;
            # flows and frame size dominate a cell's wall-clock.
            weight=(2.0 if spec.n_flows > 1 else 1.0)
            * (1.5 if spec.topology != "P2P" else 1.0),
        ))
    if shards <= 1:
        cells = []
        for unit in units:
            if progress:  # pragma: no cover - cosmetics
                print(f"  {unit.key} ...", file=sys.stderr, flush=True)
            cells.append(_shard_cell(**unit.params))
    else:
        cells = run_units(units, shards=shards).values
    doc = {
        "schema": SCHEMA_ID,
        "grid": {
            "label": grid.label,
            "frame_lens": list(grid.frame_lens),
            "flow_counts": list(grid.flow_counts),
            "datapaths": list(grid.datapaths),
            "topologies": list(grid.topologies),
            "packets": grid.packets,
            "link_gbps": grid.link_gbps,
            "resolution_mpps": grid.resolution_mpps,
            "loss_tolerance": grid.loss_tolerance,
        },
        "cells": cells,
        "skipped": [
            {"datapath": dp, "topology": topo, "reason": reason}
            for (dp, topo), reason in sorted(skipped.items())
        ],
    }
    problems = validate_matrix(doc)
    if problems:  # pragma: no cover - emitter bug guard
        raise AssertionError(
            "emitted an invalid matrix: " + "; ".join(problems)
        )
    return doc


def canonical_json(doc: dict) -> str:
    """The byte-stable serialization the determinism tests diff."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def render_matrix(doc: dict) -> str:
    """Figure-9-style table: one row per (topology, datapath, size)."""
    flow_counts = doc["grid"]["flow_counts"]
    by_key: Dict[Tuple[str, str, int], Dict[int, dict]] = {}
    for cell in doc["cells"]:
        key = (cell["topology"], cell["datapath"], cell["frame_len"])
        by_key.setdefault(key, {})[cell["n_flows"]] = cell
    rows = []
    for (topo, dp, size), by_flows in sorted(by_key.items()):
        row = [topo, dp, f"{size}B"]
        for flows in flow_counts:
            cell = by_flows.get(flows)
            if cell is None:
                row.append("-")
            else:
                capped = "*" if cell["capped_by_line"] else ""
                row.append(f"{cell['rate_mpps']:.2f}{capped}")
        rows.append(tuple(row))
    headers = ["Topology", "Datapath", "Frame"] + [
        f"{f} flow{'s' if f != 1 else ''} (Mpps)" for f in flow_counts
    ]
    return format_table(
        headers, rows,
        title=f"Performance matrix ({doc['grid']['label']}): "
              f"maximum lossless rate (* = line rate)",
    )


def _csv(value: str) -> List[str]:
    return [v.strip() for v in value.split(",") if v.strip()]


def build_grid(args) -> MatrixGrid:
    base = FULL_GRID if args.full else QUICK_GRID
    frame_lens = (tuple(int(s) for s in _csv(args.sizes))
                  if args.sizes else base.frame_lens)
    flow_counts = (tuple(int(f) for f in _csv(args.flows))
                   if args.flows else base.flow_counts)
    datapaths = (tuple(_csv(args.datapaths))
                 if args.datapaths else base.datapaths)
    topologies = (tuple(_csv(args.topologies))
                  if args.topologies else base.topologies)
    return MatrixGrid(
        label=base.label,
        frame_lens=frame_lens,
        flow_counts=flow_counts,
        datapaths=datapaths,
        topologies=topologies,
        packets=args.budget if args.budget else base.packets,
        link_gbps=args.link_gbps,
        resolution_mpps=args.resolution,
        loss_tolerance=args.loss_tolerance,
    )


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro matrix",
        description="Sweep the performance matrix and binary-search each "
                    "cell's maximum lossless rate.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true",
                      help="the CI grid (default)")
    mode.add_argument("--full", action="store_true",
                      help="the paper-scale grid incl. 100k flows, eBPF "
                           "and PCP (tens of minutes)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write matrix.json here")
    parser.add_argument("--budget", type=int, default=0, metavar="N",
                        help="measured packets per cell (default: grid's)")
    parser.add_argument("--sizes", default=None,
                        help="comma-separated frame lengths, e.g. 64,1518")
    parser.add_argument("--flows", default=None,
                        help="comma-separated flow counts, e.g. 1,1000")
    parser.add_argument("--datapaths", default=None,
                        help=f"subset of {','.join(DATAPATHS)}")
    parser.add_argument("--topologies", default=None,
                        help=f"subset of {','.join(TOPOLOGIES)}")
    parser.add_argument("--link-gbps", type=float, default=25.0)
    parser.add_argument("--resolution", type=float, default=0.01,
                        metavar="MPPS", help="search bracket width bound")
    parser.add_argument("--loss-tolerance", type=float, default=0.0,
                        metavar="FRAC",
                        help="loss fraction still counted lossless")
    parser.add_argument("--progress", action="store_true",
                        help="narrate cells to stderr")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="sweep cells across N worker processes; the "
                             "matrix document is byte-identical to "
                             "--shards 1 (see DESIGN §17)")
    args = parser.parse_args(argv)

    doc = run_matrix(build_grid(args), progress=args.progress,
                     shards=args.shards)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(canonical_json(doc))
        print(f"wrote {len(doc['cells'])} cells to {args.out}")
    print(render_matrix(doc))
    if doc["skipped"]:
        print()
        print("skipped (no physical analogue):")
        for entry in doc["skipped"]:
            print(f"  {entry['datapath']} x {entry['topology']}: "
                  f"{entry['reason']}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
