"""Matrix cells: one (datapath, topology, frame, flows) measurement.

A cell reuses the paper experiments' topology builders (the
:mod:`repro.experiments.p2p` / :mod:`repro.experiments.pvp_pcp`
factories) and the shared
:func:`repro.experiments.common.measured_drive` loop, then runs the
TRex-style :class:`~repro.traffic.lossless.LosslessSearch` against the
measured capacity.  The result is a plain JSON-ready dict, fully
deterministic: building the same cell twice yields byte-identical
canonical JSON.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.afxdp.driver import AfxdpOptions
from repro.experiments.p2p import (
    P2PBench,
    afxdp_p2p,
    dpdk_p2p,
    ebpf_p2p,
    kernel_p2p,
)
from repro.experiments.pvp_pcp import (
    afxdp_pcp,
    afxdp_pvp,
    dpdk_pcp,
    dpdk_pvp,
    kernel_pcp,
    kernel_pvp,
)
from repro.sim import trace
from repro.sim.stats import line_rate_mpps
from repro.traffic.lossless import LosslessSearch, capacity_loss_model
from repro.traffic.trex import FlowSpec, TrexStream

#: The datapath axis, ordered slowest-to-fastest per the paper's Fig. 9.
DATAPATHS = ("kernel", "ebpf", "afxdp_copy", "afxdp_zc", "dpdk")
TOPOLOGIES = ("P2P", "PVP", "PCP")

#: Nominal core frequency used to express per-packet cost in cycles
#: (the paper's testbed runs Xeon cores around this clock).
CPU_GHZ = 2.6

#: Ledger counters that are packet-drop sinks: anything a cell sheds on
#: the floor shows up here (AF_XDP ring overruns, upcall shedding, ...).
_DROP_SINK_RE = re.compile(
    r"drop|lost|discard|shortfall|overrun|leak|no_fill|no_umem|ring_full"
)


class UnsupportedCell(Exception):
    """Raised for grid points with no physical analogue (e.g. eBPF PVP)."""


def _afxdp(copy_mode: bool) -> AfxdpOptions:
    return AfxdpOptions(force_copy_mode=copy_mode)


#: (datapath, topology) -> bench factory taking link_gbps.  A missing
#: key is an unsupported combination; ``cell_support`` explains why.
_FACTORIES: Dict[Tuple[str, str], Callable[[float], object]] = {
    ("kernel", "P2P"): lambda link: kernel_p2p(n_queues=10, link_gbps=link),
    ("ebpf", "P2P"): lambda link: ebpf_p2p(link_gbps=link),
    ("afxdp_copy", "P2P"): lambda link: afxdp_p2p(
        options=_afxdp(True), link_gbps=link),
    ("afxdp_zc", "P2P"): lambda link: afxdp_p2p(
        options=_afxdp(False), link_gbps=link),
    ("dpdk", "P2P"): lambda link: dpdk_p2p(link_gbps=link),
    ("kernel", "PVP"): lambda link: kernel_pvp(link_gbps=link),
    ("afxdp_copy", "PVP"): lambda link: afxdp_pvp(
        "vhostuser", options=_afxdp(True), link_gbps=link),
    ("afxdp_zc", "PVP"): lambda link: afxdp_pvp(
        "vhostuser", options=_afxdp(False), link_gbps=link),
    ("dpdk", "PVP"): lambda link: dpdk_pvp(link_gbps=link),
    ("kernel", "PCP"): lambda link: kernel_pcp(link_gbps=link),
    ("afxdp_zc", "PCP"): lambda link: afxdp_pcp(link_gbps=link),
    ("dpdk", "PCP"): lambda link: dpdk_pcp(link_gbps=link),
}

_UNSUPPORTED_REASONS = {
    ("ebpf", "PVP"): "the tc eBPF datapath has no VM attachment here",
    ("ebpf", "PCP"): "the tc eBPF datapath has no container attachment here",
    ("afxdp_copy", "PCP"): (
        "PCP AF_XDP is the in-kernel XDP-redirect path (Fig. 5 C); "
        "no XSK is bound, so copy vs zero-copy does not apply"
    ),
}


def cell_support(datapath: str, topology: str) -> Optional[str]:
    """None when the combination is runnable, else the reason it is not."""
    if datapath not in DATAPATHS:
        raise ValueError(f"unknown datapath {datapath!r}")
    if topology not in TOPOLOGIES:
        raise ValueError(f"unknown topology {topology!r}")
    if (datapath, topology) in _FACTORIES:
        return None
    return _UNSUPPORTED_REASONS[(datapath, topology)]


@dataclass(frozen=True)
class CellSpec:
    """One point of the sweep surface."""

    topology: str
    datapath: str
    frame_len: int
    n_flows: int

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.datapath not in DATAPATHS:
            raise ValueError(f"unknown datapath {self.datapath!r}")
        if self.frame_len < 64 or self.frame_len > 9000:
            raise ValueError(f"implausible frame length {self.frame_len}")
        if self.n_flows < 1:
            raise ValueError("need at least one flow")

    @property
    def cell_id(self) -> str:
        return (f"{self.topology.lower()}/{self.datapath}"
                f"/{self.frame_len}B/{self.n_flows}f")


def _drive(bench, stream: TrexStream, packets: int):
    """Run a bench's drive, collecting drop-sink counter deltas.

    Tracing is read-only observability (it never charges time), so the
    measurement is identical whether a recorder is attached or not; if
    the caller already has one attached we ride it via counter deltas
    instead of nesting (the trace layer forbids nested attach).
    """
    active = trace.ACTIVE
    if active is not None:
        before = dict(active.counters)
        measurement = bench.drive(stream, packets)
        counters = {
            k: v - before.get(k, 0)
            for k, v in active.counters.items()
            if v != before.get(k, 0)
        }
    else:
        with trace.recording() as rec:
            measurement = bench.drive(stream, packets)
        counters = dict(rec.counters)
    drops = {
        k: v for k, v in counters.items() if v and _DROP_SINK_RE.search(k)
    }
    return measurement, drops


def run_cell(
    spec: CellSpec,
    packets: int = 400,
    link_gbps: float = 25.0,
    resolution_mpps: float = 0.01,
    loss_tolerance: float = 0.0,
) -> dict:
    """Measure one cell and binary-search its maximum lossless rate."""
    reason = cell_support(spec.datapath, spec.topology)
    if reason is not None:
        raise UnsupportedCell(reason)
    if packets < 1:
        raise ValueError("measure at least one packet")
    bench = _FACTORIES[(spec.datapath, spec.topology)](link_gbps)
    # PCP streams must target the container's IP (fig9 does the same):
    # the loopback path needs packets delivered *to* it, sources still
    # vary for flow diversity.
    stream = TrexStream(
        FlowSpec(n_flows=spec.n_flows, vary_dst=(spec.topology != "PCP")),
        frame_len=spec.frame_len,
    )
    measurement, drops = _drive(bench, stream, packets)
    search = LosslessSearch(
        max_rate_mpps=line_rate_mpps(link_gbps, spec.frame_len),
        resolution_mpps=resolution_mpps,
        loss_tolerance=loss_tolerance,
    )
    result = search.run(capacity_loss_model(measurement.mpps))
    return {
        "id": spec.cell_id,
        "topology": spec.topology,
        "datapath": spec.datapath,
        "frame_len": spec.frame_len,
        "n_flows": spec.n_flows,
        "packets": packets,
        "link_gbps": link_gbps,
        "rate_mpps": result.rate_mpps,
        "capacity_mpps": measurement.mpps,
        "ns_per_packet": measurement.ns_per_packet,
        "cycles_per_packet": measurement.ns_per_packet * CPU_GHZ,
        "capped_by_line": measurement.capped_by_line,
        "n_busy_lanes": measurement.n_busy_lanes,
        "cpu_util": dict(measurement.cpu_util),
        "drops": drops,
        "search": result.as_dict(),
    }
