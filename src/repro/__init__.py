"""Reproduction of "Revisiting the Open vSwitch Dataplane Ten Years
Later" (SIGCOMM 2021) as a calibrated full-stack simulation.

Subpackages: :mod:`repro.sim` (time & cost model), :mod:`repro.net`
(packets), :mod:`repro.ebpf` (eBPF/XDP VM), :mod:`repro.kernel`
(simulated Linux), :mod:`repro.afxdp`, :mod:`repro.dpdk`,
:mod:`repro.vhost`, :mod:`repro.ovs` (the switch), :mod:`repro.nsx`,
:mod:`repro.hosts`, :mod:`repro.traffic`, :mod:`repro.tools`,
:mod:`repro.analysis`, :mod:`repro.experiments`.

``python -m repro`` regenerates every table and figure.
"""

__version__ = "1.0.0"
