"""Figure 9 + Table 4: forwarding rate and CPU use across datapaths (§5.2).

Three loopback scenarios — P2P, PVP, PCP — each with the kernel datapath,
AF_XDP (tap and vhostuser for PVP) and DPDK, at 1 flow and 1,000 random
flows of 64-byte packets.  The reductions report both the maximum
lossless rate (Figure 9's top row) and the CPU consumption in
hyperthread units split by accounting category (the bottom row and
Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.analysis.reporting import format_table
from repro.experiments.common import (
    PipelineMeasurement,
    add_shards_argument,
    sharded_cells,
)
from repro.experiments.p2p import afxdp_p2p, dpdk_p2p, kernel_p2p
from repro.experiments.pvp_pcp import (
    afxdp_pcp,
    afxdp_pvp,
    dpdk_pcp,
    dpdk_pvp,
    kernel_pcp,
    kernel_pvp,
)
from repro.traffic.trex import FlowSpec, TrexStream

PACKETS = 1_500
LINK_GBPS = 25.0
FLOW_COUNTS = (1, 1000)

#: scenario -> [(configuration label, bench factory)]
CONFIGS: Dict[str, List[Tuple[str, Callable]]] = {
    "P2P": [
        ("kernel", lambda: kernel_p2p(n_queues=10, link_gbps=LINK_GBPS)),
        ("afxdp", lambda: afxdp_p2p(link_gbps=LINK_GBPS)),
        ("dpdk", lambda: dpdk_p2p(link_gbps=LINK_GBPS)),
    ],
    "PVP": [
        ("kernel+tap", lambda: kernel_pvp(link_gbps=LINK_GBPS)),
        ("afxdp+tap", lambda: afxdp_pvp("tap", link_gbps=LINK_GBPS)),
        ("afxdp+vhost", lambda: afxdp_pvp("vhostuser", link_gbps=LINK_GBPS)),
        ("dpdk+vhost", lambda: dpdk_pvp(link_gbps=LINK_GBPS)),
    ],
    "PCP": [
        ("kernel", lambda: kernel_pcp(link_gbps=LINK_GBPS)),
        ("afxdp", lambda: afxdp_pcp(link_gbps=LINK_GBPS)),
        ("dpdk", lambda: dpdk_pcp(link_gbps=LINK_GBPS)),
    ],
}


@dataclass
class Fig9Result:
    #: (scenario, config, n_flows) -> measurement
    cells: Dict[Tuple[str, str, int], PipelineMeasurement] = field(
        default_factory=dict
    )

    def mpps(self, scenario: str, config: str, flows: int) -> float:
        return self.cells[(scenario, config, flows)].mpps

    def cpu(self, scenario: str, config: str, flows: int) -> Dict[str, float]:
        return self.cells[(scenario, config, flows)].cpu_util

    def render_rates(self) -> str:
        rows = []
        for scenario, configs in CONFIGS.items():
            for label, _ in configs:
                if (scenario, label, 1) not in self.cells:
                    continue  # partial run (subset of scenarios)
                rows.append((
                    scenario, label,
                    f"{self.mpps(scenario, label, 1):.2f}",
                    f"{self.mpps(scenario, label, 1000):.2f}",
                ))
        return format_table(
            ["Scenario", "Configuration", "1 flow (Mpps)",
             "1000 flows (Mpps)"],
            rows,
            title="Figure 9: maximum lossless forwarding rate",
        )

    def render_table4(self) -> str:
        rows = []
        for scenario, configs in CONFIGS.items():
            for label, _ in configs:
                if (scenario, label, 1000) not in self.cells:
                    continue
                util = self.cpu(scenario, label, 1000)
                rows.append((
                    scenario, label,
                    util.get("system", 0.0),
                    util.get("softirq", 0.0),
                    util.get("guest", 0.0),
                    util.get("user", 0.0),
                    util.get("total", 0.0),
                ))
        return format_table(
            ["Path", "Configuration", "system", "softirq", "guest",
             "user", "total"],
            rows,
            title="Table 4: CPU use with 1,000 flows (hyperthread units)",
        )


#: Rough relative wall-clock cost per (scenario, config) cell, measured
#: once on the reference machine.  Only steers the shard planner's LPT
#: placement (DESIGN §17) — a wrong weight degrades load balance, never
#: any observable.
CELL_WEIGHTS: Dict[Tuple[str, str], float] = {
    ("P2P", "kernel"): 3.0,
    ("P2P", "afxdp"): 2.0,
    ("P2P", "dpdk"): 1.0,
    ("PVP", "kernel+tap"): 4.0,
    ("PVP", "afxdp+tap"): 3.0,
    ("PVP", "afxdp+vhost"): 2.5,
    ("PVP", "dpdk+vhost"): 1.5,
    ("PCP", "kernel"): 3.5,
    ("PCP", "afxdp"): 2.5,
    ("PCP", "dpdk"): 1.5,
}


def run_cell(scenario: str, label: str, flows: int,
             packets: int) -> PipelineMeasurement:
    """One Figure 9 cell: fresh world, fresh stream, one measurement.

    The shard unit (DESIGN §17): everything the cell touches — host,
    clock, caches, RNG streams — is built here, so a worker process
    produces byte-identical charges to the serial loop.
    """
    factory = dict(CONFIGS[scenario])[label]
    bench = factory()
    # PCP streams target the container's IP (the loopback path needs
    # the packets delivered *to* it); sources still vary for flow
    # diversity.
    spec = FlowSpec(n_flows=flows, vary_dst=(scenario != "PCP"))
    stream = TrexStream(spec, frame_len=64)
    return bench.drive(stream, packets)


def cell_units(
    packets: int = PACKETS,
    scenarios: Tuple[str, ...] = ("P2P", "PVP", "PCP"),
) -> "List":
    """The experiment as a serial-ordered list of shard units."""
    from repro.sim.shard import Unit

    units = []
    for scenario in scenarios:
        for label, _factory in CONFIGS[scenario]:
            for flows in FLOW_COUNTS:
                units.append(Unit(
                    key=(scenario, label, flows),
                    runner="repro.experiments.fig9_forwarding:run_cell",
                    params=dict(scenario=scenario, label=label,
                                flows=flows, packets=packets),
                    weight=CELL_WEIGHTS.get((scenario, label), 1.0),
                ))
    return units


def run_fig9(
    packets: int = PACKETS,
    scenarios: Tuple[str, ...] = ("P2P", "PVP", "PCP"),
    shards: int = 1,
) -> Fig9Result:
    result = Fig9Result()
    result.cells.update(
        sharded_cells(cell_units(packets, scenarios), shards=shards))
    return result


def main(argv=None) -> None:  # pragma: no cover - CLI entry
    import argparse

    parser = argparse.ArgumentParser(
        prog="fig9_forwarding",
        description="Figure 9 + Table 4: forwarding rate and CPU use",
    )
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="sample counters at fixed virtual-time intervals and write "
             "the series as JSONL to PATH",
    )
    parser.add_argument("--packets", type=int, default=PACKETS)
    add_shards_argument(parser)
    args = parser.parse_args(argv)
    if args.metrics is None:
        result = run_fig9(packets=args.packets, shards=args.shards)
    else:
        from repro.sim import trace
        from repro.sim.profile import MetricsSampler

        sampler = MetricsSampler()
        rec = trace.ACTIVE
        if rec is None:
            with trace.recording() as rec:
                rec.sampler = sampler
                result = run_fig9(packets=args.packets)
        else:
            # Ride the caller's recorder (python -m repro --trace fig9
            # --metrics ...); the sampler only reads, so the caller's
            # ledger stays byte-identical.
            rec.sampler = sampler
            try:
                result = run_fig9(packets=args.packets)
            finally:
                rec.sampler = None
        with open(args.metrics, "w") as fh:
            fh.write(sampler.to_jsonl(extra={"experiment": "fig9"}) + "\n")
        print(f"wrote {len(sampler.samples)} metric samples "
              f"to {args.metrics}")
    print(result.render_rates())
    print()
    print(result.render_table4())


if __name__ == "__main__":  # pragma: no cover
    main()
