"""Table 5: single-core XDP processing rates by task complexity (§5.4).

====================================================  ========
XDP Processing Task                                   Rate
====================================================  ========
A: Drop only                                          14 Mpps
B: Parse Eth/IPv4 hdr and drop                        8.1 Mpps
C: Parse, lookup in L2 table, and drop                7.1 Mpps
D: Parse, swap src/dst MAC, and fwd                   4.7 Mpps
====================================================  ========

Task A hits the 10 Gbps line rate; every added instruction/lookup/write
after that costs throughput — "Complexity in XDP code reduces
performance" (Outcome #4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.reporting import format_table
from repro.ebpf.programs import (
    drop_program,
    l2_key,
    parse_drop_program,
    parse_lookup_drop_program,
    parse_swap_tx_program,
)
from repro.ebpf.xdp import XdpContext
from repro.experiments.common import CpuSnapshot, reduce_run
from repro.hosts.host import Host
from repro.kernel.netdev import NetDevice, Wire
from repro.net.addresses import MacAddress
from repro.traffic.trex import FlowSpec, TrexStream

PACKETS = 2_000
LINK_GBPS = 10.0

PAPER_MPPS = {"A": 14.0, "B": 8.1, "C": 7.1, "D": 4.7}
TASK_NAMES = {
    "A": "Drop only",
    "B": "Parse Eth/IPv4 hdr and drop",
    "C": "Parse Eth/IPv4, L2 table lookup, drop",
    "D": "Parse Eth/IPv4, swap src/dst MAC, fwd",
}


@dataclass
class Table5Result:
    mpps: Dict[str, float]

    def render(self) -> str:
        rows = [
            (task, TASK_NAMES[task], f"{self.mpps[task]:.1f}",
             PAPER_MPPS[task])
            for task in "ABCD"
        ]
        return format_table(
            ["Task", "XDP processing", "Rate (Mpps)", "Paper (Mpps)"],
            rows,
            title="Table 5: single-core XDP processing rates",
        )


def _measure_task(program_ctx: XdpContext, packets: int,
                  n_flows: int = 1) -> float:
    host = Host("dut", n_cpus=4)
    nic = host.add_nic("ens1", n_queues=1)
    sink = NetDevice("sink", MacAddress.local(0xF1001))
    sink.set_up()
    sink.set_rx_handler(lambda pkt, ctx: None)
    Wire(nic, sink, gbps=LINK_GBPS)
    nic.attach_xdp(program_ctx)
    host.kernel.set_irq_affinity("ens1", 0, 0)
    stream = TrexStream(FlowSpec(n_flows), frame_len=64)
    # Warm up (cold caches, program image).
    for pkt in stream.burst(64):
        nic.host_receive(pkt)
    while nic.pending():
        host.kernel.service_nic(nic, budget=64, interrupt_mode=False)
    before = CpuSnapshot.take(host.cpu)
    sent = 0
    while sent < packets:
        for pkt in stream.burst(64):
            nic.host_receive(pkt)
        sent += 64
        while nic.pending():
            host.kernel.service_nic(nic, budget=64, interrupt_mode=False)
    return reduce_run(host.cpu, before, sent, link_gbps=LINK_GBPS,
                      frame_len=64).mpps


def _build_program(task: str):
    if task == "A":
        return drop_program()
    if task == "B":
        return parse_drop_program()
    if task == "C":
        lookup_prog, table = parse_lookup_drop_program()
        # Populate the L2 table so task C's lookup hits, as in the paper.
        stream = TrexStream(FlowSpec(1), frame_len=64)
        table.update(l2_key(stream.next_packet().data[0:6]),
                     (1).to_bytes(4, "little"))
        return lookup_prog
    if task == "D":
        return parse_swap_tx_program()
    raise ValueError(f"unknown task {task!r}")


def run_cell(task: str, packets: int, n_flows: int) -> float:
    """One Table 5 row: build the task's program and measure it.

    The shard unit (DESIGN §17): program construction (a pure, uncharged
    build) moved inside the cell so every row is self-contained.
    """
    return _measure_task(XdpContext(_build_program(task)), packets,
                         n_flows=n_flows)


def run_table5(packets: int = PACKETS, n_flows: int = 1,
               shards: int = 1) -> Table5Result:
    """Measure the four tasks; ``n_flows > 1`` spreads the stream over
    that many distinct flows (every-frame-different traffic defeats any
    per-frame verdict caching, isolating raw program execution cost)."""
    from repro.experiments.common import sharded_cells
    from repro.sim.shard import Unit

    units = [
        Unit(key=task,
             runner="repro.experiments.table5_xdp_cost:run_cell",
             params=dict(task=task, packets=packets, n_flows=n_flows),
             # Complexity grows A -> D; D also transmits.
             weight={"A": 1.0, "B": 1.5, "C": 2.0, "D": 2.5}[task])
        for task in "ABCD"
    ]
    return Table5Result(mpps=sharded_cells(units, shards=shards))


def main() -> None:  # pragma: no cover - CLI entry
    print(run_table5().render())


if __name__ == "__main__":  # pragma: no cover
    main()
