"""Table 3: properties of the production NSX OpenFlow rule set (§5.1).

=====================================  =======
Entity                                 Count
=====================================  =======
Geneve tunnels                         291
VMs (two interfaces per VM)            15
OpenFlow rules                         103,302
OpenFlow tables                        40
matching fields among all rules        31
=====================================  =======

This experiment deploys the full-scale synthetic rule set through the
NSX agent (OVSDB + OpenFlow) and recomputes the statistics from the
installed bridge, then sanity-drives a packet through the pipeline to
confirm the deployment is live, not just counted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.hosts.host import Host
from repro.nsx.agent import NsxAgent
from repro.nsx.ruleset import TARGET_RULES, RulesetStats
from repro.ovs.emc import ExactMatchCache
from repro.sim.cpu import CpuCategory, ExecContext

PAPER = {
    "Geneve tunnels": 291,
    "VMs (two interfaces per VM)": 15,
    "OpenFlow rules": 103_302,
    "OpenFlow tables": 40,
    "matching fields among all rules": 31,
}


@dataclass
class Table3Result:
    stats: RulesetStats
    pipeline_passes: int

    def rows(self):
        measured = {
            "Geneve tunnels": self.stats.n_tunnels,
            "VMs (two interfaces per VM)": self.stats.n_vms,
            "OpenFlow rules": self.stats.n_rules,
            "OpenFlow tables": self.stats.n_tables,
            "matching fields among all rules": self.stats.n_match_fields,
        }
        return [(k, measured[k], PAPER[k]) for k in PAPER]

    def render(self) -> str:
        return format_table(["Entity", "Count", "Paper"], self.rows(),
                            title="Table 3: NSX OpenFlow rule set")


def run_table3(target_rules: int = TARGET_RULES) -> Table3Result:
    host = Host("hv1", n_cpus=16)
    nic = host.add_nic("ens1")
    host.kernel.init_ns.add_address("ens1", "192.168.1.1", 16)
    vs = host.install_ovs("netdev")
    vs.add_bridge(NsxAgent.INTEGRATION_BRIDGE)
    uplink, _ = vs.add_sim_port(NsxAgent.INTEGRATION_BRIDGE, "up0")
    vs.dpif_netdev.ports[uplink.dp_port_no].device = nic
    agent = NsxAgent(vs)
    vif_ports = {}
    adapters = {}
    for vif in agent.topo.vifs[:2]:
        port, adapter = vs.add_sim_port(NsxAgent.INTEGRATION_BRIDGE,
                                        f"vif{vif.vif_id}")
        vif_ports[vif.vif_id] = port
        adapters[vif.vif_id] = adapter
    stats = agent.deploy(uplink, vif_ports, target_rules=target_rules)

    # Liveness check: one packet through the DFW pipeline.
    from repro.net.builder import make_udp_packet

    src = agent.topo.vifs[0]
    dst = next(v for v in agent.topo.vifs
               if v.logical_switch == src.logical_switch and v is not src)
    pkt = make_udp_packet(src.mac, dst.mac, src.ip, dst.ip, 1000, 2000)
    ctx = ExecContext(host.cpu, 1, CpuCategory.USER)
    vs.dpif_netdev.process_batch(
        [pkt], vs.dpif_netdev.port_no(f"vif{src.vif_id}"), ctx,
        ExactMatchCache())
    return Table3Result(stats=stats,
                        pipeline_passes=vs.dpif_netdev.stats.passes)


def main() -> None:  # pragma: no cover - CLI entry
    result = run_table3()
    print(result.render())
    print(f"\npipeline passes for one firewalled packet: "
          f"{result.pipeline_passes} (the paper's 'recirculate twice')")


if __name__ == "__main__":  # pragma: no cover
    main()
