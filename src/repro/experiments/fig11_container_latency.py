"""Figure 11: container-to-container latency within a host (§5.3).

=========  =================  ==========================================
Config     P50/P90/P99 us     Why
=========  =================  ==========================================
Kernel     ~15 / 16 / 20      veth -> in-kernel switch -> veth, cheap
AF_XDP     ~15 / 16 / 20      XDP program between the veths, equally cheap
DPDK       81 / 136 / 241     "packets to or from a container must pass
                              through the host TCP/IP stack ... DPDK needs
                              extra user/kernel transitions and packet
                              data copies"
=========  =================  ==========================================

netperf TCP_RR between two containers; the DPDK path crosses OVS's
AF_PACKET sockets twice per direction, each crossing adding syscalls,
copies, and a scheduler wakeup chain (ksoftirqd -> OVS poll -> netserver)
whose variance produces the enormous tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.reporting import format_table
from repro.ebpf.programs import container_redirect_program
from repro.hosts.container import Container
from repro.hosts.host import Host
from repro.net.builder import make_tcp_packet
from repro.net.packet import Packet
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.pmd import PmdThread
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, ExecContext
from repro.traffic.netperf import NetperfResult, TcpRrRunner

N_TRANSACTIONS = 400

PAPER_US = {
    "kernel": (15, 16, 20),
    "afxdp": (15, 16, 20),
    "dpdk": (81, 136, 241),
}

_JITTER = {
    "kernel": {
        "netserver_wakeup": (4_200.0, 0.3),
        "client_wakeup": (4_200.0, 0.3),
    },
    "afxdp": {
        "netserver_wakeup": (4_200.0, 0.3),
        "client_wakeup": (4_200.0, 0.3),
    },
    "dpdk": {
        # Two AF_PACKET crossings per direction, each a ksoftirqd ->
        # OVS-poll -> consumer wakeup chain with heavy variance.
        "afpacket_chain_fwd": (29_000.0, 0.68),
        "afpacket_chain_back": (29_000.0, 0.68),
        "netserver_wakeup": (4_200.0, 0.4),
        "client_wakeup": (4_200.0, 0.4),
    },
}


@dataclass
class Fig11Result:
    results: Dict[str, NetperfResult]

    def render(self) -> str:
        rows = []
        for config, r in self.results.items():
            paper = PAPER_US[config]
            rows.append((
                config,
                f"{r.p50_us:.0f}/{r.p90_us:.0f}/{r.p99_us:.0f}",
                f"{paper[0]}/{paper[1]}/{paper[2]}",
                f"{r.transactions_per_s:,.0f}",
            ))
        return format_table(
            ["Config", "P50/P90/P99 (us)", "Paper (us)", "Transactions/s"],
            rows,
            title="Figure 11: container <-> container TCP_RR latency",
        )


class _ContainerRrPath:
    def __init__(self, config: str) -> None:
        self.config = config
        host = Host("dut", n_cpus=16)
        self.host = host
        self.c1 = Container(host, "c1", "172.17.0.2")
        self.c2 = Container(host, "c2", "172.17.0.3")
        self.client_ctx = ExecContext(host.cpu, 10, CpuCategory.USER,
                                      name="netperf")
        self.server_ctx = ExecContext(host.cpu, 11, CpuCategory.USER,
                                      name="netserver")
        self._at_server: List[Packet] = []
        self._at_client: List[Packet] = []
        self.pmd = None

        if config == "kernel":
            vs = host.install_ovs("system")
            vs.add_bridge("br0")
            p1 = vs.add_system_port("br0", self.c1.outside)
            p2 = vs.add_system_port("br0", self.c2.outside)
            of = OpenFlowConnection(vs.bridge("br0"))
            of.add_flow(0, 10, Match(in_port=p1.ofport),
                        [OutputAction(self.c2.outside.name)])
            of.add_flow(0, 10, Match(in_port=p2.ofport),
                        [OutputAction(self.c1.outside.name)])
        elif config == "afxdp":
            # The XDP program forwards between the veths in the kernel
            # (Figure 5 path C applied to container<->container traffic),
            # inline in the sender's context as real veth XDP runs.
            costs = DEFAULT_COSTS

            def veth_xdp(dst_dev):
                def handler(pkt, ctx):
                    ctx.charge(
                        costs.xdp_ctx_setup_ns + costs.dma_first_touch_ns
                        + costs.ebpf_map_lookup_ns + costs.xdp_redirect_ns,
                        label="veth_xdp",
                    )
                    dst_dev.transmit(pkt, ctx)
                return handler

            self.c1.outside.set_rx_handler(veth_xdp(self.c2.outside))
            self.c2.outside.set_rx_handler(veth_xdp(self.c1.outside))
        elif config == "dpdk":
            vs = host.install_ovs("netdev")
            vs.add_bridge("br0")
            p1 = vs.add_system_port("br0", self.c1.outside)
            p2 = vs.add_system_port("br0", self.c2.outside)
            of = OpenFlowConnection(vs.bridge("br0"))
            of.add_flow(0, 10, Match(in_port=p1.ofport),
                        [OutputAction(self.c2.outside.name)])
            of.add_flow(0, 10, Match(in_port=p2.ofport),
                        [OutputAction(self.c1.outside.name)])
            self.pmd = PmdThread(vs.dpif_netdev, host.cpu, core=0)
            dpif = vs.dpif_netdev
            self.pmd.add_rxq(dpif.ports[dpif.port_no(self.c1.outside.name)], 0)
            self.pmd.add_rxq(dpif.ports[dpif.port_no(self.c2.outside.name)], 0)
        else:
            raise ValueError(config)

        # Container apps: stash arriving frames (the stacks' costs are
        # charged explicitly in the transaction).
        self.c1.inside.set_rx_handler(
            lambda pkt, ctx: self._at_client.append(pkt))
        self.c2.inside.set_rx_handler(
            lambda pkt, ctx: self._at_server.append(pkt))
        for _ in range(4):
            self.one_transaction()

    def contexts(self) -> List[ExecContext]:
        ctxs = [self.client_ctx, self.server_ctx]
        if self.pmd is not None:
            ctxs.append(self.pmd.ctx)
        ctxs.extend(self.host.kernel._softirq_ctx.values())
        return ctxs

    def _pump(self) -> None:
        if self.pmd is not None:
            for _ in range(20):
                if not self.pmd.run_iteration():
                    break

    def one_transaction(self) -> None:
        costs = DEFAULT_COSTS
        # Client container: netperf writes a byte through its stack.
        self.client_ctx.charge(costs.tcp_segment_ns, label="client_tcp")
        request = make_tcp_packet(
            self.c1.inside.mac, self.c2.inside.mac,
            "172.17.0.2", "172.17.0.3", 40000, 12865, payload=b"x")
        self.c1.inside.transmit(request, self.client_ctx)
        self._pump()
        assert self._at_server, "request did not reach the server container"
        self._at_server.clear()
        # Server container: stack rx + netserver + stack tx.
        self.server_ctx.charge(2 * costs.tcp_segment_ns, label="server_tcp")
        reply = make_tcp_packet(
            self.c2.inside.mac, self.c1.inside.mac,
            "172.17.0.3", "172.17.0.2", 12865, 40000, payload=b"y")
        self.c2.inside.transmit(reply, self.server_ctx)
        self._pump()
        assert self._at_client, "reply did not reach the client container"
        self._at_client.clear()
        self.client_ctx.charge(costs.tcp_segment_ns, label="client_tcp")


def run_fig11(n_transactions: int = N_TRANSACTIONS) -> Fig11Result:
    results: Dict[str, NetperfResult] = {}
    for config in ("kernel", "afxdp", "dpdk"):
        path = _ContainerRrPath(config)
        runner = TcpRrRunner(path.contexts(), _JITTER[config],
                             seed=hash(config) & 0xFFFF)
        results[config] = runner.run(path.one_transaction, n_transactions)
    return Fig11Result(results=results)


def main() -> None:  # pragma: no cover - CLI entry
    print(run_fig11().render())


if __name__ == "__main__":  # pragma: no cover
    main()
