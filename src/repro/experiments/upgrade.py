"""Crash-recovery / hot-upgrade downtime under live traffic (§6).

The paper's operational case for the userspace datapath is that an
upgrade (or a crash) is a daemon restart — no module reload, no reboot.
This experiment prices that restart per datapath flavor: a supervised
ovs-vswitchd is killed mid-traffic by the seeded ``vswitchd.crash``
fault, the :class:`~repro.sim.supervisor.Supervisor` drives the charged
recovery sequence on the virtual clock, and continuous offered load
(fixed-rate bursts) measures what the dataplane actually lost.

What each flavor keeps across the crash decides its disruption:

==========  ========================================================
kernel      megaflows + netfilter conntrack live in the kernel; warm
            flows forward through the whole outage, only new-flow
            upcalls are ``lost:``
ebpf (tc)   program + maps pinned in the kernel; zero dataplane loss,
            the restart is purely control-plane
afxdp       XSK fds die with the process: every redirect fails until
            the supervisor re-creates umem + sockets, then the caches
            (EMC/megaflow) and userspace conntrack restart cold
dpdk        the process owned the device; hw rings fill while nobody
            polls and are discarded by the re-init's queue reset, and
            EAL init dominates the downtime
==========  ========================================================

Runs are deterministic per seed (the CI upgrade job runs each seed
twice and diffs the JSON)::

    python -m repro upgrade
    python -m repro.experiments.upgrade --json --seed 7 \
        --scenarios kernel,afxdp_zc
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.afxdp.driver import AfxdpOptions
from repro.dpdk.ethdev import bind_device
from repro.ebpf.programs import l2_forward_program, l2_key
from repro.experiments.common import warmup_count
from repro.experiments.p2p import _base_host
from repro.kernel.tc import TcIngressHook
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.pmd import PmdThread
from repro.sim import faults, trace
from repro.sim.clock import MSEC
from repro.sim.faults import FaultPlan, FaultRule
from repro.sim.supervisor import Supervisor
from repro.tools.conservation import PacketLedger, afxdp_packet_ledger
from repro.traffic.trex import FlowSpec, TrexStream

SCENARIOS: Tuple[str, ...] = (
    "kernel", "ebpf", "afxdp_copy", "afxdp_zc", "dpdk")

PACKETS = 9_600
BURST = 32
#: Offered-load cadence: one burst per virtual millisecond.
BURST_INTERVAL_NS = 1 * MSEC
N_FLOWS = 16
LINK_GBPS = 25.0
#: Retry-stretch odds for the recovery-path faults (seeded, so the two
#: CI seeds exercise different retry counts).
RETRY_FAULT_RATE = 0.3


@dataclass
class ScenarioResult:
    """One datapath flavor's crash-and-recover under load."""

    scenario: str
    offered: int
    delivered: int
    restarts: int
    crashed_at_ns: float
    downtime_ns: float
    detect_ns: float
    backoff_ns: float
    ovsdb_retries: int
    netlink_redumps: int
    phase_ns: Dict[str, float] = field(default_factory=dict)
    sinks: Dict[str, int] = field(default_factory=dict)
    conserved: bool = True

    @property
    def lost(self) -> int:
        return self.offered - self.delivered

    def to_json(self) -> Dict:
        return {
            "scenario": self.scenario,
            "offered": self.offered,
            "delivered": self.delivered,
            "lost": self.lost,
            "restarts": self.restarts,
            "crashed_at_ms": round(self.crashed_at_ns / MSEC, 6),
            "downtime_ms": round(self.downtime_ns / MSEC, 6),
            "detect_ms": round(self.detect_ns / MSEC, 6),
            "backoff_ms": round(self.backoff_ns / MSEC, 6),
            "ovsdb_retries": self.ovsdb_retries,
            "netlink_redumps": self.netlink_redumps,
            "phase_ms": {k: round(v / MSEC, 6)
                         for k, v in sorted(self.phase_ns.items())},
            "sinks": dict(sorted(self.sinks.items())),
            "conserved": self.conserved,
        }


@dataclass
class _World:
    """One built scenario: its hooks for the shared drive loop."""

    host: object
    nic_in: object
    nic_out: object
    vs: object                      # None for the daemon-less eBPF world
    pmds: list
    #: pump(daemon_up): drain offered frames as far as the still-alive
    #: layers allow.  The kernel side keeps running through a crash; the
    #: dead process's PMD threads must not.
    pump: Callable[[bool], None]
    ledger: Callable[[int, Dict[str, int]], PacketLedger]
    revalidate: Optional[Callable[[], None]] = None


def _sink(sinks: Dict[str, int], name: str, n: int) -> None:
    if n:
        sinks[name] = sinks.get(name, 0) + n


# ----------------------------------------------------------------------
# Scenario builders.  Each wires the same P2P topology (trex -> ens1 ->
# br0 -> ens2 -> trex) on a different datapath flavor.
# ----------------------------------------------------------------------
def _build_kernel(stream: TrexStream) -> _World:
    host, nic_in, nic_out = _base_host(1, LINK_GBPS)
    vs = host.install_ovs("system")
    vs.add_bridge("br0")
    p_in = vs.add_system_port("br0", nic_in)
    vs.add_system_port("br0", nic_out)
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(in_port=p_in.ofport), [OutputAction("ens2")])

    def pump(up: bool) -> None:
        # The kernel module keeps forwarding warm megaflows whether or
        # not the daemon lives; only misses need the (dead) handler.
        while nic_in.pending():
            host.kernel.service_nic(nic_in, budget=BURST)

    def ledger(offered: int, crash_sinks: Dict[str, int]) -> PacketLedger:
        sinks: Dict[str, int] = dict(crash_sinks)
        _sink(sinks, "nic.rx_missed", nic_in.rx_missed)
        _sink(sinks, "dp.lost_upcalls", vs.dpif_netlink.dp.n_lost)
        return PacketLedger(offered=offered,
                            forwarded=nic_out.wire_peer.stats.rx_packets,
                            sinks=sinks)

    return _World(host, nic_in, nic_out, vs, [], pump, ledger)


def _build_ebpf(stream: TrexStream) -> _World:
    host, nic_in, nic_out = _base_host(1, LINK_GBPS)
    program, fib = l2_forward_program()
    TcIngressHook(nic_in, program, host.kernel.init_ns)
    fib.update(
        l2_key(stream.next_packet().data[0:6]),
        nic_out.ifindex.to_bytes(4, "little"),
    )

    def pump(up: bool) -> None:
        # Program + maps are pinned in the kernel: forwarding survives
        # the control process completely.
        while nic_in.pending():
            host.kernel.service_nic(nic_in, budget=BURST)

    def ledger(offered: int, crash_sinks: Dict[str, int]) -> PacketLedger:
        sinks: Dict[str, int] = dict(crash_sinks)
        _sink(sinks, "nic.rx_missed", nic_in.rx_missed)
        _sink(sinks, "nic.xdp_drops", nic_in.xdp_drops)
        _sink(sinks, "nic.xdp_passes_to_stack", nic_in.xdp_passes)
        return PacketLedger(offered=offered,
                            forwarded=nic_out.wire_peer.stats.rx_packets,
                            sinks=sinks)

    # vs=None: the supervised daemon has no datapath attachments here —
    # recovery is detect + backoff + exec only.
    return _World(host, nic_in, nic_out, None, [], pump, ledger)


def _build_afxdp(stream: TrexStream, zerocopy: bool) -> _World:
    options = AfxdpOptions(force_copy_mode=None if zerocopy else True)
    host, nic_in, nic_out = _base_host(1, LINK_GBPS)
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    p_in = vs.add_afxdp_port("br0", nic_in, options)
    vs.add_afxdp_port("br0", nic_out, options)
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(in_port=p_in.ofport), [OutputAction("ens2")])
    dpif = vs.dpif_netdev
    driver_in = dpif.ports[dpif.port_no("ens1")].adapter.driver
    driver_out = dpif.ports[dpif.port_no("ens2")].adapter.driver
    pmd = PmdThread(dpif, host.cpu, core=0, batch_size=options.batch_size)
    pmd.add_rxq(dpif.ports[dpif.port_no("ens1")], 0)

    def pump(up: bool) -> None:
        # Softirq XDP dispatch belongs to the kernel and keeps running;
        # with the XSKs gone its redirects fail at dispatch.  The PMD
        # threads died with the daemon.
        while nic_in.pending():
            host.kernel.service_nic(nic_in, budget=options.batch_size)
            if up:
                pmd.run_iteration()
        if up:
            pmd.run_until_idle()

    def ledger(offered: int, crash_sinks: Dict[str, int]) -> PacketLedger:
        return afxdp_packet_ledger(offered, nic_in, driver_in, driver_out,
                                   dpif, extra_sinks=crash_sinks)

    return _World(host, nic_in, nic_out, vs, [pmd], pump, ledger,
                  revalidate=lambda: dpif.revalidate(emcs=[pmd.emc]))


def _build_dpdk(stream: TrexStream) -> _World:
    host, nic_in, nic_out = _base_host(1, LINK_GBPS)
    eth_in = bind_device(host.kernel.init_ns, "ens1")
    eth_out = bind_device(host.kernel.init_ns, "ens2")
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    p_in = vs.add_dpdk_port("br0", eth_in)
    vs.add_dpdk_port("br0", eth_out)
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(in_port=p_in.ofport), [OutputAction("ens2")])
    dpif = vs.dpif_netdev
    pmd = PmdThread(dpif, host.cpu, core=0)
    pmd.add_rxq(dpif.ports[dpif.port_no("ens1")], 0)

    def pump(up: bool) -> None:
        # The dead process owned the device: nobody polls while it is
        # down, the hardware rings fill, overflow counts in rx_missed
        # and whatever sits in the rings is discarded by the re-init's
        # queue reset (crash.dpdk_ring_reset).
        if up:
            pmd.run_until_idle()

    def ledger(offered: int, crash_sinks: Dict[str, int]) -> PacketLedger:
        sinks: Dict[str, int] = dict(crash_sinks)
        _sink(sinks, "nic.rx_missed", nic_in.rx_missed)
        _sink(sinks, "dp.dropped", dpif.stats.dropped)
        return PacketLedger(offered=offered,
                            forwarded=nic_out.wire_peer.stats.rx_packets,
                            sinks=sinks)

    return _World(host, nic_in, nic_out, vs, [pmd], pump, ledger,
                  revalidate=lambda: dpif.revalidate(emcs=[pmd.emc]))


_BUILDERS: Dict[str, Callable[[TrexStream], _World]] = {
    "kernel": _build_kernel,
    "ebpf": _build_ebpf,
    "afxdp_copy": lambda s: _build_afxdp(s, zerocopy=False),
    "afxdp_zc": lambda s: _build_afxdp(s, zerocopy=True),
    "dpdk": _build_dpdk,
}


# ----------------------------------------------------------------------
def _run_scenario(name: str, packets: int, seed: int) -> ScenarioResult:
    """Build one flavor's world and crash it once under load."""
    n_bursts = max(1, (packets + BURST - 1) // BURST)
    crash_nth = max(2, n_bursts // 5)
    plan = FaultPlan(seed=seed, rules=[
        FaultRule("vswitchd.crash", nth=crash_nth, max_fires=1),
        FaultRule("ovsdb.disconnect", rate=RETRY_FAULT_RATE),
        FaultRule("netlink.enobufs", rate=RETRY_FAULT_RATE),
    ])
    outer = trace.ACTIVE
    if outer is not None:
        trace.detach()
    try:
        return _run_scenario_traced(name, packets, plan)
    finally:
        if outer is not None:
            trace.attach(outer)


def _run_scenario_traced(name: str, packets: int,
                         plan: FaultPlan) -> ScenarioResult:
    stream = TrexStream(FlowSpec(n_flows=N_FLOWS))
    with faults.injecting(plan), trace.recording():
        world = _BUILDERS[name](stream)
        host = world.host
        sup = Supervisor(host.user_ctx(host.cpu.n_cpus - 1), host.clock,
                         vs=world.vs, pmds=world.pmds)
        warmup = warmup_count(stream)
        for pkt in stream.burst(warmup):
            world.nic_in.host_receive(pkt)
            world.pump(True)
        start = host.clock.now
        sent = 0
        burst_no = 0
        while sent < packets:
            host.clock.advance_to(start + burst_no * BURST_INTERVAL_NS)
            sup.poll()
            sup.maybe_crash()
            chunk = min(BURST, packets - sent)
            for pkt in stream.burst(chunk):
                world.nic_in.host_receive(pkt)
            sent += chunk
            world.pump(sup.up)
            if sup.up and world.revalidate is not None:
                world.revalidate()
            burst_no += 1
        # A recovery that outlives the offered window (DPDK's EAL init)
        # still completes; drain whatever the reborn daemon can forward.
        sup.finish()
        world.pump(sup.up)
        ledger = world.ledger(warmup + packets, sup.crash_sinks)
    rec0 = sup.history[0] if sup.history else None
    return ScenarioResult(
        scenario=name,
        offered=packets,
        delivered=ledger.forwarded - warmup,
        restarts=sup.restarts,
        crashed_at_ns=(rec0.crashed_at_ns - start) if rec0 else 0.0,
        downtime_ns=rec0.downtime_ns if rec0 else 0.0,
        detect_ns=(rec0.detected_at_ns - rec0.crashed_at_ns) if rec0
        else 0.0,
        backoff_ns=rec0.backoff_ns if rec0 else 0.0,
        ovsdb_retries=rec0.ovsdb_retries if rec0 else 0,
        netlink_redumps=rec0.netlink_redumps if rec0 else 0,
        phase_ns=dict(rec0.phase_ns) if rec0 else {},
        sinks={k: v for k, v in ledger.sinks.items() if v},
        conserved=ledger.conserved(),
    )


def run_upgrade(
    packets: int = PACKETS,
    seed: int = 0,
    scenarios: Sequence[str] = SCENARIOS,
) -> List[ScenarioResult]:
    results = []
    for name in scenarios:
        if name not in _BUILDERS:
            known = ", ".join(SCENARIOS)
            raise ValueError(f"unknown scenario {name!r}; known: {known}")
        result = _run_scenario(name, packets, seed)
        if not result.conserved:
            raise AssertionError(
                f"packet conservation violated in {name!r}: "
                f"{result.to_json()}")
        results.append(result)
    return results


def render(results: Sequence[ScenarioResult]) -> str:
    lines = [
        f"{'scenario':<12} {'downtime':>10} {'detect':>8} {'lost':>7} "
        f"{'delivered':>9} {'retries':>8}",
    ]
    for r in results:
        retries = r.ovsdb_retries + r.netlink_redumps
        lines.append(
            f"{r.scenario:<12} {r.downtime_ns / MSEC:>8.1f}ms "
            f"{r.detect_ns / MSEC:>6.1f}ms {r.lost:>7} "
            f"{r.delivered:>9} {retries:>8}"
        )
    return "\n".join(lines)


def main(argv: "List[str] | None" = None) -> None:
    argv = list(sys.argv[1:] if argv is None else argv)
    as_json = "--json" in argv
    seed = 0
    packets = PACKETS
    scenarios: Sequence[str] = SCENARIOS
    if "--seed" in argv:
        seed = int(argv[argv.index("--seed") + 1])
    if "--packets" in argv:
        packets = int(argv[argv.index("--packets") + 1])
    if "--scenarios" in argv:
        scenarios = tuple(
            argv[argv.index("--scenarios") + 1].split(","))
    results = run_upgrade(packets=packets, seed=seed, scenarios=scenarios)
    if as_json:
        print(json.dumps({
            "seed": seed,
            "packets": packets,
            "scenarios": {r.scenario: r.to_json() for r in results},
        }, indent=2, sort_keys=True))
    else:
        print(f"supervised crash-recovery (seed={seed}, {packets} packets "
              f"offered as {BURST}-packet bursts every "
              f"{BURST_INTERVAL_NS / MSEC:g} ms):")
        print(render(results))


if __name__ == "__main__":
    main()
