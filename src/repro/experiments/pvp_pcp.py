"""PVP and PCP forwarding benches (§5.2, Figure 9 b/c).

PVP (physical-virtual-physical) adds a VM round trip to the P2P path: the
guest runs a testpmd-style forwarder that bounces frames from its virtio
rx queue to its tx queue.  PCP does the same with a container running a
PACKET_MMAP-style ring forwarder on its veth.

Connectivity variants follow the paper exactly:

* kernel datapath — VM by tap (+QEMU shuttle), container by veth;
* AF_XDP — VM by tap or vhostuser; container by the XDP-redirect program
  (Figure 5 path C: the packet never reaches userspace);
* DPDK — VM by vhostuser; container by the DPDK AF_PACKET driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.afxdp.driver import AfxdpOptions
from repro.dpdk.ethdev import bind_device
from repro.ebpf.programs import container_ip_key, container_redirect_program
from repro.ebpf.xdp import XdpContext
from repro.experiments.common import (
    PipelineMeasurement,
    measured_drive,
    warmup_count,
)
from repro.experiments.p2p import _base_host
from repro.hosts.container import Container
from repro.hosts.host import Host
from repro.hosts.vm import VirtualMachine
from repro.net.addresses import ip_to_int
from repro.net.packet import Packet
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.pmd import PmdThread
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext
from repro.traffic.trex import TrexStream

#: Per-packet cost of the guest's testpmd-style forwarding loop and of
#: the container's PACKET_MMAP ring forwarder (tight userspace loops).
GUEST_FWD_NS = 60.0
CONTAINER_FWD_NS = 120.0


@dataclass
class LoopBench:
    host: Host
    drive: Callable[[TrexStream, int], PipelineMeasurement]
    pmd_cpus: "tuple[int, ...]" = ()


class GuestForwarder:
    """testpmd inside the VM: rx queue -> tx queue, burning a vCPU."""

    def __init__(self, vm: VirtualMachine) -> None:
        self.vm = vm
        self.ctx = vm.ctx

    def pump(self, budget: int = 64) -> int:
        pkts = self.vm.nic.rx_queue.pop_batch(budget)
        for pkt in pkts:
            self.ctx.charge(GUEST_FWD_NS, label="guest_fwd")
            self.ctx.charge(DEFAULT_COSTS.virtqueue_op_ns, label="virtqueue")
            self.vm.nic.tx_queue.push(pkt)
        return len(pkts)


class ContainerForwarder:
    """A packet-ring forwarder inside the container namespace."""

    def __init__(self, container: Container, ctx: ExecContext) -> None:
        self.container = container
        self.ctx = ctx
        container.inside.set_rx_handler(self._forward)
        self.forwarded = 0

    def _forward(self, pkt: Packet, _ctx) -> None:
        self.ctx.charge(CONTAINER_FWD_NS, label="container_fwd")
        # Swap MACs and send straight back out (l2fwd semantics).
        data = pkt.data[6:12] + pkt.data[0:6] + pkt.data[12:]
        self.container.inside.transmit(pkt.with_data(data), self.ctx)
        self.forwarded += 1


def _measured_drive(host, inject, pump_all, link_gbps, pmd_cpus):
    """The loopback benches' drive: the canonical loop at chunk=32."""
    return measured_drive(host, inject, pump_all, link_gbps,
                          pmd_cpus=pmd_cpus, chunk=32)


# ---------------------------------------------------------------------------
# PVP
# ---------------------------------------------------------------------------
def kernel_pvp(link_gbps: float = 25.0, n_queues: int = 10) -> LoopBench:
    host, nic_in, nic_out = _base_host(n_queues, link_gbps)
    vm = VirtualMachine(host, "vm1", "10.0.0.5", vcpu_core=12)
    tap = vm.attach_tap(qemu_core=13)
    fwd = GuestForwarder(vm)
    vs = host.install_ovs("system")
    vs.add_bridge("br0")
    p_in = vs.add_system_port("br0", nic_in)
    p_tap = vs.add_system_port("br0", tap)
    vs.add_system_port("br0", nic_out)
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(in_port=p_in.ofport), [OutputAction(tap.name)])
    of.add_flow(0, 10, Match(in_port=p_tap.ofport), [OutputAction("ens2")])

    def pump_all() -> None:
        for _ in range(100):
            moved = host.kernel.service_nic(nic_in, budget=8)
            moved += vm.qemu.pump()
            moved += fwd.pump()
            moved += vm.qemu.pump()
            if not moved and not nic_in.pending():
                return

    return LoopBench(
        host,
        _measured_drive(host, nic_in.host_receive, pump_all, link_gbps, ()),
    )


def afxdp_pvp(
    vm_attach: str = "vhostuser",
    options: Optional[AfxdpOptions] = None,
    link_gbps: float = 25.0,
) -> LoopBench:
    if vm_attach not in ("vhostuser", "tap"):
        raise ValueError(f"unknown VM attachment {vm_attach!r}")
    options = options or AfxdpOptions()
    host, nic_in, nic_out = _base_host(1, link_gbps)
    vm = VirtualMachine(host, "vm1", "10.0.0.5", vcpu_core=12)
    fwd = GuestForwarder(vm)
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    p_in = vs.add_afxdp_port("br0", nic_in, options)
    vs.add_afxdp_port("br0", nic_out, options)
    if vm_attach == "vhostuser":
        vport = vs.add_vhostuser_port("br0", vm.attach_vhostuser())
        vm_port_name = f"vhost-{vm.name}"
    else:
        tap = vm.attach_tap(qemu_core=13)
        vport = vs.add_system_port("br0", tap)
        vm_port_name = tap.name
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(in_port=p_in.ofport),
                [OutputAction(vm_port_name)])
    of.add_flow(0, 10, Match(in_port=vport.ofport), [OutputAction("ens2")])

    pmd = PmdThread(vs.dpif_netdev, host.cpu, core=0,
                    batch_size=options.batch_size)
    pmd.add_rxq(vs.dpif_netdev.ports[vs.dpif_netdev.port_no("ens1")], 0)
    pmd.add_rxq(vs.dpif_netdev.ports[vs.dpif_netdev.port_no(vm_port_name)], 0)
    host.kernel.set_irq_affinity("ens1", 0, 2)

    def pump_all() -> None:
        for _ in range(200):
            moved = host.kernel.service_nic(
                nic_in, budget=options.batch_size,
                interrupt_mode=options.interrupt_mode)
            moved += pmd.run_iteration()
            if vm.qemu is not None:
                moved += vm.qemu.pump()
            moved += fwd.pump()
            if vm.qemu is not None:
                moved += vm.qemu.pump()
            if not moved and not nic_in.pending():
                return

    return LoopBench(
        host,
        _measured_drive(host, nic_in.host_receive, pump_all, link_gbps,
                        (0,)),
        pmd_cpus=(0,),
    )


def dpdk_pvp(link_gbps: float = 25.0) -> LoopBench:
    host, nic_in, nic_out = _base_host(1, link_gbps)
    eth_in = bind_device(host.kernel.init_ns, "ens1")
    eth_out = bind_device(host.kernel.init_ns, "ens2")
    vm = VirtualMachine(host, "vm1", "10.0.0.5", vcpu_core=12)
    fwd = GuestForwarder(vm)
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    p_in = vs.add_dpdk_port("br0", eth_in)
    vs.add_dpdk_port("br0", eth_out)
    vport = vs.add_vhostuser_port("br0", vm.attach_vhostuser())
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(in_port=p_in.ofport),
                [OutputAction(f"vhost-{vm.name}")])
    of.add_flow(0, 10, Match(in_port=vport.ofport), [OutputAction("ens2")])
    pmd = PmdThread(vs.dpif_netdev, host.cpu, core=0)
    pmd.add_rxq(vs.dpif_netdev.ports[vs.dpif_netdev.port_no("ens1")], 0)
    pmd.add_rxq(
        vs.dpif_netdev.ports[vs.dpif_netdev.port_no(f"vhost-{vm.name}")], 0)

    def pump_all() -> None:
        for _ in range(200):
            moved = pmd.run_iteration()
            moved += fwd.pump()
            if not moved and not nic_in.pending():
                return

    return LoopBench(
        host,
        _measured_drive(host, nic_in.host_receive, pump_all, link_gbps,
                        (0,)),
        pmd_cpus=(0,),
    )


# ---------------------------------------------------------------------------
# PCP
# ---------------------------------------------------------------------------
def _pcp_container(host: Host, dst_ip: str) -> "tuple[Container, ContainerForwarder]":
    container = Container(host, "c1", dst_ip)
    fwd = ContainerForwarder(container, host.user_ctx(12, name="c1-fwd"))
    return container, fwd


def kernel_pcp(link_gbps: float = 25.0, dst_ip: str = "48.0.0.1") -> LoopBench:
    host, nic_in, nic_out = _base_host(1, link_gbps)
    container, _fwd = _pcp_container(host, dst_ip)
    vs = host.install_ovs("system")
    vs.add_bridge("br0")
    p_in = vs.add_system_port("br0", nic_in)
    p_veth = vs.add_system_port("br0", container.outside)
    vs.add_system_port("br0", nic_out)
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(in_port=p_in.ofport),
                [OutputAction(container.outside.name)])
    of.add_flow(0, 10, Match(in_port=p_veth.ofport), [OutputAction("ens2")])

    def pump_all() -> None:
        while nic_in.pending():
            host.kernel.service_nic(nic_in, budget=8)

    return LoopBench(
        host,
        _measured_drive(host, nic_in.host_receive, pump_all, link_gbps, ()),
    )


def afxdp_pcp(link_gbps: float = 25.0, dst_ip: str = "48.0.0.1") -> LoopBench:
    """Figure 5 path C: the XDP program redirects container traffic to the
    veth and the container's replies to the egress NIC — "it processes
    packets in-kernel ... avoiding the costly userspace-to-kernel
    overhead" (§5.2)."""
    host, nic_in, nic_out = _base_host(1, link_gbps)
    container, _fwd = _pcp_container(host, dst_ip)
    program, xsks, devs, ip_table = container_redirect_program()
    nic_in.attach_xdp(XdpContext(program))
    devs.set_dev(0, container.outside.ifindex)
    ip_table.update(container_ip_key(ip_to_int(dst_ip)),
                    (0).to_bytes(4, "little"))
    # Return direction: the veth's own XDP program sends straight to the
    # egress NIC (the reply's dst IP is not a local container).
    return_ctx = host.kernel.softirq_ctx(1)

    def veth_return(pkt: Packet, _ctx) -> None:
        return_ctx.charge(
            DEFAULT_COSTS.xdp_ctx_setup_ns + DEFAULT_COSTS.xdp_redirect_ns,
            label="veth_xdp",
        )
        nic_out.transmit(pkt, return_ctx)

    container.outside.set_rx_handler(veth_return)
    host.kernel.set_irq_affinity("ens1", 0, 0)

    def pump_all() -> None:
        while nic_in.pending():
            host.kernel.service_nic(nic_in, budget=32)

    return LoopBench(
        host,
        _measured_drive(host, nic_in.host_receive, pump_all, link_gbps, ()),
    )


def dpdk_pcp(link_gbps: float = 25.0, dst_ip: str = "48.0.0.1") -> LoopBench:
    """DPDK reaches the container through its AF_PACKET driver: syscalls
    and copies both ways (§5.2: "the costly userspace-to-kernel DPDK
    overhead")."""
    host, nic_in, nic_out = _base_host(1, link_gbps)
    container, _fwd = _pcp_container(host, dst_ip)
    eth_in = bind_device(host.kernel.init_ns, "ens1")
    eth_out = bind_device(host.kernel.init_ns, "ens2")
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    p_in = vs.add_dpdk_port("br0", eth_in)
    vs.add_dpdk_port("br0", eth_out)
    veth_port = vs.add_system_port("br0", container.outside)
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(in_port=p_in.ofport),
                [OutputAction(container.outside.name)])
    of.add_flow(0, 10, Match(in_port=veth_port.ofport),
                [OutputAction("ens2")])
    pmd = PmdThread(vs.dpif_netdev, host.cpu, core=0)
    pmd.add_rxq(vs.dpif_netdev.ports[vs.dpif_netdev.port_no("ens1")], 0)
    pmd.add_rxq(
        vs.dpif_netdev.ports[vs.dpif_netdev.port_no(container.outside.name)],
        0)

    def pump_all() -> None:
        for _ in range(200):
            moved = pmd.run_iteration()
            if not moved and not nic_in.pending():
                return

    return LoopBench(
        host,
        _measured_drive(host, nic_in.host_receive, pump_all, link_gbps,
                        (0,)),
        pmd_cpus=(0,),
    )
