"""Figure 12: multi-queue P2P scaling on 25 GbE (§5.5).

"One server ran the TRex traffic generator, the other ran OVS with DPDK
or AF_XDP packet I/O with 1, 2, 4, or 6 receive queues and an equal
number of PMD threads.  We generated streams of 64 and 1518[-byte]
packets at 25 Gbps line rate ... With 1518-byte packets, OVS AF_XDP
coped with 25 Gbps line rate using 6 queues, while in the presence of
64-byte packets the performance topped out at around 12 Mpps ... The
DPDK version consistently outperformed AF_XDP."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.reporting import format_table
from repro.experiments.p2p import afxdp_p2p, dpdk_p2p
from repro.sim.stats import line_rate_mpps
from repro.traffic.trex import FlowSpec, TrexStream

PACKETS_PER_QUEUE = 1_200
LINK_GBPS = 25.0
QUEUE_COUNTS = (1, 2, 4, 6)
FRAME_SIZES = (64, 1518)


@dataclass
class Fig12Result:
    #: (datapath, frame, queues) -> (mpps, gbps)
    series: Dict[Tuple[str, int, int], Tuple[float, float]]

    def gbps(self, datapath: str, frame: int, queues: int) -> float:
        return self.series[(datapath, frame, queues)][1]

    def mpps(self, datapath: str, frame: int, queues: int) -> float:
        return self.series[(datapath, frame, queues)][0]

    def render(self) -> str:
        rows: List[Tuple] = []
        for queues in QUEUE_COUNTS:
            row = [queues]
            for datapath in ("afxdp", "dpdk"):
                for frame in FRAME_SIZES:
                    m, g = self.series[(datapath, frame, queues)]
                    row.append(f"{g:.1f} ({m:.1f}M)")
            rows.append(tuple(row))
        return format_table(
            ["Queues", "AF_XDP 64B", "AF_XDP 1518B", "DPDK 64B",
             "DPDK 1518B"],
            rows,
            title="Figure 12: P2P throughput, Gbps (Mpps), 25 GbE",
        )


def _wire_gbps(mpps: float, frame: int) -> float:
    return mpps * (frame + 20) * 8 / 1e3


def run_cell(datapath: str, frame: int, queues: int,
             packets_per_queue: int) -> Tuple[float, float]:
    """One Figure 12 point: fresh world, fresh stream, one rate.

    The shard unit (DESIGN §17): a (datapath, frame, queues) point of
    the multi-queue scaling curve.
    """
    # The workload must have enough flows for RSS to spread work
    # across the queues (TRex varies the IPs at line-rate tests).
    flows = FlowSpec(n_flows=max(16 * queues, 16))
    n = packets_per_queue * queues
    # The §5.5 DUT is a dual-socket 12-core (24 HT) server.
    factory = afxdp_p2p if datapath == "afxdp" else dpdk_p2p
    m = factory(n_queues=queues, link_gbps=LINK_GBPS, n_cpus=24).drive(
        TrexStream(flows, frame_len=frame), n)
    return (m.mpps, _wire_gbps(m.mpps, frame))


def cell_units(packets_per_queue: int = PACKETS_PER_QUEUE) -> "List":
    """The figure as a serial-ordered list of shard units."""
    from repro.sim.shard import Unit

    units = []
    for frame in FRAME_SIZES:
        for queues in QUEUE_COUNTS:
            for datapath in ("afxdp", "dpdk"):
                units.append(Unit(
                    key=(datapath, frame, queues),
                    runner="repro.experiments.fig12_multiqueue:run_cell",
                    params=dict(datapath=datapath, frame=frame,
                                queues=queues,
                                packets_per_queue=packets_per_queue),
                    # Cell cost scales with packets (per-queue budget x
                    # queues); AF_XDP simulates slower than DPDK.
                    weight=queues * (1.5 if datapath == "afxdp" else 1.0),
                ))
    return units


def run_fig12(packets_per_queue: int = PACKETS_PER_QUEUE,
              shards: int = 1) -> Fig12Result:
    from repro.experiments.common import sharded_cells

    return Fig12Result(
        series=sharded_cells(cell_units(packets_per_queue),
                             shards=shards))


def main(argv=None) -> None:  # pragma: no cover - CLI entry
    import argparse

    parser = argparse.ArgumentParser(
        prog="fig12_multiqueue",
        description="Figure 12: multi-queue P2P scaling on 25 GbE",
    )
    parser.add_argument("--packets-per-queue", type=int,
                        default=PACKETS_PER_QUEUE)
    from repro.experiments.common import add_shards_argument

    add_shards_argument(parser)
    args = parser.parse_args(argv)
    result = run_fig12(packets_per_queue=args.packets_per_queue,
                       shards=args.shards)
    print(result.render())
    line64 = line_rate_mpps(LINK_GBPS, 64)
    print(f"\n64B line rate: {line64:.1f} Mpps; "
          f"1518B line rate: {line_rate_mpps(LINK_GBPS, 1518):.2f} Mpps")


if __name__ == "__main__":  # pragma: no cover
    main()
