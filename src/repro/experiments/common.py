"""Shared measurement harness for the evaluation experiments.

The measurement methodology mirrors the paper's:

* drive a known number of packets through a configuration,
* read per-CPU virtual busy time off the :class:`~repro.sim.cpu.CpuModel`,
* the sustained rate is ``packets / busiest-lane-time`` (the pipeline
  bottleneck), SMT-adjusted when more hyperthreads are saturated than
  physical cores exist, capped by the wire,
* CPU utilisation is busy time over the bottleneck window, in units of
  hyperthreads — exactly Table 4's columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.sim.cpu import CpuCategory, CpuModel
from repro.sim.stats import line_rate_mpps, smt_effective_lanes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hosts.host import Host
    from repro.net.packet import Packet
    from repro.traffic.trex import TrexStream

WARMUP_PACKETS = 64


def warmup_count(stream: "TrexStream") -> int:
    """Enough warmup to install every flow's caches before measuring
    (the paper measures steady state: per-flow setup is amortised over
    minutes of traffic, not over our short measured window)."""
    return max(WARMUP_PACKETS, 2 * stream.flows.n_flows)


@dataclass
class CpuSnapshot:
    per_cpu: Dict[int, Dict[CpuCategory, float]]

    @classmethod
    def take(cls, cpu: CpuModel) -> "CpuSnapshot":
        return cls(
            per_cpu={
                c: {cat: cpu.busy_ns(cpu=c, category=cat)
                    for cat in CpuCategory}
                for c in range(cpu.n_cpus)
            }
        )


@dataclass
class PipelineMeasurement:
    """The reduction of one measured run."""

    packets: int
    mpps: float
    ns_per_packet: float
    wall_ns: float
    n_busy_lanes: int
    #: Table-4-style utilisation in hyperthread units, POLL_IDLE folded
    #: into ``user``.
    cpu_util: Dict[str, float]
    capped_by_line: bool = False

    @property
    def total_cpu(self) -> float:
        return self.cpu_util.get("total", 0.0)


def reduce_run(
    cpu: CpuModel,
    before: CpuSnapshot,
    packets: int,
    link_gbps: Optional[float] = None,
    frame_len: int = 64,
    pmd_cpus: "tuple[int, ...]" = (),
    busy_threshold_ns: float = 1.0,
) -> PipelineMeasurement:
    """Reduce accounting deltas to rate + utilisation.

    ``pmd_cpus`` name the poll-mode lanes: they burn their whole wall
    window even when idle, so their utilisation is topped up with
    POLL_IDLE — the reason "CPU usage is fixed regardless of the number
    of flows across all the userspace options" (§5.2).
    """
    if packets <= 0:
        raise ValueError("measure at least one packet")
    deltas: Dict[int, Dict[CpuCategory, float]] = {}
    lane_busy: Dict[int, float] = {}
    for c in range(cpu.n_cpus):
        deltas[c] = {}
        for cat in CpuCategory:
            d = cpu.busy_ns(cpu=c, category=cat) - before.per_cpu[c][cat]
            if d:
                deltas[c][cat] = d
        lane_busy[c] = sum(deltas[c].values())
    busy_lanes = {c: b for c, b in lane_busy.items()
                  if b > busy_threshold_ns}
    if not busy_lanes:
        raise RuntimeError("no CPU time was charged; nothing was measured")
    wall = max(busy_lanes.values())
    n_lanes = len(busy_lanes)

    # Rate: bottleneck-lane limited, SMT-adjusted, line capped.
    raw_mpps = packets / wall * 1e3
    effective = smt_effective_lanes(n_lanes, cpu.n_cpus)
    if n_lanes:
        raw_mpps *= effective / n_lanes
    capped = False
    if link_gbps is not None:
        line = line_rate_mpps(link_gbps, frame_len)
        if raw_mpps > line:
            raw_mpps = line
            capped = True

    # Utilisation over the wall window.
    util: Dict[str, float] = {}
    for c, cats in deltas.items():
        for cat, ns in cats.items():
            name = "user" if cat is CpuCategory.POLL_IDLE else cat.value
            util[name] = util.get(name, 0.0) + ns / wall
    for c in pmd_cpus:
        # Poll-idle top-up: the PMD burns the rest of its window.
        idle = max(0.0, wall - lane_busy.get(c, 0.0))
        util["user"] = util.get("user", 0.0) + idle / wall
    util["total"] = sum(v for k, v in util.items() if k != "total")

    return PipelineMeasurement(
        packets=packets,
        mpps=raw_mpps,
        ns_per_packet=wall / packets,
        wall_ns=wall,
        n_busy_lanes=n_lanes,
        cpu_util={k: round(v, 2) for k, v in util.items()},
        capped_by_line=capped,
    )


def add_shards_argument(parser) -> None:
    """The shared ``--shards N`` CLI knob (DESIGN §17).

    Every experiment driver that sharded execution opted into (fig9,
    fig12, the perf matrix) exposes the same flag with the same
    contract: N worker processes, merged observables byte-identical to
    ``--shards 1``.
    """
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run experiment cells across N worker processes; merged "
             "observables are byte-identical to --shards 1 "
             "(see DESIGN §17)",
    )


def sharded_cells(units, shards: int = 1) -> "Dict":
    """Run shard units and key their results: the common reduction every
    cell-structured experiment shares (``{unit.key: value}``)."""
    from repro.sim.shard import run_units

    run = run_units(units, shards=shards)
    return {u.key: v for u, v in zip(units, run.values)}


def measured_drive(
    host: "Host",
    inject: "Callable[[Packet], None]",
    pump: Callable[[], None],
    link_gbps: float,
    pmd_cpus: "tuple[int, ...]" = (),
    chunk: int = 32,
    warmup_pump: Optional[Callable[[], None]] = None,
    prepare: "Optional[Callable[[TrexStream], None]]" = None,
) -> "Callable[[TrexStream, int], PipelineMeasurement]":
    """Build the canonical measured drive loop of every forwarding bench.

    All the P2P/PVP/PCP benches (and the matrix cells layered on them)
    share one measurement shape: optional per-stream ``prepare``, a
    warmup long enough to install every flow's caches (pumped after each
    packet with ``warmup_pump``, default ``pump``), a CPU snapshot, then
    the measured window injected in ``chunk``-sized bursts with ``pump``
    run after each burst, reduced by :func:`reduce_run`.  The knobs are
    exactly where the benches differ: the injection point, the service
    discipline, the burst size, and which CPUs are poll-mode lanes.
    """
    if chunk < 1:
        raise ValueError("chunk must be at least one packet")

    def drive(stream: "TrexStream", n_packets: int) -> PipelineMeasurement:
        if prepare is not None:
            prepare(stream)
        warm = warmup_pump or pump
        for pkt in stream.burst(warmup_count(stream)):
            inject(pkt)
            warm()
        before = CpuSnapshot.take(host.cpu)
        sent = 0
        while sent < n_packets:
            n = min(chunk, n_packets - sent)
            for pkt in stream.burst(n):
                inject(pkt)
            sent += n
            pump()
        return reduce_run(host.cpu, before, n_packets,
                          link_gbps=link_gbps, frame_len=stream.frame_len,
                          pmd_cpus=pmd_cpus)

    return drive
