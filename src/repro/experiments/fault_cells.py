"""Seeded fault-plan worlds as shard units (DESIGN §17).

The Hypothesis partition property needs a world where faults actually
fire and packets actually die at named sinks, sharded by *port*: each
unit is one port-pair sub-world (its own NIC, driver, datapath, PMD)
driven under its own unit-scoped :class:`~repro.sim.faults.FaultPlan`.
Because every count in a :class:`~repro.tools.conservation.PacketLedger`
is an integer, the merged ledger is exact under any unit->shard
partition — offered, forwarded and every per-sink tally sum to the
serial run's, byte for byte.

The plan travels on :attr:`~repro.sim.shard.Unit.plan` (constructor
kwargs, rebuilt in the worker), never through a module global: an
ambient plan's per-point RNG streams interleave across units in serial
order, which no partition can reproduce — :func:`~repro.sim.shard.
run_units` refuses that configuration outright.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.faults import FaultRule
from repro.traffic.trex import FlowSpec, TrexStream

LINK_GBPS = 10.0


def run_fault_cell(packets: int, n_flows: int) -> Dict:
    """One port-pair sub-world driven under the ambient (unit-scoped)
    fault plan; returns its conservation ledger as a plain dict."""
    from repro.experiments.common import warmup_count
    from repro.experiments.p2p import afxdp_p2p
    from repro.tools.conservation import afxdp_packet_ledger

    bench = afxdp_p2p(n_queues=1, link_gbps=LINK_GBPS)
    stream = TrexStream(FlowSpec(n_flows=n_flows), frame_len=64)
    bench.drive(stream, packets)
    offered = warmup_count(stream) + packets
    dpif = bench.host.vswitchd.dpif_netdev
    driver_in = dpif.ports[dpif.port_no("ens1")].adapter.driver
    driver_out = dpif.ports[dpif.port_no("ens2")].adapter.driver
    ledger = afxdp_packet_ledger(offered, bench.nic_in, driver_in,
                                 driver_out, dpif)
    return {
        "offered": ledger.offered,
        "forwarded": ledger.forwarded,
        "sinks": dict(ledger.sinks),
    }


def fault_units(n_ports: int, seed: int, packets: int = 240,
                tx_kick_rate: float = 0.1) -> List:
    """One shard unit per port-pair, each with its own seeded plan.

    Port ``i`` gets plan seed ``seed + i`` — the per-port streams are a
    pure function of the port, not of which shard runs it.
    """
    from repro.sim.shard import Unit

    units = []
    for i in range(n_ports):
        units.append(Unit(
            key=f"port{i}",
            runner="repro.experiments.fault_cells:run_fault_cell",
            params=dict(packets=packets, n_flows=2 + (i % 3)),
            plan=dict(
                seed=seed + i,
                rules=(
                    FaultRule("afxdp.tx_kick_eagain", rate=tx_kick_rate),
                    FaultRule("afxdp.fill_ring_overrun", rate=0.02),
                    FaultRule("dp.upcall_overload", nth=7),
                ),
                emc_insert_inv_prob=2,
            ),
            weight=1.0 + (i % 3),
        ))
    return units


def merged_fault_ledger(n_ports: int, seed: int, shards: int = 1,
                        placement=None, packets: int = 240) -> Dict:
    """Run the port set (optionally partitioned) and merge the ledgers
    in fixed unit order; the property suite compares these dicts."""
    from repro.sim.shard import run_units

    units = fault_units(n_ports, seed, packets=packets)
    run = run_units(units, shards=shards, placement=placement)
    offered = forwarded = 0
    sinks: Dict[str, int] = {}
    for cell in run.values:
        offered += cell["offered"]
        forwarded += cell["forwarded"]
        for name, n in cell["sinks"].items():
            sinks[name] = sinks.get(name, 0) + n
    return {"offered": offered, "forwarded": forwarded,
            "sinks": dict(sorted(sinks.items()))}


def main(argv=None) -> None:  # pragma: no cover - CLI entry
    """CI entry: the merged ledger as canonical JSON, so two runs (or
    two worker counts) can be byte-diffed by ``diff``."""
    import argparse
    import json

    from repro.experiments.common import add_shards_argument

    parser = argparse.ArgumentParser(
        prog="fault_cells",
        description="Seeded fault-plan port set; merged conservation "
                    "ledger (DESIGN §17)",
    )
    parser.add_argument("--ports", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--packets", type=int, default=240)
    parser.add_argument("--json", action="store_true",
                        help="emit the merged ledger as sorted JSON")
    add_shards_argument(parser)
    args = parser.parse_args(argv)
    ledger = merged_fault_ledger(args.ports, args.seed,
                                 shards=args.shards,
                                 packets=args.packets)
    if args.json:
        print(json.dumps(ledger, indent=2, sort_keys=True))
    else:
        dropped = ledger["offered"] - ledger["forwarded"]
        print(f"{args.ports} ports, seed {args.seed}: "
              f"offered {ledger['offered']} forwarded "
              f"{ledger['forwarded']} dropped {dropped}")
        for name, n in ledger["sinks"].items():
            print(f"  {name}: {n}")


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
