"""Figure 2: single-core, single-flow 64-byte forwarding by datapath.

"Figure 2 compares the performance of OVS in practice across three
datapaths: the OVS kernel module, an eBPF implementation, and DPDK.  The
test case is a single flow of 64-byte UDP packets ... the sandbox
overhead makes eBPF packet switching 10–20 % slower than with the
conventional OVS kernel module."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.reporting import bar_chart
from repro.experiments.p2p import dpdk_p2p, ebpf_p2p, kernel_p2p
from repro.traffic.trex import FlowSpec, TrexStream

PACKETS = 2_000
LINK_GBPS = 10.0


@dataclass
class Fig2Result:
    mpps: Dict[str, float]

    @property
    def ebpf_slowdown_pct(self) -> float:
        return 100.0 * (1 - self.mpps["ebpf"] / self.mpps["kernel"])

    def render(self) -> str:
        return bar_chart(
            list(self.mpps),
            list(self.mpps.values()),
            unit="Mpps",
            title="Figure 2: 64B single-flow forwarding, one core",
        )


def run_fig2(packets: int = PACKETS) -> Fig2Result:
    stream = lambda: TrexStream(FlowSpec(n_flows=1), frame_len=64)  # noqa: E731
    results = {}
    results["kernel"] = kernel_p2p(
        n_queues=1, link_gbps=LINK_GBPS
    ).drive(stream(), packets).mpps
    results["dpdk"] = dpdk_p2p(
        n_queues=1, link_gbps=LINK_GBPS
    ).drive(stream(), packets).mpps
    results["ebpf"] = ebpf_p2p(
        link_gbps=LINK_GBPS
    ).drive(stream(), packets).mpps
    return Fig2Result(mpps=results)


def main() -> None:  # pragma: no cover - CLI entry
    result = run_fig2()
    print(result.render())
    print(f"\neBPF is {result.ebpf_slowdown_pct:.0f}% slower than the "
          f"kernel module (paper: 10-20%)")


if __name__ == "__main__":  # pragma: no cover
    main()
