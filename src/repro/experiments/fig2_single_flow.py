"""Figure 2: single-core, single-flow 64-byte forwarding by datapath.

"Figure 2 compares the performance of OVS in practice across three
datapaths: the OVS kernel module, an eBPF implementation, and DPDK.  The
test case is a single flow of 64-byte UDP packets ... the sandbox
overhead makes eBPF packet switching 10–20 % slower than with the
conventional OVS kernel module."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.reporting import bar_chart
from repro.experiments.p2p import dpdk_p2p, ebpf_p2p, kernel_p2p
from repro.traffic.trex import FlowSpec, TrexStream

PACKETS = 2_000
LINK_GBPS = 10.0


@dataclass
class Fig2Result:
    mpps: Dict[str, float]

    @property
    def ebpf_slowdown_pct(self) -> float:
        return 100.0 * (1 - self.mpps["ebpf"] / self.mpps["kernel"])

    def render(self) -> str:
        return bar_chart(
            list(self.mpps),
            list(self.mpps.values()),
            unit="Mpps",
            title="Figure 2: 64B single-flow forwarding, one core",
        )


#: Serial cell order; each cell is one shard unit (DESIGN §17).
DATAPATHS = ("kernel", "dpdk", "ebpf")


def run_cell(datapath: str, packets: int) -> float:
    """One Figure 2 bar: fresh world, fresh stream, one rate."""
    stream = TrexStream(FlowSpec(n_flows=1), frame_len=64)
    if datapath == "kernel":
        bench = kernel_p2p(n_queues=1, link_gbps=LINK_GBPS)
    elif datapath == "dpdk":
        bench = dpdk_p2p(n_queues=1, link_gbps=LINK_GBPS)
    elif datapath == "ebpf":
        bench = ebpf_p2p(link_gbps=LINK_GBPS)
    else:
        raise ValueError(f"unknown datapath {datapath!r}")
    return bench.drive(stream, packets).mpps


def run_fig2(packets: int = PACKETS, shards: int = 1) -> Fig2Result:
    from repro.experiments.common import sharded_cells
    from repro.sim.shard import Unit

    units = [
        Unit(key=dp, runner="repro.experiments.fig2_single_flow:run_cell",
             params=dict(datapath=dp, packets=packets),
             weight={"kernel": 2.0, "dpdk": 1.0, "ebpf": 1.5}[dp])
        for dp in DATAPATHS
    ]
    return Fig2Result(mpps=sharded_cells(units, shards=shards))


def main() -> None:  # pragma: no cover - CLI entry
    result = run_fig2()
    print(result.render())
    print(f"\neBPF is {result.ebpf_slowdown_pct:.0f}% slower than the "
          f"kernel module (paper: 10-20%)")


if __name__ == "__main__":  # pragma: no cover
    main()
