"""Physical-to-physical forwarding benches (the §5.2/§5.5 workhorse).

Builds a host forwarding between two physical ports under one of the
paper's datapath configurations and measures the sustained rate + CPU:

* ``kernel_p2p``  — the OVS kernel module, interrupt-driven NAPI + RSS;
* ``afxdp_p2p``   — the userspace datapath fed by AF_XDP (with all the
  O1–O5 knobs exposed);
* ``dpdk_p2p``    — the userspace datapath on DPDK ethdevs;
* ``ebpf_p2p``    — the tc eBPF datapath of §2.2.2 (Figure 2's third bar).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.afxdp.driver import AfxdpOptions
from repro.dpdk.ethdev import bind_device
from repro.ebpf.programs import l2_forward_program, l2_key
from repro.hosts.host import Host
from repro.kernel.netdev import NetDevice, Wire
from repro.kernel.nic import NicFeatures, PhysicalNic
from repro.kernel.tc import TcIngressHook
from repro.net.addresses import MacAddress
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.pmd import PmdThread
from repro.sim.cpu import ExecContext
from repro.traffic.trex import TrexStream
from repro.experiments.common import (
    PipelineMeasurement,
    measured_drive,
    warmup_count,  # noqa: F401  (re-exported; historic home of the helper)
)


@dataclass
class P2PBench:
    host: Host
    nic_in: PhysicalNic
    nic_out: PhysicalNic
    link_gbps: float
    drive: Callable[[TrexStream, int], PipelineMeasurement]


def _base_host(n_queues: int, link_gbps: float,
               features: Optional[NicFeatures] = None,
               n_cpus: int = 16) -> "tuple[Host, PhysicalNic, PhysicalNic]":
    host = Host("dut", n_cpus=n_cpus)
    nic_in = host.add_nic("ens1", n_queues=n_queues, features=features)
    nic_out = host.add_nic("ens2", n_queues=n_queues, features=features)
    sink_in = NetDevice("trex-tx", MacAddress.local(0xF0001))
    sink_out = NetDevice("trex-rx", MacAddress.local(0xF0002))
    for sink in (sink_in, sink_out):
        sink.set_up()
        sink.set_rx_handler(lambda pkt, ctx: None)
    Wire(nic_in, sink_in, gbps=link_gbps)
    Wire(nic_out, sink_out, gbps=link_gbps)
    # One IRQ lane per queue, spread from CPU 0 upward.
    for q in range(n_queues):
        host.kernel.set_irq_affinity("ens1", q, q % host.cpu.n_cpus)
    return host, nic_in, nic_out


def kernel_p2p(
    n_queues: int = 10,
    link_gbps: float = 25.0,
    napi_budget: int = 8,
) -> P2PBench:
    """The in-kernel datapath with RSS across ``n_queues`` IRQ lanes.

    ``napi_budget`` is deliberately small: at the lossless operating
    point the kernel takes an interrupt per few packets — it has no
    busy polling or batched buffer management (§5.2's explanation of the
    kernel's CPU numbers).
    """
    host, nic_in, nic_out = _base_host(n_queues, link_gbps)
    vs = host.install_ovs("system")
    vs.add_bridge("br0")
    p_in = vs.add_system_port("br0", nic_in)
    vs.add_system_port("br0", nic_out)
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(in_port=p_in.ofport), [OutputAction("ens2")])

    def pump_warmup() -> None:
        while nic_in.pending():
            host.kernel.service_nic(nic_in, budget=napi_budget)

    def pump() -> None:
        while nic_in.pending():
            host.kernel.service_nic(nic_in, budget=napi_budget,
                                    interrupt_mode=True)

    drive = measured_drive(host, nic_in.host_receive, pump, link_gbps,
                           chunk=64, warmup_pump=pump_warmup)
    return P2PBench(host, nic_in, nic_out, link_gbps, drive)


def ebpf_p2p(link_gbps: float = 10.0) -> P2PBench:
    """§2.2.2's eBPF datapath: the same forwarding logic as the kernel
    module, interpreted at the tc hook."""
    host, nic_in, nic_out = _base_host(1, link_gbps)
    program, fib = l2_forward_program()
    TcIngressHook(nic_in, program, host.kernel.init_ns)

    def prepare(stream: TrexStream) -> None:
        fib.update(
            l2_key(stream.next_packet().data[0:6]),
            nic_out.ifindex.to_bytes(4, "little"),
        )

    def pump() -> None:
        while nic_in.pending():
            host.kernel.service_nic(nic_in, budget=8)

    drive = measured_drive(host, nic_in.host_receive, pump, link_gbps,
                           chunk=64, prepare=prepare)
    return P2PBench(host, nic_in, nic_out, link_gbps, drive)


def afxdp_p2p(
    options: Optional[AfxdpOptions] = None,
    n_queues: int = 1,
    link_gbps: float = 25.0,
    pmd_main_thread_mode: bool = False,
    features: Optional[NicFeatures] = None,
    n_cpus: int = 16,
) -> P2PBench:
    """OVS with AF_XDP: XDP redirect in softirq, PMD threads in userspace."""
    options = options or AfxdpOptions()
    host, nic_in, nic_out = _base_host(n_queues, link_gbps,
                                       features=features, n_cpus=n_cpus)
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    p_in = vs.add_afxdp_port("br0", nic_in, options)
    vs.add_afxdp_port("br0", nic_out, options)
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(in_port=p_in.ofport), [OutputAction("ens2")])

    # One PMD per queue; softirq lanes sit on the upper CPUs so PMD and
    # kernel work never collide on a hyperthread pair in small setups.
    pmds: List[PmdThread] = []
    dp_port = vs.dpif_netdev.ports[vs.dpif_netdev.port_no("ens1")]
    for q in range(n_queues):
        pmd = PmdThread(vs.dpif_netdev, host.cpu, core=q,
                        main_thread_mode=pmd_main_thread_mode,
                        batch_size=options.batch_size)
        pmd.add_rxq(dp_port, q)
        pmds.append(pmd)
        host.kernel.set_irq_affinity("ens1", q,
                                     (n_queues + q) % host.cpu.n_cpus)
    interrupt_service = options.interrupt_mode

    def pump_all() -> None:
        while nic_in.pending():
            host.kernel.service_nic(nic_in, budget=options.batch_size,
                                    interrupt_mode=interrupt_service)
            for pmd in pmds:
                pmd.run_iteration()
        for pmd in pmds:
            pmd.run_until_idle()

    drive = measured_drive(host, nic_in.host_receive, pump_all, link_gbps,
                           pmd_cpus=tuple(range(n_queues)),
                           chunk=options.batch_size)
    return P2PBench(host, nic_in, nic_out, link_gbps, drive)


def dpdk_p2p(
    n_queues: int = 1,
    link_gbps: float = 25.0,
    n_cpus: int = 16,
) -> P2PBench:
    """OVS with DPDK: everything in userspace, no kernel involvement."""
    host, nic_in, nic_out = _base_host(n_queues, link_gbps, n_cpus=n_cpus)
    eth_in = bind_device(host.kernel.init_ns, "ens1")
    eth_out = bind_device(host.kernel.init_ns, "ens2")
    vs = host.install_ovs("netdev")
    vs.add_bridge("br0")
    p_in = vs.add_dpdk_port("br0", eth_in)
    vs.add_dpdk_port("br0", eth_out)
    of = OpenFlowConnection(vs.bridge("br0"))
    of.add_flow(0, 10, Match(in_port=p_in.ofport), [OutputAction("ens2")])

    pmds: List[PmdThread] = []
    dp_port = vs.dpif_netdev.ports[vs.dpif_netdev.port_no("ens1")]
    for q in range(n_queues):
        pmd = PmdThread(vs.dpif_netdev, host.cpu, core=q)
        pmd.add_rxq(dp_port, q)
        pmds.append(pmd)

    def pump_all() -> None:
        for pmd in pmds:
            pmd.run_until_idle()

    drive = measured_drive(host, nic_in.host_receive, pump_all, link_gbps,
                           pmd_cpus=tuple(range(n_queues)), chunk=32)
    return P2PBench(host, nic_in, nic_out, link_gbps, drive)
