"""The observer effect: what flow telemetry costs the datapath.

Sweeps the sFlow sampling rate — off, 1/1024, 1/64, 1/8, 1/1 — over the
kernel and AF_XDP zero-copy datapaths and reports the throughput
degradation curve.  Monitoring is not free: every packet pays the
sampling rate test at each instrumented dispatch point, and every taken
sample pays the header scrape + record encode.  The sweep quantifies
that, on the same worlds Figure 9 measures.

IPFIX export stays *on* in every cell (with timeouts longer than the
run, so the cache flushes exactly once at the end): each cell therefore
also proves the reconciliation invariant — the collector's totals match
the packet-conservation ledger leg for leg — while the curve isolates
the pure sampling cost, because the IPFIX charge is identical across
rates.

Sampling streams are seeded (:mod:`repro.sim.rng`), and a sample is
taken iff the point's uniform draw falls below ``1/rate`` — so the
samples at a low rate are a subset of the samples at any higher rate
under the same seed, and the measured cost is monotone by construction.
Runs are deterministic per seed (the CI telemetry job runs each seed
twice and diffs the JSON)::

    python -m repro observer-effect
    python -m repro.experiments.observer_effect --json --seed 7
    python -m repro.experiments.observer_effect --pcap /tmp/oe
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.experiments.common import warmup_count
from repro.experiments.p2p import P2PBench, afxdp_p2p, kernel_p2p
from repro.sim import trace
from repro.telemetry import IpfixConfig, SflowConfig, Telemetry
from repro.telemetry.drops import DropReason
from repro.tools.conservation import (
    PacketLedger,
    afxdp_packet_ledger,
)
from repro.tools.pcap import write_pcap
from repro.traffic.trex import FlowSpec, TrexStream

#: Sampling rates swept, as 1/N (0 = sampling off).
RATES: Tuple[int, ...] = (0, 1024, 64, 8, 1)
DATAPATHS: Tuple[str, ...] = ("kernel", "afxdp_zc")
PACKETS = 600
N_FLOWS = 64
LINK_GBPS = 25.0
#: Longer than any cell's virtual run: no flow expires mid-measurement,
#: and the uncharged ``flush_all`` after the window exports each flow
#: exactly once.
IPFIX_TIMEOUT_NS = 10 ** 12


@dataclass
class ObserverPoint:
    """One (datapath, sampling rate) cell of the observer-effect sweep."""

    datapath: str
    rate: int  # 0 = sampling off
    offered: int
    forwarded: int
    mpps: float
    ns_per_packet: float
    observed: int
    sampled: int
    flow_records: int
    drop_records: int
    reconciled: bool
    conserved: bool

    @property
    def rate_label(self) -> str:
        return "off" if self.rate == 0 else f"1/{self.rate}"

    def to_json(self) -> Dict:
        return {
            "datapath": self.datapath,
            "rate": self.rate,
            "offered": self.offered,
            "forwarded": self.forwarded,
            "mpps": round(self.mpps, 6),
            "ns_per_packet": round(self.ns_per_packet, 3),
            "observed": self.observed,
            "sampled": self.sampled,
            "flow_records": self.flow_records,
            "drop_records": self.drop_records,
            "reconciled": self.reconciled,
            "conserved": self.conserved,
        }


def _build(datapath: str) -> Tuple[P2PBench, Tuple[str, ...], str]:
    """A fresh world plus its sampling points and IPFIX hook point."""
    if datapath == "kernel":
        return kernel_p2p(n_queues=1, link_gbps=LINK_GBPS), \
            ("kernel",), "kernel"
    if datapath == "afxdp_zc":
        return afxdp_p2p(n_queues=1, link_gbps=LINK_GBPS), \
            ("xdp", "dpif"), "dpif"
    raise ValueError(f"unknown datapath {datapath!r}")


def _ledger(datapath: str, bench: P2PBench, offered: int) -> PacketLedger:
    if datapath == "kernel":
        sinks: Dict[str, int] = {}
        if bench.nic_in.rx_missed:
            sinks[DropReason.NIC_RX_MISSED.value] = bench.nic_in.rx_missed
        return PacketLedger(offered=offered,
                            forwarded=bench.nic_out.stats.tx_packets,
                            sinks=sinks)
    dpif = bench.host.vswitchd.dpif_netdev
    driver_in = dpif.ports[dpif.port_no("ens1")].adapter.driver
    driver_out = dpif.ports[dpif.port_no("ens2")].adapter.driver
    return afxdp_packet_ledger(offered, bench.nic_in,
                               driver_in, driver_out, dpif)


def _run_cell(
    datapath: str,
    rate: int,
    packets: int,
    n_flows: int,
    seed: int,
    pcap_prefix: Optional[str] = None,
) -> ObserverPoint:
    """One fresh world driven under one sampling rate."""
    # Each cell keeps its own isolated ledger; shelve any outer recorder
    # (``python -m repro --trace observer-effect``) for the duration.
    outer = trace.ACTIVE
    if outer is not None:
        trace.detach()
    try:
        return _run_cell_traced(datapath, rate, packets, n_flows, seed,
                                pcap_prefix)
    finally:
        if outer is not None:
            trace.attach(outer)


def _run_cell_traced(
    datapath: str,
    rate: int,
    packets: int,
    n_flows: int,
    seed: int,
    pcap_prefix: Optional[str],
) -> ObserverPoint:
    with trace.recording():
        bench, points, ipfix_point = _build(datapath)
        stream = TrexStream(FlowSpec(n_flows=n_flows))
        sflow = (SflowConfig(rate=rate, points=points, seed=seed)
                 if rate else None)
        session = Telemetry(
            sflow=sflow,
            ipfix=IpfixConfig(point=ipfix_point,
                              active_timeout_ns=IPFIX_TIMEOUT_NS,
                              idle_timeout_ns=IPFIX_TIMEOUT_NS),
            now_ns_fn=lambda: bench.host.clock.now,
        )
        # Installed before the drive so the warmup is observed too: the
        # ledger's ``offered`` includes warmup frames, and reconciliation
        # must account for every one of them.
        with telemetry.monitoring(session):
            measurement = bench.drive(stream, packets)
            # End-of-run export, after the measured window (uncharged).
            session.flush_all()
            offered = warmup_count(stream) + packets
            ledger = _ledger(datapath, bench, offered)
            problems = session.reconcile(ledger)
    if problems:
        raise AssertionError(
            f"telemetry reconciliation failed for {datapath} "
            f"rate={rate}: {problems}")
    sampler = session.sflow
    if pcap_prefix is not None and sampler is not None and sampler.samples:
        write_pcap(
            f"{pcap_prefix}-{datapath}-{rate}.pcap",
            [s.header for s in sampler.samples],
            timestamps_us=[s.ts_ns // 1000 for s in sampler.samples],
        )
    collector = session.collector
    return ObserverPoint(
        datapath=datapath,
        rate=rate,
        offered=offered,
        forwarded=ledger.forwarded,
        mpps=measurement.mpps,
        ns_per_packet=measurement.ns_per_packet,
        observed=sampler.total_observed if sampler is not None else 0,
        sampled=sampler.total_sampled if sampler is not None else 0,
        flow_records=collector.flow_records,
        drop_records=collector.drop_records,
        reconciled=not problems,
        conserved=ledger.conserved(),
    )


def run_observer_effect(
    packets: int = PACKETS,
    n_flows: int = N_FLOWS,
    rates: Sequence[int] = RATES,
    datapaths: Sequence[str] = DATAPATHS,
    seed: int = 0,
    pcap_prefix: Optional[str] = None,
) -> List[ObserverPoint]:
    """Sweep sampling rate x datapath; assert conservation,
    reconciliation, and the monotone cost contract at every point."""
    results: List[ObserverPoint] = []
    for datapath in datapaths:
        curve: List[ObserverPoint] = []
        for rate in rates:
            point = _run_cell(datapath, rate, packets, n_flows, seed,
                              pcap_prefix)
            if not point.conserved:
                raise AssertionError(
                    f"packet conservation violated at {datapath} "
                    f"rate={rate}: {point.to_json()}")
            curve.append(point)
        # Coupled sampling makes the cost monotone by construction;
        # a violation means a hook charges inconsistently.
        for prev, cur in zip(curve, curve[1:]):
            if not (cur.ns_per_packet > prev.ns_per_packet
                    and cur.mpps <= prev.mpps):
                raise AssertionError(
                    f"observer cost not monotone on {datapath}: "
                    f"{prev.rate_label} -> {cur.rate_label} "
                    f"({prev.ns_per_packet} -> {cur.ns_per_packet} "
                    f"ns/pkt)")
        results.extend(curve)
    return results


def render(points: Sequence[ObserverPoint]) -> str:
    lines = [
        f"{'datapath':>9}  {'rate':>6}  {'mpps':>8}  {'ns/pkt':>8}  "
        f"{'overhead':>8}  {'sampled':>7}  {'flows':>5}",
    ]
    base: Dict[str, float] = {}
    for p in points:
        if p.rate == 0:
            base[p.datapath] = p.ns_per_packet
        over = p.ns_per_packet - base.get(p.datapath, p.ns_per_packet)
        lines.append(
            f"{p.datapath:>9}  {p.rate_label:>6}  {p.mpps:>8.3f}  "
            f"{p.ns_per_packet:>8.1f}  {over:>+8.1f}  {p.sampled:>7}  "
            f"{p.flow_records:>5}"
        )
    return "\n".join(lines)


def main(argv: "List[str] | None" = None) -> None:
    argv = list(sys.argv[1:] if argv is None else argv)
    as_json = "--json" in argv
    seed = 0
    packets = PACKETS
    pcap_prefix = None
    if "--seed" in argv:
        seed = int(argv[argv.index("--seed") + 1])
    if "--packets" in argv:
        packets = int(argv[argv.index("--packets") + 1])
    if "--pcap" in argv:
        pcap_prefix = argv[argv.index("--pcap") + 1]
    points = run_observer_effect(packets=packets, seed=seed,
                                 pcap_prefix=pcap_prefix)
    if as_json:
        print(json.dumps({
            "seed": seed,
            "packets": packets,
            "points": [p.to_json() for p in points],
        }, indent=2, sort_keys=True))
    else:
        print(f"observer effect (seed={seed}, {packets} packets, "
              f"{N_FLOWS} flows):")
        print(render(points))
        if pcap_prefix is not None:
            print(f"sampled headers written to {pcap_prefix}-*.pcap")


if __name__ == "__main__":
    main()
