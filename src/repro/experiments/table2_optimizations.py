"""Table 2: the AF_XDP optimization ladder (§3.2).

============================  =========
Optimizations                 Rate
============================  =========
none                          0.8 Mpps
O1                            4.8
O1+O2                         6.0
O1+O2+O3                      6.3
O1+O2+O3+O4                   6.6
O1+O2+O3+O4+O5                7.1 (estimated)
============================  =========

O1 dedicated PMD thread per queue; O2 spinlock instead of mutex;
O3 spinlock batching; O4 metadata pre-allocation; O5 checksum offload
(estimated by stamping a fixed value, as the paper did).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.afxdp.driver import AfxdpOptions
from repro.afxdp.umempool import LockStrategy
from repro.analysis.reporting import format_table
from repro.experiments.p2p import afxdp_p2p
from repro.traffic.trex import FlowSpec, TrexStream

PACKETS = 2_000
LINK_GBPS = 10.0

#: The ladder, in the paper's order: (label, options, main-thread-mode).
LADDER: List[Tuple[str, AfxdpOptions, bool]] = [
    (
        "none",
        AfxdpOptions(lock_strategy=LockStrategy.MUTEX, batched_locking=False,
                     preallocated_metadata=False, batch_size=8),
        True,
    ),
    (
        "O1",
        AfxdpOptions(lock_strategy=LockStrategy.MUTEX, batched_locking=False,
                     preallocated_metadata=False),
        False,
    ),
    (
        "O1+O2",
        AfxdpOptions(batched_locking=False, preallocated_metadata=False),
        False,
    ),
    (
        "O1+O2+O3",
        AfxdpOptions(preallocated_metadata=False),
        False,
    ),
    (
        "O1+O2+O3+O4",
        AfxdpOptions(),
        False,
    ),
    (
        "O1+O2+O3+O4+O5",
        AfxdpOptions(sw_checksum_on_tx=False),
        False,
    ),
]

PAPER_MPPS = {
    "none": 0.8,
    "O1": 4.8,
    "O1+O2": 6.0,
    "O1+O2+O3": 6.3,
    "O1+O2+O3+O4": 6.6,
    "O1+O2+O3+O4+O5": 7.1,
}


@dataclass
class Table2Result:
    mpps: Dict[str, float]

    def speedup(self, a: str, b: str) -> float:
        return self.mpps[b] / self.mpps[a]

    def render(self) -> str:
        rows = [
            (label, f"{self.mpps[label]:.1f}", PAPER_MPPS[label])
            for label, _opts, _main in LADDER
        ]
        return format_table(
            ["Optimizations", "Rate (Mpps)", "Paper (Mpps)"],
            rows,
            title="Table 2: single-flow 64B rates, physical NIC <-> OVS userspace",
        )


def run_cell(label: str, packets: int) -> float:
    """One ladder rung: fresh world, fresh stream, one rate.

    The shard unit (DESIGN §17); ``label`` indexes :data:`LADDER` so the
    cell's options never cross a process boundary.
    """
    options, main_mode = next(
        (opts, mode) for lbl, opts, mode in LADDER if lbl == label)
    bench = afxdp_p2p(options=options, link_gbps=LINK_GBPS,
                      pmd_main_thread_mode=main_mode)
    measurement = bench.drive(TrexStream(FlowSpec(1), frame_len=64),
                              packets)
    return measurement.mpps


def run_table2(packets: int = PACKETS, shards: int = 1) -> Table2Result:
    from repro.experiments.common import sharded_cells
    from repro.sim.shard import Unit

    units = [
        Unit(key=label,
             runner="repro.experiments.table2_optimizations:run_cell",
             params=dict(label=label, packets=packets),
             # The un-batched rungs simulate slower (more per-packet
             # bookkeeping) — weight them heavier for LPT placement.
             weight=3.0 if label in ("none", "O1") else 1.5)
        for label, _opts, _main in LADDER
    ]
    return Table2Result(mpps=sharded_cells(units, shards=shards))


def main() -> None:  # pragma: no cover - CLI entry
    result = run_table2()
    print(result.render())
    print(f"\nO1 speedup: {result.speedup('none', 'O1'):.1f}x "
          f"(paper: 6x)")


if __name__ == "__main__":  # pragma: no cover
    main()
