"""One module per table/figure of the paper's evaluation.

Every experiment exposes a ``run_*`` function returning a result object
with the same rows/series the paper reports, plus ``main()`` for running
from the command line (``python -m repro.experiments.fig9_forwarding``).
The benchmarks package wraps these for pytest-benchmark.
"""
