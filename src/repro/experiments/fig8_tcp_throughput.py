"""Figure 8: TCP throughput through the NSX pipeline (§5.1).

Three panels, each iperf-style single-flow bulk TCP through a
production-shaped pipeline (conntrack + recirculation, Geneve for the
cross-host panel), exactly the §5.1 methodology:

(a) VM -> VM across hosts over Geneve on a 10 GbE link
    kernel+tap 2.2 | AF_XDP+tap interrupt 1.9 | +polling ~3 |
    AF_XDP+vhost 4.4 | +checksum 6.5   (Gbps)
(b) VM -> VM within one host
    kernel+tap ~12 | AF_XDP+tap (low) | vhost 3.8 | +csum 8.4 | +TSO 29
(c) container -> container within one host
    kernel veth 5.9 | kernel veth +offloads 49 | XDP redirect 5.7 |
    AF_XDP userspace 4.1 / 5.0 / 8.0

TSO is unavailable across the Geneve tunnel on this NIC generation, so
panel (a) runs per-MSS segments; panel (b)'s TSO bar moves 64 kB
super-segments end-to-end without any segmentation — the paper's
"vhostuser packets do not traverse the userspace QEMU process".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.afxdp.driver import AfxdpOptions
from repro.analysis.reporting import format_table
from repro.hosts.container import Container
from repro.hosts.host import Host
from repro.hosts.testbed import Testbed
from repro.hosts.vm import VirtualMachine
from repro.kernel.conntrack import CT_ESTABLISHED, CT_NEW
from repro.net.addresses import ip_to_int
from repro.net.ipv4 import IPProto
from repro.net.tunnel import GENEVE_PORT
from repro.ovs.match import Match
from repro.ovs.ofactions import CtAction, OutputAction, PopTunnel
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.pmd import PmdThread
from repro.ovs.vswitchd import VSwitchd
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, ExecContext
from repro.traffic.iperf import IperfResult, measure_throughput

TOTAL_BYTES = 400_000
CHUNK = 32 * 1448
LINK_GBPS = 10.0

PAPER_GBPS = {
    ("a", "kernel+tap"): 2.2,
    ("a", "afxdp+tap interrupt"): 1.9,
    ("a", "afxdp+tap polling"): 3.0,
    ("a", "afxdp+vhost"): 4.4,
    ("a", "afxdp+vhost+csum"): 6.5,
    ("b", "kernel+tap"): 12.0,
    ("b", "afxdp+tap"): 2.5,
    ("b", "afxdp+vhost"): 3.8,
    ("b", "afxdp+vhost+csum"): 8.4,
    ("b", "afxdp+vhost+csum+tso"): 29.0,
    ("c", "kernel veth"): 5.9,
    ("c", "kernel veth offload"): 49.0,
    ("c", "xdp redirect"): 5.7,
    ("c", "afxdp user"): 4.1,
    ("c", "afxdp user+csum"): 5.0,
    ("c", "afxdp user+csum+tso"): 8.0,
}


@dataclass
class Fig8Result:
    gbps: Dict["tuple[str, str]", float]

    def render(self, panel: str) -> str:
        rows = [
            (config, f"{v:.1f}", PAPER_GBPS[(p, config)])
            for (p, config), v in self.gbps.items()
            if p == panel
        ]
        titles = {
            "a": "Figure 8a: VM-to-VM cross-host over Geneve (Gbps)",
            "b": "Figure 8b: VM-to-VM within a host (Gbps)",
            "c": "Figure 8c: container-to-container within a host (Gbps)",
        }
        return format_table(["Configuration", "Gbps", "Paper"], rows,
                            title=titles[panel])

    def render_all(self) -> str:
        return "\n\n".join(self.render(p) for p in ("a", "b", "c"))


# ---------------------------------------------------------------------------
# Pipeline helpers.
# ---------------------------------------------------------------------------
def install_overlay_pipeline(
    vs: VSwitchd,
    bridge: str,
    vif_port: str,
    zone: int,
    uplink_port: Optional[str] = None,
    tunnel_port: Optional[str] = None,
    peer_vif_port: Optional[str] = None,
) -> None:
    """The §5.1 three-lookup shape: classify, conntrack, forward.

    Cross-host: vif -> ct -> tunnel out, and tunnel in -> ct -> vif.
    Intra-host: vif -> ct -> peer vif.
    """
    of = OpenFlowConnection(vs.bridge(bridge))
    br = vs.bridge(bridge)
    vif = br.port(vif_port)
    of.add_flow(0, 100, Match(in_port=vif.ofport),
                [CtAction(zone=zone, commit=True, table=1)])
    allow_new = Match(ct_state=(CT_NEW, CT_NEW))
    allow_est = Match(ct_state=(CT_ESTABLISHED, CT_ESTABLISHED))
    egress_target = tunnel_port or peer_vif_port
    if egress_target is None:
        raise ValueError("need a tunnel or a peer vif")
    of.add_flow(1, 100, allow_new, [OutputAction(egress_target)])
    of.add_flow(1, 100, allow_est, [OutputAction(egress_target)])
    if uplink_port and tunnel_port:
        uplink = br.port(uplink_port)
        tun = br.port(tunnel_port)
        of.add_flow(0, 90,
                    Match(in_port=uplink.ofport, eth_type=0x0800,
                          nw_proto=IPProto.UDP, tp_dst=GENEVE_PORT),
                    [PopTunnel(tunnel_port)])
        of.add_flow(0, 80, Match(in_port=tun.ofport),
                    [CtAction(zone=zone, commit=True, table=2)])
        of.add_flow(2, 100, allow_new, [OutputAction(vif_port)])
        of.add_flow(2, 100, allow_est, [OutputAction(vif_port)])


def _prime_guest_neighbors(vm_a: VirtualMachine, vm_b: VirtualMachine) -> None:
    vm_a.kernel.init_ns.neighbors.update(
        ip_to_int(vm_b.ip), vm_b.nic.mac, vm_a.nic.ifindex, permanent=True)
    vm_b.kernel.init_ns.neighbors.update(
        ip_to_int(vm_a.ip), vm_a.nic.mac, vm_b.nic.ifindex, permanent=True)


def _iperf(
    cpus,
    client_stack,
    client_conn,
    server_sock,
    pump: Callable[[], None],
    client_ctx: ExecContext,
    tso: bool,
    total_bytes: int = TOTAL_BYTES,
    link_gbps: Optional[float] = None,
) -> IperfResult:
    state = {"seen": server_sock.bytes_received}

    def step() -> int:
        client_stack.tcp_send(client_conn, b"\x00" * CHUNK, client_ctx,
                              tso=tso)
        pump()
        now = server_sock.bytes_received
        got = now - state["seen"]
        state["seen"] = now
        return got

    return measure_throughput(cpus, step, total_bytes, link_gbps=link_gbps)


# ---------------------------------------------------------------------------
# Panel (a): cross-host over Geneve.
# ---------------------------------------------------------------------------
def _panel_a_host(
    testbed: Testbed,
    side: str,
    config: str,
    vm_ip: str,
    remote_vtep: str,
) -> "tuple[VirtualMachine, Callable[[], None]]":
    host = testbed.a if side == "a" else testbed.b
    nic = host.nics["ens1"]
    vm = VirtualMachine(host, f"vm-{side}", vm_ip, vcpu_core=12,
                        tso=False)  # no TSO across the tunnel on this NIC
    pumps: List[Callable[[], int]] = []
    if config == "kernel+tap":
        tap = vm.attach_tap(qemu_core=13, vhost_net=False)
        vs = host.install_ovs("system")
        vs.add_bridge("br-int")
        vs.add_system_port("br-int", nic)
        vs.add_system_port("br-int", tap)
        tun = vs.add_tunnel_port("br-int", "geneve0", "geneve",
                                 remote_vtep, key=77)
        install_overlay_pipeline(vs, "br-int", tap.name, zone=5,
                                 uplink_port=nic.name, tunnel_port="geneve0")
        pumps.append(lambda: host.kernel.service_nic(nic, budget=16))
        pumps.append(vm.qemu.pump)
    else:
        interrupt = "interrupt" in config
        if interrupt:
            # "using AF_XDP in an interrupt-driven fashion, which cannot
            # take advantage of any of the optimizations described in
            # Section 3" — no PMD, mutexes, no batching, no prealloc.
            from repro.afxdp.umempool import LockStrategy

            options = AfxdpOptions(
                interrupt_mode=True,
                lock_strategy=LockStrategy.MUTEX,
                batched_locking=False,
                preallocated_metadata=False,
                sw_checksum_on_tx=True,
                batch_size=8,
            )
        else:
            options = AfxdpOptions(
                sw_checksum_on_tx="csum" not in config,
            )
        vs = host.install_ovs("netdev")
        vs.add_bridge("br-int")
        vs.add_afxdp_port("br-int", nic, options)
        if "tap" in config:
            tap = vm.attach_tap(qemu_core=13, vhost_net=False)
            vs.add_system_port("br-int", tap)
            vif_name = tap.name
            pumps.append(vm.qemu.pump)
        else:
            vs.add_vhostuser_port("br-int", vm.attach_vhostuser())
            vif_name = f"vhost-{vm.name}"
        tun = vs.add_tunnel_port("br-int", "geneve0", "geneve",
                                 remote_vtep, key=77)
        install_overlay_pipeline(vs, "br-int", vif_name, zone=5,
                                 uplink_port=nic.name, tunnel_port="geneve0")
        pmd = PmdThread(vs.dpif_netdev, host.cpu, core=0,
                        main_thread_mode=interrupt,
                        batch_size=options.batch_size)
        dpif = vs.dpif_netdev
        pmd.add_rxq(dpif.ports[dpif.port_no(nic.name)], 0)
        pmd.add_rxq(dpif.ports[dpif.port_no(vif_name)], 0)
        pumps.append(pmd.run_iteration)
        pumps.append(
            lambda: host.kernel.service_nic(nic, budget=16,
                                            interrupt_mode=interrupt))

    pumps.append(vm.pump)

    def pump_once() -> None:
        for _ in range(60):
            if not sum(p() for p in pumps) and not nic.pending():
                return

    return vm, pump_once


def run_panel_a(config: str, total_bytes: int = TOTAL_BYTES) -> float:
    testbed = Testbed(link_gbps=LINK_GBPS)
    testbed.configure_underlay()
    # Overlay deployments raise the underlay MTU to fit the Geneve
    # headers around full-size inner frames (NSX requires >= 1600).
    testbed.a.nics["ens1"].mtu = 1600
    testbed.b.nics["ens1"].mtu = 1600
    vm1, pump_a = _panel_a_host(testbed, "a", config, "10.0.0.1",
                                "192.168.1.2")
    vm2, pump_b = _panel_a_host(testbed, "b", config, "10.0.0.2",
                                "192.168.1.1")
    _prime_guest_neighbors(vm1, vm2)

    def pump() -> None:
        for _ in range(40):
            pump_a()
            pump_b()
            if not (testbed.a.nics["ens1"].pending()
                    or testbed.b.nics["ens1"].pending()):
                if not vm1.nic.tx_queue and not vm2.nic.tx_queue:
                    break

    server = vm2.kernel.init_ns.stack.tcp_listen(vm2.ip, 5001)
    conn = vm1.kernel.init_ns.stack.tcp_connect(vm1.ip, vm2.ip, 5001,
                                                vm1.ctx)
    pump()
    assert conn.state.value == "ESTABLISHED", f"{config}: no connection"
    server_sock = server.accept_queue.popleft()
    result = _iperf([testbed.a.cpu, testbed.b.cpu],
                    vm1.kernel.init_ns.stack, conn, server_sock, pump,
                    vm1.ctx, tso=False, total_bytes=total_bytes,
                    link_gbps=LINK_GBPS)
    return result.gbps


# ---------------------------------------------------------------------------
# Panel (b): VM to VM within one host.
# ---------------------------------------------------------------------------
def run_panel_b(config: str, total_bytes: int = TOTAL_BYTES) -> float:
    host = Host("hv", n_cpus=16)
    tso = "tso" in config
    csum = "csum" in config or config == "kernel+tap"
    vm1 = VirtualMachine(host, "vm1", "10.0.0.1", vcpu_core=12,
                         csum_offload=csum, tso=tso or config == "kernel+tap")
    vm2 = VirtualMachine(host, "vm2", "10.0.0.2", vcpu_core=14,
                         csum_offload=csum, tso=tso or config == "kernel+tap")
    _prime_guest_neighbors(vm1, vm2)
    pumps: List[Callable[[], int]] = []

    if config == "kernel+tap":
        # Panel (b)'s tap VMs ran without vhost-net: "packets ... traverse
        # the userspace QEMU process to the kernel" is exactly what the
        # paper says vhostuser avoids.
        tap1 = vm1.attach_tap(qemu_core=13, vhost_net=False)
        tap2 = vm2.attach_tap(qemu_core=15, vhost_net=False)
        vs = host.install_ovs("system")
        vs.add_bridge("br-int")
        vs.add_system_port("br-int", tap1)
        vs.add_system_port("br-int", tap2)
        install_overlay_pipeline(vs, "br-int", tap1.name, zone=5,
                                 peer_vif_port=tap2.name)
        _reverse_pipeline(vs, "br-int", tap2.name, tap1.name, zone=5)
        pumps += [vm1.qemu.pump, vm2.qemu.pump]
        use_tso = True
    else:
        options = AfxdpOptions(sw_checksum_on_tx=not csum)
        vs = host.install_ovs("netdev")
        vs.add_bridge("br-int")
        if "tap" in config:
            tap1 = vm1.attach_tap(qemu_core=13, vhost_net=False)
            tap2 = vm2.attach_tap(qemu_core=15, vhost_net=False)
            vs.add_system_port("br-int", tap1)
            vs.add_system_port("br-int", tap2)
            names = (tap1.name, tap2.name)
            pumps += [vm1.qemu.pump, vm2.qemu.pump]
        else:
            vs.add_vhostuser_port("br-int", vm1.attach_vhostuser())
            vs.add_vhostuser_port("br-int", vm2.attach_vhostuser())
            names = (f"vhost-{vm1.name}", f"vhost-{vm2.name}")
        install_overlay_pipeline(vs, "br-int", names[0], zone=5,
                                 peer_vif_port=names[1])
        _reverse_pipeline(vs, "br-int", names[1], names[0], zone=5)
        pmd = PmdThread(vs.dpif_netdev, host.cpu, core=0)
        dpif = vs.dpif_netdev
        pmd.add_rxq(dpif.ports[dpif.port_no(names[0])], 0)
        pmd.add_rxq(dpif.ports[dpif.port_no(names[1])], 0)
        pumps.append(pmd.run_iteration)
        use_tso = tso

    pumps += [vm1.pump, vm2.pump]

    def pump() -> None:
        for _ in range(60):
            if not sum(p() for p in pumps):
                return

    server = vm2.kernel.init_ns.stack.tcp_listen(vm2.ip, 5001)
    conn = vm1.kernel.init_ns.stack.tcp_connect(vm1.ip, vm2.ip, 5001,
                                                vm1.ctx)
    pump()
    assert conn.state.value == "ESTABLISHED", f"{config}: no connection"
    server_sock = server.accept_queue.popleft()
    result = _iperf(host.cpu, vm1.kernel.init_ns.stack, conn, server_sock,
                    pump, vm1.ctx, tso=use_tso, total_bytes=total_bytes)
    return result.gbps


def _reverse_pipeline(vs: VSwitchd, bridge: str, vif: str, peer: str,
                      zone: int) -> None:
    """ACK-direction rules (tables 3/4 mirror tables 0/1)."""
    of = OpenFlowConnection(vs.bridge(bridge))
    br = vs.bridge(bridge)
    port = br.port(vif)
    of.add_flow(0, 100, Match(in_port=port.ofport),
                [CtAction(zone=zone, commit=True, table=3)])
    of.add_flow(3, 100, Match(ct_state=(CT_NEW, CT_NEW)),
                [OutputAction(peer)])
    of.add_flow(3, 100, Match(ct_state=(CT_ESTABLISHED, CT_ESTABLISHED)),
                [OutputAction(peer)])


# ---------------------------------------------------------------------------
# Panel (c): container to container within one host.
# ---------------------------------------------------------------------------
class VethAfxdpAdapter:
    """AF_XDP on a veth (§3.4 path A): copy mode, no offloads.

    The veth had no zero-copy AF_XDP in this kernel generation, so every
    packet is copied into the umem and back out.
    """

    n_rxq = 1

    def __init__(self, device) -> None:
        self.device = device
        self._rx: List = []
        device.set_rx_handler(lambda pkt, ctx: self._rx.append(pkt))

    @staticmethod
    def _umem_frames(pkt) -> int:
        # AF_XDP umem frames are 2 kB: a GSO super-frame occupies many,
        # each with its own descriptor, copy and dp_packet.
        return max(1, -(-len(pkt) // 2048))

    def rx_burst(self, ctx: ExecContext, batch: int = 32,
                 queue: int = 0) -> List:
        costs = DEFAULT_COSTS
        n = min(batch, len(self._rx))
        if n == 0:
            return []
        pkts, self._rx = self._rx[:n], self._rx[n:]
        ctx.charge(costs.ring_batch_ns + n * costs.ring_op_ns, label="xsk_rx")
        for pkt in pkts:
            frames = self._umem_frames(pkt)
            ctx.charge(frames * costs.afxdp_copy_mode_ns
                       + costs.copy_cost(len(pkt)), label="afxdp_copy")
            ctx.charge(frames * (costs.dp_packet_init_ns + costs.ring_op_ns)
                       + costs.software_rxhash_ns, label="dp_packet")
        return pkts

    def tx_burst(self, pkts: List, ctx: ExecContext, queue: int = 0) -> int:
        costs = DEFAULT_COSTS
        ctx.charge(costs.ring_batch_ns + len(pkts) * costs.ring_op_ns,
                   label="xsk_tx")
        with ctx.as_category(CpuCategory.SYSTEM):
            ctx.charge(costs.syscall_base_ns, label="tx_kick")
            for pkt in pkts:
                frames = self._umem_frames(pkt)
                ctx.charge(frames * costs.ring_op_ns
                           + costs.copy_cost(len(pkt)), label="afxdp_copy")
                self.device.transmit(pkt, ctx)
        return len(pkts)


def run_panel_c(config: str, total_bytes: int = TOTAL_BYTES) -> float:
    host = Host("hv", n_cpus=16)
    c1 = Container(host, "c1", "172.17.0.2")
    c2 = Container(host, "c2", "172.17.0.3")
    offload = "offload" in config or "csum" in config
    tso = "tso" in config or config == "kernel veth offload"
    for veth in (c1.outside, c1.inside, c2.outside, c2.inside):
        veth.csum_offload = offload
        # Attaching an XDP program (or an XSK) to a veth disables GSO
        # through it: super-segments pay software segmentation at the
        # veth boundary.  (The veth MTU is raised so the cost-charged
        # frame still traverses the simulated path in one piece.)
        veth.tso = config.startswith("kernel veth")
        veth.mtu = 65535
    pumps: List[Callable[[], int]] = []

    if config.startswith("kernel veth"):
        vs = host.install_ovs("system")
        vs.add_bridge("br0")
        p1 = vs.add_system_port("br0", c1.outside)
        p2 = vs.add_system_port("br0", c2.outside)
        of = OpenFlowConnection(vs.bridge("br0"))
        of.add_flow(0, 10, Match(in_port=p1.ofport),
                    [OutputAction(c2.outside.name)])
        of.add_flow(0, 10, Match(in_port=p2.ofport),
                    [OutputAction(c1.outside.name)])
    elif config == "xdp redirect":
        # Path C between the veths: in-kernel, but no GSO/csum offload
        # through XDP (§5.1: "XDP does not yet support checksum offload
        # and TSO").  The program runs inline in the sender's softirq
        # context, like real veth XDP.
        costs = DEFAULT_COSTS

        def veth_xdp(dst):
            def handler(pkt, ctx):
                ctx.charge(
                    costs.xdp_ctx_setup_ns + costs.dma_first_touch_ns
                    + costs.ebpf_map_lookup_ns + costs.xdp_redirect_ns,
                    label="veth_xdp")
                dst.transmit(pkt, ctx)
            return handler

        c1.outside.set_rx_handler(veth_xdp(c2.outside))
        c2.outside.set_rx_handler(veth_xdp(c1.outside))
        tso = False
    else:  # afxdp user: veth -> XSK -> OVS userspace -> veth
        vs = host.install_ovs("netdev")
        vs.add_bridge("br0")
        a1 = VethAfxdpAdapter(c1.outside)
        a2 = VethAfxdpAdapter(c2.outside)
        dp1 = vs.dpif_netdev.add_port(c1.outside.name, a1,
                                      device=c1.outside)
        dp2 = vs.dpif_netdev.add_port(c2.outside.name, a2,
                                      device=c2.outside)
        br = vs.bridge("br0")
        p1 = br.add_port(c1.outside.name, dp1.port_no)
        p2 = br.add_port(c2.outside.name, dp2.port_no)
        vs.ofproto.register_port(br, p1)
        vs.ofproto.register_port(br, p2)
        of = OpenFlowConnection(br)
        of.add_flow(0, 10, Match(in_port=p1.ofport),
                    [OutputAction(c2.outside.name)])
        of.add_flow(0, 10, Match(in_port=p2.ofport),
                    [OutputAction(c1.outside.name)])
        pmd = PmdThread(vs.dpif_netdev, host.cpu, core=0)
        pmd.add_rxq(vs.dpif_netdev.ports[dp1.port_no], 0)
        pmd.add_rxq(vs.dpif_netdev.ports[dp2.port_no], 0)
        pumps.append(pmd.run_iteration)
        if "tso" not in config:
            tso = False

    def pump() -> None:
        for _ in range(60):
            if not sum(p() for p in pumps):
                return

    client_ctx = ExecContext(host.cpu, 10, CpuCategory.USER, name="iperf-c")
    server = c2.stack.tcp_listen("172.17.0.3", 5001)
    conn = c1.stack.tcp_connect("172.17.0.2", "172.17.0.3", 5001, client_ctx)
    pump()
    assert conn.state.value == "ESTABLISHED", f"{config}: no connection"
    server_sock = server.accept_queue.popleft()
    result = _iperf(host.cpu, c1.stack, conn, server_sock, pump,
                    client_ctx, tso=tso, total_bytes=total_bytes)
    return result.gbps


# ---------------------------------------------------------------------------
PANEL_CONFIGS = {
    "a": ["kernel+tap", "afxdp+tap interrupt", "afxdp+tap polling",
          "afxdp+vhost", "afxdp+vhost+csum"],
    "b": ["kernel+tap", "afxdp+tap", "afxdp+vhost", "afxdp+vhost+csum",
          "afxdp+vhost+csum+tso"],
    "c": ["kernel veth", "kernel veth offload", "xdp redirect",
          "afxdp user", "afxdp user+csum", "afxdp user+csum+tso"],
}

_RUNNERS = {"a": run_panel_a, "b": run_panel_b, "c": run_panel_c}


def run_fig8(
    panels: "tuple[str, ...]" = ("a", "b", "c"),
    total_bytes: int = TOTAL_BYTES,
) -> Fig8Result:
    gbps: Dict["tuple[str, str]", float] = {}
    for panel in panels:
        for config in PANEL_CONFIGS[panel]:
            gbps[(panel, config)] = _RUNNERS[panel](config, total_bytes)
    return Fig8Result(gbps=gbps)


def main() -> None:  # pragma: no cover - CLI entry
    print(run_fig8().render_all())


if __name__ == "__main__":  # pragma: no cover
    main()
