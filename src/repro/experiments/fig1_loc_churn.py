"""Figure 1: lines changed per year in the out-of-tree kernel datapath.

The motivation figure: thousands of lines of churn every year, a growing
share of it pure backporting ("run faster and faster just to stay in the
same place", §2.1.1).  This experiment renders the digitised dataset,
checks it against the paper's case studies, and regenerates a churn
series from the :class:`~repro.analysis.loc_model.BackportModel` to show
the same shape emerges from the amplification factors the paper reports
(ERSPAN: 50 -> 5,000+ lines; conncount: 600 -> 1,300+).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.loc_model import (
    BACKPORT_CASE_STUDIES,
    OUT_OF_TREE_CHURN,
    BackportModel,
)
from repro.analysis.reporting import bar_chart, format_table


@dataclass
class Fig1Result:
    dataset: Dict[int, Tuple[int, int]]
    simulated: List[Tuple[int, int]]

    def render(self) -> str:
        years = sorted(self.dataset)
        parts = [
            bar_chart(
                [str(y) for y in years],
                [self.dataset[y][0] for y in years],
                unit="LoC",
                title="Figure 1 (dataset): new-feature churn per year",
            ),
            bar_chart(
                [str(y) for y in years],
                [self.dataset[y][1] for y in years],
                unit="LoC",
                title="Figure 1 (dataset): backport churn per year",
            ),
            format_table(
                ["Year", "Features (model)", "Backports (model)"],
                [(y, f, b) for y, (f, b) in
                 zip(years, self.simulated)],
                title="Backport-model regeneration",
            ),
        ]
        return "\n\n".join(parts)

    @property
    def total_backport_loc(self) -> int:
        return sum(b for _f, b in self.dataset.values())


def run_fig1() -> Fig1Result:
    model = BackportModel()
    feature_series = [feat for feat, _bp in (
        OUT_OF_TREE_CHURN[y] for y in sorted(OUT_OF_TREE_CHURN))]
    simulated = model.simulate_years(feature_series)
    return Fig1Result(dataset=dict(OUT_OF_TREE_CHURN), simulated=simulated)


def main() -> None:  # pragma: no cover - CLI entry
    result = run_fig1()
    print(result.render())
    print("\nCase studies (§2.1.1):")
    for case in BACKPORT_CASE_STUDIES:
        amp = case.backport_loc / case.upstream_loc
        print(f"  {case.feature}: {case.upstream_loc} upstream LoC -> "
              f"{case.backport_loc} backport LoC ({amp:.0f}x)")


if __name__ == "__main__":  # pragma: no cover
    main()
