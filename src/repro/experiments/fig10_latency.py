"""Figure 10: inter-host VM latency and transaction rate (§5.3).

netperf TCP_RR between a host and a VM on another host:

=========  ===============  ==============
Config     P50/P90/P99 us   Explanation
=========  ===============  ==============
Kernel     58 / 68 / 94     adaptive interrupt+polling everywhere
AF_XDP     39 / 41 / 53     polling on the switch, trailing DPDK mainly
                            because of missing hardware checksum (§4)
DPDK       36 / 38 / 45     always polling
=========  ===============  ==============

One transaction = a 1-byte TCP segment from the VM through the switch to
the wire, the server host's stack turning it around, and the reply
travelling back into the VM.  Every hop runs on the real simulated
objects (virtio queues, PMD/dpif pipeline, AF_XDP rings, NIC service);
the interrupt/wakeup variance of the non-polling hops comes from
log-normal jitter terms whose medians model NIC interrupt moderation and
scheduler wakeups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.afxdp.driver import AfxdpOptions
from repro.analysis.reporting import format_table
from repro.dpdk.ethdev import bind_device
from repro.experiments.p2p import _base_host
from repro.hosts.vm import VirtualMachine
from repro.net.builder import make_tcp_packet
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.pmd import PmdThread
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, ExecContext
from repro.traffic.netperf import NetperfResult, TcpRrRunner

N_TRANSACTIONS = 400

PAPER_US = {
    "kernel": (58, 68, 94),
    "afxdp": (39, 41, 53),
    "dpdk": (36, 38, 45),
}

#: Jitter medians (ns) and sigmas for the non-deterministic hops.
#: The kernel path is interrupt-driven at the NIC in both directions on
#: the client host and on the server host (adaptive moderation on the
#: ConnectX generation is ~10 us under RR load); the userspace datapaths
#: poll the NIC so only the server side and the guest's virtio interrupt
#: jitter remain.
_JITTER = {
    "kernel": {
        "client_nic_irq": (9_500.0, 0.35),
        "client_nic_irq_back": (9_500.0, 0.35),
        "server_nic_irq": (9_000.0, 0.35),
        "guest_virtio_irq": (6_000.0, 0.4),
        "netserver_wakeup": (4_500.0, 0.5),
        "guest_app_wakeup": (4_500.0, 0.5),
    },
    "afxdp": {
        "server_nic_irq": (11_000.0, 0.3),
        "guest_virtio_irq": (8_000.0, 0.35),
        "netserver_wakeup": (5_500.0, 0.45),
        "guest_app_wakeup": (5_500.0, 0.45),
    },
    "dpdk": {
        "server_nic_irq": (10_500.0, 0.25),
        "guest_virtio_irq": (7_500.0, 0.3),
        "netserver_wakeup": (5_200.0, 0.4),
        "guest_app_wakeup": (5_200.0, 0.4),
    },
}


@dataclass
class Fig10Result:
    results: Dict[str, NetperfResult]

    def render(self) -> str:
        rows = []
        for config, r in self.results.items():
            paper = PAPER_US[config]
            rows.append((
                config,
                f"{r.p50_us:.0f}/{r.p90_us:.0f}/{r.p99_us:.0f}",
                f"{paper[0]}/{paper[1]}/{paper[2]}",
                f"{r.transactions_per_s:,.0f}",
            ))
        return format_table(
            ["Config", "P50/P90/P99 (us)", "Paper (us)", "Transactions/s"],
            rows,
            title="Figure 10: host <-> remote-VM TCP_RR latency",
        )


class _RrPath:
    """One configured client host + a wire + an abstract server turn.

    ``send_to_wire`` pushes the request through the client host's real
    switch path; the server side is a fixed host-stack turnaround (same
    for every config, as in the testbed); ``receive_from_wire`` carries
    the reply back into the guest.
    """

    def __init__(self, config: str) -> None:
        self.config = config
        options = AfxdpOptions()
        host, nic_in, nic_out = _base_host(1, 25.0)
        self.host = host
        self.nic = nic_in
        self.vm = VirtualMachine(host, "vm1", "10.0.0.5", vcpu_core=12)
        self.guest_ctx = self.vm.ctx
        self.server_ctx = ExecContext(host.cpu, 14, CpuCategory.SYSTEM,
                                      name="netserver-host")
        if config == "kernel":
            tap = self.vm.attach_tap(qemu_core=13)
            vs = host.install_ovs("system")
            vs.add_bridge("br0")
            p_nic = vs.add_system_port("br0", nic_in)
            p_tap = vs.add_system_port("br0", tap)
            of = OpenFlowConnection(vs.bridge("br0"))
            of.add_flow(0, 10, Match(in_port=p_tap.ofport),
                        [OutputAction("ens1")])
            of.add_flow(0, 10, Match(in_port=p_nic.ofport),
                        [OutputAction(tap.name)])
            self.pmd = None
        else:
            vs = host.install_ovs("netdev")
            vs.add_bridge("br0")
            if config == "afxdp":
                p_nic = vs.add_afxdp_port("br0", nic_in, options)
            else:
                p_nic = vs.add_dpdk_port(
                    "br0", bind_device(host.kernel.init_ns, "ens1"))
            vport = vs.add_vhostuser_port("br0", self.vm.attach_vhostuser())
            of = OpenFlowConnection(vs.bridge("br0"))
            of.add_flow(0, 10, Match(in_port=vport.ofport),
                        [OutputAction("ens1")])
            of.add_flow(0, 10, Match(in_port=p_nic.ofport),
                        [OutputAction(f"vhost-{self.vm.name}")])
            self.pmd = PmdThread(vs.dpif_netdev, host.cpu, core=0)
            self.pmd.add_rxq(
                vs.dpif_netdev.ports[vs.dpif_netdev.port_no("ens1")], 0)
            self.pmd.add_rxq(
                vs.dpif_netdev.ports[
                    vs.dpif_netdev.port_no(f"vhost-{self.vm.name}")], 0)
        self.vs = vs
        # The wire's far end: capture transmissions, to echo them back.
        self._wire_out: List = []
        nic_in.wire_peer.set_rx_handler(  # type: ignore[union-attr]
            lambda pkt, ctx: self._wire_out.append(pkt))
        # Warm the caches so measured transactions see steady state.
        for _ in range(4):
            self.one_transaction()

    # ------------------------------------------------------------------
    def contexts(self) -> List[ExecContext]:
        ctxs = [self.guest_ctx, self.server_ctx]
        if self.pmd is not None:
            ctxs.append(self.pmd.ctx)
        if self.vm.qemu is not None:
            ctxs.append(self.vm.qemu.ctx)
        ctxs.extend(self.host.kernel._softirq_ctx.values())
        return ctxs

    def _pump_client(self) -> None:
        for _ in range(50):
            moved = 0
            if self.pmd is not None:
                moved += self.pmd.run_iteration()
            if self.config != "dpdk":
                moved += self.host.kernel.service_nic(self.nic, budget=8)
            if self.vm.qemu is not None:
                moved += self.vm.qemu.pump()
            if not moved and not self.nic.pending():
                return

    def one_transaction(self) -> None:
        costs = DEFAULT_COSTS
        # 1. The guest app writes 1 byte; its TCP stack emits a segment.
        self.guest_ctx.charge(costs.tcp_segment_ns, label="guest_tcp")
        self.guest_ctx.charge(costs.socket_copy_per_byte_ns * 1,
                              label="guest_copy")
        request = make_tcp_packet(
            self.vm.nic.mac, self.nic.mac,
            "10.0.0.5", "10.0.0.9", 40000, 12865, payload=b"x")
        self.vm.nic.transmit(request, self.guest_ctx)
        self._pump_client()
        assert self._wire_out, "request never reached the wire"
        self._wire_out.clear()

        # 2. The server host: NIC rx -> stack -> netserver -> reply tx.
        self.server_ctx.charge(
            costs.nic_rx_ns + costs.skb_alloc_ns + costs.dma_first_touch_ns
            + costs.tcp_segment_ns, label="server_rx")
        self.server_ctx.charge(costs.tcp_segment_ns + costs.skb_free_ns
                               + costs.nic_tx_ns, label="server_tx")
        reply = make_tcp_packet(
            self.nic.mac, self.vm.nic.mac,
            "10.0.0.9", "10.0.0.5", 12865, 40000, payload=b"y")

        # 3. Back through the switch into the guest.
        self.nic.host_receive(reply)
        self._pump_client()
        got = self.vm.nic.rx_queue.pop_batch(4)
        assert got, "reply never reached the guest"
        self.guest_ctx.charge(costs.tcp_segment_ns, label="guest_tcp")


def run_fig10(n_transactions: int = N_TRANSACTIONS) -> Fig10Result:
    results: Dict[str, NetperfResult] = {}
    for config in ("kernel", "afxdp", "dpdk"):
        path = _RrPath(config)
        runner = TcpRrRunner(path.contexts(), _JITTER[config],
                             seed=hash(config) & 0xFFFF)
        results[config] = runner.run(path.one_transaction, n_transactions)
    return Fig10Result(results=results)


def main() -> None:  # pragma: no cover - CLI entry
    print(run_fig10().render())


if __name__ == "__main__":  # pragma: no cover
    main()
