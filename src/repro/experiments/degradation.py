"""Degradation under injected faults: the robustness curve.

Sweeps a fault rate through the AF_XDP P2P forwarding pipeline —
tx-kick EAGAIN, fill-ring overruns and upcall-queue overload firing
together — and reports how throughput, drops and per-packet latency
degrade.  The paper argues the userspace datapath must absorb exactly
these faults gracefully (§3.3, §6); the curve this produces is the
simulated version of that claim: goodput declines smoothly, every lost
packet is attributed to a named counter, and packet conservation holds
at every sweep point.

Runs are deterministic per seed (the CI fault-matrix job runs each seed
twice and diffs the JSON)::

    python -m repro degradation
    python -m repro.experiments.degradation --json --seed 7
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.afxdp.driver import AfxdpOptions
from repro.experiments.common import CpuSnapshot, reduce_run
from repro.experiments.common import warmup_count
from repro.experiments.p2p import _base_host
from repro.ovs.match import Match
from repro.ovs.ofactions import OutputAction
from repro.ovs.openflow import OpenFlowConnection
from repro.ovs.pmd import PmdThread
from repro.sim import faults, trace
from repro.sim.faults import FaultPlan, FaultRule
from repro.sim.supervisor import Supervisor
from repro.tools.conservation import afxdp_packet_ledger
from repro.traffic.trex import FlowSpec, TrexStream

#: The fault points the sweep drives, all at the same rate.  The crash
#: point is consulted once per burst (a process dies per event, not per
#: packet); the supervised restart it triggers loses the in-flight burst
#: at the failed-redirect dispatch and brings the caches back cold.
SWEPT_POINTS: Tuple[str, ...] = (
    "afxdp.tx_kick_eagain",
    "afxdp.fill_ring_overrun",
    "dp.upcall_overload",
    "vswitchd.crash",
)

DEFAULT_RATES: Tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.2)
PACKETS = 600
N_FLOWS = 64
LINK_GBPS = 25.0


@dataclass
class DegradationPoint:
    """One sweep point of the degradation curve."""

    fault_rate: float
    offered: int
    delivered: int
    #: Offered-load rate the pipeline sustained (reduce_run's metric).
    mpps: float
    #: Delivered-packet rate: the robustness headline.
    goodput_mpps: float
    #: Bottleneck-lane ns per *delivered* packet (latency proxy).
    ns_per_delivered: float
    #: Virtual time spent sleeping in tx-kick backoff.
    backoff_wait_ns: float
    lost_upcalls: int
    faults_fired: Dict[str, int] = field(default_factory=dict)
    drops: Dict[str, int] = field(default_factory=dict)
    conserved: bool = True

    def to_json(self) -> Dict:
        return {
            "fault_rate": self.fault_rate,
            "offered": self.offered,
            "delivered": self.delivered,
            "mpps": round(self.mpps, 6),
            "goodput_mpps": round(self.goodput_mpps, 6),
            "ns_per_delivered": round(self.ns_per_delivered, 3),
            "backoff_wait_ns": round(self.backoff_wait_ns, 1),
            "lost_upcalls": self.lost_upcalls,
            "faults_fired": dict(sorted(self.faults_fired.items())),
            "drops": dict(sorted(self.drops.items())),
            "conserved": self.conserved,
        }


def _run_point(
    rate: float,
    packets: int,
    n_flows: int,
    seed: int,
    link_gbps: float,
    sampler=None,
) -> DegradationPoint:
    """Build a fresh AF_XDP P2P world and drive it under one fault rate."""
    options = AfxdpOptions()
    plan = FaultPlan(
        seed=seed,
        rules=[FaultRule(point, rate=rate) for point in SWEPT_POINTS],
    )
    # Each sweep point needs its own isolated ledger (per-point backoff
    # waits, counters).  Shelve any outer recorder (e.g. ``python -m
    # repro --trace degradation``) for the duration — nesting is an
    # error by design.
    outer = trace.ACTIVE
    if outer is not None:
        trace.detach()
    try:
        return _run_point_traced(plan, rate, packets, n_flows,
                                 link_gbps, options, sampler)
    finally:
        if outer is not None:
            trace.attach(outer)


def _run_point_traced(
    plan: FaultPlan,
    rate: float,
    packets: int,
    n_flows: int,
    link_gbps: float,
    options: AfxdpOptions,
    sampler=None,
) -> DegradationPoint:
    with faults.injecting(plan), trace.recording() as rec:
        if sampler is not None:
            rec.sampler = sampler
        host, nic_in, nic_out = _base_host(1, link_gbps)
        vs = host.install_ovs("netdev")
        vs.add_bridge("br0")
        p_in = vs.add_afxdp_port("br0", nic_in, options)
        vs.add_afxdp_port("br0", nic_out, options)
        stream = TrexStream(FlowSpec(n_flows=n_flows))
        of = OpenFlowConnection(vs.bridge("br0"))
        # One rule per source IP: every flow pays its own upcall and
        # installs its own megaflow, so the upcall-overload point and the
        # revalidator's flow limit actually see per-flow pressure (a
        # single in_port rule would collapse into one wildcard megaflow).
        for src in stream.src_ips:
            of.add_flow(0, 20, Match(in_port=p_in.ofport, nw_src=src),
                        [OutputAction("ens2")])
        of.add_flow(0, 10, Match(in_port=p_in.ofport),
                    [OutputAction("ens2")])
        dpif = vs.dpif_netdev
        driver_in = dpif.ports[dpif.port_no("ens1")].adapter.driver
        driver_out = dpif.ports[dpif.port_no("ens2")].adapter.driver
        pmd = PmdThread(dpif, host.cpu, core=0,
                        batch_size=options.batch_size)
        pmd.add_rxq(dpif.ports[dpif.port_no("ens1")], 0)
        # Passive unless the plan fires ``vswitchd.crash``: a plan
        # without that rule (or at rate 0) leaves every byte of the
        # ledger unchanged.
        supervisor = Supervisor(host.user_ctx(host.cpu.n_cpus - 1),
                                host.clock, vs=vs, pmds=[pmd])

        def pump_all() -> None:
            while nic_in.pending():
                host.kernel.service_nic(nic_in, budget=options.batch_size)
                pmd.run_iteration()
            pmd.run_until_idle()

        def pump_while_down() -> None:
            # The kernel's XDP dispatch outlives the daemon, but the
            # XSKs died with it: the burst drains at the failed
            # redirect (nic.xdp_redirect_failed).
            while nic_in.pending():
                host.kernel.service_nic(nic_in, budget=options.batch_size)

        warmup = warmup_count(stream)
        for pkt in stream.burst(warmup):
            nic_in.host_receive(pkt)
            pump_all()
        before = CpuSnapshot.take(host.cpu)
        delivered_before = sum(
            s.tx_sent for s in driver_out.sockets.values())
        sent = 0
        while sent < packets:
            chunk = min(options.batch_size, packets - sent)
            for pkt in stream.burst(chunk):
                nic_in.host_receive(pkt)
            sent += chunk
            if supervisor.maybe_crash():
                # The daemon died with this burst in flight; the burst
                # is lost at dispatch, then the supervised restart runs
                # to completion (charged, clock advances) and the
                # datapath resumes with cold caches.
                pump_while_down()
                supervisor.finish()
            pump_all()
            # Revalidator pass between bursts, as real udpif runs
            # continuously: under lost-upcall pressure it tightens the
            # flow limit, feeding the degradation back into the datapath.
            dpif.revalidate(emcs=[pmd.emc])
        measurement = reduce_run(
            host.cpu, before, packets,
            link_gbps=link_gbps, frame_len=stream.frame_len,
            pmd_cpus=(0,),
        )
        # Sockets retired by a supervised restart carry the pre-crash
        # transmissions; count them or a crash under-reports delivery.
        delivered = (
            sum(s.tx_sent for s in driver_out.sockets.values())
            + driver_out.retired.get("tx_sent", 0)
            - delivered_before
        )
        ledger = afxdp_packet_ledger(
            warmup + packets, nic_in, driver_in, driver_out, dpif,
            extra_sinks=supervisor.crash_sinks)
        backoff_entry = rec.waits.get("tx_kick_backoff")
        backoff_wait_ns = backoff_entry[1] if backoff_entry else 0.0
    ratio = delivered / packets if packets else 0.0
    return DegradationPoint(
        fault_rate=rate,
        offered=packets,
        delivered=delivered,
        mpps=measurement.mpps,
        goodput_mpps=measurement.mpps * ratio,
        ns_per_delivered=(measurement.wall_ns / delivered
                          if delivered else float("inf")),
        backoff_wait_ns=backoff_wait_ns,
        lost_upcalls=dpif.stats.lost,
        faults_fired=dict(plan.fired),
        drops={k: v for k, v in ledger.sinks.items() if v},
        conserved=ledger.conserved(),
    )


def run_degradation(
    packets: int = PACKETS,
    n_flows: int = N_FLOWS,
    rates: Sequence[float] = DEFAULT_RATES,
    seed: int = 0,
    link_gbps: float = LINK_GBPS,
    metrics_lines: "List[str] | None" = None,
) -> List[DegradationPoint]:
    """Sweep the fault rates.  With ``metrics_lines`` (a list to append
    to), each point runs with a fresh virtual-time
    :class:`~repro.sim.profile.MetricsSampler` whose JSONL series —
    every line tagged with the point's fault rate — is collected there."""
    points = []
    for rate in rates:
        sampler = None
        if metrics_lines is not None:
            from repro.sim.profile import MetricsSampler

            # A sweep point only charges a few hundred virtual µs, so
            # sample far finer than the 1 ms default.
            sampler = MetricsSampler(interval_ns=25_000.0)
        point = _run_point(rate, packets, n_flows, seed, link_gbps,
                           sampler)
        if not point.conserved:
            raise AssertionError(
                f"packet conservation violated at rate={rate}: "
                f"{point.to_json()}"
            )
        if sampler is not None and sampler.samples:
            metrics_lines.append(
                sampler.to_jsonl(extra={"experiment": "degradation",
                                        "fault_rate": rate}))
        points.append(point)
    return points


def render(points: Sequence[DegradationPoint]) -> str:
    lines = [
        f"{'rate':>6}  {'goodput':>9}  {'delivered':>9}  {'dropped':>8}  "
        f"{'lost':>5}  {'ns/pkt':>9}  {'backoff':>10}",
    ]
    for p in points:
        dropped = p.offered - p.delivered
        lines.append(
            f"{p.fault_rate:>6.2f}  {p.goodput_mpps:>9.3f}  "
            f"{p.delivered:>9}  {dropped:>8}  {p.lost_upcalls:>5}  "
            f"{p.ns_per_delivered:>9.0f}  {p.backoff_wait_ns:>10.0f}"
        )
    return "\n".join(lines)


def main(argv: "List[str] | None" = None) -> None:
    argv = list(sys.argv[1:] if argv is None else argv)
    as_json = "--json" in argv
    seed = 0
    packets = PACKETS
    metrics_path = None
    if "--seed" in argv:
        seed = int(argv[argv.index("--seed") + 1])
    if "--packets" in argv:
        packets = int(argv[argv.index("--packets") + 1])
    if "--metrics" in argv:
        metrics_path = argv[argv.index("--metrics") + 1]
    metrics_lines: "List[str] | None" = (
        [] if metrics_path is not None else None)
    points = run_degradation(packets=packets, seed=seed,
                             metrics_lines=metrics_lines)
    if metrics_path is not None:
        with open(metrics_path, "w") as fh:
            fh.write("\n".join(metrics_lines) + "\n")
        print(f"wrote metric samples for {len(metrics_lines)} sweep "
              f"points to {metrics_path}")
    if as_json:
        print(json.dumps({
            "seed": seed,
            "packets": packets,
            "points": [p.to_json() for p in points],
        }, indent=2, sort_keys=True))
    else:
        print(f"degradation sweep (seed={seed}, {packets} packets, "
              f"{N_FLOWS} flows):")
        print(render(points))


if __name__ == "__main__":
    main()
