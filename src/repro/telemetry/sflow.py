"""sFlow-style packet sampling at the datapath dispatch points.

Real OVS implements sFlow as a datapath action: every packet at an
armed observation point pays a rate test, and 1-in-N of them has its
header scraped and encoded toward a collector.  Both legs are charged
in virtual time from the cost model, so sampling visibly taxes the hot
path — the observer effect :mod:`repro.experiments.observer_effect`
measures.

Selection is deterministic: each observation point draws from its own
:func:`repro.sim.rng.make_rng` stream, and the decision is the coupled
form ``u < 1/N``.  Because the same seed yields the same draw sequence
regardless of the configured rate, the packets sampled at rate 1/N are
a superset of those sampled at any coarser rate — which is what makes
the observer-effect curve monotone by construction rather than by
luck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim import costs as _costs
from repro.sim import trace as _trace
from repro.sim.rng import make_rng

#: The observation points a sampler may arm (see
#: :meth:`repro.telemetry.Telemetry.observe` call sites).
SAMPLE_POINTS: Tuple[str, ...] = ("dpif", "kernel", "xdp")


@dataclass(frozen=True)
class SflowConfig:
    """1-in-``rate`` sampling at each of ``points``."""

    rate: int
    points: Tuple[str, ...] = ("dpif",)
    #: Bytes of each sampled frame kept (sFlow's header scrape).
    header_bytes: int = 128
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate < 1:
            raise ValueError(f"sampling rate must be >= 1, got {self.rate}")
        unknown = [p for p in self.points if p not in SAMPLE_POINTS]
        if unknown:
            raise ValueError(
                f"unknown sample point(s) {unknown}; "
                f"known: {', '.join(SAMPLE_POINTS)}")


@dataclass
class SflowSample:
    """One scraped sample, ready for the pcap writer."""

    seq: int
    point: str
    ts_ns: int
    frame_len: int
    header: bytes


@dataclass
class SflowSampler:
    """Per-session sampling state (counters, RNG streams, samples)."""

    config: SflowConfig
    rngs: Dict[str, object] = field(default_factory=dict)
    observed: Dict[str, int] = field(default_factory=dict)
    sampled: Dict[str, int] = field(default_factory=dict)
    samples: List[SflowSample] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.probability = 1.0 / self.config.rate
        for point in self.config.points:
            self.rngs[point] = make_rng("telemetry", "sflow", point,
                                        seed=self.config.seed)
            self.observed[point] = 0
            self.sampled[point] = 0

    def observe(self, point: str, data: bytes, ctx,
                now_ns_fn: Callable[[], int]) -> Optional[SflowSample]:
        """Rate-test one packet at ``point``; scrape it if selected.

        Callers guarantee ``point`` is armed (``point in self.rngs``).
        The rate test is charged on every observed packet; the scrape
        and encode only on taken samples.
        """
        costs = _costs.DEFAULT_COSTS
        if ctx is not None:
            ctx.charge(costs.sflow_sample_test_ns, label="sflow_sample")
        self.observed[point] += 1
        if self.rngs[point].random() >= self.probability:
            return None
        if ctx is not None:
            ctx.charge(costs.sflow_header_scrape_ns, label="sflow_export")
            ctx.charge(costs.sflow_encode_ns, label="sflow_export")
        sample = SflowSample(
            seq=len(self.samples),
            point=point,
            ts_ns=now_ns_fn(),
            frame_len=len(data),
            header=data[:self.config.header_bytes],
        )
        self.sampled[point] += 1
        self.samples.append(sample)
        _trace.count("sflow.sampled")
        return sample

    @property
    def total_observed(self) -> int:
        return sum(self.observed.values())

    @property
    def total_sampled(self) -> int:
        return sum(self.sampled.values())
