"""Datapath flow telemetry: sFlow sampling, IPFIX export, drop reasons.

The monitoring layer real OVS deployments are operated through, built
on the simulation's own primitives: sampling decisions come from
:mod:`repro.sim.rng` streams, every per-packet cost is charged in
virtual time from :mod:`repro.sim.costs`, flow timeouts expire on the
virtual clock, and the collector's totals reconcile *exactly* against
the conservation ledger.

The session object mirrors :mod:`repro.sim.faults` and
:mod:`repro.sim.trace`: a module global ``ACTIVE`` that hot paths read
with a single attribute load, ``None`` meaning "telemetry off" with
**zero** overhead — no charge, no RNG draw, no counter.  The CI gate
(:mod:`repro.tools.telemetry_gate`) byte-diffs ledgers, counters and
flamegraphs with telemetry absent vs installed-but-disabled to pin that
down::

    session = Telemetry(sflow=SflowConfig(rate=64),
                        ipfix=IpfixConfig(),
                        now_ns_fn=lambda: host.clock.now)
    with telemetry.monitoring(session):
        bench.drive(stream, packets)
    session.flush_all()
    assert session.reconcile(ledger) == []
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from repro.telemetry.drops import DropReason, DropStage, reason_for_sink
from repro.telemetry.ipfix import (
    IpfixCollector,
    IpfixConfig,
    IpfixExporter,
)
from repro.telemetry.sflow import SflowConfig, SflowSample, SflowSampler

__all__ = [
    "ACTIVE",
    "DropReason",
    "DropStage",
    "IpfixCollector",
    "IpfixConfig",
    "IpfixExporter",
    "SflowConfig",
    "SflowSample",
    "SflowSampler",
    "Telemetry",
    "drop_event",
    "install",
    "monitoring",
    "reason_for_sink",
    "uninstall",
]


class Telemetry:
    """One monitoring session: an optional sampler + optional exporter.

    Either leg may be ``None``; a ``Telemetry()`` with both legs off is
    *inert* — installing it changes no observable byte (the off-mode
    identity the CI gate enforces).
    """

    def __init__(self, sflow: Optional[SflowConfig] = None,
                 ipfix: Optional[IpfixConfig] = None,
                 now_ns_fn: Optional[Callable[[], int]] = None) -> None:
        self.sflow = SflowSampler(sflow) if sflow is not None else None
        self.ipfix = IpfixExporter(ipfix) if ipfix is not None else None
        self.now_ns_fn = now_ns_fn if now_ns_fn is not None \
            else (lambda: 0)

    # ------------------------------------------------------------------
    # Hot-path hooks (call sites guard on ``telemetry.ACTIVE``).
    # ------------------------------------------------------------------
    def observe(self, point: str, pkt, ctx) -> None:
        """One packet crossed dispatch point ``point``.

        Charges the sampling rate test (and scrape/encode on a taken
        sample) and folds the packet into the IPFIX cache when the
        point is the exporter's observation point.
        """
        sampler = self.sflow
        if sampler is not None and point in sampler.rngs:
            sampler.observe(point, pkt.data, ctx, self.now_ns_fn)
        exporter = self.ipfix
        if exporter is not None and point == exporter.config.point:
            exporter.update(pkt, self.now_ns_fn(), ctx)

    def drop(self, reason: DropReason, n: int = 1,
             octets: int = 0) -> None:
        """``n`` packets were lost for ``reason`` (uncharged)."""
        exporter = self.ipfix
        if exporter is not None and n > 0:
            exporter.note_drop(reason, n, octets)

    # ------------------------------------------------------------------
    # End-of-run export and reconciliation.
    # ------------------------------------------------------------------
    @property
    def collector(self) -> Optional[IpfixCollector]:
        return self.ipfix.collector if self.ipfix is not None else None

    def flush_all(self, ctx=None) -> None:
        """Flush the IPFIX cache and drop records to the collector."""
        if self.ipfix is not None:
            self.ipfix.flush_all(ctx)

    def reconcile(self, ledger) -> List[str]:
        """Check the export totals against a conservation ledger.

        Returns a list of violated invariants (empty means the books
        balance).  ``ledger`` is duck-typed: anything with ``offered``
        and a ``sinks`` mapping (a
        :class:`repro.tools.conservation.PacketLedger`) works.  Call
        :meth:`flush_all` first — an unflushed cache is itself a
        violation.

        The invariants:

        * export accounting — collector totals plus the
          ``telemetry.collector_loss`` casualties equal everything the
          exporter flushed, for records, packets and octets, flows and
          drops alike;
        * flow totals — exported flow packets equal the ledger's
          offered load minus the pre-datapath drop legs (losses before
          the observation hook are exactly the packets IPFIX never saw);
        * drop legs — per conservation sink, the taxonomy's tallies
          equal the ledger's sink counts.
        """
        problems: List[str] = []
        exporter = self.ipfix
        if exporter is None:
            return ["ipfix is not enabled; nothing to reconcile"]
        if exporter.cache:
            problems.append(
                f"{len(exporter.cache)} flows still cached "
                "(call flush_all first)")
        collector = exporter.collector
        for kind in ("flow", "drop"):
            for unit in ("records", "packets", "octets"):
                got = getattr(collector, f"{kind}_{unit}") \
                    + getattr(exporter, f"lost_{kind}_{unit}")
                want = getattr(exporter, f"exported_{kind}_{unit}")
                if got != want:
                    problems.append(
                        f"{kind} {unit}: collector+lost={got} != "
                        f"exported={want}")
        pre = sum(n for reason, n in exporter.drop_packets.items()
                  if reason.stage is DropStage.PRE_DATAPATH)
        expect_flow_packets = ledger.offered - pre
        if exporter.exported_flow_packets != expect_flow_packets:
            problems.append(
                f"flow packets: exported={exporter.exported_flow_packets}"
                f" != offered({ledger.offered}) - pre_datapath({pre})")
        if exporter.exported_drop_packets != \
                sum(exporter.drop_packets.values()):
            problems.append("drop packets: exported != tallied")
        by_sink: Dict[str, int] = {}
        for reason, n in exporter.drop_packets.items():
            if reason.ledger_sink is not None and n:
                by_sink[reason.ledger_sink] = \
                    by_sink.get(reason.ledger_sink, 0) + n
        ledger_sinks = {name: n for name, n in ledger.sinks.items() if n}
        if by_sink != ledger_sinks:
            problems.append(
                f"drop legs differ: telemetry={by_sink!r} "
                f"ledger={ledger_sinks!r}")
        return problems


#: The installed session, or None (telemetry off).  Hot paths read this
#: attribute directly — keep it a plain module global.
ACTIVE: Optional[Telemetry] = None


def install(session: Telemetry) -> Telemetry:
    """Make ``session`` the active telemetry session.  Nesting is not
    supported: installing over a live session is an error (silently
    dropped samples would break the reconciliation audit)."""
    global ACTIVE
    if ACTIVE is not None:
        raise RuntimeError("a Telemetry session is already installed")
    ACTIVE = session
    return session


def uninstall() -> None:
    global ACTIVE
    ACTIVE = None


@contextmanager
def monitoring(session: Telemetry) -> Iterator[Telemetry]:
    """Install ``session`` for the duration of the block."""
    install(session)
    try:
        yield session
    finally:
        uninstall()


def drop_event(reason: DropReason, n: int = 1, octets: int = 0) -> None:
    """Record a drop event on the active session, if any.

    For cold drop sites; per-packet paths should inline the
    ``telemetry.ACTIVE is None`` guard instead.
    """
    session = ACTIVE
    if session is not None:
        session.drop(reason, n, octets)
