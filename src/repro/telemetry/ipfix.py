"""IPFIX flow export: a flow cache on the virtual clock.

Keyed on the existing miniflow machinery (``in_port`` + the 5-tuple of
:func:`repro.net.flow.extract_flow`), with active/idle timeouts that
expire on virtual time and flush deterministic records — packets,
octets, first/last seen — to an in-sim collector.  Aggregated drop
records (one per :class:`~repro.telemetry.drops.DropReason`) ride the
same export path, so the collector's totals can be reconciled *exactly*
against the conservation ledger (see
:meth:`repro.telemetry.Telemetry.reconcile`).

Export is lossy on purpose when the ``telemetry.collector_loss`` fault
point is armed: each record consults the active
:class:`~repro.sim.faults.FaultPlan` and a fired record lands in the
exporter's lost-tallies instead of the collector, keeping the
reconciliation exact under arbitrary fault plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.flow import extract_flow
from repro.sim import costs as _costs
from repro.sim import faults as _faults
from repro.sim import trace as _trace
from repro.telemetry.drops import DropReason

#: Flow keys are (in_port, FiveTuple).
FlowKeyT = Tuple[int, tuple]

_NEVER = float("inf")


@dataclass(frozen=True)
class IpfixConfig:
    """Cache-and-export policy for one observation point."""

    point: str = "dpif"
    #: Flush a flow this long after its *first* packet even while active.
    active_timeout_ns: int = 4_000_000
    #: Flush a flow this long after its *last* packet.
    idle_timeout_ns: int = 1_000_000

    def __post_init__(self) -> None:
        if self.active_timeout_ns <= 0 or self.idle_timeout_ns <= 0:
            raise ValueError("IPFIX timeouts must be positive")


@dataclass
class IpfixFlowRecord:
    """One cache entry / exported flow record."""

    key: FlowKeyT
    packets: int
    octets: int
    start_ns: int
    end_ns: int

    def encode(self) -> bytes:
        in_port, five = self.key
        proto, src_ip, dst_ip, src_port, dst_port = five
        return (
            f"FLOW in_port={in_port} proto={proto} "
            f"src={src_ip:08x}:{src_port} dst={dst_ip:08x}:{dst_port} "
            f"packets={self.packets} octets={self.octets} "
            f"start_ns={self.start_ns} end_ns={self.end_ns}\n"
        ).encode()


def encode_drop(reason: DropReason, packets: int, octets: int) -> bytes:
    return (f"DROP reason={reason.value} packets={packets} "
            f"octets={octets}\n").encode()


class IpfixCollector:
    """The in-sim collector: totals plus the raw export stream."""

    def __init__(self) -> None:
        self.flow_records = 0
        self.flow_packets = 0
        self.flow_octets = 0
        self.drop_records = 0
        self.drop_packets = 0
        self.drop_octets = 0
        self._stream: List[bytes] = []

    def receive_flow(self, record: IpfixFlowRecord) -> None:
        self.flow_records += 1
        self.flow_packets += record.packets
        self.flow_octets += record.octets
        self._stream.append(record.encode())

    def receive_drop(self, reason: DropReason, packets: int,
                     octets: int) -> None:
        self.drop_records += 1
        self.drop_packets += packets
        self.drop_octets += octets
        self._stream.append(encode_drop(reason, packets, octets))

    def stream_bytes(self) -> bytes:
        """The received export stream, byte-deterministic per seed."""
        return b"".join(self._stream)


class IpfixExporter:
    """The flow cache plus the (possibly lossy) path to the collector.

    Expiry is lazy but exact on the virtual clock: the exporter keeps
    the earliest deadline over all cached flows and sweeps the cache
    only when an update's ``now`` has reached it, so the steady-state
    per-packet work is one comparison.
    """

    def __init__(self, config: IpfixConfig,
                 collector: Optional[IpfixCollector] = None) -> None:
        self.config = config
        self.collector = collector if collector is not None \
            else IpfixCollector()
        #: Insertion-ordered flow cache (export order is deterministic).
        self.cache: Dict[FlowKeyT, IpfixFlowRecord] = {}
        #: Internal drop-event tallies, by reason (export-loss immune;
        #: these are what reconciliation checks against the ledger).
        self.drop_packets: Dict[DropReason, int] = {}
        self.drop_octets: Dict[DropReason, int] = {}
        #: Everything flushed toward the collector (received + lost).
        self.exported_flow_records = 0
        self.exported_flow_packets = 0
        self.exported_flow_octets = 0
        self.exported_drop_records = 0
        self.exported_drop_packets = 0
        self.exported_drop_octets = 0
        #: Records the ``telemetry.collector_loss`` fault point ate.
        self.lost_flow_records = 0
        self.lost_flow_packets = 0
        self.lost_flow_octets = 0
        self.lost_drop_records = 0
        self.lost_drop_packets = 0
        self.lost_drop_octets = 0
        self._next_deadline_ns: float = _NEVER

    # ------------------------------------------------------------------
    # The per-packet path.
    # ------------------------------------------------------------------
    def update(self, pkt, now_ns: int, ctx) -> None:
        """Fold one observed packet into the cache (charged)."""
        if ctx is not None:
            ctx.charge(_costs.DEFAULT_COSTS.ipfix_flow_update_ns,
                       label="ipfix_update")
        if now_ns >= self._next_deadline_ns:
            self._sweep(now_ns, ctx)
        in_port = getattr(pkt.meta, "in_port", 0) or 0
        key = (in_port, tuple(extract_flow(pkt.data).five_tuple()))
        record = self.cache.get(key)
        n = len(pkt.data)
        if record is None:
            self.cache[key] = IpfixFlowRecord(key, 1, n, now_ns, now_ns)
            cfg = self.config
            deadline = now_ns + min(cfg.active_timeout_ns,
                                    cfg.idle_timeout_ns)
            if deadline < self._next_deadline_ns:
                self._next_deadline_ns = deadline
        else:
            record.packets += 1
            record.octets += n
            record.end_ns = now_ns

    def note_drop(self, reason: DropReason, n: int, octets: int) -> None:
        """Tally a drop event (uncharged bookkeeping)."""
        self.drop_packets[reason] = self.drop_packets.get(reason, 0) + n
        self.drop_octets[reason] = \
            self.drop_octets.get(reason, 0) + octets
        _trace.count("drop." + reason.value, n)

    # ------------------------------------------------------------------
    # Expiry and export.
    # ------------------------------------------------------------------
    def _deadline(self, record: IpfixFlowRecord) -> int:
        cfg = self.config
        return min(record.start_ns + cfg.active_timeout_ns,
                   record.end_ns + cfg.idle_timeout_ns)

    def _sweep(self, now_ns: int, ctx) -> None:
        """Flush every expired flow; recompute the earliest deadline.

        A flow whose idle deadline moved forward since it set
        ``_next_deadline_ns`` just makes the sweep early and empty —
        correctness never depends on the stored deadline being tight.
        """
        expired = [key for key, record in self.cache.items()
                   if self._deadline(record) <= now_ns]
        for key in expired:
            self._flush_flow(self.cache.pop(key), ctx)
        self._next_deadline_ns = min(
            (self._deadline(r) for r in self.cache.values()),
            default=_NEVER)

    def _flush_flow(self, record: IpfixFlowRecord, ctx) -> None:
        if ctx is not None:
            ctx.charge(_costs.DEFAULT_COSTS.ipfix_encode_ns,
                       label="ipfix_export")
        self.exported_flow_records += 1
        self.exported_flow_packets += record.packets
        self.exported_flow_octets += record.octets
        _trace.count("ipfix.flows_exported")
        if self._record_lost():
            self.lost_flow_records += 1
            self.lost_flow_packets += record.packets
            self.lost_flow_octets += record.octets
        else:
            self.collector.receive_flow(record)

    def _flush_drop(self, reason: DropReason, ctx) -> None:
        packets = self.drop_packets.get(reason, 0)
        octets = self.drop_octets.get(reason, 0)
        if not packets:
            return
        if ctx is not None:
            ctx.charge(_costs.DEFAULT_COSTS.ipfix_encode_ns,
                       label="ipfix_export")
        self.exported_drop_records += 1
        self.exported_drop_packets += packets
        self.exported_drop_octets += octets
        if self._record_lost():
            self.lost_drop_records += 1
            self.lost_drop_packets += packets
            self.lost_drop_octets += octets
        else:
            self.collector.receive_drop(reason, packets, octets)

    def _record_lost(self) -> bool:
        plan = _faults.ACTIVE
        return (plan is not None
                and plan.should_fire("telemetry.collector_loss"))

    def flush_all(self, ctx=None) -> None:
        """Flush every cached flow and all drop records.

        Called once at the end of a run; with ``ctx=None`` the final
        flush is uncharged bookkeeping (it sits outside the measured
        window).
        """
        for key in list(self.cache):
            self._flush_flow(self.cache.pop(key), ctx)
        self._next_deadline_ns = _NEVER
        for reason in sorted(self.drop_packets, key=lambda r: r.value):
            self._flush_drop(reason, ctx)
