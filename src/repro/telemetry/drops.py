"""The unified drop-reason taxonomy.

Modeled on the kernel's ``skb_drop_reason`` enum: every place the
simulation loses (or diverts) a packet names a :class:`DropReason`
member instead of an ad-hoc string.  The enum *value* is the exact sink
string the conservation ledger has always used, so adopting the
taxonomy is a pure rename — ``tools/conservation.py`` ledgers,
``coverage/show`` counters (``drop.<reason>``) and exported IPFIX drop
records all speak this one vocabulary, byte-identical to the historic
literals.

Each member carries:

* ``stage`` — where the loss sits relative to the datapath dispatch
  point the telemetry layer observes at.  ``PRE_DATAPATH`` losses never
  reached the observation hook (so IPFIX flow totals exclude them),
  ``DATAPATH``/``POST_DATAPATH`` losses did (so flow totals include
  them).  This is what makes the reconciliation invariant of
  :meth:`repro.telemetry.Telemetry.reconcile` exact.
* ``ledger_sink`` — the coarse conservation-ledger sink this reason
  folds into, or ``None`` for reasons the ledgers do not account (the
  kernel datapath's internal drops).  Several fine-grained datapath
  reasons share the coarse ``dp.dropped`` sink, exactly as many
  ``skb_drop_reason``s share one interface counter.
* ``counter`` — for XSK reasons, the bare per-socket attribute name
  (``XskSocket.rx_dropped_no_fill`` etc.) the sink value is read from.

This module deliberately imports nothing but the standard library so
that ``tools/conservation.py``, ``afxdp/driver.py`` and ``ebpf/xdp.py``
can all use it without import cycles.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple


class DropStage(enum.Enum):
    """Where a loss sits relative to the datapath observation hook."""

    #: Lost before the datapath dispatch point (never observed).
    PRE_DATAPATH = "pre_datapath"
    #: Lost by the datapath itself (observed, then dropped).
    DATAPATH = "datapath"
    #: Lost after datapath processing, on the transmit side.
    POST_DATAPATH = "post_datapath"


class DropReason(enum.Enum):
    """One member per way the simulation can lose (or divert) a packet.

    The value is the canonical sink string; ``str(reason.value)`` is what
    ledgers render and what ``coverage/show`` counts as
    ``drop.<value>``.
    """

    def __new__(cls, value: str, stage: "DropStage",
                ledger_sink: Optional[str],
                counter: Optional[str] = None) -> "DropReason":
        obj = object.__new__(cls)
        obj._value_ = value
        obj.stage = stage
        obj.ledger_sink = ledger_sink
        obj.counter = counter
        return obj

    # -- NIC / XDP layer (before any datapath saw the packet) ----------
    #: Hardware rx ring full; the frame was never DMAed.
    NIC_RX_MISSED = ("nic.rx_missed", DropStage.PRE_DATAPATH,
                     "nic.rx_missed")
    #: The attached XDP program returned DROP (or ABORTED).
    NIC_XDP_DROP = ("nic.xdp_drops", DropStage.PRE_DATAPATH,
                    "nic.xdp_drops")
    #: XDP_PASS diverted the frame into the kernel stack — not a loss,
    #: but a leg the AF_XDP ledger must account for.
    NIC_XDP_PASS_TO_STACK = ("nic.xdp_passes_to_stack",
                             DropStage.PRE_DATAPATH,
                             "nic.xdp_passes_to_stack")
    #: XDP_REDIRECT had no live socket/device to land on.
    NIC_XDP_REDIRECT_FAILED = ("nic.xdp_redirect_failed",
                               DropStage.PRE_DATAPATH,
                               "nic.xdp_redirect_failed")

    # -- AF_XDP socket rx (before the PMD polled the frame) ------------
    XSK_RX_NO_FILL = ("xsk.rx_dropped_no_fill", DropStage.PRE_DATAPATH,
                      "xsk.rx_dropped_no_fill", "rx_dropped_no_fill")
    XSK_RX_OVERRUN = ("xsk.rx_dropped_overrun", DropStage.PRE_DATAPATH,
                      "xsk.rx_dropped_overrun", "rx_dropped_overrun")

    # -- Userspace datapath (DpifNetdev) -------------------------------
    #: The coarse ledger sink every fine-grained dp.* reason folds into
    #: (``DpifNetdev.stats.dropped``); never emitted as an event itself.
    DP_DROPPED = ("dp.dropped", DropStage.DATAPATH, "dp.dropped")
    DP_UPCALL_LOST = ("dp.upcall_lost", DropStage.DATAPATH, "dp.dropped")
    DP_UPCALL_FAILED = ("dp.upcall_failed", DropStage.DATAPATH,
                        "dp.dropped")
    DP_RECIRC_LIMIT = ("dp.recirc_limit", DropStage.DATAPATH,
                       "dp.dropped")
    DP_EMPTY_ACTIONS = ("dp.empty_actions", DropStage.DATAPATH,
                        "dp.dropped")
    DP_METER_DROP = ("dp.meter_drop", DropStage.DATAPATH, "dp.dropped")
    DP_TUNNEL_DECAP_FAILED = ("dp.tunnel_decap_failed",
                              DropStage.DATAPATH, "dp.dropped")
    DP_TX_NO_PORT = ("dp.tx_no_port", DropStage.DATAPATH, "dp.dropped")

    # -- Kernel datapath (openvswitch.ko analog) -----------------------
    # The kernel worlds' ledgers have no dp sink (conservation there is
    # nic-level), so these carry no ledger_sink.
    KERNEL_RX_NO_PORT = ("kernel.rx_no_port", DropStage.PRE_DATAPATH,
                         None)
    KERNEL_UPCALL_LOST = ("kernel.upcall_lost", DropStage.DATAPATH, None)
    KERNEL_RECIRC_LIMIT = ("kernel.recirc_limit", DropStage.DATAPATH,
                           None)
    KERNEL_TUNNEL_DECAP_FAILED = ("kernel.tunnel_decap_failed",
                                  DropStage.DATAPATH, None)
    KERNEL_OUTPUT_NO_PORT = ("kernel.output_no_port", DropStage.DATAPATH,
                             None)

    # -- AF_XDP socket tx (after the datapath forwarded the frame) -----
    XSK_TX_NO_UMEM = ("xsk.tx_dropped_no_umem", DropStage.POST_DATAPATH,
                      "xsk.tx_dropped_no_umem", "tx_dropped_no_umem")
    XSK_TX_RING_FULL = ("xsk.tx_dropped_ring_full",
                        DropStage.POST_DATAPATH,
                        "xsk.tx_dropped_ring_full", "tx_dropped_ring_full")
    XSK_TX_KICK = ("xsk.tx_dropped_kick", DropStage.POST_DATAPATH,
                   "xsk.tx_dropped_kick", "tx_dropped_kick")

    # -- Supervised crash recovery --------------------------------------
    #: Frames sitting in XSK rx rings when the daemon died.
    CRASH_XSK_RX_INFLIGHT = ("crash.xsk_rx_inflight",
                             DropStage.PRE_DATAPATH,
                             "crash.xsk_rx_inflight")
    #: Frames sitting in XSK tx rings when the daemon died.
    CRASH_XSK_TX_INFLIGHT = ("crash.xsk_tx_inflight",
                             DropStage.POST_DATAPATH,
                             "crash.xsk_tx_inflight")
    #: Frames stranded in DPDK hardware rings across a rebind.
    CRASH_DPDK_RING_RESET = ("crash.dpdk_ring_reset",
                             DropStage.PRE_DATAPATH,
                             "crash.dpdk_ring_reset")


#: XSK per-socket rx counters, in the order the driver retires them.
XSK_RX_REASONS: Tuple[DropReason, ...] = (
    DropReason.XSK_RX_NO_FILL,
    DropReason.XSK_RX_OVERRUN,
)

#: XSK per-socket tx counters, in the order the driver retires them.
XSK_TX_REASONS: Tuple[DropReason, ...] = (
    DropReason.XSK_TX_NO_UMEM,
    DropReason.XSK_TX_RING_FULL,
    DropReason.XSK_TX_KICK,
)


_BY_SINK: Dict[str, DropReason] = {
    reason.value: reason for reason in DropReason
}


def reason_for_sink(sink: str) -> DropReason:
    """The taxonomy member whose canonical value is ``sink``.

    Raises ``KeyError`` for unknown sinks — an unknown name means a
    ledger leg escaped the taxonomy, which is exactly the bug the
    unified vocabulary exists to prevent.
    """
    return _BY_SINK[sink]
