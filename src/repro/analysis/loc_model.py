"""Figure 1: the out-of-tree kernel module's maintenance burden.

Two artifacts:

* :data:`OUT_OF_TREE_CHURN` — the lines-of-code-changed series of
  Figure 1 (digitised from the paper's chart; the paper publishes the
  chart, not a table, so values are approximate but the *shape* — several
  thousand lines of pure backporting every single year — is the point).
* :class:`BackportModel` — a generative model of backport amplification
  calibrated on the two case studies the paper quantifies exactly:
  ERSPAN (50 upstream lines -> 5,000+ backport lines across 25 commits)
  and per-zone connection limiting (600 upstream -> 700 + 14 follow-up
  commits).  The model lets the Figure 1 bench regenerate a churn series
  from feature/backport activity and compare its shape to the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.rng import make_rng

#: year -> (new feature LoC, backport LoC), digitised from Figure 1.
OUT_OF_TREE_CHURN: Dict[int, Tuple[int, int]] = {
    2015: (9_000, 4_000),
    2016: (11_000, 6_000),
    2017: (25_000, 9_000),
    2018: (9_000, 13_000),
    2019: (4_000, 8_000),
}


@dataclass(frozen=True)
class BackportCaseStudy:
    feature: str
    upstream_loc: int
    backport_loc: int
    upstream_commits: int
    backport_commits: int


#: §2.1.1's two quantified examples.
BACKPORT_CASE_STUDIES: List[BackportCaseStudy] = [
    BackportCaseStudy(
        feature="ERSPAN v1/v2 support",
        upstream_loc=50,
        backport_loc=5_000,
        upstream_commits=1,
        backport_commits=25,
    ),
    BackportCaseStudy(
        feature="per-zone connection limiting (nf_conncount)",
        upstream_loc=600,
        backport_loc=700 + 600,  # initial 700 + 14 bug-fix commits
        upstream_commits=1,
        backport_commits=14 + 14,
    ),
]


class BackportModel:
    """Generate a churn series: backport LoC as amplified feature LoC.

    Per feature, the backport amplification factor is drawn log-uniformly
    between the two case studies' observed factors (~2x for conncount,
    ~100x for ERSPAN, depending on how much missing infrastructure the
    old kernels need), and every supported old kernel adds compatibility
    churn each year ("run faster and faster just to stay in the same
    place").
    """

    def __init__(self, n_supported_kernels: int = 6, seed: int = 1) -> None:
        if n_supported_kernels < 1:
            raise ValueError("must support at least one kernel")
        self.n_supported_kernels = n_supported_kernels
        self._rng = make_rng("backport-model", seed)
        lo = min(c.backport_loc / c.upstream_loc for c in BACKPORT_CASE_STUDIES)
        hi = max(c.backport_loc / c.upstream_loc for c in BACKPORT_CASE_STUDIES)
        self._amp_range = (lo, hi)

    def amplification(self) -> float:
        import math

        lo, hi = self._amp_range
        return math.exp(self._rng.uniform(math.log(lo), math.log(hi)))

    def backport_loc_for_feature(self, upstream_loc: int) -> int:
        return int(upstream_loc * self.amplification())

    def yearly_compat_churn(self, kernel_releases_per_year: int = 5) -> int:
        """Pure keep-up churn: adapting to new kernel releases."""
        per_release = self._rng.randrange(300, 1_200)
        return kernel_releases_per_year * per_release

    def simulate_years(
        self, feature_loc_per_year: List[int]
    ) -> List[Tuple[int, int]]:
        """Returns [(new_feature_loc, backport_loc)] per year."""
        out = []
        for features in feature_loc_per_year:
            backports = self.yearly_compat_churn()
            # A small slice of each year's feature lines needs missing
            # kernel infrastructure backported, at the (heavy-tailed)
            # amplification the case studies exhibit.
            backports += self.backport_loc_for_feature(features // 50)
            out.append((features, backports))
        return out
