"""Text rendering for experiment output: tables and bar charts.

Benches print the same rows/series the paper's tables and figures show;
these helpers keep that output aligned and readable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A plain monospaced table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows))
        if str_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    unit: str = "",
    width: int = 40,
    title: str = "",
    max_value: Optional[float] = None,
) -> str:
    """A horizontal ASCII bar chart (one bar per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    top = max_value if max_value is not None else max(values, default=0)
    if top <= 0:
        top = 1.0
    label_w = max((len(l) for l in labels), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(value / top * width))
        lines.append(f"{label.ljust(label_w)} |{bar.ljust(width)}| "
                     f"{value:,.2f} {unit}".rstrip())
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:,.2f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)
