"""Analysis helpers: the Figure 1 maintenance dataset and text rendering."""

from repro.analysis.loc_model import (
    BACKPORT_CASE_STUDIES,
    OUT_OF_TREE_CHURN,
    BackportModel,
)
from repro.analysis.reporting import bar_chart, format_table

__all__ = [
    "OUT_OF_TREE_CHURN",
    "BACKPORT_CASE_STUDIES",
    "BackportModel",
    "format_table",
    "bar_chart",
]
