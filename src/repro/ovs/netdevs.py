"""Port adapters: how dpif-netdev drives each kind of packet I/O.

Each adapter exposes ``rx_burst(ctx, batch, queue)`` and
``tx_burst(pkts, ctx, queue)`` over one underlying I/O mechanism:

* :class:`AfxdpAdapter` — the paper's AF_XDP driver (netdev-afxdp);
* :class:`DpdkAdapter` — a DPDK ethdev (netdev-dpdk);
* :class:`VhostAdapter` — a vhost-user VM interface;
* :class:`TapAdapter` — a tap/AF_PACKET system port (the slow path A);
* :class:`SimAdapter` — direct injection for tests and workload drivers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.afxdp.driver import AfxdpDriver
from repro.dpdk.af_packet import AfPacketPort
from repro.dpdk.ethdev import DpdkEthDev
from repro.kernel.netdev import NetDevice
from repro.net.packet import Packet
from repro.sim.cpu import ExecContext
from repro.vhost.vhostuser import VhostUserPort


class AfxdpAdapter:
    def __init__(self, driver: AfxdpDriver) -> None:
        self.driver = driver

    @property
    def n_rxq(self) -> int:
        return self.driver.nic.n_queues

    def rx_burst(self, ctx: ExecContext, batch: int = 32,
                 queue: int = 0) -> List[Packet]:
        return self.driver.rx_burst(queue, ctx)

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext,
                 queue: int = 0) -> int:
        return self.driver.tx_burst(queue, pkts, ctx)


class DpdkAdapter:
    def __init__(self, ethdev: DpdkEthDev) -> None:
        self.ethdev = ethdev

    @property
    def n_rxq(self) -> int:
        return self.ethdev.n_queues

    def rx_burst(self, ctx: ExecContext, batch: int = 32,
                 queue: int = 0) -> List[Packet]:
        return self.ethdev.rx_burst(queue, ctx, batch=batch)

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext,
                 queue: int = 0) -> int:
        return self.ethdev.tx_burst(queue, pkts, ctx)


class VhostAdapter:
    def __init__(self, port: VhostUserPort) -> None:
        self.port = port

    n_rxq = 1

    def rx_burst(self, ctx: ExecContext, batch: int = 32,
                 queue: int = 0) -> List[Packet]:
        return self.port.rx_burst(ctx, batch=batch)

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext,
                 queue: int = 0) -> int:
        return self.port.tx_burst(pkts, ctx)


class TapAdapter:
    """A "system" port of the userspace datapath: an AF_PACKET socket on
    a kernel-managed device (tap, veth...).  Every burst is a syscall."""

    def __init__(self, device: NetDevice) -> None:
        self.af_packet = AfPacketPort(device)
        self.device = device

    n_rxq = 1

    def rx_burst(self, ctx: ExecContext, batch: int = 32,
                 queue: int = 0) -> List[Packet]:
        return self.af_packet.rx_burst(ctx, batch=batch)

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext,
                 queue: int = 0) -> int:
        return self.af_packet.tx_burst(pkts, ctx)

    def pending(self) -> int:
        return self.af_packet.pending()


class InternalTapAdapter:
    """A userspace-datapath *internal* port.

    With dpif-netdev, bridge-internal ports are tap devices: the kernel
    face is the ``br0`` interface the host stack sees; OVS reads frames
    the kernel transmitted into it and writes frames toward the stack.
    That is how the management/control TCP traffic of §4 reaches the
    kernel stack under AF_XDP (slow, but control traffic is low volume).
    """

    def __init__(self, tap) -> None:
        self.tap = tap

    n_rxq = 1

    def rx_burst(self, ctx: ExecContext, batch: int = 32,
                 queue: int = 0) -> List[Packet]:
        out: List[Packet] = []
        for _ in range(batch):
            pkt = self.tap.user_read(ctx)
            if pkt is None:
                break
            out.append(pkt)
        return out

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext,
                 queue: int = 0) -> int:
        for pkt in pkts:
            self.tap.user_write(pkt, ctx)
        return len(pkts)

    def pending(self) -> int:
        return self.tap.user_pending()


class SimAdapter:
    """Inject/collect packets directly (workload generators, tests)."""

    def __init__(self) -> None:
        self._rx: Deque[Packet] = deque()
        self.transmitted: List[Packet] = []

    n_rxq = 1

    def inject(self, pkts: List[Packet]) -> None:
        self._rx.extend(pkts)

    def rx_burst(self, ctx: ExecContext, batch: int = 32,
                 queue: int = 0) -> List[Packet]:
        n = min(batch, len(self._rx))
        return [self._rx.popleft() for _ in range(n)]

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext,
                 queue: int = 0) -> int:
        self.transmitted.extend(pkts)
        return len(pkts)

    def take_transmitted(self) -> List[Packet]:
        out = self.transmitted
        self.transmitted = []
        return out
