"""Port adapters: how dpif-netdev drives each kind of packet I/O.

Each adapter exposes ``rx_burst(ctx, batch, queue)`` and
``tx_burst(pkts, ctx, queue)`` over one underlying I/O mechanism:

* :class:`AfxdpAdapter` — the paper's AF_XDP driver (netdev-afxdp);
* :class:`DpdkAdapter` — a DPDK ethdev (netdev-dpdk);
* :class:`VhostAdapter` — a vhost-user VM interface;
* :class:`TapAdapter` — a tap/AF_PACKET system port (the slow path A);
* :class:`RingPortAdapter` — a charged SPSC ring between two PMDs
  (dpdk-ring style); the cross-shard TX handoff queue of DESIGN §17;
* :class:`SimAdapter` — direct injection for tests and workload drivers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.afxdp.driver import AfxdpDriver
from repro.dpdk.af_packet import AfPacketPort
from repro.dpdk.ethdev import DpdkEthDev
from repro.kernel.netdev import NetDevice
from repro.net.packet import Packet
from repro.sim.costs import CostModel, DEFAULT_COSTS
from repro.sim.cpu import ExecContext
from repro.vhost.vhostuser import VhostUserPort


class AfxdpAdapter:
    def __init__(self, driver: AfxdpDriver) -> None:
        self.driver = driver

    @property
    def n_rxq(self) -> int:
        return self.driver.nic.n_queues

    def rx_burst(self, ctx: ExecContext, batch: int = 32,
                 queue: int = 0) -> List[Packet]:
        return self.driver.rx_burst(queue, ctx)

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext,
                 queue: int = 0) -> int:
        return self.driver.tx_burst(queue, pkts, ctx)


class DpdkAdapter:
    def __init__(self, ethdev: DpdkEthDev) -> None:
        self.ethdev = ethdev

    @property
    def n_rxq(self) -> int:
        return self.ethdev.n_queues

    def rx_burst(self, ctx: ExecContext, batch: int = 32,
                 queue: int = 0) -> List[Packet]:
        return self.ethdev.rx_burst(queue, ctx, batch=batch)

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext,
                 queue: int = 0) -> int:
        return self.ethdev.tx_burst(queue, pkts, ctx)


class VhostAdapter:
    def __init__(self, port: VhostUserPort) -> None:
        self.port = port

    n_rxq = 1

    def rx_burst(self, ctx: ExecContext, batch: int = 32,
                 queue: int = 0) -> List[Packet]:
        return self.port.rx_burst(ctx, batch=batch)

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext,
                 queue: int = 0) -> int:
        return self.port.tx_burst(pkts, ctx)


class TapAdapter:
    """A "system" port of the userspace datapath: an AF_PACKET socket on
    a kernel-managed device (tap, veth...).  Every burst is a syscall."""

    def __init__(self, device: NetDevice) -> None:
        self.af_packet = AfPacketPort(device)
        self.device = device

    n_rxq = 1

    def rx_burst(self, ctx: ExecContext, batch: int = 32,
                 queue: int = 0) -> List[Packet]:
        return self.af_packet.rx_burst(ctx, batch=batch)

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext,
                 queue: int = 0) -> int:
        return self.af_packet.tx_burst(pkts, ctx)

    def pending(self) -> int:
        return self.af_packet.pending()


class InternalTapAdapter:
    """A userspace-datapath *internal* port.

    With dpif-netdev, bridge-internal ports are tap devices: the kernel
    face is the ``br0`` interface the host stack sees; OVS reads frames
    the kernel transmitted into it and writes frames toward the stack.
    That is how the management/control TCP traffic of §4 reaches the
    kernel stack under AF_XDP (slow, but control traffic is low volume).
    """

    def __init__(self, tap) -> None:
        self.tap = tap

    n_rxq = 1

    def rx_burst(self, ctx: ExecContext, batch: int = 32,
                 queue: int = 0) -> List[Packet]:
        out: List[Packet] = []
        for _ in range(batch):
            pkt = self.tap.user_read(ctx)
            if pkt is None:
                break
            out.append(pkt)
        return out

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext,
                 queue: int = 0) -> int:
        for pkt in pkts:
            self.tap.user_write(pkt, ctx)
        return len(pkts)

    def pending(self) -> int:
        return self.tap.user_pending()


class RingPortAdapter:
    """A charged SPSC packet ring between two PMDs (dpdk-ring style).

    The producer PMD's ``tx_burst`` pays the doorbell plus one descriptor
    push per frame; the consumer PMD's ``rx_burst`` pays the same on the
    pop side — exactly the ring cost model the AF_XDP sockets use.  When
    producer and consumer live in different shards (DESIGN §17) the
    coordinator ships the queued frames at each burst barrier with
    :meth:`take_all`/:meth:`feed`; the charges are unaffected, since the
    tx side already paid in the producer's shard and the rx side pays in
    the consumer's, which is byte-identical to both PMDs sharing one
    process.
    """

    def __init__(self, name: str = "ring", capacity: int = 2048,
                 costs: Optional[CostModel] = None) -> None:
        self.name = name
        self.capacity = capacity
        self.costs = costs if costs is not None else DEFAULT_COSTS
        self._ring: Deque[Packet] = deque()
        #: Lifetime accounting for ``appctl shard/show``.
        self.enqueued = 0
        self.dequeued = 0
        self.dropped_ring_full = 0
        self.peak_depth = 0
        self.transfers = 0

    n_rxq = 1

    def rx_burst(self, ctx: ExecContext, batch: int = 32,
                 queue: int = 0) -> List[Packet]:
        n = min(batch, len(self._ring))
        if n == 0:
            return []
        costs = self.costs
        ctx.charge(costs.ring_batch_ns + n * costs.ring_op_ns,
                   label="ring_rx")
        self.dequeued += n
        return [self._ring.popleft() for _ in range(n)]

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext,
                 queue: int = 0) -> int:
        costs = self.costs
        room = self.capacity - len(self._ring)
        accepted = pkts if room >= len(pkts) else pkts[:room]
        ctx.charge(costs.ring_batch_ns + len(accepted) * costs.ring_op_ns,
                   label="ring_tx")
        self._ring.extend(accepted)
        self.enqueued += len(accepted)
        self.dropped_ring_full += len(pkts) - len(accepted)
        depth = len(self._ring)
        if depth > self.peak_depth:
            self.peak_depth = depth
        return len(accepted)

    # -- coordinator-side handoff (uncharged: not a dataplane action) ---
    def pending(self) -> int:
        return len(self._ring)

    def take_all(self) -> List[Packet]:
        """Drain the queued frames for shipment to the consumer shard."""
        out = list(self._ring)
        self._ring.clear()
        if out:
            self.transfers += 1
        return out

    def feed(self, pkts: List[Packet]) -> None:
        """Accept frames shipped from the producer shard's replica."""
        self._ring.extend(pkts)
        depth = len(self._ring)
        if depth > self.peak_depth:
            self.peak_depth = depth


class SimAdapter:
    """Inject/collect packets directly (workload generators, tests)."""

    def __init__(self) -> None:
        self._rx: Deque[Packet] = deque()
        self.transmitted: List[Packet] = []

    n_rxq = 1

    def inject(self, pkts: List[Packet]) -> None:
        self._rx.extend(pkts)

    def rx_burst(self, ctx: ExecContext, batch: int = 32,
                 queue: int = 0) -> List[Packet]:
        n = min(batch, len(self._rx))
        return [self._rx.popleft() for _ in range(n)]

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext,
                 queue: int = 0) -> int:
        self.transmitted.extend(pkts)
        return len(pkts)

    def take_transmitted(self) -> List[Packet]:
        out = self.transmitted
        self.transmitted = []
        return out
