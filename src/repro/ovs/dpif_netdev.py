"""dpif-netdev: the userspace datapath.

This is where the paper's architecture change lands: the whole fast path —
EMC, megaflow classifier, conntrack, tunnels, action execution — runs in
ovs-vswitchd, fed by pluggable packet I/O adapters (AF_XDP, DPDK,
vhostuser, tap/AF_PACKET).  Per-packet processing:

1. miniflow extract (``flow_extract_ns``),
2. EMC probe (per-PMD exact-match cache),
3. on miss, megaflow classifier probe (cost grows with distinct masks),
4. on miss, upcall — here just a function call into ofproto's translator
   (``userspace_slowpath_ns``), *not* the kernel datapath's 25 µs
   user/kernel round trip: misses are an order of magnitude cheaper in
   userspace, which matters for §5.2's 1000-flow runs,
5. execute actions; recirculation (ct pipelines) loops back to step 1
   with a new recirc id, so the NSX pipeline really does cost three
   lookups per packet (§5.1).

Transmit is batched per output port per input burst, as the real PMD
does — this is what amortises the AF_XDP tx-kick syscall.

Burst-oriented classification
=============================

``process_batch`` classifies a received burst the way real
``dp_netdev_input`` does: flow keys are resolved once per distinct
packet shape in the burst (a per-burst memo keyed by the bytes that
feed extraction), EMC outcomes are replayed from a cross-burst flow
cache when nothing displaced them, and each unique flow walks the
megaflow classifier at most once per burst.  Packets whose entry is a
single Output action take an inlined executor fast path; everything
else (recirculation, conntrack, tunnels) falls back to the retained
per-packet reference path, ``_process_one``.

The batched path must be *observationally equivalent* to the reference
path: identical action results, identical cache/stat counters, and
byte-identical virtual-time charges (same charge values, in the same
order, against the same accumulators — float addition is not
associative, so outcomes may be memoized but charges are always
replayed per packet).  Set :data:`BATCH_CLASSIFY` to ``False`` (or pass
``batch_classify=False``) to run the reference path; the equivalence
and determinism suites compare the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Tuple

from repro.net.flow import FlowKey, extract_flow
from repro.net.packet import Packet
from repro.net.tunnel import decapsulate, encapsulate
from repro.ovs import odp
from repro.ovs import dpjit
from repro.ovs.ct_userspace import UserspaceConntrack
from repro.ovs.emc import ExactMatchCache
from repro.ovs.megaflow import MegaflowCache
from repro.sim import fastpath
from repro.ovs.meter import MeterTable
from repro.ovs.packet_ops import do_pop_vlan, do_push_vlan, set_field
from repro.sim import faults, trace
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext
from repro import telemetry
from repro.telemetry.drops import DropReason

MAX_RECIRC_PASSES = 8

#: The revalidator never tightens the megaflow budget below this, and
#: relaxes it back by this step per calm pass (the shape of real
#: udpif's flow_limit controller).
FLOW_LIMIT_MIN = 128
FLOW_LIMIT_STEP = 1000

#: Default for burst-oriented classification; instances may override via
#: ``batch_classify``.  The reference per-packet path is kept for
#: equivalence testing and recirculated passes.
BATCH_CLASSIFY = True

#: Cap on the per-EMC cross-burst flow cache (token -> classification);
#: cleared wholesale when full, like a generation flip.
FLOW_CACHE_MAX = 16384


class PortAdapter(Protocol):
    """Packet I/O the datapath can drive.  AF_XDP, DPDK ethdev, vhostuser
    and AF_PACKET adapters all satisfy this shape."""

    def rx_burst(self, ctx: ExecContext, batch: int = 32) -> List[Packet]: ...

    def tx_burst(self, pkts: List[Packet], ctx: ExecContext) -> int: ...


@dataclass
class DpPort:
    port_no: int
    name: str
    adapter: object
    kind: str = "netdev"  # netdev | internal | tunnel | vhost
    #: Underlying device (for ifindex-based tunnel route resolution).
    device: object = None
    rx_packets: int = 0
    tx_packets: int = 0
    #: Which worker process owns this port under sharded execution
    #: (DESIGN §17); placement metadata, byte-inert on serial runs.
    shard: int = 0
    #: True when tx on this port crosses into another shard (the
    #: adapter is a cross-shard handoff ring); bumps the handoff tally.
    handoff: bool = False
    #: Packets that left this shard through the handoff ring.
    tx_handoff_packets: int = 0


@dataclass
class PipelineStats:
    """Pipeline outcome counters.

    One instance aggregates datapath-wide on :class:`DpifNetdev`; each
    PMD thread keeps its own (threaded through ``process_batch``) so
    ``dpif-netdev/pmd-stats-show`` can attribute hits per core, like
    the real command.
    """

    emc_hits: int = 0
    megaflow_hits: int = 0
    upcalls: int = 0
    failed_upcalls: int = 0
    #: Misses shed before reaching the handler (bounded upcall queue /
    #: overload breaker) — the dpctl/show ``lost:`` column.  Lost
    #: packets are also counted in ``dropped`` (their fate); ``lost``
    #: records the cause.
    lost: int = 0
    passes: int = 0
    dropped: int = 0
    packets: int = 0
    #: Number of rx bursts processed and the packets-per-batch histogram
    #: (batch size -> occurrences), the figures behind pmd-perf-show's
    #: batching lines.
    batches: int = 0
    batch_hist: Dict[int, int] = field(default_factory=dict)

    @property
    def avg_batch(self) -> float:
        """Mean packets per rx batch."""
        return self.packets / self.batches if self.batches else 0.0


class DpifNetdev:
    """The userspace datapath instance inside one vswitchd."""

    def __init__(self, name: str = "netdev@ovs-netdev",
                 now_ns_fn: Callable[[], int] = lambda: 0,
                 batch_classify: Optional[bool] = None) -> None:
        self.name = name
        #: Tri-state: None defers to the module-level BATCH_CLASSIFY at
        #: each burst, so tests can flip the global and compare paths.
        self.batch_classify = batch_classify
        self.ports: Dict[int, DpPort] = {}
        self._port_by_name: Dict[str, int] = {}
        self._next_port = 1
        self.megaflows = MegaflowCache()
        self.conntrack = UserspaceConntrack(now_ns_fn=now_ns_fn)
        self.meters = MeterTable()
        self.now_ns_fn = now_ns_fn
        #: The slow path: key -> (actions, mask).  vswitchd wires this to
        #: ofproto.translate.
        self.upcall_fn: Optional[Callable[[FlowKey, Optional[ExecContext]],
                                          Tuple]] = None
        self.stats = PipelineStats()
        #: Megaflow install budget (None = the cache's own max).  Seeded
        #: from an installed FaultPlan and tightened/relaxed by the
        #: revalidator under upcall pressure, like real udpif.
        self.flow_limit: Optional[int] = None
        self._burst_upcalls = 0
        self._reval_lost_seen = 0

    # ------------------------------------------------------------------
    def add_port(self, name: str, adapter: object, kind: str = "netdev",
                 device: object = None) -> DpPort:
        if name in self._port_by_name:
            raise ValueError(f"port {name!r} exists")
        port = DpPort(self._next_port, name, adapter, kind=kind, device=device)
        self.ports[port.port_no] = port
        self._port_by_name[name] = port.port_no
        self._next_port += 1
        return port

    def del_port(self, name: str) -> None:
        port_no = self._port_by_name.pop(name, None)
        if port_no is None:
            raise KeyError(f"no port {name!r}")
        del self.ports[port_no]

    def port_no(self, name: str) -> int:
        return self._port_by_name[name]

    def port_device(self, port_no: int) -> object:
        port = self.ports.get(port_no)
        return port.device if port else None

    def flow_flush(self) -> None:
        self.megaflows.flush()

    def cold_start(self, ctx: Optional[ExecContext] = None,
                   emcs=()) -> None:
        """The daemon process restarted: every userspace cache is rebuilt
        from nothing — megaflows (and their compiled dp-JIT closures),
        the per-PMD EMCs, and the userspace conntrack table, whose state
        died with the old process (the §6 trade-off the kernel datapath
        does not pay).  The first packets after recovery all miss and
        upcall; the flow-limit controller governs the resulting storm.

        With ``ctx`` the new process's conntrack table allocation is
        charged; the caches themselves are empty allocations covered by
        the exec cost."""
        self.flow_flush()
        for emc in emcs:
            emc.flush()
        self.conntrack.flush()
        if ctx is not None:
            ctx.charge(DEFAULT_COSTS.conntrack_init_ns, label="ct_restart")
        trace.count("dpif.cold_start")

    def revalidate(self, max_idle_ns: int = 10_000_000_000,
                   emcs=()) -> Dict[str, int]:
        """The revalidator pass: expire idle megaflows and re-translate
        the rest against the current OpenFlow tables, dropping any whose
        decision changed (they reinstall on the next packet).

        ``emcs`` are the per-PMD exact-match caches to flush when any
        megaflow was dropped (EMC entries reference the same decisions).
        Re-translation walks the real tables, so, like the real
        revalidator, it is control-plane work — run it from a utility
        thread, not a PMD.  Returns counters.
        """
        now = self.now_ns_fn()
        removed_idle = 0
        removed_changed = 0
        kept = 0
        for entry in self.megaflows.entries():
            if now - entry.last_used_ns > max_idle_ns:
                self.megaflows.remove(entry.key, entry.mask)
                removed_idle += 1
                continue
            try:
                fresh = (self.upcall_fn(entry.key, None)
                         if self.upcall_fn else None)
            except Exception:
                # A raising translator must not crash the control-plane
                # pass: the stale flow is evicted (it reinstalls on the
                # next packet, when translation may succeed again).
                self.stats.failed_upcalls += 1
                trace.count("dp.revalidate_upcall_errors")
                fresh = None
            if (fresh is None or tuple(fresh[0]) != entry.actions
                    or tuple(fresh[1]) != tuple(entry.mask)):
                self.megaflows.remove(entry.key, entry.mask)
                removed_changed += 1
            else:
                kept += 1
        if removed_idle or removed_changed:
            for emc in emcs:
                emc.flush()
        flow_limit = self._adjust_flow_limit()
        return {
            "removed_idle": removed_idle,
            "removed_changed": removed_changed,
            "kept": kept,
            "flow_limit": -1 if flow_limit is None else flow_limit,
        }

    def _adjust_flow_limit(self) -> Optional[int]:
        """The udpif flow-limit controller: halve the megaflow budget
        while upcalls are being lost, creep it back up when calm.

        Inert (stays ``None`` = uncapped) until pressure first appears,
        so plan-less runs are untouched.
        """
        lost_delta = self.stats.lost - self._reval_lost_seen
        self._reval_lost_seen = self.stats.lost
        if lost_delta > 0:
            base = (self.flow_limit if self.flow_limit is not None
                    else self.megaflows.max_flows)
            self.flow_limit = max(FLOW_LIMIT_MIN,
                                  min(base, len(self.megaflows) or base) // 2)
            trace.count("dp.flow_limit_tightened")
        elif self.flow_limit is not None:
            relaxed = self.flow_limit + FLOW_LIMIT_STEP
            # Fully recovered: lift the cap entirely.
            self.flow_limit = (None if relaxed >= self.megaflows.max_flows
                               else relaxed)
        return self.flow_limit

    # ------------------------------------------------------------------
    # The fast path.
    # ------------------------------------------------------------------
    def process_batch(
        self,
        pkts: List[Packet],
        in_port: int,
        ctx: ExecContext,
        emc: ExactMatchCache,
        tx_queue: int = 0,
        stats: Optional[PipelineStats] = None,
    ) -> Dict[int, List[Packet]]:
        """Run one received burst through the pipeline.

        ``tx_queue`` is the hardware tx queue used when flushing (a PMD
        transmits on its own queue).  ``stats``, when given, is a
        second counter set (the calling PMD's) bumped alongside the
        datapath-wide one.  Returns the per-port transmit batches
        (after flushing), mainly for tests.
        """
        tx_batches: Dict[int, List[Packet]] = {}
        n = len(pkts)
        port = self.ports.get(in_port)
        if port is not None:
            port.rx_packets += n
        statses = ((self.stats,) if stats is None
                   else (self.stats, stats))
        for s in statses:
            s.packets += n
            s.batches += 1
            s.batch_hist[n] = s.batch_hist.get(n, 0) + 1
        rec = trace.ACTIVE
        if rec is not None:
            rec.count("dp.rx_packets", n)
            rec.note_batch("dp.rx", n)
        self._burst_upcalls = 0
        for pkt in pkts:
            pkt.meta.in_port = in_port
            pkt.meta.recirc_id = 0
            pkt.meta.ct_state = 0
            pkt.meta.ct_zone = 0
        batched = self.batch_classify
        if batched is None:
            batched = BATCH_CLASSIFY
        # Profiler-only frame (no ledger span): groups every charge this
        # burst makes under dp.input in the call tree.  One attribute
        # load when profiling is off.
        prof = rec.profiler if rec is not None else None
        if prof is not None:
            prof.enter("dp.input")
        try:
            if batched:
                self._classify_execute_burst(
                    pkts, ctx, emc, tx_batches, statses)
            else:
                for pkt in pkts:
                    self._process_one(pkt, ctx, emc, tx_batches, 0, statses)
            self._flush_tx(tx_batches, ctx, tx_queue)
        finally:
            if prof is not None:
                prof.exit_()
        return tx_batches

    def _classify_execute_burst(
        self,
        pkts: List[Packet],
        ctx: ExecContext,
        emc: ExactMatchCache,
        tx_batches: Dict[int, List[Packet]],
        statses: Tuple[PipelineStats, ...],
    ) -> None:
        """Burst-oriented classification (the ``dp_netdev_input`` shape).

        Computation is staged and memoized; *charging* is replayed
        packet by packet in exactly the reference order, because every
        accumulator (per-(cpu, category) busy time, local time, ledger
        spans) is order-sensitive float addition.  Classification and
        execution stay fused per packet: an executed action (recirc, ct,
        meter, upcall install) may mutate the very caches the next
        packet's classification observes.
        """
        costs = DEFAULT_COSTS
        extract_ns = costs.flow_extract_ns
        action_ns = costs.action_ns
        now_fn = self.now_ns_fn
        megaflows = self.megaflows
        flow_cache = emc.flow_cache
        # dp-JIT gate, resolved once per burst (it cannot change
        # mid-burst): compiled closures replay the exact interpreter
        # charge sequence, so this changes wall-clock only.
        use_dpjit = dpjit.ENABLED and fastpath.ENABLED
        dpjit_stats = dpjit.STATS
        dpjit_bind = dpjit.bind
        tele = telemetry.ACTIVE
        #: Per-burst memo: identical packet shapes share one FlowKey.
        burst_keys: Dict[Tuple, FlowKey] = {}
        #: Per-burst memo: each unique flow walks the classifier once.
        mf_memo: Dict[FlowKey, Tuple] = {}
        for pkt in pkts:
            for s in statses:
                s.passes += 1
            if tele is not None:
                tele.observe("dpif", pkt, ctx)
            ctx.charge(extract_ns, label="flow_extract")
            meta = pkt.meta
            tun = meta.tunnel
            # Everything extract_flow reads at depth 0 (recirc/ct state
            # was just zeroed), so equal tokens imply equal FlowKeys.
            token = (pkt.data, meta.in_port, meta.ct_mark,
                     tun.vni, tun.remote_ip, tun.local_ip)
            cell = flow_cache.get(token)
            if cell is not None and cell[2] == emc.displacements:
                # Cross-burst fast path: this shape hit the EMC before
                # and no insert/evict/flush displaced anything since.
                entry = cell[1]
                emc.replay_hit(ctx)
                for s in statses:
                    s.emc_hits += 1
                entry.touch(now_fn(), len(pkt))
            else:
                if cell is not None:
                    # Stale tag only invalidates the *EMC outcome*; the
                    # token still fully determines the extracted key.
                    key = cell[0]
                else:
                    key = burst_keys.get(token)
                    if key is None:
                        key = burst_keys[token] = extract_flow(
                            pkt.data,
                            in_port=meta.in_port,
                            recirc_id=0,
                            ct_state=0,
                            ct_zone=0,
                            ct_mark=meta.ct_mark,
                            tun_id=tun.vni,
                            tun_src=tun.remote_ip,
                            tun_dst=tun.local_ip,
                        )
                entry = emc.lookup(key, ctx)
                if entry is not None:
                    for s in statses:
                        s.emc_hits += 1
                    entry.touch(now_fn(), len(pkt))
                    in_emc = True
                else:
                    memo = mf_memo.get(key)
                    if memo is not None and memo[2] == megaflows.version:
                        entry, probes = memo[0], memo[1]
                        megaflows.replay_lookup(
                            entry, probes, ctx,
                            now_ns=now_fn(), nbytes=len(pkt),
                        )
                    else:
                        entry, probes = megaflows.lookup_entry_probes(
                            key, ctx, now_ns=now_fn(), nbytes=len(pkt),
                        )
                        if entry is not None:
                            mf_memo[key] = (entry, probes,
                                            megaflows.version)
                    if entry is not None:
                        for s in statses:
                            s.megaflow_hits += 1
                        in_emc = self._emc_insert(emc, key, entry, ctx)
                    else:
                        entry = self._upcall(key, ctx, statses)
                        if entry is None:
                            for s in statses:
                                s.dropped += 1
                            continue
                        in_emc = self._emc_insert(emc, key, entry, ctx)
                # The insert (or prior hit) guarantees a probe of this
                # key now hits; remember that fact for future bursts —
                # but only if the entry really went in (the storm
                # breaker may have skipped the insert, and replaying a
                # phantom EMC hit would diverge from the reference path).
                if in_emc:
                    if len(flow_cache) >= FLOW_CACHE_MAX:
                        flow_cache.clear()
                    flow_cache[token] = (key, entry, emc.displacements)
            if use_dpjit:
                cached = entry.jit
                if cached is not None and cached[0] is entry.actions:
                    fn = cached[1]
                else:
                    fn = dpjit_bind(entry)
                if fn is not None:
                    dpjit_stats.dispatched += 1
                    fn(self, pkt, ctx, emc, tx_batches, 0, statses)
                    continue
            out_port = entry.single_out
            if out_port is not None:
                # Inlined _execute for the dominant one-Output case.
                ctx.charge(action_ns, label="odp_action")
                batch = tx_batches.get(out_port)
                if batch is None:
                    batch = tx_batches[out_port] = []
                batch.append(pkt.with_data(pkt.data))
            else:
                self._execute(pkt, entry.actions, ctx, emc, tx_batches,
                              0, statses)

    def _process_one(
        self,
        pkt: Packet,
        ctx: ExecContext,
        emc: ExactMatchCache,
        tx_batches: Dict[int, List[Packet]],
        depth: int,
        statses: Tuple[PipelineStats, ...],
    ) -> None:
        costs = DEFAULT_COSTS
        if depth > MAX_RECIRC_PASSES:
            for s in statses:
                s.dropped += 1
            telemetry.drop_event(DropReason.DP_RECIRC_LIMIT,
                                 octets=len(pkt.data))
            return
        for s in statses:
            s.passes += 1
        if depth == 0:
            # The reference path's observation hook; recirculated passes
            # (depth > 0) were already observed on their first pass.
            tele = telemetry.ACTIVE
            if tele is not None:
                tele.observe("dpif", pkt, ctx)
        ctx.charge(costs.flow_extract_ns, label="flow_extract")
        key = extract_flow(
            pkt.data,
            in_port=pkt.meta.in_port,
            recirc_id=pkt.meta.recirc_id,
            ct_state=pkt.meta.ct_state,
            ct_zone=pkt.meta.ct_zone,
            ct_mark=pkt.meta.ct_mark,
            tun_id=pkt.meta.tunnel.vni,
            tun_src=pkt.meta.tunnel.remote_ip,
            tun_dst=pkt.meta.tunnel.local_ip,
        )
        # EMC entries reference the backing megaflow (as in real
        # dpif-netdev), so EMC hits keep the flow's stats and used-time
        # fresh for the revalidator.
        entry = emc.lookup(key, ctx)
        if entry is not None:
            for s in statses:
                s.emc_hits += 1
            entry.touch(self.now_ns_fn(), len(pkt))
        else:
            entry = self.megaflows.lookup_entry(key, ctx,
                                                now_ns=self.now_ns_fn(),
                                                nbytes=len(pkt))
            if entry is not None:
                for s in statses:
                    s.megaflow_hits += 1
                self._emc_insert(emc, key, entry, ctx)
            else:
                entry = self._upcall(key, ctx, statses)
                if entry is None:
                    for s in statses:
                        s.dropped += 1
                    return
                self._emc_insert(emc, key, entry, ctx)
        if dpjit.ENABLED and fastpath.ENABLED:
            # Recirculated passes of the batched pipeline (and the
            # per-packet path under a live fastpath) dispatch compiled
            # closures too; reference mode (fastpath off) never does.
            cached = entry.jit
            if cached is not None and cached[0] is entry.actions:
                fn = cached[1]
            else:
                fn = dpjit.bind(entry)
            if fn is not None:
                dpjit.STATS.dispatched += 1
                fn(self, pkt, ctx, emc, tx_batches, depth, statses)
                return
        self._execute(pkt, entry.actions, ctx, emc, tx_batches, depth,
                      statses)

    def _upcall(self, key: FlowKey, ctx: ExecContext,
                statses: Tuple[PipelineStats, ...]):
        costs = DEFAULT_COSTS
        for s in statses:
            s.upcalls += 1
        trace.count("dp.upcall")
        plan = faults.ACTIVE
        if plan is not None:
            self._burst_upcalls += 1
            cap = plan.upcall_queue_cap
            if ((cap is not None and self._burst_upcalls > cap)
                    or plan.should_fire("dp.upcall_overload")):
                # The bounded upcall queue overflowed (or the handler is
                # overloaded): shed the miss instead of amplifying the
                # storm.  Real netlink reports this as ``lost:``.
                for s in statses:
                    s.lost += 1
                trace.count("dp.upcall_lost")
                telemetry.drop_event(DropReason.DP_UPCALL_LOST)
                return None
        if self.upcall_fn is None:
            for s in statses:
                s.failed_upcalls += 1
            telemetry.drop_event(DropReason.DP_UPCALL_FAILED)
            return None
        # Unlike the kernel datapath's netlink round trip, this is a
        # function call within ovs-vswitchd.  The nested span groups the
        # slow-path charges (classifier walks, translation) under one
        # inclusive "upcall" total in the trace ledger.
        with trace.span("upcall"):
            ctx.charge(costs.userspace_slowpath_ns, label="upcall")
            result = self.upcall_fn(key, ctx)
        if result is None:
            for s in statses:
                s.failed_upcalls += 1
            telemetry.drop_event(DropReason.DP_UPCALL_FAILED)
            return None
        actions, mask = result
        limit = self.flow_limit
        if plan is not None and plan.flow_limit is not None:
            limit = (plan.flow_limit if limit is None
                     else min(limit, plan.flow_limit))
        if limit is not None and len(self.megaflows) >= limit:
            # Over the revalidator's budget: translate-and-execute only,
            # without installing (the packet still flows; the flow
            # reinstalls once the limit relaxes).
            trace.count("dp.flow_limit_hit")
            entry = None
        else:
            entry = self.megaflows.insert(key, mask, tuple(actions), ctx,
                                          now_ns=self.now_ns_fn())
        if entry is None:
            # Cache full: execute this packet unbatched via a transient
            # entry (the real datapath applies actions from the upcall).
            from repro.ovs.megaflow import MegaflowEntry

            entry = MegaflowEntry(actions=tuple(actions), key=key, mask=mask)
            # Transient entries live for exactly one packet: compiling a
            # closure for each would pay translation per packet under
            # flow-limit pressure.  Pin them to the interpreter.
            dpjit.decline_entry(entry)
        return entry

    def _emc_insert(self, emc: ExactMatchCache, key: FlowKey, entry,
                    ctx: ExecContext) -> bool:
        """Insert into the EMC unless the storm breaker says skip.

        Mirrors ``emc-insert-inv-prob``: under an upcall storm, inserting
        every miss result thrashes the EMC; a probabilistic insert keeps
        only flows that recur.  Returns whether the entry is now in the
        EMC (the burst path must not record a cross-burst hit if not).
        """
        plan = faults.ACTIVE
        if plan is not None and not plan.should_insert_emc():
            trace.count("dp.emc_insert_skipped")
            return False
        emc.insert(key, entry, ctx)
        return True

    # ------------------------------------------------------------------
    # Action execution.
    # ------------------------------------------------------------------
    def _execute(
        self,
        pkt: Packet,
        actions,
        ctx: ExecContext,
        emc: ExactMatchCache,
        tx_batches: Dict[int, List[Packet]],
        depth: int,
        statses: Tuple[PipelineStats, ...],
    ) -> None:
        costs = DEFAULT_COSTS
        data = pkt.data
        if not actions:
            for s in statses:
                s.dropped += 1
            telemetry.drop_event(DropReason.DP_EMPTY_ACTIONS,
                                 octets=len(data))
            return
        for act in actions:
            ctx.charge(costs.action_ns, label="odp_action")
            if isinstance(act, odp.Output):
                out = pkt.with_data(data)
                tx_batches.setdefault(act.port_no, []).append(out)
            elif isinstance(act, odp.SetField):
                data = set_field(data, act.field, act.value)
            elif isinstance(act, odp.PushVlan):
                data = do_push_vlan(data, act.vid, act.pcp)
            elif isinstance(act, odp.PopVlan):
                data = do_pop_vlan(data)
            elif isinstance(act, odp.Ct):
                self._do_ct(pkt.with_data(data), act, ctx)
            elif isinstance(act, odp.Recirc):
                out = pkt.with_data(data)
                out.meta.recirc_id = act.recirc_id
                ctx.charge(costs.recirculate_ns, label="recirc")
                self._process_one(out, ctx, emc, tx_batches, depth + 1,
                                  statses)
                return
            elif isinstance(act, odp.TunnelPush):
                ctx.charge(costs.tunnel_encap_ns, label="tunnel_push")
                outer = encapsulate(act.config, data)
                ctx.charge(costs.copy_cost(len(outer) - len(data)),
                           label="encap_copy")
                tx_batches.setdefault(act.out_port, []).append(Packet(outer))
            elif isinstance(act, odp.TunnelPop):
                ctx.charge(costs.tunnel_decap_ns, label="tunnel_pop")
                try:
                    ttype, vni, src, dst, inner = decapsulate(data)
                except ValueError:
                    for s in statses:
                        s.dropped += 1
                    telemetry.drop_event(
                        DropReason.DP_TUNNEL_DECAP_FAILED,
                        octets=len(data))
                    return
                out = Packet(inner)
                out.meta.in_port = act.vport
                out.meta.tunnel.tunnel_type = ttype
                out.meta.tunnel.vni = vni
                out.meta.tunnel.remote_ip = src
                out.meta.tunnel.local_ip = dst
                self._process_one(out, ctx, emc, tx_batches, depth + 1,
                                  statses)
                return
            elif isinstance(act, odp.Meter):
                if not self.meters.admit(act.meter_id, len(data),
                                         self.now_ns_fn()):
                    for s in statses:
                        s.dropped += 1
                    telemetry.drop_event(DropReason.DP_METER_DROP,
                                         octets=len(data))
                    return
            elif isinstance(act, odp.Userspace):
                ctx.charge(costs.userspace_slowpath_ns, label="userspace")
            elif isinstance(act, odp.Trunc):
                data = data[: act.max_len]
            else:
                raise NotImplementedError(f"dpif-netdev cannot {act!r}")

    def _do_ct(self, pkt: Packet, act: odp.Ct, ctx: ExecContext) -> None:
        key = extract_flow(pkt.data)
        result = self.conntrack.process(
            key.five_tuple(),
            zone=act.zone,
            ctx=ctx,
            tcp_flags=key.tcp_flags,
            nbytes=len(pkt),
            commit=act.commit,
        )
        pkt.meta.ct_state = result.state_bits
        pkt.meta.ct_zone = act.zone
        if result.connection is not None:
            pkt.meta.ct_mark = result.connection.mark

    def _flush_tx(self, tx_batches: Dict[int, List[Packet]],
                  ctx: ExecContext, tx_queue: int = 0) -> None:
        for port_no, pkts in tx_batches.items():
            port = self.ports.get(port_no)
            if port is None:
                self.stats.dropped += len(pkts)
                telemetry.drop_event(DropReason.DP_TX_NO_PORT,
                                     n=len(pkts),
                                     octets=sum(len(p) for p in pkts))
                continue
            sent = port.adapter.tx_burst(pkts, ctx, queue=tx_queue)
            if sent is None:
                sent = len(pkts)
            port.tx_packets += sent
            if port.handoff:
                # Cross-shard TX: the frames queue in the handoff ring
                # until the coordinator ships them at the next barrier.
                # A plain int (not a trace counter): the serial run has
                # no handoffs and the ledgers must match byte-for-byte.
                port.tx_handoff_packets += sent
            if sent < len(pkts):
                # The adapter dropped the shortfall and counted it in
                # its own per-ring counters; surface the event here too.
                trace.count("dp.tx_shortfall", len(pkts) - sent)
