"""The megaflow cache (dpcls): wildcarded datapath flows.

Second-level cache of the userspace datapath (and the only cache the
kernel datapath has).  One subtable per distinct mask; a lookup probes
subtables until it hits.  The 1000-random-IP workload of §5.2 is the
worst case precisely because installed megaflows (one per IP pair, after
translation unwildcards nw_src/nw_dst) stop fitting the EMC and every
packet pays this probe sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.flow import FlowKey, FlowMask, N_FLOW_FIELDS, apply_mask
from repro.sim import trace
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext


@dataclass
class MegaflowEntry:
    """One cached datapath flow, with the state the revalidator needs."""

    actions: Tuple
    key: FlowKey
    mask: FlowMask
    n_packets: int = 0
    n_bytes: int = 0
    last_used_ns: int = 0

    def touch(self, now_ns: int, nbytes: int) -> None:
        self.n_packets += 1
        self.n_bytes += nbytes
        self.last_used_ns = now_ns


class MegaflowCache:
    def __init__(self, max_flows: int = 65536) -> None:
        self.max_flows = max_flows
        self._masks: List[FlowMask] = []
        self._tables: Dict[FlowMask, Dict[Tuple[int, ...], MegaflowEntry]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return sum(len(t) for t in self._tables.values())

    @property
    def n_masks(self) -> int:
        return len(self._masks)

    def lookup(self, key: FlowKey, ctx: Optional[ExecContext] = None,
               now_ns: int = 0, nbytes: int = 0) -> Optional[Tuple]:
        entry = self.lookup_entry(key, ctx, now_ns=now_ns, nbytes=nbytes)
        return None if entry is None else entry.actions

    def lookup_entry(self, key: FlowKey, ctx: Optional[ExecContext] = None,
                     now_ns: int = 0, nbytes: int = 0) -> Optional[MegaflowEntry]:
        probes = 0
        found: Optional[MegaflowEntry] = None
        for mask in self._masks:
            probes += 1
            entry = self._tables[mask].get(apply_mask(key, mask))
            if entry is not None:
                found = entry
                break
        if ctx is not None and probes:
            ctx.charge(probes * DEFAULT_COSTS.megaflow_subtable_ns,
                       label="dpcls")
        rec = trace.ACTIVE
        if rec is not None and probes:
            rec.count("dpcls.subtable_probes", probes)
        if found is None:
            self.misses += 1
            if rec is not None:
                rec.count("dpcls.miss")
            return None
        self.hits += 1
        if rec is not None:
            rec.count("dpcls.hit")
        found.touch(now_ns, nbytes)
        return found

    def insert(self, key: FlowKey, mask: FlowMask, value: Tuple,
               ctx: Optional[ExecContext] = None,
               now_ns: int = 0) -> Optional[MegaflowEntry]:
        """Install a flow; returns the entry, or None if the cache is full."""
        if len(self) >= self.max_flows:
            return None
        if ctx is not None:
            ctx.charge(DEFAULT_COSTS.megaflow_insert_ns, label="dpcls_insert")
        trace.count("dpcls.insert")
        table = self._tables.get(mask)
        if table is None:
            table = {}
            self._tables[mask] = table
            self._masks.append(mask)
        entry = MegaflowEntry(
            actions=tuple(value), key=key, mask=mask, last_used_ns=now_ns
        )
        table[apply_mask(key, mask)] = entry
        return entry

    def entries(self) -> List[MegaflowEntry]:
        return [e for t in self._tables.values() for e in t.values()]

    def remove(self, key: FlowKey, mask: FlowMask) -> bool:
        table = self._tables.get(mask)
        if table is None:
            return False
        masked = apply_mask(key, mask)
        if masked not in table:
            return False
        del table[masked]
        if not table:
            del self._tables[mask]
            self._masks.remove(mask)
        return True

    def flush(self) -> None:
        self._masks.clear()
        self._tables.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def union_masks(masks: List[FlowMask]) -> FlowMask:
    """Union a set of probe masks into one megaflow mask.

    The megaflow must be at least as specific as every field any lookup
    stage examined, or the cached entry would match packets the slow
    path would have treated differently.
    """
    if not masks:
        return tuple([0] * N_FLOW_FIELDS)
    out = list(masks[0])
    for mask in masks[1:]:
        for i, bits in enumerate(mask):
            out[i] |= bits
    return tuple(out)
