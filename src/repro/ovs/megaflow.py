"""The megaflow cache (dpcls): wildcarded datapath flows.

Second-level cache of the userspace datapath (and the only cache the
kernel datapath has).  One subtable per distinct mask; a lookup probes
subtables until it hits.  The 1000-random-IP workload of §5.2 is the
worst case precisely because installed megaflows (one per IP pair, after
translation unwildcards nw_src/nw_dst) stop fitting the EMC and every
packet pays this probe sequence.

Subtables are keyed by :class:`~repro.net.flow.MaskSpec` projections —
the masked key with wildcarded fields elided — instead of full 31-field
``apply_mask`` tuples.  The projection induces exactly the same
equivalence classes (wildcarded fields contribute a constant zero for
every key), so lookup results are unchanged while each probe hashes a
handful of integers instead of 31.

For burst classification, :meth:`lookup_entry_probes` performs exactly
one reference lookup but also returns the probe count, and
:meth:`replay_lookup` re-accounts a known outcome (charges, counters,
stats touch) without walking the subtables.  A replay is valid only
while :attr:`version` — bumped by every insert/remove/flush — is
unchanged since the probed outcome was recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.flow import FlowKey, FlowMask, MaskSpec, N_FLOW_FIELDS
from repro.ovs import dpjit, odp
from repro.sim import trace
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext


@dataclass
class MegaflowEntry:
    """One cached datapath flow, with the state the revalidator needs."""

    actions: Tuple
    key: FlowKey
    mask: FlowMask
    n_packets: int = 0
    n_bytes: int = 0
    last_used_ns: int = 0
    #: When the action list is exactly one Output, its port number —
    #: the batched executor's fast path.  Derived, so excluded from
    #: comparison/repr.
    single_out: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: dp-JIT cache: ``(actions_ref, exec_fn_or_None, compiled)`` set by
    #: :func:`repro.ovs.dpjit.bind`.  Honored only while ``actions_ref``
    #: is the very tuple that was compiled.  Derived, excluded from
    #: comparison/repr.
    jit: Optional[Tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if (len(self.actions) == 1
                and type(self.actions[0]) is odp.Output):
            self.single_out = self.actions[0].port_no

    def touch(self, now_ns: int, nbytes: int) -> None:
        self.n_packets += 1
        self.n_bytes += nbytes
        self.last_used_ns = now_ns


class MegaflowCache:
    def __init__(self, max_flows: int = 65536) -> None:
        self.max_flows = max_flows
        self._masks: List[FlowMask] = []
        #: Parallel to ``_masks``: (spec, subtable) pairs walked in
        #: insertion order, subtables keyed by ``spec.project(key)``.
        self._walk: List[Tuple[MaskSpec, Dict[Tuple[int, ...], MegaflowEntry]]] = []
        self._tables: Dict[FlowMask, Dict[Tuple[int, ...], MegaflowEntry]] = {}
        self.hits = 0
        self.misses = 0
        #: Bumped on every successful insert/remove/flush; cached lookup
        #: outcomes are valid only while unchanged.
        self.version = 0

    def __len__(self) -> int:
        return sum(len(t) for t in self._tables.values())

    @property
    def n_masks(self) -> int:
        return len(self._masks)

    def lookup(self, key: FlowKey, ctx: Optional[ExecContext] = None,
               now_ns: int = 0, nbytes: int = 0) -> Optional[Tuple]:
        entry = self.lookup_entry(key, ctx, now_ns=now_ns, nbytes=nbytes)
        return None if entry is None else entry.actions

    # ------------------------------------------------------------------
    # Lookup, split so the batched path can replay known outcomes.
    # ------------------------------------------------------------------
    def _probe(self, key: FlowKey) -> Tuple[Optional[MegaflowEntry], int]:
        """Walk the subtables (no charges, no counters, no touch)."""
        probes = 0
        for spec, table in self._walk:
            probes += 1
            entry = table.get(spec.project(key))
            if entry is not None:
                return entry, probes
        return None, probes

    def peek(self, key: FlowKey) -> Tuple[Optional[MegaflowEntry], int]:
        """Walk the subtables without observing: no charges, counters or
        stats touch (``ofproto/trace`` uses this so a mid-run peek leaves
        every subsequent ledger byte unchanged).  Returns the entry (or
        None) and the number of subtables a real lookup would probe."""
        return self._probe(key)

    def _account(self, entry: Optional[MegaflowEntry], probes: int,
                 ctx: Optional[ExecContext],
                 now_ns: int, nbytes: int) -> None:
        """Charges, counters and stats for a lookup with this outcome."""
        if ctx is not None and probes:
            ctx.charge(probes * DEFAULT_COSTS.megaflow_subtable_ns,
                       label="dpcls")
        rec = trace.ACTIVE
        if rec is not None and probes:
            rec.count("dpcls.subtable_probes", probes)
        if entry is None:
            self.misses += 1
            if rec is not None:
                rec.count("dpcls.miss")
            return
        self.hits += 1
        if rec is not None:
            rec.count("dpcls.hit")
        entry.touch(now_ns, nbytes)

    def lookup_entry(self, key: FlowKey, ctx: Optional[ExecContext] = None,
                     now_ns: int = 0, nbytes: int = 0) -> Optional[MegaflowEntry]:
        entry, probes = self._probe(key)
        self._account(entry, probes, ctx, now_ns, nbytes)
        return entry

    def lookup_entry_probes(
        self, key: FlowKey, ctx: Optional[ExecContext] = None,
        now_ns: int = 0, nbytes: int = 0,
    ) -> Tuple[Optional[MegaflowEntry], int]:
        """Like :meth:`lookup_entry`, also reporting the probe count so
        the caller can memoize the outcome for :meth:`replay_lookup`."""
        entry, probes = self._probe(key)
        self._account(entry, probes, ctx, now_ns, nbytes)
        return entry, probes

    def replay_lookup(self, entry: Optional[MegaflowEntry], probes: int,
                      ctx: Optional[ExecContext] = None,
                      now_ns: int = 0, nbytes: int = 0) -> None:
        """Re-account a lookup whose outcome is already known.

        Byte-identical charges/counters/stats to :meth:`lookup_entry`
        reaching the same outcome; the subtable walk is skipped.  Valid
        only while :attr:`version` is unchanged since the outcome was
        observed.
        """
        self._account(entry, probes, ctx, now_ns, nbytes)

    # ------------------------------------------------------------------
    # Mutation.
    # ------------------------------------------------------------------
    def insert(self, key: FlowKey, mask: FlowMask, value: Tuple,
               ctx: Optional[ExecContext] = None,
               now_ns: int = 0) -> Optional[MegaflowEntry]:
        """Install a flow; returns the entry, or None if the cache is full."""
        if len(self) >= self.max_flows:
            return None
        if ctx is not None:
            ctx.charge(DEFAULT_COSTS.megaflow_insert_ns, label="dpcls_insert")
        trace.count("dpcls.insert")
        table = self._tables.get(mask)
        if table is None:
            table = {}
            self._tables[mask] = table
            self._masks.append(mask)
            self._walk.append((MaskSpec(mask), table))
        spec = self._spec_for(mask)
        entry = MegaflowEntry(
            actions=tuple(value), key=key, mask=mask, last_used_ns=now_ns
        )
        table[spec.project(key)] = entry
        self.version += 1
        return entry

    def _spec_for(self, mask: FlowMask) -> MaskSpec:
        for i, m in enumerate(self._masks):
            if m == mask:
                return self._walk[i][0]
        raise KeyError(f"no subtable for mask {mask!r}")

    def entries(self) -> List[MegaflowEntry]:
        return [e for t in self._tables.values() for e in t.values()]

    def remove(self, key: FlowKey, mask: FlowMask) -> bool:
        table = self._tables.get(mask)
        if table is None:
            return False
        masked = self._spec_for(mask).project(key)
        entry = table.get(masked)
        if entry is None:
            return False
        if entry.jit is not None and entry.jit[1] is not None:
            # Flow-mod / revalidation / eviction retired a compiled
            # closure; the entry (and with it the closure) becomes
            # unreachable, so the stale code can never dispatch again.
            dpjit.note_closure_dropped()
        del table[masked]
        if not table:
            del self._tables[mask]
            idx = self._masks.index(mask)
            del self._masks[idx]
            del self._walk[idx]
        self.version += 1
        return True

    def flush(self) -> None:
        dropped = sum(
            1 for t in self._tables.values() for e in t.values()
            if e.jit is not None and e.jit[1] is not None
        )
        if dropped:
            dpjit.note_closure_dropped(dropped)
        self._masks.clear()
        self._walk.clear()
        self._tables.clear()
        self.version += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def union_masks(masks: List[FlowMask]) -> FlowMask:
    """Union a set of probe masks into one megaflow mask.

    The megaflow must be at least as specific as every field any lookup
    stage examined, or the cached entry would match packets the slow
    path would have treated differently.
    """
    if not masks:
        return tuple([0] * N_FLOW_FIELDS)
    out = list(masks[0])
    for mask in masks[1:]:
        for i, bits in enumerate(mask):
            out[i] |= bits
    return tuple(out)
