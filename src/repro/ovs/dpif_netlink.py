"""dpif-netlink: the traditional kernel-module datapath from userspace.

ovs-vswitchd talks to :class:`~repro.kernel.ovs_module.KernelDatapath`
over (simulated) netlink: misses arrive as upcalls, the translator runs,
and the resulting megaflow is installed back into the kernel — Figure 7a.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.kernel.kernel import Kernel
from repro.kernel.netdev import NetDevice
from repro.kernel.ovs_module import KernelDatapath, Upcall
from repro.net.addresses import MacAddress
from repro.net.flow import FlowKey
from repro import telemetry
from repro.sim.cpu import ExecContext
from repro.telemetry.drops import DropReason


class DpifNetlink:
    def __init__(self, kernel: Kernel, name: str = "ovs-system") -> None:
        self.kernel = kernel
        self.dp: KernelDatapath = kernel.create_datapath(name)
        self.dp.upcall_handler = self._handle_upcall
        #: The slow path: key -> (actions, mask) or None to drop.
        self.upcall_fn: Optional[
            Callable[[FlowKey, Optional[ExecContext]], Optional[Tuple]]
        ] = None
        self.n_installed_flows = 0

    # -- ports ------------------------------------------------------------
    def add_port(self, device: NetDevice) -> int:
        return self.dp.add_port(device).port_no

    def add_internal_port(self, name: str, mac: MacAddress) -> Tuple[int, object]:
        vport, device = self.dp.add_internal_port(name, mac)
        return vport.port_no, device

    def add_tunnel_port(self, name: str) -> int:
        return self.dp.add_tunnel_port(name).port_no

    def del_port(self, name: str) -> None:
        self.dp.del_port(name)

    def port_no(self, name: str) -> int:
        return self.dp.port_no(name)

    def port_device(self, port_no: int):
        port = self.dp.ports.get(port_no)
        return port.device if port else None

    def flow_flush(self) -> None:
        self.dp.flow_flush()

    # -- crash/restart ------------------------------------------------------
    def detach_handler(self) -> Optional[Callable]:
        """ovs-vswitchd died: its netlink sockets close, so misses have
        nowhere to go — the kernel keeps forwarding megaflow hits and
        counts new-flow misses in the ``lost:`` column (``dp.n_lost``).
        Returns the detached handler so the supervisor can re-attach it
        after recovery."""
        fn, self.upcall_fn = self.upcall_fn, None
        return fn

    def attach_handler(self, fn: Callable) -> None:
        """The restarted daemon re-registered its upcall sockets.  The
        kernel flow table and netfilter conntrack were never touched —
        a vswitchd restart with flow-restore keeps the megaflows warm
        (the paper's §6 kernel-vs-userspace contrast)."""
        self.upcall_fn = fn

    # -- upcalls -----------------------------------------------------------
    def _handle_upcall(self, upcall: Upcall, ctx: ExecContext) -> None:
        if self.upcall_fn is None:
            # No handler thread registered: the packet the kernel sent
            # up dies here.  Real netlink accounts this in the
            # ``lost:`` column of dpctl/show rather than no-opping.
            self.dp.n_lost += 1
            telemetry.drop_event(DropReason.KERNEL_UPCALL_LOST,
                                 octets=len(upcall.pkt.data))
            return
        result = self.upcall_fn(upcall.key, ctx)
        if result is None:
            return
        actions, mask = result
        # Install the megaflow so subsequent packets stay in the kernel,
        # then execute the actions for the packet that missed.
        self.dp.flow_put(upcall.key, mask, tuple(actions))
        self.n_installed_flows += 1
        self.dp.execute_actions(upcall.pkt, tuple(actions), ctx)
