"""OpenFlow meters: token-bucket rate limiting.

§6 ✗: "Traffic shaping and policing is still missing, so we currently use
the OpenFlow meter action to support rate limiting, which is not fully
equivalent."  A meter polices (drops over-rate packets); it cannot shape
(queue and pace) — that limitation is inherent to this structure and is
demonstrated in the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class MeterBand:
    rate_kbps: int
    burst_kb: int


class Meter:
    def __init__(self, meter_id: int, band: MeterBand) -> None:
        self.meter_id = meter_id
        self.band = band
        self._tokens_bits = band.burst_kb * 8_000.0
        self._last_ns = 0
        self.n_passed = 0
        self.n_dropped = 0

    def admit(self, nbytes: int, now_ns: int) -> bool:
        """Police one packet: True = pass, False = drop."""
        elapsed = max(0, now_ns - self._last_ns)
        self._last_ns = now_ns
        cap = self.band.burst_kb * 8_000.0
        self._tokens_bits = min(
            cap, self._tokens_bits + elapsed * self.band.rate_kbps / 1e6 * 1e3
        )
        need = nbytes * 8
        if self._tokens_bits >= need:
            self._tokens_bits -= need
            self.n_passed += 1
            return True
        self.n_dropped += 1
        return False


class MeterTable:
    def __init__(self) -> None:
        self._meters: Dict[int, Meter] = {}

    def add(self, meter_id: int, rate_kbps: int, burst_kb: int = 64) -> Meter:
        if meter_id in self._meters:
            raise ValueError(f"meter {meter_id} exists")
        meter = Meter(meter_id, MeterBand(rate_kbps, burst_kb))
        self._meters[meter_id] = meter
        return meter

    def get(self, meter_id: int) -> Meter:
        meter = self._meters.get(meter_id)
        if meter is None:
            raise KeyError(f"no meter {meter_id}")
        return meter

    def remove(self, meter_id: int) -> None:
        del self._meters[meter_id]

    def admit(self, meter_id: int, nbytes: int, now_ns: int) -> bool:
        meter = self._meters.get(meter_id)
        if meter is None:
            return True  # no meter = no policing
        return meter.admit(nbytes, now_ns)
