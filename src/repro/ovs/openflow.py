"""OpenFlow-lite: the controller-facing flow programming interface.

NSX "transforms the NSX network policies into flow rules and uses the
OpenFlow protocol to install them into the bridges" (§4).  This module is
that interface: FlowMod add/modify/delete, flow dumps and stats, against
one bridge.  It is a local object rather than a TCP protocol codec — the
wire format is not what any experiment measures — but it enforces
OpenFlow semantics (strict vs loose delete, priority replacement).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.ovs.match import Match
from repro.ovs.ofactions import OfAction
from repro.ovs.ofproto import Bridge
from repro.ovs.oftable import Rule


class FlowModCommand(enum.Enum):
    ADD = "add"
    DELETE = "delete"
    DELETE_STRICT = "delete_strict"


@dataclass
class FlowMod:
    command: FlowModCommand
    table_id: int = 0
    priority: int = 0
    match: Match = field(default_factory=Match)
    actions: Tuple[OfAction, ...] = ()
    cookie: int = 0


class OpenFlowConnection:
    """One controller connection to one bridge."""

    def __init__(self, bridge: Bridge) -> None:
        self.bridge = bridge
        self.n_flow_mods = 0

    # -- convenience -------------------------------------------------------
    def add_flow(
        self,
        table_id: int,
        priority: int,
        match: Match,
        actions: Sequence[OfAction],
        cookie: int = 0,
    ) -> None:
        self.flow_mod(
            FlowMod(
                FlowModCommand.ADD,
                table_id=table_id,
                priority=priority,
                match=match,
                actions=tuple(actions),
                cookie=cookie,
            )
        )

    def delete_flows(self, table_id: Optional[int] = None,
                     cookie: Optional[int] = None) -> int:
        """Loose delete by table and/or cookie; returns removed count."""
        removed = 0
        tables = (
            self.bridge.tables.values()
            if table_id is None
            else [self.bridge.table(table_id)]
        )
        for table in tables:
            for rule in table.rules():
                if cookie is not None and rule.cookie != cookie:
                    continue
                table.remove_rule(rule)
                removed += 1
        self.n_flow_mods += 1
        return removed

    # -- the protocol --------------------------------------------------------
    def flow_mod(self, fm: FlowMod) -> None:
        self.n_flow_mods += 1
        if fm.command is FlowModCommand.ADD:
            rule = Rule(
                priority=fm.priority,
                match=fm.match,
                actions=fm.actions,
                cookie=fm.cookie,
            )
            self.bridge.add_flow(fm.table_id, rule)
            return
        if fm.command is FlowModCommand.DELETE_STRICT:
            table = self.bridge.table(fm.table_id)
            for rule in table.rules():
                if rule.priority == fm.priority and rule.match == fm.match:
                    table.remove_rule(rule)
            return
        if fm.command is FlowModCommand.DELETE:
            table = self.bridge.table(fm.table_id)
            for rule in table.rules():
                if self._loose_subsumes(fm.match, rule.match):
                    table.remove_rule(rule)
            return
        raise ValueError(f"unknown command {fm.command}")

    @staticmethod
    def _loose_subsumes(pattern: Match, candidate: Match) -> bool:
        """OpenFlow loose delete: the pattern's constraints must be a
        subset of (and agree with) the candidate's."""
        cand = candidate.fields()
        for name, (value, mask) in pattern.fields().items():
            got = cand.get(name)
            if got is None:
                return False
            c_value, c_mask = got
            if (c_mask & mask) != mask or (c_value & mask) != value:
                return False
        return True

    # -- introspection ---------------------------------------------------------
    def dump_flows(self, table_id: Optional[int] = None) -> List[Rule]:
        if table_id is not None:
            return self.bridge.table(table_id).rules()
        return [r for t in self.bridge.tables.values() for r in t.rules()]

    def flow_count(self) -> int:
        return self.bridge.n_flows()
