"""OpenFlow matches over flow-key fields.

A :class:`Match` is a set of ``field: (value, mask)`` constraints over
:class:`~repro.net.flow.FlowKey` fields.  Matches with the same *shape*
(set of masked fields) share a classifier subtable, which is what makes
tuple-space-search lookup cost proportional to the number of distinct
shapes — the quantity Table 3 reports as "matching fields among all
rules: 31".
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.net.flow import FlowKey, FlowMask, N_FLOW_FIELDS, apply_mask

_FIELD_INDEX = {name: i for i, name in enumerate(FlowKey._fields)}

#: Full-field widths, for normalising -1 ("exact") masks per field.
_FULL_MASK = {
    "in_port": 0xFFFFFFFF,
    "eth_src": 0xFFFFFFFFFFFF,
    "eth_dst": 0xFFFFFFFFFFFF,
    "eth_type": 0xFFFF,
    "vlan_tci": 0x1FFF,
    "nw_src": 0xFFFFFFFF,
    "nw_dst": 0xFFFFFFFF,
    "nw_proto": 0xFF,
    "nw_tos": 0xFF,
    "nw_ttl": 0xFF,
    "nw_frag": 0x3,
    "tp_src": 0xFFFF,
    "tp_dst": 0xFFFF,
    "tcp_flags": 0xFF,
    "recirc_id": 0xFFFFFFFF,
    "ct_state": 0xFF,
    "ct_zone": 0xFFFF,
    "ct_mark": 0xFFFFFFFF,
    "tun_id": 0xFFFFFF,
    "tun_src": 0xFFFFFFFF,
    "tun_dst": 0xFFFFFFFF,
    "metadata": 0xFFFFFFFFFFFFFFFF,
    **{f"reg{i}": 0xFFFFFFFF for i in range(9)},
}


class Match:
    """An immutable-after-construction field match."""

    __slots__ = ("_fields", "_mask", "_masked_key_cache")

    def __init__(self, **constraints: "int | Tuple[int, int]") -> None:
        fields: Dict[str, Tuple[int, int]] = {}
        for name, spec in constraints.items():
            if name not in _FIELD_INDEX:
                raise KeyError(f"unknown match field: {name}")
            if isinstance(spec, tuple):
                value, mask = spec
            else:
                value, mask = spec, _FULL_MASK[name]
            mask &= _FULL_MASK[name]
            if value & ~mask:
                raise ValueError(
                    f"{name}: value {value:#x} has bits outside mask {mask:#x}"
                )
            fields[name] = (value, mask)
        self._fields = fields
        mask_list = [0] * N_FLOW_FIELDS
        for name, (_value, mask) in fields.items():
            mask_list[_FIELD_INDEX[name]] = mask
        self._mask: FlowMask = tuple(mask_list)
        self._masked_key_cache: Tuple[int, ...] = tuple(
            fields.get(name, (0, 0))[0] for name in FlowKey._fields
        )

    @property
    def mask(self) -> FlowMask:
        return self._mask

    @property
    def masked_value(self) -> Tuple[int, ...]:
        """The match's value projected through its own mask."""
        return self._masked_key_cache

    def fields(self) -> Dict[str, Tuple[int, int]]:
        return dict(self._fields)

    def field_names(self) -> Iterable[str]:
        return self._fields.keys()

    def matches(self, key: FlowKey) -> bool:
        return apply_mask(key, self._mask) == self._masked_key_cache

    def is_catchall(self) -> bool:
        return not self._fields

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Match):
            return self._fields == other._fields
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._mask, self._masked_key_cache))

    def __repr__(self) -> str:
        if not self._fields:
            return "Match(*)"
        parts = []
        for name, (value, mask) in sorted(self._fields.items()):
            if mask == _FULL_MASK[name]:
                parts.append(f"{name}={value:#x}")
            else:
                parts.append(f"{name}={value:#x}/{mask:#x}")
        return f"Match({', '.join(parts)})"


def full_field_mask(name: str) -> int:
    """The all-ones mask for a named field (for building ODP masks)."""
    return _FULL_MASK[name]
