"""Byte-level packet rewrite helpers shared by the datapath executors.

These implement what ``set_field``/VLAN actions do to real frames,
including incremental L3/L4 checksum maintenance (the kernel and DPDK do
the same; the *cost* is charged by the executor that calls them).
"""

from __future__ import annotations

import struct

from repro.net.checksum import internet_checksum
from repro.net.ethernet import ETH_HLEN, EtherType, VlanTag, pop_vlan, push_vlan
from repro.net.flow import l4_offset_of
from repro.net.ipv4 import IPV4_HLEN, IPProto


def _l3_offset(data: bytes) -> int:
    (ethertype,) = struct.unpack_from("!H", data, 12)
    return ETH_HLEN + (4 if ethertype == EtherType.VLAN else 0)


def _refresh_ip_checksum(data: bytearray, l3: int) -> None:
    data[l3 + 10 : l3 + 12] = b"\x00\x00"
    csum = internet_checksum(bytes(data[l3 : l3 + IPV4_HLEN]))
    data[l3 + 10 : l3 + 12] = struct.pack("!H", csum)


def set_field(data: bytes, field: str, value: int) -> bytes:
    """Rewrite one header field; returns the new frame bytes.

    L4 checksums are left as-is on the assumption of checksum offload /
    csum_partial (the experiments' configurations); the IPv4 header
    checksum is always refreshed because routers verify it.
    """
    buf = bytearray(data)
    if field == "eth_dst":
        buf[0:6] = value.to_bytes(6, "big")
        return bytes(buf)
    if field == "eth_src":
        buf[6:12] = value.to_bytes(6, "big")
        return bytes(buf)

    l3 = _l3_offset(data)
    if field == "nw_src":
        buf[l3 + 12 : l3 + 16] = value.to_bytes(4, "big")
        _refresh_ip_checksum(buf, l3)
        return bytes(buf)
    if field == "nw_dst":
        buf[l3 + 16 : l3 + 20] = value.to_bytes(4, "big")
        _refresh_ip_checksum(buf, l3)
        return bytes(buf)
    if field == "nw_ttl":
        buf[l3 + 8] = value & 0xFF
        _refresh_ip_checksum(buf, l3)
        return bytes(buf)

    l4 = l4_offset_of(data)
    if l4 is None:
        raise ValueError(f"cannot set {field}: no L4 header")
    proto = data[l3 + 9]
    if proto not in (IPProto.TCP, IPProto.UDP):
        raise ValueError(f"cannot set {field} on IP proto {proto}")
    if field == "tp_src":
        buf[l4 : l4 + 2] = value.to_bytes(2, "big")
        return bytes(buf)
    if field == "tp_dst":
        buf[l4 + 2 : l4 + 4] = value.to_bytes(2, "big")
        return bytes(buf)
    raise ValueError(f"unknown field {field!r}")


def do_push_vlan(data: bytes, vid: int, pcp: int = 0) -> bytes:
    return push_vlan(data, VlanTag(vid=vid, pcp=pcp))


def do_pop_vlan(data: bytes) -> bytes:
    stripped, _tag = pop_vlan(data)
    return stripped


def decrement_ttl(data: bytes) -> bytes:
    l3 = _l3_offset(data)
    ttl = data[l3 + 8]
    if ttl <= 1:
        raise ValueError("TTL expired")
    return set_field(data, "nw_ttl", ttl - 1)
