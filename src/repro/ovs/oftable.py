"""OpenFlow tables with tuple-space-search classification.

Rules with the same match *shape* (mask) live in one subtable (a hash
table keyed by the masked flow key).  Lookup probes subtables in
descending order of their best priority and stops as soon as no remaining
subtable can beat the best hit — the standard OVS classifier structure.
Each subtable probe charges ``classifier_subtable_ns``, which is what
makes the 1000-random-flow upcall storm of §5.2 expensive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.flow import FlowKey, FlowMask, apply_mask
from repro.ovs.match import Match
from repro.ovs.ofactions import OfAction
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext


@dataclass
class Rule:
    priority: int
    match: Match
    actions: Tuple[OfAction, ...]
    cookie: int = 0
    table_id: int = 0
    n_packets: int = 0
    n_bytes: int = 0

    def __post_init__(self) -> None:
        self.actions = tuple(self.actions)


class _Subtable:
    __slots__ = ("mask", "rules", "max_priority")

    def __init__(self, mask: FlowMask) -> None:
        self.mask = mask
        #: masked key -> rules sorted by priority (desc).
        self.rules: Dict[Tuple[int, ...], List[Rule]] = {}
        self.max_priority = -1

    def insert(self, rule: Rule) -> Optional[Rule]:
        """Insert; returns a replaced rule if an identical match existed
        at the same priority (OpenFlow modify semantics)."""
        key = rule.match.masked_value
        bucket = self.rules.setdefault(key, [])
        replaced = None
        for i, existing in enumerate(bucket):
            if existing.priority == rule.priority and existing.match == rule.match:
                replaced = bucket[i]
                bucket[i] = rule
                return replaced
        bucket.append(rule)
        bucket.sort(key=lambda r: -r.priority)
        self.max_priority = max(self.max_priority, rule.priority)
        return None

    def remove(self, rule: Rule) -> bool:
        key = rule.match.masked_value
        bucket = self.rules.get(key)
        if not bucket or rule not in bucket:
            return False
        bucket.remove(rule)
        if not bucket:
            del self.rules[key]
        self._recompute_max()
        return True

    def _recompute_max(self) -> None:
        self.max_priority = max(
            (r.priority for bucket in self.rules.values() for r in bucket),
            default=-1,
        )

    def lookup(self, key: FlowKey) -> Optional[Rule]:
        bucket = self.rules.get(apply_mask(key, self.mask))
        return bucket[0] if bucket else None

    def __len__(self) -> int:
        return sum(len(b) for b in self.rules.values())


class FlowTable:
    """One OpenFlow table (the classifier)."""

    def __init__(self, table_id: int = 0) -> None:
        self.table_id = table_id
        self._subtables: Dict[FlowMask, _Subtable] = {}
        self.n_lookups = 0
        self.n_matches = 0

    def __len__(self) -> int:
        return sum(len(s) for s in self._subtables.values())

    @property
    def n_subtables(self) -> int:
        return len(self._subtables)

    def add_rule(self, rule: Rule) -> Optional[Rule]:
        rule.table_id = self.table_id
        subtable = self._subtables.get(rule.match.mask)
        if subtable is None:
            subtable = _Subtable(rule.match.mask)
            self._subtables[rule.match.mask] = subtable
        return subtable.insert(rule)

    def remove_rule(self, rule: Rule) -> bool:
        subtable = self._subtables.get(rule.match.mask)
        if subtable is None:
            return False
        ok = subtable.remove(rule)
        if ok and not len(subtable):
            del self._subtables[rule.match.mask]
        return ok

    def rules(self) -> List[Rule]:
        return [
            r
            for s in self._subtables.values()
            for bucket in s.rules.values()
            for r in bucket
        ]

    def lookup(
        self,
        key: FlowKey,
        ctx: Optional[ExecContext] = None,
        probed_masks: Optional[List[FlowMask]] = None,
    ) -> Optional[Rule]:
        """Tuple-space search with priority-ordered early exit.

        ``probed_masks``, if given, accumulates every subtable mask that
        was consulted — the translation engine unions these into the
        megaflow mask so the cached entry is exactly as wildcarded as
        this lookup allows.
        """
        self.n_lookups += 1
        best: Optional[Rule] = None
        probes = 0
        ordered = sorted(
            self._subtables.values(), key=lambda s: -s.max_priority
        )
        for subtable in ordered:
            if best is not None and best.priority >= subtable.max_priority:
                break
            probes += 1
            if probed_masks is not None:
                probed_masks.append(subtable.mask)
            candidate = subtable.lookup(key)
            if candidate is not None and (
                best is None or candidate.priority > best.priority
            ):
                best = candidate
        if ctx is not None and probes:
            ctx.charge(
                probes * DEFAULT_COSTS.classifier_subtable_ns,
                label="classifier",
            )
        if best is not None:
            self.n_matches += 1
        return best
