"""The exact-match cache (EMC).

The first-level cache of the userspace datapath: a small, per-PMD-thread
hash table from the packet's *full* flow key (including recirculation id
and conntrack state, so each pipeline pass is its own entry) straight to
datapath actions.  This is the cache whose in-kernel equivalent the Linux
maintainers rejected (§2.1, footnote on flow mask cache) — userspace gets
to have it anyway, one of the quiet advantages of the AF_XDP design.

Sized like the real one (8192 entries, 2-way pseudo-LRU by hash)."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.flow import FlowKey
from repro.sim import trace
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext


class ExactMatchCache:
    def __init__(self, n_entries: int = 8192) -> None:
        if n_entries <= 0 or n_entries & (n_entries - 1):
            raise ValueError("EMC size must be a power of two")
        self.n_entries = n_entries
        self._slots: list[Optional[Tuple[FlowKey, object]]] = [None] * n_entries
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.occupancy = 0

    def _positions(self, key: FlowKey) -> Tuple[int, int]:
        h = hash(key)
        mask = self.n_entries - 1
        return h & mask, (h >> 13) & mask

    def lookup(self, key: FlowKey, ctx: Optional[ExecContext] = None) -> Optional[object]:
        if ctx is not None:
            ctx.charge(DEFAULT_COSTS.emc_hit_ns, label="emc")
            if self.occupancy > 64:
                # Cache-locality model: a large flow working set spills
                # per-flow state (EMC entries, stats) out of the L1/L2,
                # so each lookup pays a fraction of an LLC miss.  This is
                # §5.2's "increased flow lookup overhead" with 1000 flows.
                pressure = min(1.0, self.occupancy / 2048.0)
                ctx.charge(DEFAULT_COSTS.cache_miss_ns * pressure,
                           label="emc_pressure")
        rec = trace.ACTIVE
        for pos in self._positions(key):
            entry = self._slots[pos]
            if entry is not None and entry[0] == key:
                self.hits += 1
                if rec is not None:
                    rec.count("emc.hit")
                return entry[1]
        self.misses += 1
        if rec is not None:
            rec.count("emc.miss")
        return None

    def insert(self, key: FlowKey, value: object,
               ctx: Optional[ExecContext] = None) -> None:
        if ctx is not None:
            ctx.charge(DEFAULT_COSTS.emc_insert_ns, label="emc_insert")
        trace.count("emc.insert")
        p1, p2 = self._positions(key)
        # Prefer an empty way; otherwise evict the second way.
        if self._slots[p1] is None or self._slots[p1][0] == key:
            if self._slots[p1] is None:
                self.occupancy += 1
            self._slots[p1] = (key, value)
        else:
            if self._slots[p2] is None:
                self.occupancy += 1
            self._slots[p2] = (key, value)
        self.insertions += 1

    def evict(self, key: FlowKey) -> None:
        for pos in self._positions(key):
            entry = self._slots[pos]
            if entry is not None and entry[0] == key:
                self._slots[pos] = None
                self.occupancy -= 1

    def flush(self) -> None:
        self._slots = [None] * self.n_entries
        self.occupancy = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
