"""The exact-match cache (EMC).

The first-level cache of the userspace datapath: a small, per-PMD-thread
hash table from the packet's *full* flow key (including recirculation id
and conntrack state, so each pipeline pass is its own entry) straight to
datapath actions.  This is the cache whose in-kernel equivalent the Linux
maintainers rejected (§2.1, footnote on flow mask cache) — userspace gets
to have it anyway, one of the quiet advantages of the AF_XDP design.

Sized like the real one (8192 entries, 2-way pseudo-LRU by hash).

Batched classification support
==============================

The burst-oriented datapath (``DpifNetdev._classify_execute_burst``)
wants to skip re-extracting and re-hashing a 31-field :class:`FlowKey`
for packets whose bytes it has already classified.  Two pieces support
that without changing any observable behaviour:

* ``lookup`` is split into :meth:`charge_lookup` (the virtual-time
  charges) and :meth:`probe` (the probe itself plus hit/miss counters),
  composed in the original order; :meth:`replay_hit` reproduces a
  *known* hit's charges and counters without touching the slots.
* :attr:`displacements` counts every mutation that can change a probe's
  outcome (a slot overwritten, evicted or flushed).  A cached
  "key K hits with entry E" fact is valid only while ``displacements``
  is unchanged since it was recorded; :attr:`flow_cache` is scratch
  space for the datapath to keep such facts, invalidated wholesale by
  comparing against this counter.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.flow import FlowKey
from repro.sim import trace
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext


class ExactMatchCache:
    def __init__(self, n_entries: int = 8192) -> None:
        if n_entries <= 0 or n_entries & (n_entries - 1):
            raise ValueError("EMC size must be a power of two")
        self.n_entries = n_entries
        self._slots: list[Optional[Tuple[FlowKey, object]]] = [None] * n_entries
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.occupancy = 0
        #: Bumped whenever a slot mutation could change a future probe's
        #: outcome; cached probe results are valid only while unchanged.
        self.displacements = 0
        #: Burst-classification scratch: token -> (key, entry, tag).
        #: Owned by the datapath; entries whose tag != displacements are
        #: stale.  Lives here so it shares the EMC's per-PMD affinity.
        self.flow_cache: dict = {}

    def _positions(self, key: FlowKey) -> Tuple[int, int]:
        h = hash(key)
        mask = self.n_entries - 1
        return h & mask, (h >> 13) & mask

    # ------------------------------------------------------------------
    # Lookup, split so the batched path can replay known outcomes.
    # ------------------------------------------------------------------
    def charge_lookup(self, ctx: Optional[ExecContext]) -> None:
        """The virtual-time cost of one EMC lookup (hit or miss)."""
        if ctx is not None:
            ctx.charge(DEFAULT_COSTS.emc_hit_ns, label="emc")
            if self.occupancy > 64:
                # Cache-locality model: a large flow working set spills
                # per-flow state (EMC entries, stats) out of the L1/L2,
                # so each lookup pays a fraction of an LLC miss.  This is
                # §5.2's "increased flow lookup overhead" with 1000 flows.
                pressure = min(1.0, self.occupancy / 2048.0)
                ctx.charge(DEFAULT_COSTS.cache_miss_ns * pressure,
                           label="emc_pressure")

    def probe(self, key: FlowKey) -> Optional[object]:
        """Probe the slots and bump hit/miss stats (no charges)."""
        rec = trace.ACTIVE
        for pos in self._positions(key):
            entry = self._slots[pos]
            if entry is not None and entry[0] == key:
                self.hits += 1
                if rec is not None:
                    rec.count("emc.hit")
                return entry[1]
        self.misses += 1
        if rec is not None:
            rec.count("emc.miss")
        return None

    def lookup(self, key: FlowKey, ctx: Optional[ExecContext] = None) -> Optional[object]:
        self.charge_lookup(ctx)
        return self.probe(key)

    def peek(self, key: FlowKey) -> Optional[object]:
        """Probe without observing: no charges, no hit/miss stats, no
        trace counters.  The ``ofproto/trace`` introspection path — a
        mid-run peek must leave every subsequent ledger byte unchanged."""
        for pos in self._positions(key):
            entry = self._slots[pos]
            if entry is not None and entry[0] == key:
                return entry[1]
        return None

    def replay_hit(self, ctx: Optional[ExecContext] = None) -> None:
        """Account a lookup whose outcome is already known to be a hit.

        Charges and counters are byte-identical to :meth:`lookup`
        returning that hit; the slot probe itself is skipped.  Only
        valid while :attr:`displacements` is unchanged since the hit was
        observed.
        """
        self.charge_lookup(ctx)
        self.hits += 1
        rec = trace.ACTIVE
        if rec is not None:
            rec.count("emc.hit")

    # ------------------------------------------------------------------
    # Mutation (every path that can change a probe result bumps
    # ``displacements``).
    # ------------------------------------------------------------------
    def insert(self, key: FlowKey, value: object,
               ctx: Optional[ExecContext] = None) -> None:
        if ctx is not None:
            ctx.charge(DEFAULT_COSTS.emc_insert_ns, label="emc_insert")
        trace.count("emc.insert")
        p1, p2 = self._positions(key)
        # Prefer an empty way; otherwise evict the second way.
        s1 = self._slots[p1]
        if s1 is None or s1[0] == key:
            target, old = p1, s1
        else:
            target, old = p2, self._slots[p2]
        if old is None:
            self.occupancy += 1
        if old is None or old[0] != key or old[1] is not value:
            # The probe outcome for some key changed (a fill, an
            # eviction, or a remap of this key) — cached probe results
            # are no longer trustworthy.  Covers the subtle case of
            # filling an empty first way while the second way holds the
            # same key with a different value.
            self.displacements += 1
        self._slots[target] = (key, value)
        self.insertions += 1

    def evict(self, key: FlowKey) -> None:
        for pos in self._positions(key):
            entry = self._slots[pos]
            if entry is not None and entry[0] == key:
                self._slots[pos] = None
                self.occupancy -= 1
                self.displacements += 1

    def flush(self) -> None:
        self._slots = [None] * self.n_entries
        self.occupancy = 0
        self.displacements += 1
        self.flow_cache.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
