"""ofproto: bridges, OpenFlow tables, and slow-path translation (xlate).

The translation engine is the heart of OVS userspace: an upcalled packet's
flow key walks the bridge's OpenFlow tables, and the visited rules'
actions compile into a flat list of datapath (ODP) actions plus a
megaflow mask — the union of every subtable mask the lookups probed, so
the cached megaflow is exactly as wildcarded as this decision allows.

Pipeline recirculation (the NSX ct() pattern of §5.1) freezes translation
at the ct action: the datapath runs ct, then re-enters with a fresh
recirculation id that maps back to the table where translation resumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.kernel.netlink import NetlinkMonitor
from repro.net.flow import FlowKey, FlowMask, mask_from_fields
from repro.net.tunnel import TunnelConfig
from repro.ovs import odp
from repro.ovs.match import full_field_mask
from repro.ovs.megaflow import union_masks
from repro.ovs import ofactions as ofp
from repro.ovs.oftable import FlowTable, Rule
from repro.sim.cpu import ExecContext

MAX_TABLES = 255
MAX_TRANSLATION_DEPTH = 64

#: Translation-local key fields (NXM registers + OpenFlow metadata).
_REG_FIELDS = ("metadata",) + tuple(f"reg{i}" for i in range(9))


@dataclass
class TunnelPortConfig:
    """options:{} of a tunnel interface in OVSDB."""

    tunnel_type: str  # geneve | vxlan | gre | erspan
    remote_ip: int
    key: int  # VNI / GRE key / ERSPAN session
    ttl: int = 64


@dataclass
class OfPort:
    name: str
    ofport: int
    dp_port_no: int
    kind: str = "netdev"  # netdev | internal | tunnel
    tunnel: Optional[TunnelPortConfig] = None


@dataclass
class MirrorConfig:
    """A port mirror (SPAN/ERSPAN): copy selected traffic to an output.

    ``select_src_ports`` / ``select_dst_ports`` name bridge ports whose
    ingress/egress should be mirrored; the output may be a normal port or
    a tunnel port — an ERSPAN tunnel output reproduces the paper's
    flagship backport case study as a working feature.
    """

    name: str
    output_port: str
    select_src_ports: Tuple[str, ...] = ()
    select_dst_ports: Tuple[str, ...] = ()


class TranslationError(Exception):
    pass


@dataclass
class XlateResult:
    actions: Tuple[odp.OdpAction, ...]
    mask: FlowMask
    #: Which bridge/table the translation ended in (for debugging).
    final_table: int = 0


class Bridge:
    """One OpenFlow switch: ports + numbered flow tables."""

    def __init__(self, name: str, n_tables: int = 8) -> None:
        self.name = name
        self.tables: Dict[int, FlowTable] = {
            i: FlowTable(i) for i in range(n_tables)
        }
        self.ports: Dict[str, OfPort] = {}
        self._by_ofport: Dict[int, OfPort] = {}
        self._next_ofport = 1
        self.mirrors: List[MirrorConfig] = []

    def add_port(
        self,
        name: str,
        dp_port_no: int,
        kind: str = "netdev",
        tunnel: Optional[TunnelPortConfig] = None,
        ofport: Optional[int] = None,
    ) -> OfPort:
        if name in self.ports:
            raise ValueError(f"port {name!r} already on bridge {self.name}")
        if ofport is None:
            ofport = self._next_ofport
        self._next_ofport = max(self._next_ofport, ofport + 1)
        port = OfPort(name, ofport, dp_port_no, kind=kind, tunnel=tunnel)
        self.ports[name] = port
        self._by_ofport[ofport] = port
        return port

    def port(self, name: str) -> OfPort:
        p = self.ports.get(name)
        if p is None:
            raise KeyError(f"no port {name!r} on bridge {self.name}")
        return p

    def port_by_ofport(self, ofport: int) -> Optional[OfPort]:
        return self._by_ofport.get(ofport)

    def table(self, table_id: int) -> FlowTable:
        if table_id not in self.tables:
            if table_id >= MAX_TABLES:
                raise ValueError(f"table {table_id} out of range")
            self.tables[table_id] = FlowTable(table_id)
        return self.tables[table_id]

    def add_flow(self, table_id: int, rule: Rule) -> None:
        self._validate_rule(rule)
        self.table(table_id).add_rule(rule)

    def n_flows(self) -> int:
        return sum(len(t) for t in self.tables.values())

    @staticmethod
    def _validate_rule(rule: Rule) -> None:
        acts = rule.actions
        for i, act in enumerate(acts):
            if isinstance(act, ofp.CtAction) and act.table is not None:
                if i != len(acts) - 1:
                    raise ValueError(
                        "ct(table=N) must be the last action "
                        "(translation freezes there)"
                    )


class Ofproto:
    """The slow path shared by every bridge on one datapath."""

    def __init__(self, netlink_monitor: Optional[NetlinkMonitor] = None) -> None:
        self.bridges: Dict[str, Bridge] = {}
        #: dp port -> (bridge, port) for upcall dispatch.
        self._dp_ports: Dict[int, Tuple[Bridge, OfPort]] = {}
        self.monitor = netlink_monitor
        self._recirc_ids: Dict[Tuple[str, int], int] = {}
        self._recirc_resume: Dict[int, Tuple[str, int]] = {}
        self._next_recirc = 1
        self.n_translations = 0

    # ------------------------------------------------------------------
    def add_bridge(self, name: str) -> Bridge:
        if name in self.bridges:
            raise ValueError(f"bridge {name!r} exists")
        bridge = Bridge(name)
        self.bridges[name] = bridge
        return bridge

    def register_port(self, bridge: Bridge, port: OfPort) -> None:
        self._dp_ports[port.dp_port_no] = (bridge, port)

    def bridge_for_dp_port(self, dp_port: int) -> Optional[Tuple[Bridge, OfPort]]:
        return self._dp_ports.get(dp_port)

    def alloc_recirc_id(self, bridge: Bridge, resume_table: int,
                        regs: Tuple[int, ...] = ()) -> int:
        """Freeze a continuation: (bridge, table, register state) -> id.

        Registers are translation-local, so their values at the freeze
        point must be restored when translation resumes after the
        datapath recirculates — exactly the real xlate "frozen state".
        """
        key = (bridge.name, resume_table, regs)
        rid = self._recirc_ids.get(key)
        if rid is None:
            rid = self._next_recirc
            self._next_recirc += 1
            self._recirc_ids[key] = rid
            self._recirc_resume[rid] = key
        return rid

    # ------------------------------------------------------------------
    # Translation.
    # ------------------------------------------------------------------
    def translate(
        self, key: FlowKey, ctx: Optional[ExecContext] = None,
        observer=None,
    ) -> XlateResult:
        """Compile one flow's forwarding decision to datapath actions.

        ``observer``, when given, is called as ``observer(bridge,
        table_id, rule_or_None, key)`` after every table lookup — the
        ``ofproto/trace`` narration hook.  It observes only; the
        translation itself is unchanged.
        """
        self.n_translations += 1
        probed: List[FlowMask] = [
            mask_from_fields(
                in_port=full_field_mask("in_port"),
                recirc_id=full_field_mask("recirc_id"),
            )
        ]
        dp_in_port = key.in_port
        located = self._dp_ports.get(dp_in_port)
        if key.recirc_id:
            bridge_name, table_id, regs = self._resume_point(key.recirc_id)
            bridge = self.bridges[bridge_name]
            if regs:
                key = key._replace(**dict(zip(_REG_FIELDS, regs)))
            probed.append(
                mask_from_fields(
                    ct_state=full_field_mask("ct_state"),
                    ct_zone=full_field_mask("ct_zone"),
                )
            )
        else:
            if located is None:
                return XlateResult(odp.DROP, union_masks(probed))
            bridge, _port = located
            table_id = 0
        # OpenFlow rules match on OpenFlow port numbers; the datapath key
        # carries datapath port numbers.  Map before table lookups.
        if located is not None:
            key = key._replace(in_port=located[1].ofport)
        actions = self._xlate_tables(
            bridge, table_id, key, probed, ctx, dp_in_port=dp_in_port,
            observer=observer,
        )
        actions = self._apply_mirrors(bridge, key, dp_in_port, actions)
        return XlateResult(tuple(actions), union_masks(probed))

    def _apply_mirrors(
        self,
        bridge: Bridge,
        key: FlowKey,
        dp_in_port: int,
        actions: List[odp.OdpAction],
    ) -> List[odp.OdpAction]:
        """Append mirror outputs when the flow touches a selected port."""
        if not bridge.mirrors:
            return actions
        in_port = self._dp_ports.get(dp_in_port)
        in_name = in_port[1].name if in_port else None
        out_names = set()
        for act in actions:
            if isinstance(act, odp.Output):
                located = self._dp_ports.get(act.port_no)
                if located is not None:
                    out_names.add(located[1].name)
        out = list(actions)
        for mirror in bridge.mirrors:
            selected = (
                (in_name is not None and in_name in mirror.select_src_ports)
                or bool(out_names & set(mirror.select_dst_ports))
            )
            if selected:
                out.extend(
                    self._xlate_output(bridge, mirror.output_port, key,
                                       dp_in_port)
                )
        return out

    def _resume_point(self, recirc_id: int) -> Tuple[str, int, Tuple[int, ...]]:
        resume = self._recirc_resume.get(recirc_id)
        if resume is None:
            raise TranslationError(f"unknown recirculation id {recirc_id}")
        return resume

    def _xlate_tables(
        self,
        bridge: Bridge,
        table_id: int,
        key: FlowKey,
        probed: List[FlowMask],
        ctx: Optional[ExecContext],
        depth: int = 0,
        dp_in_port: int = 0,
        observer=None,
    ) -> List[odp.OdpAction]:
        if depth > MAX_TRANSLATION_DEPTH:
            raise TranslationError("translation too deep (table loop?)")
        rule = bridge.table(table_id).lookup(key, ctx, probed)
        if observer is not None:
            observer(bridge, table_id, rule, key)
        if rule is None:
            return []  # OpenFlow 1.3+ table-miss default: drop
        rule.n_packets += 1
        return self._xlate_actions(bridge, rule, key, probed, ctx, depth,
                                   dp_in_port, observer=observer)

    def _xlate_actions(
        self,
        bridge: Bridge,
        rule: Rule,
        key: FlowKey,
        probed: List[FlowMask],
        ctx: Optional[ExecContext],
        depth: int,
        dp_in_port: int = 0,
        observer=None,
    ) -> List[odp.OdpAction]:
        out: List[odp.OdpAction] = []
        for act in rule.actions:
            if isinstance(act, ofp.OutputAction):
                out.extend(
                    self._xlate_output(bridge, act.port, key, dp_in_port)
                )
            elif isinstance(act, (ofp.GotoTable, ofp.Resubmit)):
                out.extend(
                    self._xlate_tables(
                        bridge, act.table_id, key, probed, ctx, depth + 1,
                        dp_in_port, observer=observer,
                    )
                )
                if isinstance(act, ofp.GotoTable):
                    break  # goto does not return
            elif isinstance(act, ofp.SetFieldAction):
                if act.field in _REG_FIELDS:
                    # Registers/metadata are translation-local: update the
                    # working key, emit nothing to the datapath.
                    key = key._replace(**{act.field: act.value})
                else:
                    out.append(odp.SetField(act.field, act.value))
                    key = key._replace(**{act.field: act.value})
            elif isinstance(act, ofp.PushVlanAction):
                out.append(odp.PushVlan(act.vid, act.pcp))
                key = key._replace(vlan_tci=act.vid | 0x1000 | (act.pcp << 13))
            elif isinstance(act, ofp.PopVlanAction):
                out.append(odp.PopVlan())
                key = key._replace(vlan_tci=0)
            elif isinstance(act, ofp.CtAction):
                out.append(
                    odp.Ct(zone=act.zone, commit=act.commit,
                           nat_dst=act.nat_dst)
                )
                if act.table is not None:
                    regs = tuple(getattr(key, f) for f in _REG_FIELDS)
                    rid = self.alloc_recirc_id(bridge, act.table, regs)
                    out.append(odp.Recirc(rid))
                    return out  # freeze: the datapath resumes via recirc
            elif isinstance(act, ofp.PopTunnel):
                port = bridge.port(act.tunnel_port)
                out.append(odp.TunnelPop(port.dp_port_no))
                return out
            elif isinstance(act, ofp.MeterAction):
                out.append(odp.Meter(act.meter_id))
            elif isinstance(act, ofp.TruncAction):
                out.append(odp.Trunc(act.max_len))
            elif isinstance(act, ofp.ControllerAction):
                out.append(odp.Userspace(act.reason))
            elif isinstance(act, ofp.DropAction):
                return []
            else:
                raise TranslationError(f"cannot translate {act!r}")
        return out

    def _xlate_output(
        self, bridge: Bridge, port_spec: str, key: FlowKey,
        dp_in_port: int = 0,
    ) -> List[odp.OdpAction]:
        if port_spec == "IN_PORT":
            return [odp.Output(dp_in_port)]
        if port_spec == "LOCAL":
            port = bridge.port(bridge.name)  # local port is named as bridge
            return [odp.Output(port.dp_port_no)]
        if port_spec not in bridge.ports:
            return []  # output to a nonexistent port: drop (as OVS does)
        port = bridge.port(port_spec)
        if port.kind == "tunnel":
            return self._xlate_tunnel_output(port, key)
        return [odp.Output(port.dp_port_no)]

    def _xlate_tunnel_output(
        self, port: OfPort, key: FlowKey
    ) -> List[odp.OdpAction]:
        """Resolve the tunnel route and neighbor from the cached Netlink
        replicas (§4), then emit a TunnelPush out the underlay port."""
        tcfg = port.tunnel
        if tcfg is None:
            raise TranslationError(f"{port.name} has no tunnel options")
        if self.monitor is None:
            raise TranslationError("no ovs-router (netlink monitor) configured")
        self.monitor.poll()
        route = self.monitor.route_lookup(tcfg.remote_ip)
        if route is None:
            return []  # no route to tunnel endpoint: drop
        underlay = self._port_for_ifindex(route.ifindex)
        if underlay is None:
            return []
        underlay_port, underlay_dev = underlay
        next_hop = route.gateway or tcfg.remote_ip
        neighbor = self.monitor.neighbor_lookup(next_hop)
        if neighbor is None:
            return []  # unresolved ARP: the control plane must prime it
        local_ip = self._local_ip_for_ifindex(route.ifindex)
        if local_ip is None:
            return []
        config = TunnelConfig(
            tunnel_type=tcfg.tunnel_type,
            local_ip=local_ip,
            remote_ip=tcfg.remote_ip,
            vni=tcfg.key,
            local_mac=underlay_dev.mac,
            remote_mac=neighbor.mac,
            ttl=tcfg.ttl,
        )
        return [odp.TunnelPush(config, underlay_port.dp_port_no)]

    # The dpif supplies device objects for route resolution.
    dp_port_device = None  # type: ignore[assignment]

    def _port_for_ifindex(self, ifindex: int):
        """Find the datapath port whose device has this kernel ifindex."""
        if self.dp_port_device is None:
            return None
        for dp_no, (bridge, port) in self._dp_ports.items():
            device = self.dp_port_device(dp_no)
            if device is not None and getattr(device, "ifindex", None) == ifindex:
                return port, device
        return None

    def _local_ip_for_ifindex(self, ifindex: int) -> Optional[int]:
        if self.monitor is None:
            return None
        for _if, ip, _plen in self.monitor.ns.addresses():
            if _if == ifindex:
                return ip
        return None
