"""OpenFlow actions, as installed by a controller (NSX, our examples).

These are *control-plane* actions; the translation engine in
:mod:`repro.ovs.ofproto` compiles them into the datapath (ODP) actions of
:mod:`repro.ovs.odp` during slow-path upcalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


class OfAction:
    __slots__ = ()


@dataclass(frozen=True)
class OutputAction(OfAction):
    """Output to an OpenFlow port (a bridge port name resolved at
    translation time).  ``port`` may also be "LOCAL" or "IN_PORT"."""

    port: str


@dataclass(frozen=True)
class GotoTable(OfAction):
    table_id: int


@dataclass(frozen=True)
class Resubmit(OfAction):
    """NXM resubmit(,table): like goto but usable mid-action-list."""

    table_id: int


@dataclass(frozen=True)
class SetFieldAction(OfAction):
    field: str
    value: int


@dataclass(frozen=True)
class PushVlanAction(OfAction):
    vid: int
    pcp: int = 0


@dataclass(frozen=True)
class PopVlanAction(OfAction):
    pass


@dataclass(frozen=True)
class CtAction(OfAction):
    """ct(zone=..,commit,table=N[,nat(dst=ip:port)]).

    Without ``table`` the packet continues in the current list; with it,
    the pipeline recirculates into table N with conntrack state set —
    the NSX firewall pattern of §5.1.
    """

    zone: int = 0
    commit: bool = False
    table: Optional[int] = None
    nat_dst: Optional[Tuple[int, int]] = None


@dataclass(frozen=True)
class PopTunnel(OfAction):
    """Decapsulate and re-enter the pipeline as if received on the named
    tunnel port (the outer->inner transition of the NSX pipeline)."""

    tunnel_port: str


@dataclass(frozen=True)
class MeterAction(OfAction):
    meter_id: int


@dataclass(frozen=True)
class TruncAction(OfAction):
    """Truncate the packet to ``max_len`` bytes (ovs-actions' output
    truncation, the sampling/mirror-port pattern)."""

    max_len: int


@dataclass(frozen=True)
class ControllerAction(OfAction):
    reason: str = "action"


@dataclass(frozen=True)
class DropAction(OfAction):
    """Explicit drop (an empty action list also drops)."""
