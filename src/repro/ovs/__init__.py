"""Open vSwitch: the paper's core system.

The userspace half everyone shares: OVSDB-lite configuration
(:mod:`repro.ovs.ovsdb`), OpenFlow tables and the translation engine
(:mod:`repro.ovs.ofproto`), caches (:mod:`repro.ovs.emc`,
:mod:`repro.ovs.megaflow`).

Two datapaths implement the dpif contract:

* :mod:`repro.ovs.dpif_netlink` — the traditional kernel-module datapath
  (Figure 3 left / Figure 7a);
* :mod:`repro.ovs.dpif_netdev` — the userspace datapath with pluggable
  packet I/O: AF_XDP (Figure 3 right / Figure 7b), DPDK, vhostuser, tap.

:mod:`repro.ovs.vswitchd` ties them together into ovs-vswitchd.

Import submodules directly (``from repro.ovs.vswitchd import VSwitchd``);
this package init stays import-light because the kernel's OVS module
shares the ODP action vocabulary defined here.
"""
