"""Userspace connection tracking.

The kernel datapath gets conntrack from netfilter; the userspace datapath
cannot, so OVS carries its own implementation — one of the paper's
"features must be reimplemented" costs (§4, §6 ✗).  The core logic is
shared with :mod:`repro.kernel.conntrack` (the semantics are identical by
design); what differs is ownership: this table lives inside ovs-vswitchd,
its time is USER time, and it dies with the process (connection state is
lost over an OVS restart — the operational trade-off of the move to
userspace).
"""

from __future__ import annotations

from typing import Callable

from repro.kernel.conntrack import ConntrackTable, CtResult
from repro.net.flow import FiveTuple
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext


class UserspaceConntrack:
    def __init__(self, max_connections: int = 1_000_000,
                 now_ns_fn: Callable[[], int] = lambda: 0) -> None:
        self._table = ConntrackTable(max_connections=max_connections)
        self._now_ns_fn = now_ns_fn

    def __len__(self) -> int:
        return len(self._table)

    def set_zone_limit(self, zone: int, limit: int) -> None:
        self._table.set_zone_limit(zone, limit)

    def zone_count(self, zone: int) -> int:
        return self._table.zone_count(zone)

    def process(
        self,
        five_tuple: FiveTuple,
        zone: int,
        ctx: ExecContext,
        tcp_flags: int = 0,
        nbytes: int = 0,
        commit: bool = False,
    ) -> CtResult:
        costs = DEFAULT_COSTS
        ctx.charge(costs.conntrack_lookup_ns, label="ct_lookup")
        result = self._table.process(
            five_tuple,
            zone=zone,
            tcp_flags=tcp_flags,
            nbytes=nbytes,
            commit=commit,
            now_ns=self._now_ns_fn(),
        )
        if commit and result.is_new:
            ctx.charge(
                costs.conntrack_commit_ns - costs.conntrack_lookup_ns,
                label="ct_commit",
            )
        return result

    def peek(self, five_tuple: FiveTuple, zone: int) -> CtResult:
        """Classify without committing, charging, or touching state —
        the ``ofproto/trace`` verdict: what *would* ct() say right now."""
        return self._table.lookup(five_tuple, zone, self._now_ns_fn())

    def expire(self) -> int:
        return self._table.expire(self._now_ns_fn())

    def flush(self) -> None:
        """An OVS restart: all connection state is gone (unlike the kernel
        datapath, where netfilter state survives a vswitchd restart)."""
        self._table.flush()

    def restart(self, ctx: ExecContext) -> int:
        """A *charged* restart of the conntrack subsystem.

        A graceful hot-upgrade tears down each tracked connection
        (timers, hash unlink) before the new process allocates its empty
        table; a crash skips the per-connection part — the state simply
        vanishes with the process — but the new daemon still pays the
        table allocation (call with ``len(ct) == 0`` after a flush, or
        charge :data:`~repro.sim.costs.CostModel.conntrack_init_ns`
        directly).  Returns the number of connections destroyed.
        """
        costs = DEFAULT_COSTS
        n = len(self._table)
        ctx.charge(
            costs.conntrack_init_ns
            + n * costs.conntrack_destroy_per_conn_ns,
            label="ct_restart",
        )
        self._table.flush()
        return n

    def connections(self):
        return self._table.connections()
