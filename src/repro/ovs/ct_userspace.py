"""Userspace connection tracking.

The kernel datapath gets conntrack from netfilter; the userspace datapath
cannot, so OVS carries its own implementation — one of the paper's
"features must be reimplemented" costs (§4, §6 ✗).  The core logic is
shared with :mod:`repro.kernel.conntrack` (the semantics are identical by
design); what differs is ownership: this table lives inside ovs-vswitchd,
its time is USER time, and it dies with the process (connection state is
lost over an OVS restart — the operational trade-off of the move to
userspace).
"""

from __future__ import annotations

from typing import Callable

from repro.kernel.conntrack import ConntrackTable, CtResult
from repro.net.flow import FiveTuple
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext


class UserspaceConntrack:
    def __init__(self, max_connections: int = 1_000_000,
                 now_ns_fn: Callable[[], int] = lambda: 0) -> None:
        self._table = ConntrackTable(max_connections=max_connections)
        self._now_ns_fn = now_ns_fn

    def __len__(self) -> int:
        return len(self._table)

    def set_zone_limit(self, zone: int, limit: int) -> None:
        self._table.set_zone_limit(zone, limit)

    def zone_count(self, zone: int) -> int:
        return self._table.zone_count(zone)

    def process(
        self,
        five_tuple: FiveTuple,
        zone: int,
        ctx: ExecContext,
        tcp_flags: int = 0,
        nbytes: int = 0,
        commit: bool = False,
    ) -> CtResult:
        costs = DEFAULT_COSTS
        ctx.charge(costs.conntrack_lookup_ns, label="ct_lookup")
        result = self._table.process(
            five_tuple,
            zone=zone,
            tcp_flags=tcp_flags,
            nbytes=nbytes,
            commit=commit,
            now_ns=self._now_ns_fn(),
        )
        if commit and result.is_new:
            ctx.charge(
                costs.conntrack_commit_ns - costs.conntrack_lookup_ns,
                label="ct_commit",
            )
        return result

    def peek(self, five_tuple: FiveTuple, zone: int) -> CtResult:
        """Classify without committing, charging, or touching state —
        the ``ofproto/trace`` verdict: what *would* ct() say right now."""
        return self._table.lookup(five_tuple, zone, self._now_ns_fn())

    def expire(self) -> int:
        return self._table.expire(self._now_ns_fn())

    def flush(self) -> None:
        """An OVS restart: all connection state is gone (unlike the kernel
        datapath, where netfilter state survives a vswitchd restart)."""
        self._table.flush()

    def connections(self):
        return self._table.connections()
