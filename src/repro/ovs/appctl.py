"""ovs-appctl: operational introspection of a running vswitchd.

The paper's "easier troubleshooting" lesson (§6) is partly about being
able to see inside the userspace datapath.  These are the commands an
operator actually runs:

* ``dpctl/show`` — datapath ports and totals,
* ``dpctl/dump-flows`` — the installed megaflows with stats,
* ``dpif-netdev/pmd-stats-show`` — per-PMD cache hit rates,
* ``dpif-netdev/pmd-perf-show`` — per-stage virtual-time breakdown,
* ``coverage/show`` — rare-event counters from the trace ledger, with
  real-OVS-style events-per-second rate columns (per *virtual* second),
* ``dpctl/dump-conntrack`` — the connection table,
* ``metrics/show`` — the attached virtual-time metrics sampler's view,
* ``fastpath/show`` — which wall-clock fastpath layers are active
  (burst classification, verdict memos, the eBPF JIT) and per-program
  JIT compile/run/fallback counts,
* ``ofproto/trace`` — inject a synthetic packet and narrate every
  decision the datapath would take, without taking any of them,
* ``supervisor/show`` — the crash-recovery watchdog: uptime, restart
  history with per-phase recovery timings, backoff state,
* ``shard/show`` — the last sharded run: placement, barriers,
  cross-shard handoff queues, merge wall-time (DESIGN §17),
* ``fdb/stats`` equivalents come from the bridges' OpenFlow dumps.

``pmd-perf-show`` and ``coverage/show`` read the active
:class:`~repro.sim.trace.TraceRecorder` (or one passed explicitly), so
they show real data only when a run executed under
``trace.recording()``.

``ofproto/trace`` is strictly read-only: cache probes use the peek
variants (no charges, no counters, no stats touch), translation runs
uncharged and every observable side effect — rule/table hit counters,
``n_translations``, lazily created tables, allocated recirculation ids —
is rolled back before it returns.  Running it mid-experiment changes no
subsequent ledger byte; an integration test enforces this by string
comparison.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.kernel.conntrack import (
    CT_ESTABLISHED,
    CT_INVALID,
    CT_NEW,
    CT_RELATED,
    CT_REPLY,
    CT_TRACKED,
)
from repro.net.addresses import int_to_ip
from repro.net.flow import FlowKey, extract_flow
from repro.net.tunnel import decapsulate
from repro.ovs import odp
from repro.ovs import ofactions as ofp
from repro.ovs.match import _FULL_MASK, Match
from repro.ovs.ofproto import TranslationError
from repro.ovs.packet_ops import do_pop_vlan, do_push_vlan, set_field
from repro.ovs.pmd import PmdThread
from repro.ovs.vswitchd import VSwitchd
from repro import telemetry
from repro.sim import faults, trace
from repro.sim.trace import TraceRecorder

#: Recirculation passes ofproto/trace will follow before giving up
#: (mirrors the datapath's MAX_RECIRC_PASSES).
MAX_TRACE_PASSES = 8


class OvsAppctl:
    def __init__(self, vswitchd: VSwitchd) -> None:
        self.vs = vswitchd

    # ------------------------------------------------------------------
    def dpctl_show(self) -> str:
        lines: List[str] = []
        if self.vs.dpif_netdev is not None:
            dpif = self.vs.dpif_netdev
            lines.append(f"{dpif.name}:")
            s = dpif.stats
            # ``lost:`` means what it means in real dpctl/show: packets
            # destined for the slow path that never got there (bounded
            # upcall queue overflow) — not every pipeline drop.
            lines.append(
                f"  lookups: hit:{s.emc_hits + s.megaflow_hits} "
                f"missed:{s.upcalls} lost:{s.lost}"
            )
            lines.append(f"  flows: {len(dpif.megaflows)}")
            for port in sorted(dpif.ports.values(), key=lambda p: p.port_no):
                lines.append(
                    f"  port {port.port_no}: {port.name} ({port.kind}) "
                    f"rx:{port.rx_packets} tx:{port.tx_packets}"
                )
        if self.vs.dpif_netlink is not None:
            dp = self.vs.dpif_netlink.dp
            lines.append(f"system@{dp.name}:")
            lines.append(
                f"  lookups: hit:{dp.flows.n_hit} "
                f"missed:{dp.flows.n_missed} lost:{dp.n_lost}"
            )
            lines.append(f"  flows: {len(dp.flows)}")
            for port in sorted(dp.ports.values(), key=lambda p: p.port_no):
                lines.append(
                    f"  port {port.port_no}: {port.name} ({port.kind}) "
                    f"rx:{port.stats_rx} tx:{port.stats_tx}"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def dpctl_dump_flows(self, max_flows: int = 50) -> str:
        if self.vs.dpif_netdev is None:
            return "(kernel datapath: flows live in the kernel module)"
        lines = []
        for entry in self.vs.dpif_netdev.megaflows.entries()[:max_flows]:
            lines.append(
                f"{_render_masked_key(entry.key, entry.mask)}, "
                f"packets:{entry.n_packets}, bytes:{entry.n_bytes}, "
                f"actions:{_render_actions(entry.actions)}"
            )
        return "\n".join(lines) if lines else "(no flows installed)"

    # ------------------------------------------------------------------
    def pmd_stats_show(self, pmds: Sequence[PmdThread]) -> str:
        """Mirror ``ovs-appctl dpif-netdev/pmd-stats-show``.

        Per-core cache outcomes come from each PMD's own
        :class:`~repro.ovs.dpif_netdev.PipelineStats`; cycles are the
        thread's consumed virtual time.
        """
        lines = []
        for pmd in pmds:
            s = pmd.stats
            emc = pmd.emc
            total = emc.hits + emc.misses
            rate = f"{emc.hit_rate * 100:.1f}%" if total else "n/a"
            ok_upcalls = s.upcalls - s.failed_upcalls
            passes_per_pkt = (s.passes / s.packets) if s.packets else 0.0
            cycles = pmd.cycles_ns
            per_pkt = (cycles / s.packets) if s.packets else 0.0
            lines.append(
                f"pmd thread on core {pmd.ctx.cpu}:\n"
                f"  packets processed: {pmd.packets_processed}\n"
                f"  packet recirculations: {max(s.passes - s.packets, 0)}\n"
                f"  avg. datapath passes per packet: {passes_per_pkt:.2f}\n"
                f"  emc hits: {emc.hits} ({rate} hit rate)\n"
                f"  megaflow hits: {s.megaflow_hits}\n"
                f"  miss with success upcall: {ok_upcalls}\n"
                f"  miss with failed upcall: {s.failed_upcalls}\n"
                f"  avg. packets per output batch: {s.avg_batch:.2f}\n"
                f"  iterations: {pmd.iterations} "
                f"(empty: {pmd.empty_polls})\n"
                f"  processing cycles: {cycles:.0f} ns "
                f"({per_pkt:.0f} ns/pkt)"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def pmd_perf_show(self, pmds: Sequence[PmdThread],
                      recorder: Optional[TraceRecorder] = None) -> str:
        """Mirror ``ovs-appctl dpif-netdev/pmd-perf-show``: iteration
        stats per PMD plus the per-stage virtual-time breakdown from the
        trace ledger."""
        rec = recorder if recorder is not None else trace.ACTIVE
        lines = []
        for pmd in pmds:
            busy = pmd.iterations - pmd.empty_polls
            s = pmd.stats
            lines.append(f"pmd thread on core {pmd.ctx.cpu}:")
            lines.append(f"  iterations: {pmd.iterations} "
                         f"(busy: {busy}, empty: {pmd.empty_polls})")
            lines.append(f"  packets processed: {pmd.packets_processed}")
            lines.append(f"  rx batches: {s.batches} "
                         f"(avg size: {s.avg_batch:.2f})")
            if s.batch_hist:
                dist = " ".join(f"{size}:{s.batch_hist[size]}"
                                for size in sorted(s.batch_hist))
                lines.append(f"  packets-per-batch histogram: {dist}")
            lines.append(f"  processing cycles: {pmd.cycles_ns:.0f} ns")
        if rec is None:
            lines.append("(no trace recorder attached; "
                         "run under trace.recording() for stage detail)")
            return "\n".join(lines)
        total = rec.total_ns or 1.0
        lines.append("per-stage breakdown (all threads):")
        for stage, (count, ns) in sorted(
            rec.spans.items(), key=lambda kv: -kv[1][1]
        ):
            lines.append(
                f"  {stage:24s} {ns:>16.0f} ns "
                f"{100.0 * ns / total:5.1f}%  (x{count})"
            )
        lines.append(f"  {'total':24s} {rec.total_ns:>16.0f} ns")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def coverage_show(self,
                      recorder: Optional[TraceRecorder] = None) -> str:
        """Mirror ``ovs-appctl coverage/show``: event counters collected
        by the trace layer (EMC/dpcls outcomes, upcalls, ring stalls,
        syscalls, copies...), each with its average rate per *virtual*
        second of charged CPU time — the analog of the real command's
        avg/hr columns over a wall-clock window."""
        rec = recorder if recorder is not None else trace.ACTIVE
        if rec is None or not rec.counters:
            return "(no events recorded)"
        busy_s = rec.cpu_charged_ns / 1e9
        lines = [f"{'Event':32s} {'Total':>12} {'Avg/s':>15}"]
        for name, count in sorted(rec.counters.items()):
            if busy_s > 0:
                rate = f"{count / busy_s:>13.1f}/s"
            else:
                rate = f"{'n/a':>15}"
            lines.append(f"{name:32s} {count:>12d} {rate:>15}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def metrics_show(self, sampler=None) -> str:
        """``ovs-appctl metrics/show``: the virtual-time metrics
        sampler's series summary (see
        :class:`~repro.sim.profile.MetricsSampler`)."""
        s = sampler
        if s is None:
            rec = trace.ACTIVE
            s = rec.sampler if rec is not None else None
        if s is None:
            return "(no metrics sampler attached)"
        return s.render()

    # ------------------------------------------------------------------
    def fastpath_show(self) -> str:
        """``ovs-appctl fastpath/show``: the wall-clock fastpath layers
        (none of which may change a single observable byte) and the
        per-program eBPF JIT counters.

        ``jit`` counts compiled runs, ``interp`` counts interpreter
        fallbacks; a program with a decline reason shows why the
        translator refused it.
        """
        from repro.ebpf import jit
        from repro.ovs import dpif_netdev, dpjit
        from repro.sim import fastpath

        def onoff(flag: bool) -> str:
            return "on" if flag else "off"

        lines = [
            f"batch-classify: {onoff(dpif_netdev.BATCH_CLASSIFY)}",
            f"wall-clock memos: {onoff(fastpath.ENABLED)}",
            "ebpf-jit: "
            + onoff(fastpath.ENABLED and jit.ENABLED)
            + ("" if jit.ENABLED else " (EBPF_JIT=0)"),
            "dp-jit: "
            + onoff(fastpath.ENABLED and dpjit.ENABLED)
            + ("" if dpjit.ENABLED else " (DP_JIT=0)"),
            dpjit.render(),
        ]
        stats = jit.stats()
        if not stats:
            lines.append("(no eBPF programs run yet)")
            return "\n".join(lines)
        lines.append("program               compiled  jit-runs  interp-runs")
        for name in sorted(stats):
            st = stats[name]
            compiled = "yes" if st.compiled else "no"
            lines.append(
                f"{name:20s}  {compiled:8s}  {st.jit_runs:8d}  "
                f"{st.interp_runs:11d}"
            )
            if st.declined:
                lines.append(f"  declined: {st.declined}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def faults_show(self) -> str:
        """``ovs-appctl faults/show``: the installed fault plan, its
        per-point event/fire tallies, and the datapath degradation
        state (flow limit, lost upcalls)."""
        plan = faults.ACTIVE
        lines = []
        if plan is None:
            lines.append("(no fault plan installed)")
        else:
            lines.append(plan.render())
        dpif = self.vs.dpif_netdev
        if dpif is not None:
            limit = ("none" if dpif.flow_limit is None
                     else str(dpif.flow_limit))
            lines.append(
                f"datapath {dpif.name}: flow-limit:{limit} "
                f"lost:{dpif.stats.lost} "
                f"failed-upcalls:{dpif.stats.failed_upcalls}"
            )
        if self.vs.dpif_netlink is not None:
            dp = self.vs.dpif_netlink.dp
            lines.append(f"datapath system@{dp.name}: lost:{dp.n_lost}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def sflow_show(self) -> str:
        """``ovs-appctl sflow/show``: the active sampling session —
        rate, header length and per-dispatch-point observed/sampled
        tallies."""
        session = telemetry.ACTIVE
        if session is None:
            return "(no telemetry session installed)"
        sampler = session.sflow
        if sampler is None:
            return "sflow: disabled"
        cfg = sampler.config
        lines = [f"sflow: sampling 1/{cfg.rate} "
                 f"(header {cfg.header_bytes} bytes, seed {cfg.seed})"]
        for point in cfg.points:
            lines.append(
                f"  {point:8s} observed:{sampler.observed[point]} "
                f"sampled:{sampler.sampled[point]}")
        lines.append(f"  total    observed:{sampler.total_observed} "
                     f"sampled:{sampler.total_sampled}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def ipfix_show(self) -> str:
        """``ovs-appctl ipfix/show``: the flow exporter — timeouts,
        cache occupancy, export/loss totals and the per-reason drop
        tallies of the unified taxonomy."""
        session = telemetry.ACTIVE
        if session is None:
            return "(no telemetry session installed)"
        exporter = session.ipfix
        if exporter is None:
            return "ipfix: disabled"
        cfg = exporter.config
        lines = [
            f"ipfix: point {cfg.point} "
            f"active-timeout {cfg.active_timeout_ns} ns "
            f"idle-timeout {cfg.idle_timeout_ns} ns",
            f"  cached flows: {len(exporter.cache)}",
            f"  exported: {exporter.exported_flow_records} flow records "
            f"({exporter.exported_flow_packets} packets, "
            f"{exporter.exported_flow_octets} octets)",
            f"  exported: {exporter.exported_drop_records} drop records "
            f"({exporter.exported_drop_packets} packets, "
            f"{exporter.exported_drop_octets} octets)",
            f"  lost to collector: "
            f"{exporter.lost_flow_records + exporter.lost_drop_records} "
            f"records",
        ]
        if exporter.drop_packets:
            lines.append("  drop reasons:")
            for reason in sorted(exporter.drop_packets,
                                 key=lambda r: r.value):
                lines.append(
                    f"    {reason.value:26s} "
                    f"packets:{exporter.drop_packets[reason]} "
                    f"octets:{exporter.drop_octets.get(reason, 0)}")
        else:
            lines.append("  drop reasons: (none recorded)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def supervisor_show(self, supervisor) -> str:
        """``ovs-appctl supervisor/show``: the crash-recovery watchdog's
        view — uptime, restart history with per-phase timings, last
        crash cause, backoff state and the crash packet sinks (see
        :class:`~repro.sim.supervisor.Supervisor`)."""
        if supervisor is None:
            return "(no supervisor attached)"
        return supervisor.render()

    # ------------------------------------------------------------------
    def shard_show(self, report=None) -> str:
        """``ovs-appctl shard/show``: the most recent sharded run —
        worker count and start method, barrier count, per-shard unit
        (or PMD) placement with wall times, cross-shard TX handoff
        queue accounting and the coordinator's merge cost.  Reads
        :data:`repro.sim.shard.LAST_REPORT` when no report is passed;
        wall times are real seconds and never feed any observable."""
        if report is None:
            from repro.sim import shard

            report = shard.LAST_REPORT
        if report is None:
            return "(no sharded run recorded)"
        return report.render()

    # ------------------------------------------------------------------
    def dpctl_dump_conntrack(self, max_conns: int = 50) -> str:
        conns = []
        if self.vs.dpif_netdev is not None:
            conns = self.vs.dpif_netdev.conntrack.connections()
        elif self.vs.dpif_netlink is not None:
            conns = self.vs.kernel.init_ns.conntrack.connections()
        lines = []
        for conn in conns[:max_conns]:
            proto = {6: "tcp", 17: "udp", 1: "icmp"}.get(
                conn.orig.proto, str(conn.orig.proto))
            state = f",state={conn.tcp_state.value}" if conn.tcp_state else ""
            lines.append(
                f"{proto},orig=({int_to_ip(conn.orig.src_ip)}:"
                f"{conn.orig.src_port}->{int_to_ip(conn.orig.dst_ip)}:"
                f"{conn.orig.dst_port}),zone={conn.zone}{state},"
                f"packets={conn.packets}"
            )
        return "\n".join(lines) if lines else "(conntrack empty)"

    # ------------------------------------------------------------------
    def ofproto_trace(self, packet, in_port, emc=None) -> str:
        """``ovs-appctl ofproto/trace``: narrate one packet's fate.

        ``packet`` is a :class:`~repro.net.packet.Packet` (or raw bytes)
        injected as if received on ``in_port`` (a datapath port name or
        number).  The narration covers each recirculation pass: the EMC
        probe outcome (when the caller supplies a PMD's cache), the
        megaflow probe with its subtable count and mask, the upcall's
        OpenFlow table walk, the conntrack verdict, and the final
        datapath actions.

        Read-only end to end: nothing is charged, counted, installed,
        committed or metered — see the module docstring for the rollback
        contract.
        """
        dpif = self.vs.dpif_netdev
        if dpif is None:
            return "(ofproto/trace needs the userspace datapath)"
        data = packet.data if hasattr(packet, "data") else bytes(packet)
        if isinstance(in_port, str):
            try:
                port_no = dpif.port_no(in_port)
            except KeyError:
                return f"(no datapath port {in_port!r})"
        else:
            port_no = in_port
        ofproto = self.vs.ofproto
        # Recirculation ids allocated *by this trace* are rolled back
        # only after the whole trace ran: a later pass must still be
        # able to resolve an id an earlier pass narrated.
        saved_next_recirc = ofproto._next_recirc
        lines: List[str] = []
        try:
            self._trace_passes(lines, dpif, data, port_no, emc)
        finally:
            for rid in [r for r in ofproto._recirc_resume
                        if r >= saved_next_recirc]:
                resume_key = ofproto._recirc_resume.pop(rid)
                ofproto._recirc_ids.pop(resume_key, None)
            ofproto._next_recirc = saved_next_recirc
        return "\n".join(lines)

    def _trace_passes(self, lines: List[str], dpif, data: bytes,
                      port_no: int, emc) -> None:
        recirc_id = 0
        ct_state = 0
        ct_zone = 0
        ct_mark = 0
        tun = (0, 0, 0)  # (vni, remote_ip, local_ip)
        for pass_no in range(1, MAX_TRACE_PASSES + 2):
            if pass_no > MAX_TRACE_PASSES:
                lines.append("... recirculation limit reached; giving up")
                return
            key = extract_flow(
                data,
                in_port=port_no,
                recirc_id=recirc_id,
                ct_state=ct_state,
                ct_zone=ct_zone,
                ct_mark=ct_mark,
                tun_id=tun[0],
                tun_src=tun[1],
                tun_dst=tun[2],
            )
            if pass_no > 1:
                lines.append("")
            lines.append(f"Pass {pass_no}")
            lines.append(f"Flow: {_render_flow(key)}")
            actions = self._trace_classify(lines, dpif, key, emc)
            if actions is None:
                return
            if not actions:
                lines.append("Datapath actions: drop")
                return
            lines.append(f"Datapath actions: {_render_actions(actions)}")
            follow = self._trace_actions(lines, dpif, data, key, actions)
            if follow is None:
                return
            data, port_no, recirc_id, ct_state, ct_zone, ct_mark, tun = follow

    def _trace_classify(self, lines: List[str], dpif, key: FlowKey,
                        emc) -> "Optional[Tuple]":
        """One pass's cache/upcall decision; returns the datapath
        actions, or None if the trace ends here (translation error)."""
        if emc is not None:
            hit = emc.peek(key)
            if hit is not None:
                lines.append("EMC: hit")
                return hit.actions
            lines.append("EMC: miss")
        else:
            lines.append("EMC: (no per-PMD cache supplied; skipped)")
        entry, probes = dpif.megaflows.peek(key)
        if entry is not None:
            lines.append(
                f"Megaflow: hit after {probes} subtable probe(s), "
                f"packets:{entry.n_packets}"
            )
            lines.append(f"  {_render_masked_key(entry.key, entry.mask)}")
            return entry.actions
        lines.append(f"Megaflow: miss ({probes} subtable(s) probed)")
        lines.append("Upcall: translating through the OpenFlow tables")
        result, error, walk = self._trace_translate(key)
        bridge_name = None
        for bname, table_id, rule, _obs_key in walk:
            if bname != bridge_name:
                bridge_name = bname
                lines.append(f'bridge("{bname}")')
                lines.append("-" * (len(bname) + 9))
            if rule is None:
                lines.append(
                    f"{table_id:>2}. (no matching rule: table-miss drop)"
                )
                continue
            lines.append(
                f"{table_id:>2}. priority {rule.priority}, "
                f"{_render_match(rule.match)}"
            )
            lines.append(f"    actions: {_render_of_actions(rule.actions)}")
        if error is not None:
            lines.append(f"Translation error: {error}")
            return None
        if not walk:
            lines.append("(input port not attached to any bridge: drop)")
        lines.append(
            f"Megaflow mask: {_render_masked_key(key, result.mask)} "
            f"(trace: not installed)"
        )
        return result.actions

    def _trace_translate(self, key: FlowKey):
        """Run the translator uncharged and roll back every observable
        side effect: rule hit counters, per-table lookup/match counters,
        ``n_translations`` and lazily created (still-empty) tables.
        Recirculation-id rollback is deferred to :meth:`ofproto_trace`.
        """
        ofproto = self.vs.ofproto
        walk: List[Tuple] = []
        matched: List = []
        saved_translations = ofproto.n_translations
        saved_counts = []
        saved_table_ids = {}
        for name, bridge in ofproto.bridges.items():
            saved_table_ids[name] = set(bridge.tables)
            for table in bridge.tables.values():
                saved_counts.append(
                    (table, table.n_lookups, table.n_matches)
                )

        def observer(bridge, table_id, rule, obs_key):
            walk.append((bridge.name, table_id, rule, obs_key))
            if rule is not None:
                matched.append(rule)

        try:
            result = ofproto.translate(key, None, observer=observer)
            error = None
        except TranslationError as exc:
            result, error = None, str(exc)
        finally:
            ofproto.n_translations = saved_translations
            for rule in matched:
                rule.n_packets -= 1
            for table, n_lookups, n_matches in saved_counts:
                table.n_lookups = n_lookups
                table.n_matches = n_matches
            for name, bridge in ofproto.bridges.items():
                for table_id in (set(bridge.tables)
                                 - saved_table_ids.get(name, set())):
                    if not len(bridge.tables[table_id]):
                        del bridge.tables[table_id]
        return result, error, walk

    def _trace_actions(self, lines: List[str], dpif, data: bytes,
                       key: FlowKey, actions):
        """Narrate one pass's datapath actions, following rewrites so a
        recirculation/decap pass re-enters with accurate bytes.  Returns
        the next pass's (data, port, recirc, ct-state) tuple, or None
        when the packet's fate is settled this pass."""
        ct_state, ct_zone, ct_mark = key.ct_state, key.ct_zone, key.ct_mark
        for act in actions:
            if isinstance(act, odp.Output):
                port = dpif.ports.get(act.port_no)
                name = port.name if port is not None else "?"
                lines.append(f" -> output to port {act.port_no} ({name})")
            elif isinstance(act, odp.Ct):
                verdict = dpif.conntrack.peek(key.five_tuple(), act.zone)
                commit = ",commit" if act.commit else ""
                lines.append(
                    f" -> ct(zone={act.zone}{commit}): verdict "
                    f"{_render_ct_state(verdict.state_bits)} "
                    f"(trace: nothing committed)"
                )
                ct_state = verdict.state_bits
                ct_zone = act.zone
                if verdict.connection is not None:
                    ct_mark = verdict.connection.mark
            elif isinstance(act, odp.Recirc):
                lines.append(f" -> recirc({act.recirc_id:#x})")
                return (data, key.in_port, act.recirc_id,
                        ct_state, ct_zone, ct_mark, (0, 0, 0))
            elif isinstance(act, odp.SetField):
                lines.append(f" -> set_field {act.field}={act.value}")
                data = set_field(data, act.field, act.value)
            elif isinstance(act, odp.PushVlan):
                lines.append(f" -> push_vlan vid={act.vid} pcp={act.pcp}")
                data = do_push_vlan(data, act.vid, act.pcp)
            elif isinstance(act, odp.PopVlan):
                lines.append(" -> pop_vlan")
                data = do_pop_vlan(data)
            elif isinstance(act, odp.TunnelPush):
                lines.append(
                    f" -> tnl_push(vni={act.config.vni}) "
                    f"out port {act.out_port}"
                )
            elif isinstance(act, odp.TunnelPop):
                try:
                    ttype, vni, src, dst, inner = decapsulate(data)
                except ValueError:
                    lines.append(" -> tnl_pop: malformed outer header, drop")
                    return None
                lines.append(
                    f" -> tnl_pop({ttype}, vni={vni}) "
                    f"re-enters on vport {act.vport}"
                )
                return (inner, act.vport, 0, 0, 0, 0, (vni, src, dst))
            elif isinstance(act, odp.Meter):
                lines.append(
                    f" -> meter({act.meter_id}) "
                    f"(trace: token bucket not charged)"
                )
            elif isinstance(act, odp.Userspace):
                lines.append(f" -> userspace({act.reason})")
            elif isinstance(act, odp.Trunc):
                lines.append(f" -> trunc(max_len={act.max_len})")
                data = data[: act.max_len]
            else:
                lines.append(f" -> {act!r}")
        return None

    # ------------------------------------------------------------------
    def ofproto_list_bridges(self) -> str:
        lines = []
        for name, bridge in self.vs.ofproto.bridges.items():
            lines.append(
                f"{name}: {len(bridge.ports)} ports, "
                f"{bridge.n_flows():,} flows in "
                f"{sum(1 for t in bridge.tables.values() if len(t))} tables"
            )
        return "\n".join(lines)


def _fmt_field(name: str, value: int) -> str:
    """One flow field, rendered the way an operator reads it."""
    if name in ("nw_src", "nw_dst", "tun_src", "tun_dst"):
        return f"{name}={int_to_ip(value & 0xFFFFFFFF)}"
    if name in ("eth_src", "eth_dst"):
        return f"{name}={value:012x}"
    return f"{name}={value}"


def _render_masked_key(key: FlowKey, mask) -> str:
    parts = []
    for name, value, bits in zip(FlowKey._fields, key, mask):
        if not bits:
            continue
        parts.append(_fmt_field(name, value & bits))
    return ",".join(parts) or "(match-all)"


def _render_flow(key: FlowKey) -> str:
    """The ``Flow:`` line of ofproto/trace: recirc_id and in_port
    always, then every non-zero field."""
    parts = [f"recirc_id={key.recirc_id:#x}", f"in_port={key.in_port}"]
    if key.ct_state:
        parts.append(f"ct_state={_render_ct_state(key.ct_state)}")
    for name, value in zip(FlowKey._fields, key):
        if not value or name in ("in_port", "recirc_id", "ct_state"):
            continue
        parts.append(_fmt_field(name, value))
    return ",".join(parts)


def _render_match(match: Match) -> str:
    if match.is_catchall():
        return "(match any)"
    parts = []
    for name, (value, bits) in sorted(match.fields().items()):
        if bits == _FULL_MASK[name]:
            parts.append(_fmt_field(name, value))
        else:
            parts.append(f"{name}={value:#x}/{bits:#x}")
    return ",".join(parts)


def _render_of_actions(actions) -> str:
    """OpenFlow actions in the flow-dump idiom operators know."""
    if not actions:
        return "drop"
    out = []
    for act in actions:
        if isinstance(act, ofp.OutputAction):
            out.append(f"output:{act.port}")
        elif isinstance(act, ofp.GotoTable):
            out.append(f"goto_table:{act.table_id}")
        elif isinstance(act, ofp.Resubmit):
            out.append(f"resubmit(,{act.table_id})")
        elif isinstance(act, ofp.SetFieldAction):
            out.append(f"set_field:{act.value}->{act.field}")
        elif isinstance(act, ofp.CtAction):
            inner = [f"zone={act.zone}"]
            if act.commit:
                inner.append("commit")
            if act.table is not None:
                inner.append(f"table={act.table}")
            if act.nat_dst is not None:
                ip, port = act.nat_dst
                inner.append(f"nat(dst={int_to_ip(ip)}:{port})")
            out.append(f"ct({','.join(inner)})")
        elif isinstance(act, ofp.PushVlanAction):
            out.append(f"push_vlan:{act.vid}")
        elif isinstance(act, ofp.PopVlanAction):
            out.append("pop_vlan")
        elif isinstance(act, ofp.PopTunnel):
            out.append(f"pop_tunnel:{act.tunnel_port}")
        elif isinstance(act, ofp.MeterAction):
            out.append(f"meter:{act.meter_id}")
        elif isinstance(act, ofp.ControllerAction):
            out.append(f"controller({act.reason})")
        elif isinstance(act, ofp.DropAction):
            out.append("drop")
        else:
            out.append(act.__class__.__name__.lower())
    return ",".join(out)


_CT_STATE_NAMES = (
    (CT_NEW, "new"),
    (CT_ESTABLISHED, "est"),
    (CT_RELATED, "rel"),
    (CT_REPLY, "rpl"),
    (CT_INVALID, "inv"),
    (CT_TRACKED, "trk"),
)


def _render_ct_state(bits: int) -> str:
    names = [name for bit, name in _CT_STATE_NAMES if bits & bit]
    return "|".join(names) if names else "none"


def _render_actions(actions) -> str:
    if not actions:
        return "drop"
    out = []
    for act in actions:
        name = act.__class__.__name__
        if name == "Output":
            out.append(str(act.port_no))
        elif name == "Recirc":
            out.append(f"recirc({act.recirc_id})")
        elif name == "Ct":
            commit = ",commit" if act.commit else ""
            out.append(f"ct(zone={act.zone}{commit})")
        elif name == "TunnelPush":
            out.append(f"tnl_push(vni={act.config.vni})")
        else:
            out.append(name.lower())
    return ",".join(out)
