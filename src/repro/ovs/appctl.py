"""ovs-appctl: operational introspection of a running vswitchd.

The paper's "easier troubleshooting" lesson (§6) is partly about being
able to see inside the userspace datapath.  These are the commands an
operator actually runs:

* ``dpctl/show`` — datapath ports and totals,
* ``dpctl/dump-flows`` — the installed megaflows with stats,
* ``dpif-netdev/pmd-stats-show`` — per-PMD cache hit rates,
* ``dpif-netdev/pmd-perf-show`` — per-stage virtual-time breakdown,
* ``coverage/show`` — rare-event counters from the trace ledger,
* ``dpctl/dump-conntrack`` — the connection table,
* ``fdb/stats`` equivalents come from the bridges' OpenFlow dumps.

``pmd-perf-show`` and ``coverage/show`` read the active
:class:`~repro.sim.trace.TraceRecorder` (or one passed explicitly), so
they show real data only when a run executed under
``trace.recording()``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.net.addresses import int_to_ip
from repro.net.flow import FlowKey
from repro.ovs.pmd import PmdThread
from repro.ovs.vswitchd import VSwitchd
from repro.sim import faults, trace
from repro.sim.trace import TraceRecorder


class OvsAppctl:
    def __init__(self, vswitchd: VSwitchd) -> None:
        self.vs = vswitchd

    # ------------------------------------------------------------------
    def dpctl_show(self) -> str:
        lines: List[str] = []
        if self.vs.dpif_netdev is not None:
            dpif = self.vs.dpif_netdev
            lines.append(f"{dpif.name}:")
            s = dpif.stats
            # ``lost:`` means what it means in real dpctl/show: packets
            # destined for the slow path that never got there (bounded
            # upcall queue overflow) — not every pipeline drop.
            lines.append(
                f"  lookups: hit:{s.emc_hits + s.megaflow_hits} "
                f"missed:{s.upcalls} lost:{s.lost}"
            )
            lines.append(f"  flows: {len(dpif.megaflows)}")
            for port in sorted(dpif.ports.values(), key=lambda p: p.port_no):
                lines.append(
                    f"  port {port.port_no}: {port.name} ({port.kind}) "
                    f"rx:{port.rx_packets} tx:{port.tx_packets}"
                )
        if self.vs.dpif_netlink is not None:
            dp = self.vs.dpif_netlink.dp
            lines.append(f"system@{dp.name}:")
            lines.append(
                f"  lookups: hit:{dp.flows.n_hit} "
                f"missed:{dp.flows.n_missed} lost:{dp.n_lost}"
            )
            lines.append(f"  flows: {len(dp.flows)}")
            for port in sorted(dp.ports.values(), key=lambda p: p.port_no):
                lines.append(
                    f"  port {port.port_no}: {port.name} ({port.kind}) "
                    f"rx:{port.stats_rx} tx:{port.stats_tx}"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def dpctl_dump_flows(self, max_flows: int = 50) -> str:
        if self.vs.dpif_netdev is None:
            return "(kernel datapath: flows live in the kernel module)"
        lines = []
        for entry in self.vs.dpif_netdev.megaflows.entries()[:max_flows]:
            lines.append(
                f"{_render_masked_key(entry.key, entry.mask)}, "
                f"packets:{entry.n_packets}, bytes:{entry.n_bytes}, "
                f"actions:{_render_actions(entry.actions)}"
            )
        return "\n".join(lines) if lines else "(no flows installed)"

    # ------------------------------------------------------------------
    def pmd_stats_show(self, pmds: Sequence[PmdThread]) -> str:
        """Mirror ``ovs-appctl dpif-netdev/pmd-stats-show``.

        Per-core cache outcomes come from each PMD's own
        :class:`~repro.ovs.dpif_netdev.PipelineStats`; cycles are the
        thread's consumed virtual time.
        """
        lines = []
        for pmd in pmds:
            s = pmd.stats
            emc = pmd.emc
            total = emc.hits + emc.misses
            rate = f"{emc.hit_rate * 100:.1f}%" if total else "n/a"
            ok_upcalls = s.upcalls - s.failed_upcalls
            passes_per_pkt = (s.passes / s.packets) if s.packets else 0.0
            cycles = pmd.cycles_ns
            per_pkt = (cycles / s.packets) if s.packets else 0.0
            lines.append(
                f"pmd thread on core {pmd.ctx.cpu}:\n"
                f"  packets processed: {pmd.packets_processed}\n"
                f"  packet recirculations: {max(s.passes - s.packets, 0)}\n"
                f"  avg. datapath passes per packet: {passes_per_pkt:.2f}\n"
                f"  emc hits: {emc.hits} ({rate} hit rate)\n"
                f"  megaflow hits: {s.megaflow_hits}\n"
                f"  miss with success upcall: {ok_upcalls}\n"
                f"  miss with failed upcall: {s.failed_upcalls}\n"
                f"  avg. packets per output batch: {s.avg_batch:.2f}\n"
                f"  iterations: {pmd.iterations} "
                f"(empty: {pmd.empty_polls})\n"
                f"  processing cycles: {cycles:.0f} ns "
                f"({per_pkt:.0f} ns/pkt)"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def pmd_perf_show(self, pmds: Sequence[PmdThread],
                      recorder: Optional[TraceRecorder] = None) -> str:
        """Mirror ``ovs-appctl dpif-netdev/pmd-perf-show``: iteration
        stats per PMD plus the per-stage virtual-time breakdown from the
        trace ledger."""
        rec = recorder if recorder is not None else trace.ACTIVE
        lines = []
        for pmd in pmds:
            busy = pmd.iterations - pmd.empty_polls
            s = pmd.stats
            lines.append(f"pmd thread on core {pmd.ctx.cpu}:")
            lines.append(f"  iterations: {pmd.iterations} "
                         f"(busy: {busy}, empty: {pmd.empty_polls})")
            lines.append(f"  packets processed: {pmd.packets_processed}")
            lines.append(f"  rx batches: {s.batches} "
                         f"(avg size: {s.avg_batch:.2f})")
            if s.batch_hist:
                dist = " ".join(f"{size}:{s.batch_hist[size]}"
                                for size in sorted(s.batch_hist))
                lines.append(f"  packets-per-batch histogram: {dist}")
            lines.append(f"  processing cycles: {pmd.cycles_ns:.0f} ns")
        if rec is None:
            lines.append("(no trace recorder attached; "
                         "run under trace.recording() for stage detail)")
            return "\n".join(lines)
        total = rec.total_ns or 1.0
        lines.append("per-stage breakdown (all threads):")
        for stage, (count, ns) in sorted(
            rec.spans.items(), key=lambda kv: -kv[1][1]
        ):
            lines.append(
                f"  {stage:24s} {ns:>16.0f} ns "
                f"{100.0 * ns / total:5.1f}%  (x{count})"
            )
        lines.append(f"  {'total':24s} {rec.total_ns:>16.0f} ns")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def coverage_show(self,
                      recorder: Optional[TraceRecorder] = None) -> str:
        """Mirror ``ovs-appctl coverage/show``: event counters collected
        by the trace layer (EMC/dpcls outcomes, upcalls, ring stalls,
        syscalls, copies...)."""
        rec = recorder if recorder is not None else trace.ACTIVE
        if rec is None or not rec.counters:
            return "(no events recorded)"
        lines = []
        for name, count in sorted(rec.counters.items()):
            lines.append(f"{name:32s} {count:>12d}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def faults_show(self) -> str:
        """``ovs-appctl faults/show``: the installed fault plan, its
        per-point event/fire tallies, and the datapath degradation
        state (flow limit, lost upcalls)."""
        plan = faults.ACTIVE
        lines = []
        if plan is None:
            lines.append("(no fault plan installed)")
        else:
            lines.append(plan.render())
        dpif = self.vs.dpif_netdev
        if dpif is not None:
            limit = ("none" if dpif.flow_limit is None
                     else str(dpif.flow_limit))
            lines.append(
                f"datapath {dpif.name}: flow-limit:{limit} "
                f"lost:{dpif.stats.lost} "
                f"failed-upcalls:{dpif.stats.failed_upcalls}"
            )
        if self.vs.dpif_netlink is not None:
            dp = self.vs.dpif_netlink.dp
            lines.append(f"datapath system@{dp.name}: lost:{dp.n_lost}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def dpctl_dump_conntrack(self, max_conns: int = 50) -> str:
        conns = []
        if self.vs.dpif_netdev is not None:
            conns = self.vs.dpif_netdev.conntrack.connections()
        elif self.vs.dpif_netlink is not None:
            conns = self.vs.kernel.init_ns.conntrack.connections()
        lines = []
        for conn in conns[:max_conns]:
            proto = {6: "tcp", 17: "udp", 1: "icmp"}.get(
                conn.orig.proto, str(conn.orig.proto))
            state = f",state={conn.tcp_state.value}" if conn.tcp_state else ""
            lines.append(
                f"{proto},orig=({int_to_ip(conn.orig.src_ip)}:"
                f"{conn.orig.src_port}->{int_to_ip(conn.orig.dst_ip)}:"
                f"{conn.orig.dst_port}),zone={conn.zone}{state},"
                f"packets={conn.packets}"
            )
        return "\n".join(lines) if lines else "(conntrack empty)"

    # ------------------------------------------------------------------
    def ofproto_list_bridges(self) -> str:
        lines = []
        for name, bridge in self.vs.ofproto.bridges.items():
            lines.append(
                f"{name}: {len(bridge.ports)} ports, "
                f"{bridge.n_flows():,} flows in "
                f"{sum(1 for t in bridge.tables.values() if len(t))} tables"
            )
        return "\n".join(lines)


def _render_masked_key(key: FlowKey, mask) -> str:
    parts = []
    for name, value, bits in zip(FlowKey._fields, key, mask):
        if not bits:
            continue
        masked = value & bits
        if name in ("nw_src", "nw_dst", "tun_src", "tun_dst"):
            parts.append(f"{name}={int_to_ip(masked & 0xFFFFFFFF)}")
        elif name in ("eth_src", "eth_dst"):
            parts.append(f"{name}={masked:012x}")
        else:
            parts.append(f"{name}={masked}")
    return ",".join(parts) or "(match-all)"


def _render_actions(actions) -> str:
    if not actions:
        return "drop"
    out = []
    for act in actions:
        name = act.__class__.__name__
        if name == "Output":
            out.append(str(act.port_no))
        elif name == "Recirc":
            out.append(f"recirc({act.recirc_id})")
        elif name == "Ct":
            commit = ",commit" if act.commit else ""
            out.append(f"ct(zone={act.zone}{commit})")
        elif name == "TunnelPush":
            out.append(f"tnl_push(vni={act.config.vni})")
        else:
            out.append(name.lower())
    return ",".join(out)
