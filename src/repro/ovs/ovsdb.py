"""OVSDB-lite: the configuration database.

NSX's agent manages OVS "using OVSDB ... to create two bridges" (§4).
This is a small transactional row store with the tables the agent needs
(Open_vSwitch, Bridge, Port, Interface) and change notification so
ovs-vswitchd can reconfigure — the same split as the real ovsdb-server /
vswitchd pair.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List

SCHEMA: Dict[str, Dict[str, type]] = {
    "Open_vSwitch": {"bridges": list},
    "Bridge": {"name": str, "datapath_type": str, "ports": list},
    "Port": {"name": str, "interfaces": list},
    "Interface": {"name": str, "type": str, "options": dict, "ofport": int},
}

_DEFAULTS = {
    "Open_vSwitch": {"bridges": []},
    "Bridge": {"datapath_type": "system", "ports": []},
    "Port": {"interfaces": []},
    "Interface": {"type": "system", "options": {}, "ofport": 0},
}


class OvsdbError(Exception):
    pass


@dataclass
class Row:
    uuid: str
    table: str
    columns: Dict[str, object]

    def __getitem__(self, column: str) -> object:
        return self.columns[column]


class Transaction:
    """Buffered mutations; all-or-nothing on commit."""

    def __init__(self, db: "OvsdbServer") -> None:
        self.db = db
        self._ops: List[tuple] = []
        self._tmp_uuids = itertools.count()
        self.committed = False

    def insert(self, table: str, **columns: object) -> str:
        uuid = f"tmp{next(self._tmp_uuids)}"
        self._ops.append(("insert", table, uuid, columns))
        return uuid

    def update(self, uuid: str, **columns: object) -> None:
        self._ops.append(("update", None, uuid, columns))

    def delete(self, uuid: str) -> None:
        self._ops.append(("delete", None, uuid, {}))

    def commit(self) -> Dict[str, str]:
        """Apply atomically; returns temp-uuid -> real-uuid mapping."""
        if self.committed:
            raise OvsdbError("transaction already committed")
        staged = self.db._clone_rows()
        mapping: Dict[str, str] = {}
        for op, table, uuid, columns in self._ops:
            if op == "insert":
                real = self.db._validate_insert(staged, table, columns)
                mapping[uuid] = real
            elif op == "update":
                real = mapping.get(uuid, uuid)
                self.db._validate_update(staged, real, columns)
            elif op == "delete":
                real = mapping.get(uuid, uuid)
                if real not in staged:
                    raise OvsdbError(f"no row {real}")
                del staged[real]
        # Resolve temp uuid references inside column values.
        for row in staged.values():
            for col, value in row.columns.items():
                if isinstance(value, list):
                    row.columns[col] = [mapping.get(v, v) for v in value]
                elif isinstance(value, str) and value in mapping:
                    row.columns[col] = mapping[value]
        self.db._rows = staged
        self.committed = True
        self.db._notify()
        return mapping


class OvsdbServer:
    def __init__(self) -> None:
        self._rows: Dict[str, Row] = {}
        self._uuid_counter = itertools.count(1)
        self._watchers: List[Callable[[], None]] = []
        # The singleton root row.
        root = Row("ovs0", "Open_vSwitch", dict(_DEFAULTS["Open_vSwitch"]))
        root.columns["bridges"] = []
        self._rows[root.uuid] = root

    # -- reading -----------------------------------------------------------
    def root(self) -> Row:
        return self._rows["ovs0"]

    def get(self, uuid: str) -> Row:
        row = self._rows.get(uuid)
        if row is None:
            raise OvsdbError(f"no row {uuid}")
        return row

    def find(self, table: str, **conditions: object) -> List[Row]:
        out = []
        for row in self._rows.values():
            if row.table != table:
                continue
            if all(row.columns.get(k) == v for k, v in conditions.items()):
                out.append(row)
        return out

    def transact(self) -> Transaction:
        return self._make_txn()

    def _make_txn(self) -> Transaction:
        return Transaction(self)

    def watch(self, callback: Callable[[], None]) -> None:
        self._watchers.append(callback)

    def _notify(self) -> None:
        for cb in self._watchers:
            cb()

    # -- validation helpers used by Transaction ------------------------------
    def _clone_rows(self) -> Dict[str, Row]:
        return {
            uuid: Row(row.uuid, row.table, dict(row.columns))
            for uuid, row in self._rows.items()
        }

    def _validate_insert(self, staged: Dict[str, Row], table: str,
                         columns: Dict[str, object]) -> str:
        schema = SCHEMA.get(table)
        if schema is None:
            raise OvsdbError(f"no table {table!r}")
        merged = dict(_DEFAULTS.get(table, {}))
        merged.update(columns)
        for col, value in merged.items():
            expected = schema.get(col)
            if expected is None:
                raise OvsdbError(f"{table} has no column {col!r}")
            if not isinstance(value, expected):
                raise OvsdbError(
                    f"{table}.{col}: expected {expected.__name__}, "
                    f"got {type(value).__name__}"
                )
        if "name" in schema:
            name = merged.get("name")
            for row in staged.values():
                if row.table == table and row.columns.get("name") == name:
                    raise OvsdbError(f"{table} {name!r} already exists")
        uuid = f"uuid{next(self._uuid_counter)}"
        staged[uuid] = Row(uuid, table, merged)
        return uuid

    def _validate_update(self, staged: Dict[str, Row], uuid: str,
                         columns: Dict[str, object]) -> None:
        row = staged.get(uuid)
        if row is None:
            raise OvsdbError(f"no row {uuid}")
        schema = SCHEMA[row.table]
        for col, value in columns.items():
            if col not in schema:
                raise OvsdbError(f"{row.table} has no column {col!r}")
            if not isinstance(value, schema[col]):
                raise OvsdbError(f"{row.table}.{col}: bad type")
            row.columns[col] = value
