"""ovs-vswitchd: the switch daemon.

Owns the ofproto layer (bridges + translation), exactly one datapath
(kernel ``system`` type, Figure 7a, or userspace ``netdev`` type,
Figure 7b), the Netlink table replicas (§4) and the OVSDB binding.

Port helpers cover every interface type the paper evaluates:

=============  ==========================================================
type           backing
=============  ==========================================================
system         a kernel NetDevice — kernel DP attaches it directly; the
               userspace DP reaches it through an AF_PACKET socket
afxdp          :class:`~repro.afxdp.driver.AfxdpDriver` (userspace DP)
dpdk           a bound :class:`~repro.dpdk.ethdev.DpdkEthDev`
dpdkvhostuser  a VM's virtio queues served in-process
geneve/vxlan/  tunnel vports; encap resolved through the cached
gre/erspan     route/neighbor replicas at translation time
internal       the bridge device the host stack uses
=============  ==========================================================
"""

from __future__ import annotations

from typing import Optional

from repro.afxdp.driver import AfxdpDriver, AfxdpOptions
from repro.dpdk.ethdev import DpdkEthDev
from repro.kernel.kernel import Kernel
from repro.kernel.netdev import NetDevice
from repro.kernel.netlink import NetlinkMonitor
from repro.kernel.nic import PhysicalNic
from repro.kernel.tap import TapDevice
from repro.net.addresses import MacAddress, ip_to_int
from repro.ovs.dpif_netdev import DpifNetdev
from repro.ovs.dpif_netlink import DpifNetlink
from repro.ovs.netdevs import (
    AfxdpAdapter,
    DpdkAdapter,
    InternalTapAdapter,
    SimAdapter,
    TapAdapter,
    VhostAdapter,
)
from repro.ovs.ofproto import Bridge, Ofproto, OfPort, TunnelPortConfig
from repro.ovs.ovsdb import OvsdbServer
from repro.sim.cpu import ExecContext
from repro.vhost.vhostuser import VhostUserPort


class VSwitchd:
    def __init__(self, kernel: Kernel, datapath_type: str = "netdev") -> None:
        if datapath_type not in ("netdev", "system"):
            raise ValueError(f"unknown datapath type {datapath_type!r}")
        self.kernel = kernel
        self.datapath_type = datapath_type
        self.monitor = NetlinkMonitor(kernel.init_ns)
        self.ofproto = Ofproto(self.monitor)
        self.ovsdb = OvsdbServer()
        self.restarts = 0
        if datapath_type == "system":
            kernel.load_ovs_module()
            self.dpif_netlink: Optional[DpifNetlink] = DpifNetlink(kernel)
            self.dpif_netlink.upcall_fn = self._upcall
            self.dpif_netdev: Optional[DpifNetdev] = None
            self.ofproto.dp_port_device = self.dpif_netlink.port_device
        else:
            self.dpif_netlink = None
            self.dpif_netdev = DpifNetdev(
                now_ns_fn=lambda: kernel.clock.now
            )
            self.dpif_netdev.upcall_fn = self._upcall
            self.ofproto.dp_port_device = self.dpif_netdev.port_device
        self._next_mac = 0x060000

    # ------------------------------------------------------------------
    def _upcall(self, key, ctx: Optional[ExecContext]):
        result = self.ofproto.translate(key, ctx)
        return result.actions, result.mask

    def _alloc_mac(self) -> MacAddress:
        self._next_mac += 1
        return MacAddress.local(self._next_mac)

    # ------------------------------------------------------------------
    # Bridges.
    # ------------------------------------------------------------------
    def add_bridge(self, name: str) -> Bridge:
        bridge = self.ofproto.add_bridge(name)
        txn = self.ovsdb.transact()
        row = txn.insert("Bridge", name=name,
                         datapath_type=self.datapath_type)
        root = self.ovsdb.root()
        txn.update(root.uuid, bridges=root["bridges"] + [row])
        txn.commit()
        # The local ("LOCAL") port, named like the bridge.
        mac = self._alloc_mac()
        if self.dpif_netlink is not None:
            dp_no, _device = self.dpif_netlink.add_internal_port(name, mac)
        else:
            tap = TapDevice(name, mac)
            self.kernel.init_ns.register(tap)
            tap.set_up()
            dp_no = self.dpif_netdev.add_port(
                name, InternalTapAdapter(tap), kind="internal", device=tap
            ).port_no
        port = bridge.add_port(name, dp_no, kind="internal", ofport=65534)
        self.ofproto.register_port(bridge, port)
        return bridge

    def bridge(self, name: str) -> Bridge:
        return self.ofproto.bridges[name]

    # ------------------------------------------------------------------
    # Ports.
    # ------------------------------------------------------------------
    def _record_port(self, bridge_name: str, name: str, iface_type: str,
                     options: Optional[dict] = None) -> None:
        txn = self.ovsdb.transact()
        iface = txn.insert("Interface", name=name, type=iface_type,
                           options=options or {})
        port_row = txn.insert("Port", name=name, interfaces=[iface])
        [bridge_row] = self.ovsdb.find("Bridge", name=bridge_name)
        txn.update(bridge_row.uuid, ports=bridge_row["ports"] + [port_row])
        txn.commit()

    def _register(self, bridge: Bridge, port: OfPort) -> OfPort:
        self.ofproto.register_port(bridge, port)
        return port

    def add_system_port(self, bridge_name: str, device: NetDevice) -> OfPort:
        """A kernel-managed device (NIC, veth, tap kernel face)."""
        bridge = self.bridge(bridge_name)
        if self.dpif_netlink is not None:
            dp_no = self.dpif_netlink.add_port(device)
        else:
            dp_no = self.dpif_netdev.add_port(
                device.name, TapAdapter(device), device=device
            ).port_no
        self._record_port(bridge_name, device.name, "system")
        return self._register(bridge, bridge.add_port(device.name, dp_no))

    def add_afxdp_port(
        self,
        bridge_name: str,
        nic: PhysicalNic,
        options: Optional[AfxdpOptions] = None,
    ) -> OfPort:
        if self.dpif_netdev is None:
            raise ValueError("afxdp ports need the netdev datapath")
        bridge = self.bridge(bridge_name)
        driver = AfxdpDriver(nic, options)
        driver.setup()
        dp_no = self.dpif_netdev.add_port(
            nic.name, AfxdpAdapter(driver), device=nic
        ).port_no
        self._record_port(bridge_name, nic.name, "afxdp")
        return self._register(bridge, bridge.add_port(nic.name, dp_no))

    def add_dpdk_port(self, bridge_name: str, ethdev: DpdkEthDev) -> OfPort:
        if self.dpif_netdev is None:
            raise ValueError("dpdk ports need the netdev datapath")
        bridge = self.bridge(bridge_name)
        name = ethdev.nic.name
        dp_no = self.dpif_netdev.add_port(
            name, DpdkAdapter(ethdev), device=ethdev.nic
        ).port_no
        self._record_port(bridge_name, name, "dpdk")
        return self._register(bridge, bridge.add_port(name, dp_no))

    def add_vhostuser_port(self, bridge_name: str,
                           port: VhostUserPort) -> OfPort:
        if self.dpif_netdev is None:
            raise ValueError("vhostuser ports need the netdev datapath")
        bridge = self.bridge(bridge_name)
        dp_no = self.dpif_netdev.add_port(
            port.name, VhostAdapter(port), kind="vhost"
        ).port_no
        self._record_port(bridge_name, port.name, "dpdkvhostuser")
        return self._register(bridge, bridge.add_port(port.name, dp_no))

    def add_sim_port(self, bridge_name: str, name: str) -> "tuple[OfPort, SimAdapter]":
        """Direct-injection port for tests and workload drivers."""
        if self.dpif_netdev is None:
            raise ValueError("sim ports need the netdev datapath")
        bridge = self.bridge(bridge_name)
        adapter = SimAdapter()
        dp_no = self.dpif_netdev.add_port(name, adapter).port_no
        self._record_port(bridge_name, name, "sim")
        return self._register(bridge, bridge.add_port(name, dp_no)), adapter

    def add_tunnel_port(
        self,
        bridge_name: str,
        name: str,
        tunnel_type: str,
        remote_ip: "int | str",
        key: int,
    ) -> OfPort:
        bridge = self.bridge(bridge_name)
        remote = ip_to_int(remote_ip) if isinstance(remote_ip, str) else remote_ip
        if self.dpif_netlink is not None:
            dp_no = self.dpif_netlink.add_tunnel_port(name)
        else:
            dp_no = self.dpif_netdev.add_port(
                name, SimAdapter(), kind="tunnel"
            ).port_no
        cfg = TunnelPortConfig(tunnel_type=tunnel_type, remote_ip=remote,
                               key=key)
        self._record_port(bridge_name, name, tunnel_type,
                          {"remote_ip": remote, "key": key})
        return self._register(
            bridge, bridge.add_port(name, dp_no, kind="tunnel", tunnel=cfg)
        )

    # ------------------------------------------------------------------
    def restart(self) -> None:
        """Restart ovs-vswitchd.

        The upgrade/bugfix story of §6: with the userspace datapath this
        drops caches and (unlike the kernel DP) conntrack state, but
        needs no module reload and no reboot.  OpenFlow rules are
        re-installed by the controller on reconnect; we keep them, as NSX
        re-syncs immediately.
        """
        self.restarts += 1
        if self.dpif_netdev is not None:
            self.dpif_netdev.flow_flush()
            self.dpif_netdev.conntrack.flush()
        if self.dpif_netlink is not None:
            # Kernel flows are flushed too, but netfilter conntrack
            # survives in the kernel.
            self.dpif_netlink.flow_flush()

    # ------------------------------------------------------------------
    def crash(self) -> None:
        """The daemon process died (SIGSEGV, OOM-kill...).

        Nothing is charged — dying is free — but the datapaths diverge
        immediately: the kernel module keeps forwarding its installed
        megaflows and counts new-flow misses as ``lost:`` (no handler
        sockets), while the netdev datapath simply stops (its PMD
        threads died with the process).  The supervisor
        (:mod:`repro.sim.supervisor`) owns detection and the charged
        recovery sequence; this method only severs the daemon's
        datapath attachments.
        """
        if self.dpif_netlink is not None:
            self.dpif_netlink.detach_handler()
        if self.dpif_netdev is not None:
            self.dpif_netdev.upcall_fn = None

    def recover(self) -> None:
        """The restarted daemon re-attaches to its datapath(s).

        State divergence (what survived vs what comes back cold) is
        handled by the supervisor's recovery phases; this re-wires the
        upcall path of the new process."""
        if self.dpif_netlink is not None:
            self.dpif_netlink.attach_handler(self._upcall)
        if self.dpif_netdev is not None:
            self.dpif_netdev.upcall_fn = self._upcall
