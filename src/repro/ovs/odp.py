"""ODP: the datapath action vocabulary.

These are the *datapath-level* actions OpenFlow rules translate into —
the vocabulary the kernel module's netlink interface defines and that the
userspace datapath mirrors.  The kernel executor
(:mod:`repro.kernel.ovs_module`) and the userspace executor
(:mod:`repro.ovs.dpif_netdev`) implement them independently, exactly the
duplication the paper laments ("OVS uses its own userspace implementations
of these features, built by OVS developers over a period of years", §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.net.tunnel import TunnelConfig


class OdpAction:
    """Marker base class."""

    __slots__ = ()


@dataclass(frozen=True)
class Output(OdpAction):
    """Send the packet out of datapath port ``port_no``."""

    port_no: int


@dataclass(frozen=True)
class PushVlan(OdpAction):
    vid: int
    pcp: int = 0


@dataclass(frozen=True)
class PopVlan(OdpAction):
    pass


@dataclass(frozen=True)
class SetField(OdpAction):
    """Rewrite a header field.  ``field`` names a FlowKey field:
    eth_src, eth_dst, nw_src, nw_dst, nw_ttl, tp_src, tp_dst."""

    field: str
    value: int


@dataclass(frozen=True)
class Ct(OdpAction):
    """Send the packet through connection tracking.

    ``commit`` creates the connection; after ct() the packet's ct_state /
    ct_zone metadata is populated and the flow normally recirculates.
    """

    zone: int = 0
    commit: bool = False
    #: Optional DNAT (ip, port); models ct(nat(dst=...)).
    nat_dst: Optional[Tuple[int, int]] = None


@dataclass(frozen=True)
class Recirc(OdpAction):
    """Re-run the datapath lookup with a new recirculation id."""

    recirc_id: int


@dataclass(frozen=True)
class TunnelPush(OdpAction):
    """Encapsulate, then continue with the packet on the underlay.

    The route/ARP resolution happened at translation time (ovs-router);
    the config carries resolved outer MACs.
    """

    config: TunnelConfig
    out_port: int


@dataclass(frozen=True)
class TunnelPop(OdpAction):
    """Decapsulate and re-inject as if received on a tunnel vport."""

    vport: int


@dataclass(frozen=True)
class Userspace(OdpAction):
    """Punt to userspace (e.g. controller, sFlow); reason is free text."""

    reason: str = "action"


@dataclass(frozen=True)
class Meter(OdpAction):
    meter_id: int


@dataclass(frozen=True)
class Trunc(OdpAction):
    max_len: int


#: An empty action list means drop.
Actions = Sequence[OdpAction]
DROP: Tuple[OdpAction, ...] = ()


@dataclass(frozen=True)
class OdpFlow:
    """A datapath flow: masked key -> actions (the megaflow unit)."""

    masked_key: Tuple[int, ...]
    mask: Tuple[int, ...]
    actions: Tuple[OdpAction, ...]


def validate_actions(actions: Actions) -> None:
    """Reject malformed action lists early, like the kernel's netlink
    attribute validation would."""
    recirc_seen = False
    for act in actions:
        if not isinstance(act, OdpAction):
            raise TypeError(f"not an ODP action: {act!r}")
        if recirc_seen:
            raise ValueError("actions after recirc are unreachable")
        if isinstance(act, Recirc):
            recirc_seen = True
        if isinstance(act, SetField):
            allowed = {
                "eth_src", "eth_dst", "nw_src", "nw_dst",
                "nw_ttl", "tp_src", "tp_dst",
            }
            if act.field not in allowed:
                raise ValueError(f"cannot set field {act.field!r}")
        if isinstance(act, Trunc) and act.max_len <= 0:
            raise ValueError(f"trunc to {act.max_len} bytes is not a packet")
        if isinstance(act, Meter) and act.meter_id < 0:
            raise ValueError(f"negative meter id {act.meter_id}")
