"""dp-JIT: compile installed megaflows into specialized Python closures.

The paper's central trick is translating slow-path decisions into
specialized fast-path artifacts; PR 5 applied it to eBPF programs, and
this module applies it one layer up, to the userspace datapath itself.
For each installed :class:`~repro.ovs.megaflow.MegaflowEntry` the
translator generates Python source containing

* ``_dp_match`` — the miniflow mask-and-compare inlined as a chain of
  ``key[i] & bits == const`` tests over the mask's non-zero fields (the
  :class:`~repro.net.flow.MaskSpec` projection, unrolled with the
  entry's masked key baked in as constants), and
* ``_dp_exec`` — the flow's odp action chain unrolled with every
  ``isinstance`` dispatch resolved at compile time: output appends,
  set-field/vlan rewrites, tunnel encapsulation, truncation, meter
  admission, userspace punts and recirculation re-entry become straight
  -line statements.

Per-entry *constants* (match values, ports, rewrite values, tunnel
configs) are hoisted into the generated functions' globals rather than
baked in as literals, so every megaflow with the same *shape* (mask
structure + action chain structure) emits byte-identical source.  The
``compile()`` step — by far the dominant translation cost, ~10x the
codegen itself — is memoized on that source text: a ruleset with
thousands of flows sharing a handful of chain shapes pays for a handful
of compiles.  The resulting closure is cached *on the entry*
(``entry.jit = (actions_ref, exec_fn, compiled)``); the burst pipeline
in :mod:`repro.ovs.dpif_netdev` dispatches to ``exec_fn`` ahead of the
generic ``_execute`` walk.

The contract is **charge-exactness**, inherited verbatim from PR 5: a
compiled execution must be observationally identical to the interpreted
``DpifNetdev._execute`` walk — the same per-packet virtual-time charges
(``action_ns`` before each action, then the action's own charges) issued
in the same order with the same float operations, the same transmit
batches in the same insertion order, the same :class:`PipelineStats`
bumps, the same trace-ledger and flamegraph bytes.  Costs are read from
the live :data:`~repro.sim.costs.DEFAULT_COSTS` singleton at *run* time,
never baked in as float literals, so ``costs.overridden()`` sensitivity
sweeps keep working.

Anything the translator cannot prove locally compilable — conntrack
(``ct`` consults the shared :class:`UserspaceConntrack` tables),
``tunnel_pop`` (its decapsulation parse failure re-enters the drop
path), unknown action types, and over-long chains — is *declined*: the
entry is marked and runs on the interpreter forever (PR 5's
``JitDecline`` pattern).  Recirculation compiles by tail-calling the
datapath's own ``_process_one`` re-entry point, exactly as the
interpreter does.

Invalidation rides every mutation channel through one mechanism: a
cached closure is honored only while ``entry.jit[0] is entry.actions``
(the identity of the very actions tuple that was compiled).  Flow-mods,
revalidator sweeps, evictions and flushes remove the entry itself (each
``megaflows.version`` bump that could retire a decision either removes
entries or leaves their closures untouched-and-correct), and
:class:`~repro.ovs.megaflow.MegaflowCache` reports every removed
compiled closure here so ``appctl fastpath/show`` can show invalidation
counts; an in-place actions rebind is caught by the identity check at
the next dispatch and recompiled.

Gating: module switch :data:`ENABLED` (initialised from ``DP_JIT``,
``DP_JIT=0`` disables; ``python -m repro --no-dpjit`` flips it) AND the
global :mod:`repro.sim.fastpath` switch, checked per burst by the
datapath.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.net.flow import MaskSpec
from repro.net.packet import Packet
from repro.net.tunnel import encapsulate
from repro.ovs import odp
from repro.ovs.packet_ops import do_pop_vlan, do_push_vlan, set_field
from repro.sim.costs import DEFAULT_COSTS
from repro import telemetry as _telemetry
from repro.telemetry.drops import DropReason as _DropReason

#: ``DP_JIT=0`` in the environment is the escape hatch, mirroring
#: ``EBPF_JIT=0`` for the PR 5 layer.
ENABLED: bool = os.environ.get("DP_JIT", "1") != "0"

#: Chains longer than this decline: the real datapath bounds action
#: lists too, and an unbounded unroll would bloat the generated source.
MAX_ACTIONS = 64


def set_enabled(on: bool) -> None:
    global ENABLED
    ENABLED = bool(on)


@contextmanager
def disabled():
    """Run a block with the dp-JIT off (forces the generic walk)."""
    global ENABLED
    saved = ENABLED
    ENABLED = False
    try:
        yield
    finally:
        ENABLED = saved


class DpJitDecline(Exception):
    """The translator refuses this megaflow; the interpreter runs it."""


# ----------------------------------------------------------------------
# Bookkeeping (appctl fastpath/show).
# ----------------------------------------------------------------------
class DpJitStats:
    """Datapath-wide compile/dispatch counters.

    ``dispatched`` is bumped per compiled execution — a wall-clock-only
    statistic, like the eBPF JIT's per-program run counts, never part of
    any ledger.
    """

    __slots__ = ("compiled", "declined", "invalidated", "dispatched",
                 "decline_reasons")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.compiled = 0
        self.declined = 0
        self.invalidated = 0
        self.dispatched = 0
        self.decline_reasons: Dict[str, int] = {}


STATS = DpJitStats()


def reset_stats() -> None:
    STATS.reset()


class CompiledMegaflow:
    """One megaflow's generated functions plus the source to trust them."""

    __slots__ = ("exec_fn", "match_fn", "source", "actions")

    def __init__(self, exec_fn, match_fn, source: str, actions: Tuple) -> None:
        self.exec_fn = exec_fn
        self.match_fn = match_fn
        self.source = source
        self.actions = actions


# ----------------------------------------------------------------------
# Translation.
# ----------------------------------------------------------------------
#: SetField names the interpreter accepts (odp.validate_actions); only
#: these are embedded into generated source.
_SET_FIELDS = frozenset(
    {"eth_src", "eth_dst", "nw_src", "nw_dst", "nw_ttl", "tp_src", "tp_dst"}
)


class _Emitter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0
        self.glb: Dict[str, object] = {}

    def __call__(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def param(self, value: object) -> str:
        """Hoist a per-entry constant into the globals; returns its
        name.  Keeping constants out of the source text is what lets
        same-shape megaflows share one compiled code object."""
        name = f"_K{len(self.glb)}"
        self.glb[name] = value
        return name

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _emit_match(w: _Emitter, entry) -> None:
    """``_dp_match(key)``: the unrolled mask-and-compare.

    Equivalent to ``spec.project(key) == spec.project(entry.key)`` —
    the very test the subtable dict performs — with the mask bits folded
    in as literals and the entry's masked key hoisted as parameters.
    """
    spec = MaskSpec(entry.mask)
    w("def _dp_match(key):")
    w.indent = 1
    if not spec.fields:
        w("return True  # match-all mask")
    else:
        terms = []
        for i, bits in spec.fields:
            want = w.param(entry.key[i] & bits)
            terms.append(f"key[{i}] & {bits:#x} == {want}")
        w("return (" + "\n        and ".join(terms) + ")")
    w.indent = 0
    w()


def _emit_output(w: _Emitter, port_no: int, expr: str) -> None:
    port = w.param(port_no)
    w(f"_b = tx_batches.get({port})")
    w("if _b is None:")
    w(f"    _b = tx_batches[{port}] = []")
    w(f"_b.append({expr})")


def _translate(entry) -> Tuple[str, Dict[str, object]]:
    """Emit the source and globals for ``entry``'s match + exec pair."""
    actions = entry.actions
    if len(actions) > MAX_ACTIONS:
        raise DpJitDecline(f"action chain too long: {len(actions)}")

    w = _Emitter()
    w.glb.update({
        "_COSTS": DEFAULT_COSTS,
        "_set_field": set_field,
        "_push_vlan": do_push_vlan,
        "_pop_vlan": do_pop_vlan,
        "_encapsulate": encapsulate,
        "_Packet": Packet,
        # Drop sites in generated code emit the same taxonomy events the
        # interpreter does (uncharged bookkeeping, so charge-exactness
        # is untouched; _TELE.ACTIVE is read at run time).
        "_TELE": _telemetry,
        "_DR_EMPTY": _DropReason.DP_EMPTY_ACTIONS,
        "_DR_METER": _DropReason.DP_METER_DROP,
    })
    glb = w.glb
    _emit_match(w, entry)
    w("def _dp_exec(dp, pkt, ctx, emc, tx_batches, depth, statses):")
    w.indent = 1
    w("costs = _COSTS")
    if not actions:
        # An empty action list means drop — charged and counted exactly
        # as the interpreter's early-out.
        w("for s in statses:")
        w("    s.dropped += 1")
        w("_t = _TELE.ACTIVE")
        w("if _t is not None:")
        w("    _t.drop(_DR_EMPTY, octets=len(pkt.data))")
        w("return")
        return w.source(), glb

    # Pass 1: the pure data-transform chain.  Every rewrite
    # (set-field, vlan push/pop, trunc, encapsulation) is a function of
    # the input frame alone, and every charge depends only on cost
    # constants and frame *lengths* — so the computed frames are
    # memoized per input frame on the closure (the fastpath wall-clock
    # memo idiom: identical observables, the byte surgery runs once per
    # distinct frame instead of once per packet).
    compute: List[Tuple[str, str]] = []  # (var, expression)
    data = "_d0"
    for idx, act in enumerate(actions):
        t = type(act)
        if t is odp.SetField:
            if act.field not in _SET_FIELDS:
                raise DpJitDecline(f"set of unknown field {act.field!r}")
            val = w.param(int(act.value))
            expr = f"_set_field({data}, {act.field!r}, {val})"
        elif t is odp.PushVlan:
            vid, pcp = w.param(int(act.vid)), w.param(int(act.pcp))
            expr = f"_push_vlan({data}, {vid}, {pcp})"
        elif t is odp.PopVlan:
            expr = f"_pop_vlan({data})"
        elif t is odp.Trunc:
            expr = f"{data}[:{w.param(int(act.max_len))}]"
        elif t is odp.TunnelPush:
            # The outer frame is computed (and memoized) here; the
            # charges and the output append stay in the effect pass.
            name = w.param(act.config)
            outer = f"_o{idx}"
            compute.append((outer, f"_encapsulate({name}, {data})"))
            continue
        elif t is odp.Ct:
            # Conntrack reads and mutates shared connection state and
            # packet metadata through the interpreter's _do_ct; not
            # locally compilable.
            raise DpJitDecline("ct is not locally compilable")
        elif t is odp.TunnelPop:
            # Decapsulation can fail mid-chain and re-enters the
            # pipeline with rewritten tunnel metadata; left to the
            # interpreter.
            raise DpJitDecline("tunnel_pop is not locally compilable")
        elif t in (odp.Output, odp.Userspace, odp.Meter, odp.Recirc):
            continue  # effects, not transforms
        else:
            raise DpJitDecline(f"unknown action {act!r}")
        data = f"_d{idx + 1}"
        compute.append((data, expr))

    w("_d0 = pkt.data")
    if compute:
        glb["_MEMO"] = {}
        names = ", ".join(var for var, _ in compute)
        trailer = "," if len(compute) == 1 else ""
        w("_vals = _MEMO.get(_d0)")
        w("if _vals is None:")
        w.indent += 1
        for var, expr in compute:
            w(f"{var} = {expr}")
        w(f"_vals = ({names}{trailer})")
        w("if len(_MEMO) < 4096:")
        w("    _MEMO[_d0] = _vals")
        w.indent -= 1
        w("else:")
        w(f"    ({names}{trailer}) = _vals")

    # Pass 2: the effect sequence — charges, stats, meter admission,
    # transmit appends, recirculation — exactly the interpreter's order.
    data = "_d0"
    for idx, act in enumerate(actions):
        t = type(act)
        w(f"# [{idx}] {t.__name__}")
        w("ctx.charge(costs.action_ns, label='odp_action')")
        if t is odp.Output:
            _emit_output(w, act.port_no, f"pkt.with_data({data})")
        elif t is odp.Userspace:
            w("ctx.charge(costs.userspace_slowpath_ns, label='userspace')")
        elif t is odp.Meter:
            w(f"if not dp.meters.admit({w.param(int(act.meter_id))}, "
              f"len({data}), dp.now_ns_fn()):")
            w("    for s in statses:")
            w("        s.dropped += 1")
            w("    _t = _TELE.ACTIVE")
            w("    if _t is not None:")
            w(f"        _t.drop(_DR_METER, octets=len({data}))")
            w("    return")
        elif t is odp.TunnelPush:
            outer = f"_o{idx}"
            w("ctx.charge(costs.tunnel_encap_ns, label='tunnel_push')")
            w(f"ctx.charge(costs.copy_cost(len({outer}) - len({data})), "
              "label='encap_copy')")
            _emit_output(w, act.out_port, f"_Packet({outer})")
        elif t is odp.Recirc:
            # Re-entry is the interpreter's own _process_one — the same
            # tail call _execute makes, so the recirculated pass (and
            # any compiled closure *it* dispatches) is shared semantics.
            w(f"_out = pkt.with_data({data})")
            w(f"_out.meta.recirc_id = {w.param(int(act.recirc_id))}")
            w("ctx.charge(costs.recirculate_ns, label='recirc')")
            w("dp._process_one(_out, ctx, emc, tx_batches, depth + 1, "
              "statses)")
            w("return")
        else:
            data = f"_d{idx + 1}"  # the transform computed in pass 1
    return w.source(), glb


#: source text -> code object.  Constants live in each entry's globals,
#: so the key space is bounded by *shape* diversity (mask structures x
#: chain structures), not by flow count.
_CODE_CACHE: Dict[str, object] = {}


def compile_entry(entry) -> Optional[CompiledMegaflow]:
    """Translate + compile ``entry``'s chain; ``None`` if declined."""
    try:
        source, glb = _translate(entry)
        code = _CODE_CACHE.get(source)
        if code is None:
            code = _CODE_CACHE[source] = compile(source, "<dp-jit>", "exec")
        exec(code, glb)
    except DpJitDecline as exc:
        _note_decline(str(exc))
        return None
    except Exception as exc:  # pragma: no cover - codegen bug safety net
        # A translator defect must never take the datapath down: decline
        # and let the generic walk define the semantics.
        _note_decline(f"internal error: {exc!r}")
        return None
    compiled = CompiledMegaflow(glb["_dp_exec"], glb["_dp_match"], source,
                                entry.actions)
    STATS.compiled += 1
    return compiled


def _note_decline(reason: str) -> None:
    STATS.declined += 1
    STATS.decline_reasons[reason] = (
        STATS.decline_reasons.get(reason, 0) + 1)


def bind(entry):
    """(Re)compile ``entry`` and cache the result on it.

    Returns the executable closure, or ``None`` when the chain declined
    (the cached decline is honored forever — until the actions tuple is
    replaced, which this call also detects as an invalidation).
    """
    prev = entry.jit
    if prev is not None and prev[0] is not entry.actions and prev[1] is not None:
        # Stale closure on an in-place actions rebind: the compiled code
        # no longer matches the entry's decision.  Count it; the fresh
        # compile below replaces it and the stale fn is never run.
        STATS.invalidated += 1
    compiled = compile_entry(entry)
    fn = None if compiled is None else compiled.exec_fn
    entry.jit = (entry.actions, fn, compiled)
    return fn


def decline_entry(entry) -> None:
    """Pin ``entry`` to the interpreter without compiling.

    Used for transient (uninstalled) entries the upcall path creates
    per packet under flow-limit pressure: compiling those would pay the
    translation cost once per packet for a closure that is thrown away.
    """
    entry.jit = (entry.actions, None, None)


def note_closure_dropped(n: int = 1) -> None:
    """A mutation channel (flow-mod, revalidation, eviction, flush)
    removed ``n`` entries holding compiled closures."""
    STATS.invalidated += n


def render() -> str:
    """The ``appctl fastpath/show`` rows for this layer."""
    s = STATS
    lines = [
        f"dp-jit megaflows: compiled {s.compiled}  declined {s.declined}"
        f"  invalidated {s.invalidated}  dispatched {s.dispatched}",
        f"  shared code objects: {len(_CODE_CACHE)} shapes",
    ]
    for reason in sorted(s.decline_reasons):
        lines.append(f"  declined {s.decline_reasons[reason]}x: {reason}")
    return "\n".join(lines)
