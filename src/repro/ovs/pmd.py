"""PMD threads: dedicated poll-mode packet processing (§3.2 O1).

"Each PMD thread runs in a loop and processes packets for one AF_XDP
receive queue."  A :class:`PmdThread` is pinned to a core, owns a private
EMC (as in real dpif-netdev), and polls its assigned (port, queue) pairs.
Enabling PMD threads was the paper's single largest optimization (6×).

The non-PMD configuration (``main_thread_mode``) models the default
"userspace datapath" behaviour the paper strace'd: the shared main thread
interleaves packet processing with OpenFlow/OVSDB work, paying poll()
syscalls and context switches between bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.ovs.dpif_netdev import DpifNetdev, DpPort, PipelineStats
from repro.ovs.emc import ExactMatchCache
from repro.sim import trace
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext


@dataclass
class RxqAssignment:
    port: DpPort
    queue: int


class PmdThread:
    def __init__(
        self,
        dpif: DpifNetdev,
        cpu_model: CpuModel,
        core: int,
        name: str = "",
        main_thread_mode: bool = False,
        batch_size: int = 32,
        shard: int = 0,
    ) -> None:
        self.dpif = dpif
        self.ctx = ExecContext(
            cpu_model, core, CpuCategory.USER,
            name=name or f"pmd-c{core}",
        )
        self.emc = ExactMatchCache()
        self.rxqs: List[RxqAssignment] = []
        self.main_thread_mode = main_thread_mode
        self.batch_size = batch_size
        #: Which worker process owns this PMD under sharded execution
        #: (DESIGN §17).  Placement metadata only: it never affects the
        #: thread's charges, so serial runs can carry it inertly.
        self.shard = shard
        self.packets_processed = 0
        self.iterations = 0
        self.empty_polls = 0
        #: Per-core pipeline outcomes, fed to pmd-stats-show.
        self.stats = PipelineStats()

    def add_rxq(self, port: DpPort, queue: int = 0) -> None:
        self.rxqs.append(RxqAssignment(port, queue))

    @property
    def cycles_ns(self) -> float:
        """Virtual time this thread has consumed (busy + modelled waits);
        the 'processing cycles' line of pmd-stats-show."""
        return self.ctx.local_time_ns

    @property
    def avg_batch(self) -> float:
        """Mean packets per rx batch handed to the datapath; under load
        this exceeds 1 and the burst classifier amortizes per-packet
        work across it (pmd-perf-show's 'rx batches' line)."""
        return self.stats.avg_batch

    def run_iteration(self) -> int:
        """One trip around the poll loop; returns packets processed."""
        costs = DEFAULT_COSTS
        self.iterations += 1
        processed = 0
        # Profiler-only frame: attributes everything this iteration
        # charges to this PMD thread in the call tree.
        rec = trace.ACTIVE
        prof = rec.profiler if rec is not None else None
        if prof is not None:
            prof.enter(f"pmd/{self.ctx.name}")
        try:
            processed = self._poll_rxqs(costs)
        finally:
            if prof is not None:
                prof.exit_()
        self.packets_processed += processed
        return processed

    def _poll_rxqs(self, costs) -> int:
        processed = 0
        for rxq in self.rxqs:
            if self.main_thread_mode:
                # The shared main thread: a poll() syscall per service and
                # a context switch back from whatever else it was doing
                # (OpenFlow handling, OVSDB, stats) — what strace showed
                # before O1.
                with self.ctx.as_category(CpuCategory.SYSTEM):
                    self.ctx.charge(costs.poll_ns, label="poll")
                self.ctx.charge(costs.context_switch_ns, label="resched")
                trace.count("kernel.ctx_switches")
            pkts = rxq.port.adapter.rx_burst(
                self.ctx, batch=self.batch_size, queue=rxq.queue
            )
            if not pkts:
                self.empty_polls += 1
                continue
            self.dpif.process_batch(
                pkts, rxq.port.port_no, self.ctx, self.emc,
                tx_queue=rxq.queue, stats=self.stats,
            )
            processed += len(pkts)
        return processed

    def run_until_idle(self, max_iterations: int = 100_000) -> int:
        total = 0
        for _ in range(max_iterations):
            n = self.run_iteration()
            total += n
            if n == 0:
                return total
        raise RuntimeError("PMD did not drain its queues")


def assign_rxqs_round_robin(
    threads: List[PmdThread], rxqs: List[Tuple[DpPort, int]]
) -> None:
    """dpif-netdev's default rxq-to-PMD placement."""
    if not threads:
        raise ValueError("no PMD threads")
    for i, (port, queue) in enumerate(rxqs):
        threads[i % len(threads)].add_rxq(port, queue)


def assign_shards(threads: List[PmdThread], partition: List[int]) -> None:
    """Place PMDs (and the ports they poll) onto shards (DESIGN §17).

    ``partition[i]`` is the shard owning ``threads[i]``; each thread's
    rx ports inherit its shard so a port is polled only by its owner.
    Pure metadata — byte-inert on serial runs.
    """
    if len(partition) != len(threads):
        raise ValueError("partition must name one shard per PMD thread")
    for thread, shard in zip(threads, partition):
        thread.shard = shard
        for rxq in thread.rxqs:
            rxq.port.shard = shard


def shard_placement(threads: List[PmdThread]) -> List[Tuple[str, int, int]]:
    """``(pmd name, core, shard)`` rows for ``appctl shard/show``."""
    return [(t.ctx.name, t.ctx.cpu, t.shard) for t in threads]
