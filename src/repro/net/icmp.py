"""ICMP echo (the subset ``ping`` needs)."""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.net.checksum import internet_checksum

ICMP_HLEN = 8


class IcmpType(enum.IntEnum):
    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11


@dataclass
class IcmpHeader:
    icmp_type: int
    code: int = 0
    checksum: int = 0
    identifier: int = 0
    sequence: int = 0

    _FMT = "!BBHHH"

    def pack(self, payload: bytes = b"", fill_checksum: bool = True) -> bytes:
        hdr = struct.pack(
            self._FMT, self.icmp_type, self.code, 0, self.identifier, self.sequence
        )
        if fill_checksum:
            checksum = internet_checksum(hdr + payload)
            hdr = hdr[:2] + struct.pack("!H", checksum) + hdr[4:]
        return hdr + payload

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "IcmpHeader":
        if len(data) - offset < ICMP_HLEN:
            raise ValueError("truncated ICMP header")
        icmp_type, code, checksum, ident, seq = struct.unpack_from(
            cls._FMT, data, offset
        )
        return cls(icmp_type, code, checksum, ident, seq)
