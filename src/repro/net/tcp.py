"""TCP header (no options beyond what the flag byte carries)."""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

TCP_HLEN = 20


class TcpFlags(enum.IntFlag):
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


@dataclass
class TcpHeader:
    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = int(TcpFlags.ACK)
    window: int = 65535
    checksum: int = 0
    urgent: int = 0

    _FMT = "!HHIIBBHHH"

    def pack(self) -> bytes:
        data_offset = (TCP_HLEN // 4) << 4
        return struct.pack(
            self._FMT,
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            data_offset,
            self.flags,
            self.window,
            self.checksum,
            self.urgent,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "TcpHeader":
        if len(data) - offset < TCP_HLEN:
            raise ValueError("truncated TCP header")
        (
            src,
            dst,
            seq,
            ack,
            data_offset,
            flags,
            window,
            checksum,
            urgent,
        ) = struct.unpack_from(cls._FMT, data, offset)
        hlen = (data_offset >> 4) * 4
        if hlen < TCP_HLEN:
            raise ValueError(f"bad TCP data offset: {hlen}")
        return cls(src, dst, seq, ack, flags, window, checksum, urgent)

    def has(self, flag: TcpFlags) -> bool:
        return bool(self.flags & flag)
