"""The packet object and its metadata.

A :class:`Packet` is real bytes plus a :class:`PacketMeta`, the analog of
OVS's ``dp_packet`` structure described in §3.2 O4 of the paper: input port,
L3/L4 offsets, the NIC-supplied RSS hash, offload flags, tunnel metadata,
and the recirculation/conntrack state the NSX pipeline carries between
passes through the datapath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class TunnelMeta:
    """Decapsulated-tunnel context (set by a tunnel port on receive)."""

    tunnel_type: str = ""  # "geneve", "vxlan", "gre", "erspan"
    vni: int = 0
    remote_ip: int = 0
    local_ip: int = 0
    options: bytes = b""

    def clear(self) -> None:
        self.tunnel_type = ""
        self.vni = 0
        self.remote_ip = 0
        self.local_ip = 0
        self.options = b""


@dataclass
class PacketMeta:
    """Per-packet metadata (the ``dp_packet`` fields)."""

    in_port: int = 0
    #: Offsets of the L3 and L4 headers within the frame, filled by parsing.
    l3_offset: int = -1
    l4_offset: int = -1
    #: RSS hash of the 5-tuple; supplied by NIC hardware when available,
    #: otherwise computed in software (the rxhash cost of §5.5).
    rxhash: Optional[int] = None
    #: Hardware already validated the L4 checksum on receive.
    csum_verified: bool = False
    #: The L4 checksum still needs to be filled before hitting the wire;
    #: a NIC with checksum offload accepts the packet in this state.
    csum_partial: bool = False
    #: TSO: this "packet" is a super-segment that hardware (or software GSO)
    #: must split into ``gso_size``-byte segments on transmit.
    gso_size: int = 0
    #: Some CPU already touched this packet's data (it is cache-warm);
    #: the first toucher pays ``dma_first_touch_ns``.
    llc_warm: bool = False
    #: Recirculation id within the OVS datapath pipeline (0 = first pass).
    recirc_id: int = 0
    #: Conntrack state bits as seen by the current pipeline pass.
    ct_state: int = 0
    ct_zone: int = 0
    ct_mark: int = 0
    tunnel: TunnelMeta = field(default_factory=TunnelMeta)


class Packet:
    """A network frame: immutable-ish bytes plus mutable metadata."""

    __slots__ = ("data", "meta")

    def __init__(self, data: bytes, meta: Optional[PacketMeta] = None) -> None:
        if len(data) < 14:
            raise ValueError(f"frame shorter than an Ethernet header: {len(data)}")
        self.data = bytes(data)
        self.meta = meta if meta is not None else PacketMeta()

    def __len__(self) -> int:
        return len(self.data)

    @property
    def wire_len(self) -> int:
        """Frame length as counted on the wire (excl. preamble/IFG/FCS)."""
        return len(self.data)

    def clone(self) -> "Packet":
        """Deep copy — used by mirror/flood actions.

        Copies field dicts directly rather than re-running the dataclass
        constructors; clone sits on the per-packet hot path (every NIC
        receive clones).
        """
        tunnel = TunnelMeta.__new__(TunnelMeta)
        tunnel.__dict__.update(self.meta.tunnel.__dict__)
        meta = PacketMeta.__new__(PacketMeta)
        meta.__dict__.update(self.meta.__dict__)
        meta.tunnel = tunnel
        pkt = Packet.__new__(Packet)
        pkt.data = self.data
        pkt.meta = meta
        return pkt

    def with_data(self, data: bytes) -> "Packet":
        """New packet with different bytes but the same metadata object.

        Used by header-rewrite actions; offsets are the caller's problem
        (exactly as with the real dp_packet API).
        """
        pkt = Packet.__new__(Packet)
        pkt.data = bytes(data)
        pkt.meta = self.meta
        return pkt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Packet(len={len(self.data)}, in_port={self.meta.in_port})"
