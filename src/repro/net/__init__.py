"""Packet formats and flow machinery.

Packets in this reproduction are real byte strings: headers are built and
parsed at the byte level (Ethernet, VLAN, ARP, IPv4/v6, UDP, TCP, ICMP, and
the Geneve/VXLAN/GRE/ERSPAN tunnel encapsulations the paper's NSX pipeline
uses).  Flow keys are extracted from those bytes the same way OVS's
miniflow extraction does.
"""

from repro.net.addresses import MacAddress, ip_to_int, int_to_ip
from repro.net.packet import Packet, PacketMeta
from repro.net.ethernet import EtherType, EthernetHeader
from repro.net.ipv4 import IPProto, Ipv4Header
from repro.net.udp import UdpHeader
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.flow import FlowKey, FiveTuple
from repro.net.builder import (
    make_arp_request,
    make_icmp_echo,
    make_tcp_packet,
    make_udp_packet,
)

__all__ = [
    "MacAddress",
    "ip_to_int",
    "int_to_ip",
    "Packet",
    "PacketMeta",
    "EtherType",
    "EthernetHeader",
    "IPProto",
    "Ipv4Header",
    "UdpHeader",
    "TcpFlags",
    "TcpHeader",
    "FlowKey",
    "FiveTuple",
    "make_arp_request",
    "make_icmp_echo",
    "make_udp_packet",
    "make_tcp_packet",
]
