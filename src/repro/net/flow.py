"""Flow keys: the miniflow-extract analog.

Every datapath in the paper — the kernel module, the eBPF program, DPDK and
AF_XDP userspace — begins by reducing a packet to a fixed flow key that the
caches and classifiers operate on.  :func:`extract_flow` is that step; its
cost is charged as ``flow_extract_ns`` by callers.

A :class:`FlowKey` is a flat tuple of integers so that masking (for megaflow
and OpenFlow wildcards) is a uniform per-field bitwise AND, exactly like the
real miniflow representation.
"""

from __future__ import annotations

import struct
from typing import NamedTuple, Optional, Tuple

from repro.net.ethernet import ETH_HLEN, VLAN_HLEN, EtherType
from repro.net.ipv4 import IPV4_HLEN, IPProto


class FiveTuple(NamedTuple):
    """Connection identity used by conntrack and RSS hashing."""

    proto: int
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int

    def reversed(self) -> "FiveTuple":
        return FiveTuple(
            self.proto, self.dst_ip, self.src_ip, self.dst_port, self.src_port
        )


class FlowKey(NamedTuple):
    """The fields OVS's datapath flow key carries for an IPv4/Ethernet world.

    ``vlan_tci`` uses the OVS convention: 0 means "no VLAN", otherwise the
    TCI with the CFI bit (0x1000) forced on so a tagged vid-0 frame is
    distinguishable from untagged.

    ``recirc_id``/``ct_*`` make pipeline passes distinct cache entries, which
    is what makes the NSX three-pass pipeline of §5.1 cost three lookups.

    ``metadata`` and ``reg0``–``reg8`` are the NXM pipeline registers NSX
    uses to carry logical-port/zone context between tables.  They exist
    only during translation (a real datapath key never carries them; they
    are always 0 when extracted from a packet) — the translator sets them
    with set-field actions on its working copy of the key and freezes them
    into the recirculation state.  With them the key has 31 fields, the
    number of distinct matching fields Table 3 reports for the production
    NSX rule set.
    """

    in_port: int = 0
    eth_src: int = 0
    eth_dst: int = 0
    eth_type: int = 0
    vlan_tci: int = 0
    nw_src: int = 0
    nw_dst: int = 0
    nw_proto: int = 0
    nw_tos: int = 0
    nw_ttl: int = 0
    nw_frag: int = 0
    tp_src: int = 0
    tp_dst: int = 0
    tcp_flags: int = 0
    recirc_id: int = 0
    ct_state: int = 0
    ct_zone: int = 0
    ct_mark: int = 0
    tun_id: int = 0
    tun_src: int = 0
    tun_dst: int = 0
    metadata: int = 0
    reg0: int = 0
    reg1: int = 0
    reg2: int = 0
    reg3: int = 0
    reg4: int = 0
    reg5: int = 0
    reg6: int = 0
    reg7: int = 0
    reg8: int = 0

    def five_tuple(self) -> FiveTuple:
        return FiveTuple(
            self.nw_proto, self.nw_src, self.nw_dst, self.tp_src, self.tp_dst
        )


N_FLOW_FIELDS = len(FlowKey._fields)

#: A mask is a same-arity tuple of per-field bitmasks (0 = wildcard,
#: all-ones = exact).  Field widths differ, so "all ones" is just a value
#: with every meaningful bit set; -1 works for Python ints.
FlowMask = Tuple[int, ...]

EXACT_MASK: FlowMask = tuple([-1] * N_FLOW_FIELDS)
WILDCARD_MASK: FlowMask = tuple([0] * N_FLOW_FIELDS)


def apply_mask(key: FlowKey, mask: FlowMask) -> Tuple[int, ...]:
    """Project a key through a mask; the result is hashable."""
    return tuple(k & m for k, m in zip(key, mask))


class MaskSpec:
    """A precompiled mask: the hashable masked-key fast path.

    ``apply_mask`` builds (and hashes) a full 31-field tuple even though
    most megaflow masks are exact on only a handful of fields — every
    wildcarded field contributes a constant ``0``.  A :class:`MaskSpec`
    precompiles the non-zero ``(index, bits)`` pairs once per mask, so
    :meth:`project` yields a short tuple that induces exactly the same
    equivalence classes over keys: two keys collide under ``project``
    iff they collide under ``apply_mask`` with the same mask.  Subtable
    dictionaries keyed by projections therefore behave identically to
    ones keyed by full masked tuples, at a fraction of the per-lookup
    hashing cost.
    """

    __slots__ = ("mask", "fields")

    def __init__(self, mask: FlowMask) -> None:
        self.mask = tuple(mask)
        self.fields: Tuple[Tuple[int, int], ...] = tuple(
            (i, bits) for i, bits in enumerate(self.mask) if bits
        )

    def project(self, key: FlowKey) -> Tuple[int, ...]:
        """The masked key with wildcarded (constant-zero) fields elided."""
        return tuple(key[i] & bits for i, bits in self.fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ",".join(FlowKey._fields[i] for i, _ in self.fields)
        return f"MaskSpec({names or 'match-all'})"


def mask_from_fields(**fields: int) -> FlowMask:
    """Build a mask that is exact on the named fields, wildcard elsewhere.

    ``mask_from_fields(nw_dst=0xffffff00)`` gives a /24 match on nw_dst.
    Pass ``-1`` for a full-field exact match.
    """
    mask = [0] * N_FLOW_FIELDS
    for name, bits in fields.items():
        try:
            idx = FlowKey._fields.index(name)
        except ValueError:
            raise KeyError(f"unknown flow field: {name}") from None
        mask[idx] = bits
    return tuple(mask)


def extract_flow(
    data: bytes,
    in_port: int = 0,
    recirc_id: int = 0,
    ct_state: int = 0,
    ct_zone: int = 0,
    ct_mark: int = 0,
    tun_id: int = 0,
    tun_src: int = 0,
    tun_dst: int = 0,
) -> FlowKey:
    """Parse a frame into a :class:`FlowKey` (miniflow extract).

    Unknown/short packets still yield a key — with L3/L4 fields zero — the
    same forgiving behaviour the real extractor has.
    """
    eth_dst = int.from_bytes(data[0:6], "big")
    eth_src = int.from_bytes(data[6:12], "big")
    (eth_type,) = struct.unpack_from("!H", data, 12)
    offset = ETH_HLEN
    vlan_tci = 0
    if eth_type == EtherType.VLAN and len(data) >= offset + VLAN_HLEN:
        tci, eth_type = struct.unpack_from("!HH", data, offset)
        vlan_tci = tci | 0x1000
        offset += VLAN_HLEN

    nw_src = nw_dst = nw_proto = nw_tos = nw_ttl = nw_frag = 0
    tp_src = tp_dst = tcp_flags = 0

    if eth_type == EtherType.IPV4 and len(data) >= offset + IPV4_HLEN:
        ver_ihl, tos = struct.unpack_from("!BB", data, offset)
        ihl = (ver_ihl & 0xF) * 4
        (flags_frag,) = struct.unpack_from("!H", data, offset + 6)
        ttl, proto = struct.unpack_from("!BB", data, offset + 8)
        nw_src, nw_dst = struct.unpack_from("!II", data, offset + 12)
        nw_proto = proto
        nw_tos = tos
        nw_ttl = ttl
        frag_off = flags_frag & 0x1FFF
        more_frags = (flags_frag >> 13) & 0x1
        if frag_off or more_frags:
            nw_frag = 1 if frag_off == 0 else 3  # first vs later fragment
        l4 = offset + ihl
        if nw_frag in (0, 1) and len(data) >= l4 + 4:
            if proto in (IPProto.TCP, IPProto.UDP):
                tp_src, tp_dst = struct.unpack_from("!HH", data, l4)
                if proto == IPProto.TCP and len(data) >= l4 + 14:
                    (tcp_flags,) = struct.unpack_from("!B", data, l4 + 13)
            elif proto == IPProto.ICMP:
                icmp_type, icmp_code = struct.unpack_from("!BB", data, l4)
                tp_src, tp_dst = icmp_type, icmp_code
    elif eth_type == EtherType.ARP and len(data) >= offset + 28:
        (op,) = struct.unpack_from("!H", data, offset + 6)
        (spa,) = struct.unpack_from("!I", data, offset + 14)
        (tpa,) = struct.unpack_from("!I", data, offset + 24)
        nw_src, nw_dst, nw_proto = spa, tpa, op

    return FlowKey(
        in_port=in_port,
        eth_src=eth_src,
        eth_dst=eth_dst,
        eth_type=eth_type,
        vlan_tci=vlan_tci,
        nw_src=nw_src,
        nw_dst=nw_dst,
        nw_proto=nw_proto,
        nw_tos=nw_tos,
        nw_ttl=nw_ttl,
        nw_frag=nw_frag,
        tp_src=tp_src,
        tp_dst=tp_dst,
        tcp_flags=tcp_flags,
        recirc_id=recirc_id,
        ct_state=ct_state,
        ct_zone=ct_zone,
        ct_mark=ct_mark,
        tun_id=tun_id,
        tun_src=tun_src,
        tun_dst=tun_dst,
    )


def rss_hash(five_tuple: FiveTuple) -> int:
    """A deterministic symmetric-ish 32-bit hash of the 5-tuple.

    Stands in for Toeplitz RSS: the property experiments rely on is *stable
    spreading* of distinct flows across queues, which any good hash gives.
    """
    h = (
        five_tuple.src_ip * 0x9E3779B1
        ^ five_tuple.dst_ip * 0x85EBCA77
        ^ (five_tuple.src_port << 16 | five_tuple.dst_port) * 0xC2B2AE3D
        ^ five_tuple.proto * 0x27D4EB2F
    ) & 0xFFFFFFFF
    h ^= h >> 15
    h = (h * 0x2C1B3C6D) & 0xFFFFFFFF
    h ^= h >> 12
    return h


#: Memo for :func:`rxhash_of`.  Safe because ``rss_hash`` over an
#: ``extract_flow`` of the same bytes is a pure function; bounded so a
#: randomized workload cannot grow it without limit.
_RXHASH_MEMO: dict = {}
_RXHASH_MEMO_MAX = 16384


def rxhash_of(data: bytes) -> int:
    """Software RSS hash of a frame, memoized by frame bytes.

    Equivalent to ``rss_hash(extract_flow(data).five_tuple())``; the
    hot paths that recompute the rxhash per received packet (NIC
    software hashing, AF_XDP metadata init) use this so repeated frames
    of the same flow pay the parse once in wall-clock time.  Virtual
    time is unaffected — callers charge the same costs either way.
    """
    h = _RXHASH_MEMO.get(data)
    if h is None:
        if len(_RXHASH_MEMO) >= _RXHASH_MEMO_MAX:
            _RXHASH_MEMO.clear()
        h = _RXHASH_MEMO[data] = rss_hash(extract_flow(data).five_tuple())
    return h


def l4_offset_of(data: bytes) -> Optional[int]:
    """Byte offset of the L4 header of an IPv4 frame, if present."""
    (eth_type,) = struct.unpack_from("!H", data, 12)
    offset = ETH_HLEN
    if eth_type == EtherType.VLAN:
        (eth_type,) = struct.unpack_from("!H", data, offset + 2)
        offset += VLAN_HLEN
    if eth_type != EtherType.IPV4 or len(data) < offset + IPV4_HLEN:
        return None
    ver_ihl = data[offset]
    return offset + (ver_ihl & 0xF) * 4
