"""Convenience packet constructors used by examples, tests and workloads."""

from __future__ import annotations

from typing import Optional

from repro.net.addresses import MacAddress, ip_to_int
from repro.net.arp import ArpOp, ArpPacket
from repro.net.checksum import l4_checksum_v4
from repro.net.ethernet import EthernetHeader, EtherType
from repro.net.icmp import IcmpHeader, IcmpType
from repro.net.ipv4 import IPV4_HLEN, IPProto, Ipv4Header
from repro.net.packet import Packet
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.udp import UDP_HLEN, UdpHeader

MIN_FRAME = 60  # 64 on the wire minus the 4-byte FCS


def _as_ip(ip: "int | str") -> int:
    return ip_to_int(ip) if isinstance(ip, str) else ip


def _pad(frame: bytes, frame_len: Optional[int]) -> bytes:
    """Pad to the requested frame length (or the Ethernet minimum)."""
    target = max(frame_len - 4 if frame_len else MIN_FRAME, MIN_FRAME)
    if len(frame) > target and frame_len is not None:
        raise ValueError(
            f"payload does not fit: frame is {len(frame) + 4}B, asked {frame_len}B"
        )
    if len(frame) < target:
        frame += b"\x00" * (target - len(frame))
    return frame


def make_udp_packet(
    src_mac: MacAddress,
    dst_mac: MacAddress,
    src_ip: "int | str",
    dst_ip: "int | str",
    src_port: int = 1234,
    dst_port: int = 5678,
    payload: bytes = b"",
    frame_len: Optional[int] = None,
    fill_checksum: bool = True,
) -> Packet:
    """A UDP/IPv4/Ethernet frame.

    ``frame_len`` is the on-the-wire size *including* the 4-byte FCS, the
    convention the paper uses ("64-byte packets"): the built frame is 4
    bytes shorter.
    """
    src_ip, dst_ip = _as_ip(src_ip), _as_ip(dst_ip)
    udp = UdpHeader(src_port, dst_port, UDP_HLEN + len(payload))
    segment = udp.pack() + payload
    if fill_checksum:
        csum = l4_checksum_v4(src_ip, dst_ip, IPProto.UDP, segment)
        udp.checksum = csum if csum else 0xFFFF
        segment = udp.pack() + payload
    ip = Ipv4Header(
        src=src_ip,
        dst=dst_ip,
        proto=IPProto.UDP,
        total_length=IPV4_HLEN + len(segment),
    )
    eth = EthernetHeader(dst_mac, src_mac, EtherType.IPV4)
    frame = _pad(eth.pack() + ip.pack() + segment, frame_len)
    pkt = Packet(frame)
    pkt.meta.l3_offset = 14
    pkt.meta.l4_offset = 14 + IPV4_HLEN
    return pkt


def make_tcp_packet(
    src_mac: MacAddress,
    dst_mac: MacAddress,
    src_ip: "int | str",
    dst_ip: "int | str",
    src_port: int = 40000,
    dst_port: int = 5001,
    seq: int = 0,
    ack: int = 0,
    flags: int = int(TcpFlags.ACK),
    payload: bytes = b"",
    frame_len: Optional[int] = None,
    fill_checksum: bool = True,
) -> Packet:
    """A TCP/IPv4/Ethernet frame."""
    src_ip, dst_ip = _as_ip(src_ip), _as_ip(dst_ip)
    tcp = TcpHeader(src_port, dst_port, seq=seq, ack=ack, flags=flags)
    segment = tcp.pack() + payload
    if fill_checksum:
        tcp.checksum = l4_checksum_v4(src_ip, dst_ip, IPProto.TCP, segment)
        segment = tcp.pack() + payload
    ip = Ipv4Header(
        src=src_ip,
        dst=dst_ip,
        proto=IPProto.TCP,
        total_length=IPV4_HLEN + len(segment),
    )
    eth = EthernetHeader(dst_mac, src_mac, EtherType.IPV4)
    frame = _pad(eth.pack() + ip.pack() + segment, frame_len)
    pkt = Packet(frame)
    pkt.meta.l3_offset = 14
    pkt.meta.l4_offset = 14 + IPV4_HLEN
    pkt.meta.csum_partial = not fill_checksum
    return pkt


def make_arp_request(
    src_mac: MacAddress, src_ip: "int | str", target_ip: "int | str"
) -> Packet:
    arp = ArpPacket(
        op=ArpOp.REQUEST,
        sender_mac=src_mac,
        sender_ip=_as_ip(src_ip),
        target_mac=MacAddress(0),
        target_ip=_as_ip(target_ip),
    )
    eth = EthernetHeader(MacAddress.broadcast(), src_mac, EtherType.ARP)
    return Packet(_pad(eth.pack() + arp.pack(), None))


def make_arp_reply(
    src_mac: MacAddress,
    src_ip: "int | str",
    dst_mac: MacAddress,
    dst_ip: "int | str",
) -> Packet:
    arp = ArpPacket(
        op=ArpOp.REPLY,
        sender_mac=src_mac,
        sender_ip=_as_ip(src_ip),
        target_mac=dst_mac,
        target_ip=_as_ip(dst_ip),
    )
    eth = EthernetHeader(dst_mac, src_mac, EtherType.ARP)
    return Packet(_pad(eth.pack() + arp.pack(), None))


def make_icmp_echo(
    src_mac: MacAddress,
    dst_mac: MacAddress,
    src_ip: "int | str",
    dst_ip: "int | str",
    identifier: int = 1,
    sequence: int = 1,
    reply: bool = False,
    payload: bytes = b"\x00" * 32,
) -> Packet:
    src_ip, dst_ip = _as_ip(src_ip), _as_ip(dst_ip)
    icmp_type = IcmpType.ECHO_REPLY if reply else IcmpType.ECHO_REQUEST
    icmp = IcmpHeader(icmp_type, identifier=identifier, sequence=sequence)
    body = icmp.pack(payload)
    ip = Ipv4Header(
        src=src_ip,
        dst=dst_ip,
        proto=IPProto.ICMP,
        total_length=IPV4_HLEN + len(body),
    )
    eth = EthernetHeader(dst_mac, src_mac, EtherType.IPV4)
    pkt = Packet(_pad(eth.pack() + ip.pack() + body, None))
    pkt.meta.l3_offset = 14
    pkt.meta.l4_offset = 14 + IPV4_HLEN
    return pkt
