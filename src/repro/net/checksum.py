"""The Internet checksum (RFC 1071) and pseudo-header helpers.

Checksums matter in this reproduction because the paper's O5 optimisation
and the offload bars of Figure 8 are about *who* computes them (NIC hardware
vs software) and *how much data* they cover.  The functions here are the
software implementations; the cost model charges
``checksum_per_byte_ns * len`` whenever a simulated CPU runs them.
"""

from __future__ import annotations

import struct


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones'-complement checksum over ``data``."""
    if len(data) % 2:
        data = data + b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (checksum field included) sums to zero."""
    if len(data) % 2:
        data = data + b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF


def pseudo_header_v4(src_ip: int, dst_ip: int, proto: int, length: int) -> bytes:
    """IPv4 pseudo-header used by TCP/UDP checksums."""
    return struct.pack("!IIBBH", src_ip, dst_ip, 0, proto, length)


def l4_checksum_v4(src_ip: int, dst_ip: int, proto: int, segment: bytes) -> int:
    """TCP/UDP checksum over pseudo-header + segment (checksum field zeroed)."""
    return internet_checksum(
        pseudo_header_v4(src_ip, dst_ip, proto, len(segment)) + segment
    )
