"""Tunnel encapsulation formats: Geneve, VXLAN, GRE, ERSPAN.

NSX overlays run on Geneve (§5.1); the kernel-vs-userspace reimplementation
of these encapsulations is one of the paper's "features that must be
reimplemented" lessons.  Encap/decap here is real byte work; the cost model
charges ``tunnel_encap_ns``/``tunnel_decap_ns`` plus the copy of the added
header bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.net.addresses import MacAddress
from repro.net.ethernet import ETH_HLEN, EtherType, EthernetHeader
from repro.net.ipv4 import IPV4_HLEN, IPProto, Ipv4Header
from repro.net.udp import UDP_HLEN, UdpHeader

GENEVE_PORT = 6081
VXLAN_PORT = 4789
GENEVE_BASE_HLEN = 8
VXLAN_HLEN = 8
GRE_BASE_HLEN = 4
ERSPAN2_HLEN = 8


@dataclass(frozen=True)
class TunnelConfig:
    """One tunnel endpoint pair, as OVSDB would configure it."""

    tunnel_type: str  # "geneve" | "vxlan" | "gre" | "erspan"
    local_ip: int
    remote_ip: int
    vni: int
    local_mac: MacAddress
    remote_mac: MacAddress
    ttl: int = 64


def geneve_header(vni: int, options: bytes = b"", critical: bool = False) -> bytes:
    """Geneve base header (RFC 8926): Ver(2) OptLen(6) O C Rsvd Protocol VNI."""
    if len(options) % 4:
        raise ValueError("Geneve options must be 4-byte aligned")
    opt_len_words = len(options) // 4
    if opt_len_words > 63:
        raise ValueError("Geneve options too long")
    first = opt_len_words  # version 0 in the top 2 bits
    second = 0x40 if critical else 0
    return (
        struct.pack("!BBH", first, second, EtherType.TEB)
        + struct.pack("!I", vni << 8)
        + options
    )


def parse_geneve(data: bytes, offset: int) -> Tuple[int, bytes, int]:
    """Returns (vni, options, inner_frame_offset)."""
    if len(data) - offset < GENEVE_BASE_HLEN:
        raise ValueError("truncated Geneve header")
    first, _second, protocol = struct.unpack_from("!BBH", data, offset)
    if (first >> 6) != 0:
        raise ValueError("unknown Geneve version")
    if protocol != EtherType.TEB:
        raise ValueError(f"unexpected Geneve inner protocol {protocol:#x}")
    opt_len = (first & 0x3F) * 4
    (vni_word,) = struct.unpack_from("!I", data, offset + 4)
    options_start = offset + GENEVE_BASE_HLEN
    options = data[options_start : options_start + opt_len]
    return vni_word >> 8, options, options_start + opt_len


def vxlan_header(vni: int) -> bytes:
    """VXLAN header (RFC 7348): flags with I bit, then VNI<<8."""
    return struct.pack("!II", 0x08 << 24, vni << 8)


def parse_vxlan(data: bytes, offset: int) -> Tuple[int, int]:
    """Returns (vni, inner_frame_offset)."""
    if len(data) - offset < VXLAN_HLEN:
        raise ValueError("truncated VXLAN header")
    flags, vni_word = struct.unpack_from("!II", data, offset)
    if not flags & (0x08 << 24):
        raise ValueError("VXLAN I flag not set")
    return vni_word >> 8, offset + VXLAN_HLEN


def gre_header(protocol: int = EtherType.TEB, key: Optional[int] = None) -> bytes:
    """GRE (RFC 2784/2890) with optional key."""
    flags = 0x2000 if key is not None else 0
    hdr = struct.pack("!HH", flags, protocol)
    if key is not None:
        hdr += struct.pack("!I", key)
    return hdr


def parse_gre(data: bytes, offset: int) -> Tuple[Optional[int], int, int]:
    """Returns (key, protocol, payload_offset)."""
    if len(data) - offset < GRE_BASE_HLEN:
        raise ValueError("truncated GRE header")
    flags, protocol = struct.unpack_from("!HH", data, offset)
    offset += GRE_BASE_HLEN
    if flags & 0x8000:  # checksum present
        offset += 4
    key = None
    if flags & 0x2000:
        (key,) = struct.unpack_from("!I", data, offset)
        offset += 4
    if flags & 0x1000:  # sequence present
        offset += 4
    return key, protocol, offset


def erspan2_header(session_id: int, index: int = 0) -> bytes:
    """ERSPAN type II header (the feature whose backport cost 5,000 lines)."""
    if not 0 <= session_id < 1024:
        raise ValueError("ERSPAN session id is 10 bits")
    ver_vlan = 1 << 28  # version 1 = type II
    word1 = ver_vlan | (session_id & 0x3FF)
    return struct.pack("!II", word1, index & 0xFFFFF)


def parse_erspan2(data: bytes, offset: int) -> Tuple[int, int]:
    """Returns (session_id, inner_frame_offset)."""
    if len(data) - offset < ERSPAN2_HLEN:
        raise ValueError("truncated ERSPAN header")
    word1, _word2 = struct.unpack_from("!II", data, offset)
    if (word1 >> 28) != 1:
        raise ValueError("not ERSPAN type II")
    return word1 & 0x3FF, offset + ERSPAN2_HLEN


def _outer_headers(cfg: TunnelConfig, payload_len: int, proto: int) -> bytes:
    eth = EthernetHeader(cfg.remote_mac, cfg.local_mac, EtherType.IPV4)
    ip = Ipv4Header(
        src=cfg.local_ip,
        dst=cfg.remote_ip,
        proto=proto,
        total_length=IPV4_HLEN + payload_len,
        ttl=cfg.ttl,
    )
    return eth.pack() + ip.pack()


def encapsulate(cfg: TunnelConfig, inner_frame: bytes) -> bytes:
    """Wrap ``inner_frame`` in the configured tunnel's outer headers."""
    if cfg.tunnel_type == "geneve":
        tun = geneve_header(cfg.vni)
        udp = UdpHeader(
            src_port=_entropy_port(inner_frame),
            dst_port=GENEVE_PORT,
            length=UDP_HLEN + len(tun) + len(inner_frame),
        )
        payload = udp.pack() + tun + inner_frame
        return _outer_headers(cfg, len(payload), IPProto.UDP) + payload
    if cfg.tunnel_type == "vxlan":
        tun = vxlan_header(cfg.vni)
        udp = UdpHeader(
            src_port=_entropy_port(inner_frame),
            dst_port=VXLAN_PORT,
            length=UDP_HLEN + len(tun) + len(inner_frame),
        )
        payload = udp.pack() + tun + inner_frame
        return _outer_headers(cfg, len(payload), IPProto.UDP) + payload
    if cfg.tunnel_type == "gre":
        payload = gre_header(key=cfg.vni) + inner_frame
        return _outer_headers(cfg, len(payload), IPProto.GRE) + payload
    if cfg.tunnel_type == "erspan":
        payload = (
            gre_header(protocol=0x88BE) + erspan2_header(cfg.vni) + inner_frame
        )
        return _outer_headers(cfg, len(payload), IPProto.GRE) + payload
    raise ValueError(f"unknown tunnel type: {cfg.tunnel_type}")


def decapsulate(frame: bytes) -> Tuple[str, int, int, int, bytes]:
    """Parse an encapsulated frame.

    Returns ``(tunnel_type, vni, outer_src_ip, outer_dst_ip, inner_frame)``.
    Raises ``ValueError`` for anything that is not a recognised tunnel.
    """
    eth = EthernetHeader.unpack(frame)
    if eth.ethertype != EtherType.IPV4:
        raise ValueError("outer frame is not IPv4")
    ip = Ipv4Header.unpack(frame, ETH_HLEN)
    l4 = ETH_HLEN + ip.header_len
    if ip.proto == IPProto.UDP:
        udp = UdpHeader.unpack(frame, l4)
        inner_off = l4 + UDP_HLEN
        if udp.dst_port == GENEVE_PORT:
            vni, _options, frame_off = parse_geneve(frame, inner_off)
            return "geneve", vni, ip.src, ip.dst, frame[frame_off:]
        if udp.dst_port == VXLAN_PORT:
            vni, frame_off = parse_vxlan(frame, inner_off)
            return "vxlan", vni, ip.src, ip.dst, frame[frame_off:]
        raise ValueError(f"UDP port {udp.dst_port} is not a known tunnel")
    if ip.proto == IPProto.GRE:
        key, protocol, payload_off = parse_gre(frame, l4)
        if protocol == 0x88BE:
            session, frame_off = parse_erspan2(frame, payload_off)
            return "erspan", session, ip.src, ip.dst, frame[frame_off:]
        if protocol == EtherType.TEB:
            return "gre", key or 0, ip.src, ip.dst, frame[payload_off:]
        raise ValueError(f"GRE protocol {protocol:#x} is not supported")
    raise ValueError(f"IP proto {ip.proto} is not a known tunnel")


def _entropy_port(inner_frame: bytes) -> int:
    """Source-port entropy so underlay RSS/ECMP spreads tunneled flows.

    Hashes the inner flow's 5-tuple (the IP header checksum would cancel
    out address differences if we just summed header bytes).
    """
    from repro.net.flow import extract_flow, rss_hash

    h = rss_hash(extract_flow(inner_frame).five_tuple())
    return 49152 + (h % 16384)
