"""ARP for IPv4 over Ethernet."""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.net.addresses import MacAddress

ARP_LEN = 28


class ArpOp(enum.IntEnum):
    REQUEST = 1
    REPLY = 2


@dataclass
class ArpPacket:
    op: int
    sender_mac: MacAddress
    sender_ip: int
    target_mac: MacAddress
    target_ip: int

    _FMT = "!HHBBH6sI6sI"

    def pack(self) -> bytes:
        return struct.pack(
            self._FMT,
            1,  # hardware type: Ethernet
            0x0800,  # protocol type: IPv4
            6,
            4,
            self.op,
            self.sender_mac.to_bytes(),
            self.sender_ip,
            self.target_mac.to_bytes(),
            self.target_ip,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "ArpPacket":
        if len(data) - offset < ARP_LEN:
            raise ValueError("truncated ARP packet")
        (
            htype,
            ptype,
            hlen,
            plen,
            op,
            sender_mac,
            sender_ip,
            target_mac,
            target_ip,
        ) = struct.unpack_from(cls._FMT, data, offset)
        if htype != 1 or ptype != 0x0800 or hlen != 6 or plen != 4:
            raise ValueError("not an Ethernet/IPv4 ARP packet")
        return cls(
            op=op,
            sender_mac=MacAddress(sender_mac),
            sender_ip=sender_ip,
            target_mac=MacAddress(target_mac),
            target_ip=target_ip,
        )
