"""MAC and IP address helpers.

IPv4 addresses are carried as integers through the fast path (flow keys,
classifier matches) because that is what the real datapath does with its
network-byte-order words; the string forms exist for configuration and
display (``ip address`` output, OpenFlow rule text).
"""

from __future__ import annotations

import re
from functools import total_ordering

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}:){5}[0-9a-fA-F]{2}$")


@total_ordering
class MacAddress:
    """A 48-bit Ethernet address."""

    __slots__ = ("_value",)

    BROADCAST_VALUE = 0xFFFFFFFFFFFF

    def __init__(self, value: "int | str | bytes | MacAddress") -> None:
        if isinstance(value, MacAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= self.BROADCAST_VALUE:
                raise ValueError(f"MAC out of range: {value:#x}")
            self._value = value
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 6:
                raise ValueError(f"MAC needs 6 bytes, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            if not _MAC_RE.match(value):
                raise ValueError(f"bad MAC syntax: {value!r}")
            self._value = int(value.replace(":", ""), 16)
        else:
            raise TypeError(f"cannot make a MAC from {type(value).__name__}")

    @classmethod
    def broadcast(cls) -> "MacAddress":
        return cls(cls.BROADCAST_VALUE)

    @classmethod
    def local(cls, index: int) -> "MacAddress":
        """A locally administered unicast MAC derived from ``index``."""
        if not 0 <= index < 2**40:
            raise ValueError(f"index out of range: {index}")
        return cls((0x02 << 40) | index)

    @property
    def value(self) -> int:
        return self._value

    @property
    def is_broadcast(self) -> bool:
        return self._value == self.BROADCAST_VALUE

    @property
    def is_multicast(self) -> bool:
        return bool((self._value >> 40) & 0x01)

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(6, "big")

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "MacAddress") -> bool:
        if isinstance(other, MacAddress):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)


def ip_to_int(dotted: str) -> int:
    """Parse dotted-quad IPv4 to a host-order integer."""
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address: {dotted!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"bad IPv4 address: {dotted!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"bad IPv4 octet in {dotted!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format an integer IPv4 address as dotted quad."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 out of range: {value:#x}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def prefix_to_mask(prefix_len: int) -> int:
    """CIDR prefix length to a 32-bit netmask integer."""
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"bad prefix length: {prefix_len}")
    if prefix_len == 0:
        return 0
    return (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
