"""Ethernet II and 802.1Q VLAN headers."""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.net.addresses import MacAddress


class EtherType(enum.IntEnum):
    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100
    IPV6 = 0x86DD
    #: Transparent Ethernet Bridging, the inner protocol of GRE/ERSPAN.
    TEB = 0x6558


ETH_HLEN = 14
VLAN_HLEN = 4


@dataclass
class EthernetHeader:
    dst: MacAddress
    src: MacAddress
    ethertype: int

    _FMT = "!6s6sH"

    def pack(self) -> bytes:
        return struct.pack(
            self._FMT, self.dst.to_bytes(), self.src.to_bytes(), self.ethertype
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "EthernetHeader":
        if len(data) - offset < ETH_HLEN:
            raise ValueError("truncated Ethernet header")
        dst, src, ethertype = struct.unpack_from(cls._FMT, data, offset)
        return cls(MacAddress(dst), MacAddress(src), ethertype)


@dataclass
class VlanTag:
    """An 802.1Q tag (PCP + VID) as inserted after the source MAC."""

    vid: int
    pcp: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.vid < 4096:
            raise ValueError(f"VLAN id out of range: {self.vid}")
        if not 0 <= self.pcp < 8:
            raise ValueError(f"VLAN PCP out of range: {self.pcp}")

    def pack(self, inner_ethertype: int) -> bytes:
        tci = (self.pcp << 13) | self.vid
        return struct.pack("!HH", tci, inner_ethertype)

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> "tuple[VlanTag, int]":
        """Returns (tag, inner_ethertype)."""
        if len(data) - offset < VLAN_HLEN:
            raise ValueError("truncated VLAN tag")
        tci, inner = struct.unpack_from("!HH", data, offset)
        return cls(vid=tci & 0xFFF, pcp=tci >> 13), inner


def push_vlan(frame: bytes, tag: VlanTag) -> bytes:
    """Insert an 802.1Q tag into an untagged (or tagged) frame."""
    eth = EthernetHeader.unpack(frame)
    return (
        frame[:12]
        + struct.pack("!H", EtherType.VLAN)
        + tag.pack(eth.ethertype)
        + frame[ETH_HLEN:]
    )


def pop_vlan(frame: bytes) -> "tuple[bytes, VlanTag]":
    """Remove the outermost 802.1Q tag; raises if the frame is untagged."""
    eth = EthernetHeader.unpack(frame)
    if eth.ethertype != EtherType.VLAN:
        raise ValueError("frame is not VLAN tagged")
    tag, inner = VlanTag.unpack(frame, ETH_HLEN)
    return (
        frame[:12] + struct.pack("!H", inner) + frame[ETH_HLEN + VLAN_HLEN :],
        tag,
    )
