"""UDP header."""

from __future__ import annotations

import struct
from dataclasses import dataclass

UDP_HLEN = 8


@dataclass
class UdpHeader:
    src_port: int
    dst_port: int
    length: int = 0
    checksum: int = 0

    _FMT = "!HHHH"

    def pack(self) -> bytes:
        return struct.pack(
            self._FMT, self.src_port, self.dst_port, self.length, self.checksum
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "UdpHeader":
        if len(data) - offset < UDP_HLEN:
            raise ValueError("truncated UDP header")
        src, dst, length, checksum = struct.unpack_from(cls._FMT, data, offset)
        return cls(src, dst, length, checksum)
