"""IPv4 header."""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.net.checksum import internet_checksum


class IPProto(enum.IntEnum):
    ICMP = 1
    TCP = 6
    UDP = 17
    GRE = 47


IPV4_HLEN = 20


@dataclass
class Ipv4Header:
    src: int
    dst: int
    proto: int
    total_length: int = 0  # filled by pack() callers that know payload size
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    ecn: int = 0
    flags: int = 2  # DF set, matching Linux defaults for locally built pkts
    frag_offset: int = 0
    checksum: int = field(default=0)

    _FMT = "!BBHHHBBHII"

    def pack(self, fill_checksum: bool = True) -> bytes:
        """Serialize; if ``fill_checksum``, compute the header checksum."""
        ver_ihl = (4 << 4) | (IPV4_HLEN // 4)
        tos = (self.dscp << 2) | self.ecn
        flags_frag = (self.flags << 13) | self.frag_offset
        hdr = struct.pack(
            self._FMT,
            ver_ihl,
            tos,
            self.total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.proto,
            0,
            self.src,
            self.dst,
        )
        checksum = internet_checksum(hdr) if fill_checksum else 0
        return hdr[:10] + struct.pack("!H", checksum) + hdr[12:]

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "Ipv4Header":
        if len(data) - offset < IPV4_HLEN:
            raise ValueError("truncated IPv4 header")
        (
            ver_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            proto,
            checksum,
            src,
            dst,
        ) = struct.unpack_from(cls._FMT, data, offset)
        version = ver_ihl >> 4
        if version != 4:
            raise ValueError(f"not IPv4 (version={version})")
        ihl = (ver_ihl & 0xF) * 4
        if ihl < IPV4_HLEN:
            raise ValueError(f"bad IHL: {ihl}")
        return cls(
            src=src,
            dst=dst,
            proto=proto,
            total_length=total_length,
            ttl=ttl,
            identification=identification,
            dscp=tos >> 2,
            ecn=tos & 0x3,
            flags=flags_frag >> 13,
            frag_offset=flags_frag & 0x1FFF,
            checksum=checksum,
        )

    @property
    def header_len(self) -> int:
        return IPV4_HLEN

    def decrement_ttl(self) -> "Ipv4Header":
        if self.ttl == 0:
            raise ValueError("TTL already zero")
        return Ipv4Header(
            src=self.src,
            dst=self.dst,
            proto=self.proto,
            total_length=self.total_length,
            ttl=self.ttl - 1,
            identification=self.identification,
            dscp=self.dscp,
            ecn=self.ecn,
            flags=self.flags,
            frag_offset=self.frag_offset,
        )
