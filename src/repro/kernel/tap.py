"""tap: the kernel<->userspace packet device.

A tap has two faces:

* the **kernel face** is a normal NetDevice: the stack (or a VM's virtio
  backend) transmits into it and receives from it;
* the **user face** is a file descriptor: a userspace process reads frames
  the kernel transmitted into the tap and writes frames that the kernel
  then receives.

Each user-face crossing is a syscall plus a copy of the frame — this is
exactly the 2 µs ``sendto`` the paper measured (§3.3) and the reason
vhostuser beats tap everywhere in Figure 8/9.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.net.addresses import MacAddress
from repro.net.packet import Packet
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, ExecContext
from repro.kernel.netdev import NetDevice


class TapDevice(NetDevice):
    device_type = "tap"

    def __init__(
        self, name: str, mac: MacAddress, mtu: int = 1500, queue_len: int = 1000
    ) -> None:
        super().__init__(name, mac, mtu=mtu)
        self.queue_len = queue_len
        self._to_user: Deque[Packet] = deque()
        self.carrier = True

    # -- kernel face -----------------------------------------------------
    def _transmit(self, pkt: Packet, ctx: ExecContext) -> bool:
        """Kernel transmits into the tap: the frame queues for userspace."""
        if len(self._to_user) >= self.queue_len:
            return False
        ctx.charge(DEFAULT_COSTS.tap_xmit_ns, label="tap_xmit")
        self._to_user.append(pkt)
        return True

    # -- user face --------------------------------------------------------
    def user_read(self, ctx: ExecContext) -> Optional[Packet]:
        """Userspace read(): one syscall + copy out of the kernel."""
        costs = DEFAULT_COSTS
        with ctx.as_category(CpuCategory.SYSTEM):
            ctx.charge(costs.recvfrom_ns, label="tap_read")
            if not self._to_user:
                return None
            pkt = self._to_user.popleft()
            ctx.charge(costs.copy_cost(len(pkt)), label="tap_copy")
        return pkt

    def user_pending(self) -> int:
        return len(self._to_user)

    def user_write(self, pkt: Packet, ctx: ExecContext) -> bool:
        """Userspace write()/sendto(): syscall + copy into the kernel, then
        the frame is received by the kernel face."""
        costs = DEFAULT_COSTS
        with ctx.as_category(CpuCategory.SYSTEM):
            ctx.charge(costs.sendto_ns, label="tap_write")
            ctx.charge(costs.copy_cost(len(pkt)), label="tap_copy")
        self.deliver(pkt, ctx)
        return True
