"""The kernel IPv4 stack: ARP, ICMP, UDP and a small TCP.

This is the "Network Stack" box of Figure 3: devices attached to it hand
received frames to :meth:`IpStack.eth_input`; locally generated traffic
leaves through :meth:`IpStack.ip_output`, which does FIB lookup, neighbor
resolution (emitting real ARP when needed) and frame construction.

TCP here is deliberately minimal but real: a three-way handshake, in-order
data transfer with cumulative ACKs, FIN teardown — enough to drive iperf-
and netperf-style workloads over lossless simulated links and to exercise
conntrack state transitions.  There is no retransmission: the testbeds are
back-to-back and the experiments assert losslessness.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.net.addresses import MacAddress
from repro.net.arp import ArpOp, ArpPacket
from repro.net.builder import make_arp_reply, make_arp_request
from repro.net.checksum import verify_checksum
from repro.net.ethernet import ETH_HLEN, EthernetHeader, EtherType
from repro.net.icmp import IcmpHeader, IcmpType
from repro.net.ipv4 import IPV4_HLEN, IPProto, Ipv4Header
from repro.net.packet import Packet
from repro.net.tcp import TCP_HLEN, TcpFlags, TcpHeader
from repro.net.udp import UDP_HLEN, UdpHeader
from repro.sim import trace
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext
from repro.kernel.netdev import NetDevice

DEFAULT_MSS = 1460


class UdpSocket:
    def __init__(self, ip: int = 0, port: int = 0) -> None:
        self.ip = ip
        self.port = port
        self.recv_queue: Deque[Tuple[bytes, int, int]] = deque()
        self.on_receive: Optional[Callable[[bytes, int, int], None]] = None

    def recv(self) -> Optional[Tuple[bytes, int, int]]:
        return self.recv_queue.popleft() if self.recv_queue else None


class TcpState(enum.Enum):
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RECEIVED = "SYN_RECEIVED"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT = "FIN_WAIT"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSED = "CLOSED"


@dataclass
class TcpSocket:
    local_ip: int
    local_port: int
    remote_ip: int = 0
    remote_port: int = 0
    state: TcpState = TcpState.CLOSED
    snd_nxt: int = 0
    rcv_nxt: int = 0
    recv_buffer: bytearray = field(default_factory=bytearray)
    accept_queue: Deque["TcpSocket"] = field(default_factory=deque)
    segments_received: int = 0
    bytes_received: int = 0
    on_receive: Optional[Callable[[bytes], None]] = None

    def key(self) -> Tuple[int, int, int, int]:
        return (self.local_ip, self.local_port, self.remote_ip, self.remote_port)

    def take_received(self) -> bytes:
        data = bytes(self.recv_buffer)
        self.recv_buffer.clear()
        return data


class IpStack:
    def __init__(self, namespace) -> None:
        self.ns = namespace
        self.ip_forwarding = False
        self._udp_socks: Dict[Tuple[int, int], UdpSocket] = {}
        self._tcp_socks: Dict[Tuple[int, int, int, int], TcpSocket] = {}
        self._tcp_listeners: Dict[Tuple[int, int], TcpSocket] = {}
        self._pending_arp: Dict[int, List[Packet]] = {}
        self._ephemeral_port = 49100
        #: nstat-style counters.
        self.counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Attachment.
    # ------------------------------------------------------------------
    def attach(self, device: NetDevice) -> None:
        """Give the device's receive path to this stack."""
        device.set_rx_handler(
            lambda pkt, ctx, dev=device: self.eth_input(dev, pkt, ctx)
        )

    def _count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        # Mirror nstat counters into any attached trace ledger so one
        # coverage/show dump spans user and kernel space.
        rec = trace.ACTIVE
        if rec is not None:
            rec.count(f"kernel.{name}", n)

    @staticmethod
    def _count_copy(nbytes: int) -> None:
        """Tally a user<->kernel socket copy in the trace ledger."""
        rec = trace.ACTIVE
        if rec is not None:
            rec.count("kernel.sock_copies")
            rec.count("kernel.sock_copy_bytes", nbytes)

    # ------------------------------------------------------------------
    # Receive path.
    # ------------------------------------------------------------------
    def eth_input(self, device: NetDevice, pkt: Packet, ctx: ExecContext) -> None:
        eth = EthernetHeader.unpack(pkt.data)
        if (
            eth.dst != device.mac
            and not eth.dst.is_broadcast
            and not eth.dst.is_multicast
        ):
            return  # not for us (no promiscuous mode)
        if eth.ethertype == EtherType.ARP:
            self._arp_input(device, pkt, ctx)
        elif eth.ethertype == EtherType.IPV4:
            self._ip_input(device, pkt, ctx)
        # Other ethertypes are dropped silently (no IPv6 here).

    def _arp_input(self, device: NetDevice, pkt: Packet, ctx: ExecContext) -> None:
        try:
            arp = ArpPacket.unpack(pkt.data, ETH_HLEN)
        except ValueError:
            return
        self._count("ArpIn")
        self.ns.neighbors.update(arp.sender_ip, arp.sender_mac, device.ifindex)
        self._flush_pending_arp(arp.sender_ip, ctx)
        if arp.op == ArpOp.REQUEST and self.ns.is_local_ip(arp.target_ip):
            reply = make_arp_reply(
                device.mac, arp.target_ip, arp.sender_mac, arp.sender_ip
            )
            device.transmit(reply, ctx)
            self._count("ArpReplies")

    def _ip_input(self, device: NetDevice, pkt: Packet, ctx: ExecContext) -> None:
        try:
            ip = Ipv4Header.unpack(pkt.data, ETH_HLEN)
        except ValueError:
            self._count("IpInHdrErrors")
            return
        self._count("IpInReceives")
        if not verify_checksum(pkt.data[ETH_HLEN : ETH_HLEN + IPV4_HLEN]):
            self._count("IpInHdrErrors")
            return
        if self.ns.is_local_ip(ip.dst) or ip.dst == 0xFFFFFFFF:
            self._local_deliver(device, pkt, ip, ctx)
        elif self.ip_forwarding:
            self._ip_forward(pkt, ip, ctx)
        else:
            self._count("IpInDiscards")

    def _local_deliver(
        self, device: NetDevice, pkt: Packet, ip: Ipv4Header, ctx: ExecContext
    ) -> None:
        costs = DEFAULT_COSTS
        l4 = ETH_HLEN + ip.header_len
        if ip.proto == IPProto.ICMP:
            self._icmp_input(pkt, ip, l4, ctx)
        elif ip.proto == IPProto.UDP:
            ctx.charge(costs.udp_datagram_ns, label="udp_rx")
            self._udp_input(pkt, ip, l4, ctx)
        elif ip.proto == IPProto.TCP:
            ctx.charge(costs.ip_rcv_ns, label="ip_rcv")
            self._tcp_input(pkt, ip, l4, ctx)
        else:
            self._count("IpInUnknownProtos")

    # -- ICMP ---------------------------------------------------------------
    def _icmp_input(
        self, pkt: Packet, ip: Ipv4Header, l4: int, ctx: ExecContext
    ) -> None:
        try:
            icmp = IcmpHeader.unpack(pkt.data, l4)
        except ValueError:
            return
        self._count("IcmpInMsgs")
        if icmp.icmp_type == IcmpType.ECHO_REQUEST:
            payload = pkt.data[l4 + 8 :]
            reply = IcmpHeader(
                IcmpType.ECHO_REPLY,
                identifier=icmp.identifier,
                sequence=icmp.sequence,
            ).pack(payload)
            self.ip_output(ip.src, IPProto.ICMP, reply, ctx, src_ip=ip.dst)
            self._count("IcmpOutEchoReps")
        elif icmp.icmp_type == IcmpType.ECHO_REPLY:
            self._count("IcmpEchoRepliesReceived")

    # -- UDP ---------------------------------------------------------------
    def _udp_input(
        self, pkt: Packet, ip: Ipv4Header, l4: int, ctx: ExecContext
    ) -> None:
        try:
            udp = UdpHeader.unpack(pkt.data, l4)
        except ValueError:
            return
        self._count("UdpInDatagrams")
        sock = self._udp_socks.get((ip.dst, udp.dst_port)) or self._udp_socks.get(
            (0, udp.dst_port)
        )
        if sock is None:
            self._count("UdpNoPorts")
            return
        payload = pkt.data[l4 + UDP_HLEN : l4 + udp.length]
        ctx.charge(DEFAULT_COSTS.copy_cost(len(payload)), label="sock_copy")
        self._count_copy(len(payload))
        if sock.on_receive is not None:
            sock.on_receive(payload, ip.src, udp.src_port)
        else:
            sock.recv_queue.append((payload, ip.src, udp.src_port))

    # -- TCP ---------------------------------------------------------------
    def _tcp_input(
        self, pkt: Packet, ip: Ipv4Header, l4: int, ctx: ExecContext
    ) -> None:
        try:
            tcp = TcpHeader.unpack(pkt.data, l4)
        except ValueError:
            return
        self._count("TcpInSegs")
        payload = pkt.data[l4 + TCP_HLEN : ETH_HLEN + ip.total_length]
        key = (ip.dst, tcp.dst_port, ip.src, tcp.src_port)
        sock = self._tcp_socks.get(key)
        if sock is None:
            listener = self._tcp_listeners.get(
                (ip.dst, tcp.dst_port)
            ) or self._tcp_listeners.get((0, tcp.dst_port))
            if listener is not None and tcp.has(TcpFlags.SYN):
                self._tcp_accept_syn(listener, ip, tcp, ctx)
            else:
                self._count("TcpInErrs")
            return
        self._tcp_segment(sock, ip, tcp, payload, ctx)

    def _tcp_accept_syn(
        self, listener: TcpSocket, ip: Ipv4Header, tcp: TcpHeader, ctx: ExecContext
    ) -> None:
        child = TcpSocket(
            local_ip=ip.dst,
            local_port=tcp.dst_port,
            remote_ip=ip.src,
            remote_port=tcp.src_port,
            state=TcpState.SYN_RECEIVED,
            snd_nxt=1000,
            rcv_nxt=(tcp.seq + 1) & 0xFFFFFFFF,
        )
        child.on_receive = listener.on_receive
        self._tcp_socks[child.key()] = child
        listener.accept_queue.append(child)
        self._tcp_send_flags(
            child, int(TcpFlags.SYN | TcpFlags.ACK), ctx
        )
        child.snd_nxt = (child.snd_nxt + 1) & 0xFFFFFFFF

    def _tcp_segment(
        self,
        sock: TcpSocket,
        ip: Ipv4Header,
        tcp: TcpHeader,
        payload: bytes,
        ctx: ExecContext,
    ) -> None:
        costs = DEFAULT_COSTS
        # Header prediction: in-order data (or a pure ACK) on an
        # established connection takes the receive fast path.
        fast = (
            sock.state is TcpState.ESTABLISHED
            and not tcp.flags & ~int(TcpFlags.ACK | TcpFlags.PSH)
            and (not payload or tcp.seq == sock.rcv_nxt)
        )
        ctx.charge(
            costs.tcp_rx_fastpath_ns if fast else costs.tcp_segment_ns,
            label="tcp_rx",
        )
        if tcp.has(TcpFlags.RST):
            sock.state = TcpState.CLOSED
            return
        if sock.state is TcpState.SYN_SENT and tcp.has(TcpFlags.SYN):
            sock.rcv_nxt = (tcp.seq + 1) & 0xFFFFFFFF
            sock.state = TcpState.ESTABLISHED
            self._tcp_send_flags(sock, int(TcpFlags.ACK), ctx)
            return
        if sock.state is TcpState.SYN_RECEIVED and tcp.has(TcpFlags.ACK):
            sock.state = TcpState.ESTABLISHED
            # fall through: the ACK may carry data
        if tcp.has(TcpFlags.FIN):
            sock.rcv_nxt = (sock.rcv_nxt + len(payload) + 1) & 0xFFFFFFFF
            if payload:
                self._tcp_deliver_payload(sock, payload, ctx)
            if sock.state is TcpState.FIN_WAIT:
                sock.state = TcpState.CLOSED
            else:
                sock.state = TcpState.CLOSE_WAIT
            self._tcp_send_flags(sock, int(TcpFlags.ACK), ctx)
            return
        if payload:
            if tcp.seq != sock.rcv_nxt:
                self._count("TcpOutOfOrder")
                return
            sock.rcv_nxt = (sock.rcv_nxt + len(payload)) & 0xFFFFFFFF
            self._tcp_deliver_payload(sock, payload, ctx)
            sock.segments_received += 1
            # Delayed ACK: every second segment, like Linux under bulk load.
            if sock.segments_received % 2 == 0 or len(payload) < DEFAULT_MSS:
                self._tcp_send_flags(sock, int(TcpFlags.ACK), ctx)

    def _tcp_deliver_payload(
        self, sock: TcpSocket, payload: bytes, ctx: ExecContext
    ) -> None:
        ctx.charge(DEFAULT_COSTS.copy_cost(len(payload)), label="sock_copy")
        self._count_copy(len(payload))
        sock.bytes_received += len(payload)
        if sock.on_receive is not None:
            sock.on_receive(payload)
        else:
            sock.recv_buffer.extend(payload)

    def _tcp_send_flags(
        self, sock: TcpSocket, flags: int, ctx: ExecContext
    ) -> None:
        tcp = TcpHeader(
            sock.local_port,
            sock.remote_port,
            seq=sock.snd_nxt,
            ack=sock.rcv_nxt,
            flags=flags,
        )
        # A pure ACK is far cheaper to emit than a data segment.
        pure_ack = flags == int(TcpFlags.ACK)
        ctx.charge(
            DEFAULT_COSTS.tcp_ack_tx_ns if pure_ack
            else DEFAULT_COSTS.tcp_segment_ns,
            label="tcp_tx",
        )
        self.ip_output(
            sock.remote_ip, IPProto.TCP, tcp.pack(), ctx, src_ip=sock.local_ip
        )
        self._count("TcpOutSegs")

    # ------------------------------------------------------------------
    # Socket API.
    # ------------------------------------------------------------------
    def udp_socket(self, ip: "int | str" = 0, port: int = 0) -> UdpSocket:
        from repro.net.addresses import ip_to_int

        ip = ip_to_int(ip) if isinstance(ip, str) else ip
        if port == 0:
            port = self._alloc_port()
        if (ip, port) in self._udp_socks:
            raise ValueError(f"UDP port {port} already bound")
        sock = UdpSocket(ip, port)
        self._udp_socks[(ip, port)] = sock
        return sock

    def udp_send(
        self,
        sock: UdpSocket,
        dst_ip: "int | str",
        dst_port: int,
        payload: bytes,
        ctx: ExecContext,
    ) -> bool:
        from repro.net.addresses import ip_to_int

        dst_ip = ip_to_int(dst_ip) if isinstance(dst_ip, str) else dst_ip
        costs = DEFAULT_COSTS
        ctx.charge(costs.udp_datagram_ns, label="udp_tx")
        ctx.charge(costs.copy_cost(len(payload)), label="sock_copy")
        self._count_copy(len(payload))
        udp = UdpHeader(sock.port, dst_port, UDP_HLEN + len(payload))
        self._count("UdpOutDatagrams")
        return self.ip_output(
            dst_ip, IPProto.UDP, udp.pack() + payload, ctx,
            src_ip=sock.ip or None,
        )

    def tcp_listen(self, ip: "int | str", port: int) -> TcpSocket:
        from repro.net.addresses import ip_to_int

        ip = ip_to_int(ip) if isinstance(ip, str) else ip
        if (ip, port) in self._tcp_listeners:
            raise ValueError(f"TCP port {port} already listening")
        sock = TcpSocket(local_ip=ip, local_port=port, state=TcpState.LISTEN)
        self._tcp_listeners[(ip, port)] = sock
        return sock

    def tcp_connect(
        self, src_ip: "int | str", dst_ip: "int | str", dst_port: int,
        ctx: ExecContext,
    ) -> TcpSocket:
        from repro.net.addresses import ip_to_int

        src_ip = ip_to_int(src_ip) if isinstance(src_ip, str) else src_ip
        dst_ip = ip_to_int(dst_ip) if isinstance(dst_ip, str) else dst_ip
        sock = TcpSocket(
            local_ip=src_ip,
            local_port=self._alloc_port(),
            remote_ip=dst_ip,
            remote_port=dst_port,
            state=TcpState.SYN_SENT,
            snd_nxt=2000,
        )
        self._tcp_socks[sock.key()] = sock
        self._tcp_send_flags(sock, int(TcpFlags.SYN), ctx)
        sock.snd_nxt = (sock.snd_nxt + 1) & 0xFFFFFFFF
        return sock

    def tcp_send(
        self,
        sock: TcpSocket,
        payload: bytes,
        ctx: ExecContext,
        mss: int = DEFAULT_MSS,
        tso: bool = False,
    ) -> int:
        """Send ``payload``; with ``tso`` the stack emits one super-segment
        per 64 kB and lets the device segment it (§5.1's TSO effect)."""
        if sock.state is not TcpState.ESTABLISHED:
            raise ValueError(f"socket not established (state {sock.state})")
        costs = DEFAULT_COSTS
        ctx.charge(costs.copy_cost(len(payload)), label="sock_copy")
        self._count_copy(len(payload))
        chunk = min(65536 - 54, len(payload)) if tso else mss
        sent = 0
        while sent < len(payload):
            piece = payload[sent : sent + chunk]
            tcp = TcpHeader(
                sock.local_port,
                sock.remote_port,
                seq=sock.snd_nxt,
                ack=sock.rcv_nxt,
                flags=int(TcpFlags.ACK | TcpFlags.PSH),
            )
            ctx.charge(costs.tcp_tx_segment_ns, label="tcp_tx")
            self.ip_output(
                sock.remote_ip,
                IPProto.TCP,
                tcp.pack() + piece,
                ctx,
                src_ip=sock.local_ip,
                gso_size=mss if tso and len(piece) > mss else 0,
            )
            self._count("TcpOutSegs")
            sock.snd_nxt = (sock.snd_nxt + len(piece)) & 0xFFFFFFFF
            sent += len(piece)
        return sent

    def tcp_close(self, sock: TcpSocket, ctx: ExecContext) -> None:
        if sock.state is TcpState.ESTABLISHED:
            sock.state = TcpState.FIN_WAIT
        elif sock.state is TcpState.CLOSE_WAIT:
            sock.state = TcpState.CLOSED
        self._tcp_send_flags(sock, int(TcpFlags.FIN | TcpFlags.ACK), ctx)
        sock.snd_nxt = (sock.snd_nxt + 1) & 0xFFFFFFFF

    def _alloc_port(self) -> int:
        self._ephemeral_port += 1
        if self._ephemeral_port > 65000:
            self._ephemeral_port = 49101
        return self._ephemeral_port

    # ------------------------------------------------------------------
    # Output path.
    # ------------------------------------------------------------------
    def ip_output(
        self,
        dst_ip: int,
        proto: int,
        l4_bytes: bytes,
        ctx: ExecContext,
        src_ip: Optional[int] = None,
        gso_size: int = 0,
    ) -> bool:
        costs = DEFAULT_COSTS
        ctx.charge(costs.ip_forward_ns, label="ip_output")
        route = self.ns.routes.lookup(dst_ip)
        if route is None:
            self._count("IpOutNoRoutes")
            return False
        device = self.ns.device_by_ifindex(route.ifindex)
        if device is None:
            return False
        if src_ip is None:
            addrs = self.ns.addresses(device.name)
            if not addrs:
                return False
            src_ip = addrs[0][1]
        next_hop = route.gateway or dst_ip
        ip = Ipv4Header(
            src=src_ip,
            dst=dst_ip,
            proto=proto,
            total_length=IPV4_HLEN + len(l4_bytes),
        )
        frame_tail = ip.pack() + l4_bytes
        neighbor = self.ns.neighbors.lookup(next_hop)
        if neighbor is None:
            # Kick off ARP and park the packet until the reply arrives.
            self._count("ArpRequests")
            request = make_arp_request(device.mac, src_ip, next_hop)
            placeholder = Packet(
                self._frame(MacAddress.broadcast(), device.mac, frame_tail)
            )
            placeholder.meta.gso_size = gso_size
            self._pending_arp.setdefault(next_hop, []).append(placeholder)
            device.transmit(request, ctx)
            return True
        pkt = Packet(self._frame(neighbor.mac, device.mac, frame_tail))
        pkt.meta.gso_size = gso_size
        pkt.meta.csum_partial = True  # hardware (or nobody) checksums
        self._count("IpOutRequests")
        return device.transmit(pkt, ctx)

    @staticmethod
    def _frame(dst_mac: MacAddress, src_mac: MacAddress, tail: bytes) -> bytes:
        frame = EthernetHeader(dst_mac, src_mac, EtherType.IPV4).pack() + tail
        if len(frame) < 60:
            frame += b"\x00" * (60 - len(frame))
        return frame

    def _ip_forward(self, pkt: Packet, ip: Ipv4Header, ctx: ExecContext) -> None:
        costs = DEFAULT_COSTS
        ctx.charge(costs.ip_forward_ns, label="ip_forward")
        if ip.ttl <= 1:
            self._count("IpForwTtlErrors")
            return
        route = self.ns.routes.lookup(ip.dst)
        if route is None:
            self._count("IpOutNoRoutes")
            return
        device = self.ns.device_by_ifindex(route.ifindex)
        if device is None:
            return
        next_hop = route.gateway or ip.dst
        neighbor = self.ns.neighbors.lookup(next_hop)
        if neighbor is None:
            self._count("IpForwNoNeighbor")
            return
        new_ip = ip.decrement_ttl()
        new_ip_bytes = new_ip.pack()
        data = (
            EthernetHeader(neighbor.mac, device.mac, EtherType.IPV4).pack()
            + new_ip_bytes
            + pkt.data[ETH_HLEN + IPV4_HLEN :]
        )
        self._count("IpForwDatagrams")
        device.transmit(pkt.with_data(data), ctx)

    def _flush_pending_arp(self, resolved_ip: int, ctx: ExecContext) -> None:
        waiting = self._pending_arp.pop(resolved_ip, None)
        if not waiting:
            return
        neighbor = self.ns.neighbors.lookup(resolved_ip)
        if neighbor is None:  # pragma: no cover - we just learned it
            return
        device = self.ns.device_by_ifindex(neighbor.ifindex)
        if device is None:
            return
        for pkt in waiting:
            data = neighbor.mac.to_bytes() + pkt.data[6:]
            out = pkt.with_data(data)
            out.meta.csum_partial = True
            device.transmit(out, ctx)
