"""The OVS kernel module: the in-kernel datapath of Figure 3 (left).

This is the "least mechanism" datapath of the original OVS design: a
masked flow table (megaflows) populated from userspace, an upcall channel
for misses, and an action executor with access to kernel facilities —
conntrack, tunnels, and devices.  It runs in softirq context on whatever
CPU received the packet, which with RSS means "almost 8 CPU cores" at
high load (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.kernel.netdev import NetDevice
from repro.net.addresses import MacAddress
from repro.net.flow import FlowKey, FlowMask, apply_mask, extract_flow
from repro.net.packet import Packet
from repro.net.tunnel import decapsulate, encapsulate
from repro.ovs import odp
from repro.ovs.packet_ops import do_pop_vlan, do_push_vlan, set_field
from repro import telemetry
from repro.sim import faults, trace
from repro.telemetry.drops import DropReason
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext

MAX_RECIRC_DEPTH = 8


@dataclass
class Upcall:
    """A packet the datapath could not handle, punted to userspace."""

    port_no: int
    pkt: Packet
    key: FlowKey


@dataclass
class Vport:
    port_no: int
    name: str
    device: Optional[NetDevice] = None
    kind: str = "netdev"  # "netdev" | "internal" | "tunnel"
    stats_rx: int = 0
    stats_tx: int = 0


class InternalPort(NetDevice):
    """A bridge-internal port: the kernel stack's window into the bridge."""

    device_type = "internal"

    def __init__(self, name: str, mac: MacAddress, datapath: "KernelDatapath",
                 port_no: int) -> None:
        super().__init__(name, mac)
        self._datapath = datapath
        self._port_no = port_no
        self.carrier = True

    def _transmit(self, pkt: Packet, ctx: ExecContext) -> bool:
        # The stack sends via the bridge: enter the datapath.
        self._datapath.receive(self._port_no, pkt, ctx)
        return True


class KernelFlowTable:
    """Masked flows with tuple-space lookup, as the module implements it.

    Each distinct mask is one subtable; lookups probe subtables in order
    until a hit.  This linear-in-masks cost is the megaflow lookup cost
    the EMC exists to hide in the userspace datapath.
    """

    def __init__(self) -> None:
        self._masks: List[FlowMask] = []
        self._tables: Dict[FlowMask, Dict[Tuple[int, ...], Tuple[odp.OdpAction, ...]]] = {}
        self.n_hit = 0
        self.n_missed = 0
        self.lookups_per_hit_acc = 0

    def __len__(self) -> int:
        return sum(len(t) for t in self._tables.values())

    @property
    def n_masks(self) -> int:
        return len(self._masks)

    def insert(
        self, key: FlowKey, mask: FlowMask, actions: Tuple[odp.OdpAction, ...]
    ) -> None:
        odp.validate_actions(actions)
        if mask not in self._tables:
            self._tables[mask] = {}
            self._masks.append(mask)
        self._tables[mask][apply_mask(key, mask)] = tuple(actions)

    def remove(self, key: FlowKey, mask: FlowMask) -> None:
        table = self._tables.get(mask)
        if table is None:
            raise KeyError("no such mask")
        del table[apply_mask(key, mask)]
        if not table:
            del self._tables[mask]
            self._masks.remove(mask)

    def flush(self) -> None:
        self._masks.clear()
        self._tables.clear()

    def lookup(
        self, key: FlowKey, ctx: ExecContext
    ) -> Optional[Tuple[odp.OdpAction, ...]]:
        costs = DEFAULT_COSTS
        probed = 0
        for mask in self._masks:
            probed += 1
            actions = self._tables[mask].get(apply_mask(key, mask))
            if actions is not None:
                ctx.charge(
                    probed * costs.megaflow_subtable_ns, label="megaflow"
                )
                self.n_hit += 1
                self.lookups_per_hit_acc += probed
                return actions
        ctx.charge(
            max(probed, 1) * costs.megaflow_subtable_ns, label="megaflow"
        )
        self.n_missed += 1
        return None


class KernelDatapath:
    """One ``ovs-dpctl`` datapath instance living in a namespace's kernel."""

    def __init__(self, name: str, namespace) -> None:
        self.name = name
        self.ns = namespace
        self.flows = KernelFlowTable()
        self.ports: Dict[int, Vport] = {}
        self._port_by_name: Dict[str, int] = {}
        self._next_port = 1
        self.upcall_handler: Optional[Callable[[Upcall, ExecContext], None]] = None
        self.n_upcalls = 0
        #: Upcalls the kernel could not deliver to userspace (socket
        #: buffer overrun, no handler) — dpctl/show's ``lost:`` column.
        self.n_lost = 0
        self.now_ns_fn: Callable[[], int] = lambda: 0

    # ------------------------------------------------------------------
    # Port management.
    # ------------------------------------------------------------------
    def add_port(self, device: NetDevice) -> Vport:
        """Attach a device: its receive path now enters the datapath."""
        port = Vport(self._next_port, device.name, device=device)
        self._register(port)
        device.set_rx_handler(
            lambda pkt, ctx, p=port.port_no: self.receive(p, pkt, ctx)
        )
        return port

    def add_internal_port(self, name: str, mac: MacAddress) -> Tuple[Vport, InternalPort]:
        port_no = self._next_port
        device = InternalPort(name, mac, self, port_no)
        self.ns.register(device)
        device.set_up()
        port = Vport(port_no, name, device=device, kind="internal")
        self._register(port)
        return port, device

    def add_tunnel_port(self, name: str) -> Vport:
        port = Vport(self._next_port, name, kind="tunnel")
        self._register(port)
        return port

    def _register(self, port: Vport) -> None:
        if port.name in self._port_by_name:
            raise ValueError(f"port {port.name!r} already on datapath")
        self.ports[port.port_no] = port
        self._port_by_name[port.name] = port.port_no
        self._next_port += 1

    def del_port(self, name: str) -> None:
        port_no = self._port_by_name.pop(name, None)
        if port_no is None:
            raise KeyError(f"no port {name!r}")
        port = self.ports.pop(port_no)
        if port.device is not None and port.kind != "internal":
            port.device.set_rx_handler(None)

    def port_no(self, name: str) -> int:
        return self._port_by_name[name]

    # ------------------------------------------------------------------
    # Flow management (the netlink flow_put/del interface).
    # ------------------------------------------------------------------
    def flow_put(self, key: FlowKey, mask: FlowMask, actions) -> None:
        self.flows.insert(key, mask, tuple(actions))

    def flow_del(self, key: FlowKey, mask: FlowMask) -> None:
        self.flows.remove(key, mask)

    def flow_flush(self) -> None:
        self.flows.flush()

    # ------------------------------------------------------------------
    # The receive fast path.
    # ------------------------------------------------------------------
    def receive(self, port_no: int, pkt: Packet, ctx: ExecContext) -> None:
        port = self.ports.get(port_no)
        if port is None:
            telemetry.drop_event(DropReason.KERNEL_RX_NO_PORT,
                                 octets=len(pkt.data))
            return
        port.stats_rx += 1
        pkt.meta.in_port = port_no
        tele = telemetry.ACTIVE
        if tele is not None:
            # The kernel-path observation point: after the vport resolved
            # and in_port is stamped, before lookup.  Recirculation and
            # tunnel decap re-enter _lookup_and_execute directly, so a
            # packet is observed once per datapath entry.
            tele.observe("kernel", pkt, ctx)
        self._lookup_and_execute(pkt, ctx, depth=0)

    def _lookup_and_execute(self, pkt: Packet, ctx: ExecContext, depth: int) -> None:
        costs = DEFAULT_COSTS
        if depth > MAX_RECIRC_DEPTH:
            telemetry.drop_event(DropReason.KERNEL_RECIRC_LIMIT,
                                 octets=len(pkt.data))
            return  # loop mitigation, as the real module does
        ctx.charge(costs.flow_extract_ns, label="flow_extract")
        key = extract_flow(
            pkt.data,
            in_port=pkt.meta.in_port,
            recirc_id=pkt.meta.recirc_id,
            ct_state=pkt.meta.ct_state,
            ct_zone=pkt.meta.ct_zone,
            ct_mark=pkt.meta.ct_mark,
            tun_id=pkt.meta.tunnel.vni,
            tun_src=pkt.meta.tunnel.remote_ip,
            tun_dst=pkt.meta.tunnel.local_ip,
        )
        actions = self.flows.lookup(key, ctx)
        if actions is None:
            self._upcall(pkt, key, ctx)
            return
        self.execute_actions(pkt, actions, ctx, depth)

    def _upcall(self, pkt: Packet, key: FlowKey, ctx: ExecContext) -> None:
        costs = DEFAULT_COSTS
        self.n_upcalls += 1
        plan = faults.ACTIVE
        if plan is not None and plan.should_fire("kernel.upcall_overload"):
            # The netlink socket buffer overflowed under an upcall storm:
            # the kernel increments ``lost`` and drops the packet (it
            # never reaches userspace, so no flow gets installed either).
            self.n_lost += 1
            trace.count("kernel.upcall_lost")
            telemetry.drop_event(DropReason.KERNEL_UPCALL_LOST,
                                 octets=len(pkt.data))
            return
        if self.upcall_handler is None:
            self.n_lost += 1
            telemetry.drop_event(DropReason.KERNEL_UPCALL_LOST,
                                 octets=len(pkt.data))
            return
        # The packet and key cross to userspace and back: two context
        # switches, a netlink copy each way, a classifier lookup up there.
        ctx.charge(costs.upcall_ns, label="upcall")
        self.upcall_handler(Upcall(pkt.meta.in_port, pkt, key), ctx)

    # ------------------------------------------------------------------
    # Action execution with kernel facilities.
    # ------------------------------------------------------------------
    def execute_actions(
        self,
        pkt: Packet,
        actions,
        ctx: ExecContext,
        depth: int = 0,
    ) -> None:
        costs = DEFAULT_COSTS
        data = pkt.data
        for act in actions:
            ctx.charge(costs.action_ns, label="odp_action")
            if isinstance(act, odp.Output):
                self._output(pkt.with_data(data), act.port_no, ctx)
            elif isinstance(act, odp.SetField):
                data = set_field(data, act.field, act.value)
            elif isinstance(act, odp.PushVlan):
                data = do_push_vlan(data, act.vid, act.pcp)
            elif isinstance(act, odp.PopVlan):
                data = do_pop_vlan(data)
            elif isinstance(act, odp.Ct):
                self._do_ct(pkt.with_data(data), act, ctx)
            elif isinstance(act, odp.Recirc):
                out = pkt.with_data(data)
                out.meta.recirc_id = act.recirc_id
                ctx.charge(costs.recirculate_ns, label="recirc")
                self._lookup_and_execute(out, ctx, depth + 1)
                return  # nothing executes after recirc
            elif isinstance(act, odp.TunnelPush):
                ctx.charge(costs.tunnel_encap_ns, label="tunnel_push")
                outer = encapsulate(act.config, data)
                ctx.charge(costs.copy_cost(len(outer) - len(data)),
                           label="encap_copy")
                out = Packet(outer)
                out.meta.in_port = pkt.meta.in_port
                self._output(out, act.out_port, ctx)
            elif isinstance(act, odp.TunnelPop):
                ctx.charge(costs.tunnel_decap_ns, label="tunnel_pop")
                try:
                    ttype, vni, src, dst, inner = decapsulate(data)
                except ValueError:
                    telemetry.drop_event(
                        DropReason.KERNEL_TUNNEL_DECAP_FAILED,
                        octets=len(data))
                    return  # not a tunnel packet after all: drop
                out = Packet(inner)
                out.meta.in_port = act.vport
                out.meta.tunnel.tunnel_type = ttype
                out.meta.tunnel.vni = vni
                out.meta.tunnel.remote_ip = src
                out.meta.tunnel.local_ip = dst
                port = self.ports.get(act.vport)
                if port is not None:
                    port.stats_rx += 1
                self._lookup_and_execute(out, ctx, depth + 1)
                return
            elif isinstance(act, odp.Userspace):
                ctx.charge(costs.upcall_ns, label="userspace_action")
            elif isinstance(act, odp.Trunc):
                data = data[: act.max_len]
            elif isinstance(act, odp.Meter):
                pass  # kernel meters are modelled as no-ops here
            else:
                raise NotImplementedError(f"kernel DP cannot {act!r}")

    def _do_ct(self, pkt: Packet, act: odp.Ct, ctx: ExecContext) -> None:
        costs = DEFAULT_COSTS
        key = extract_flow(pkt.data)
        ctx.charge(costs.conntrack_lookup_ns, label="ct_lookup")
        result = self.ns.conntrack.process(
            key.five_tuple(),
            zone=act.zone,
            tcp_flags=key.tcp_flags,
            nbytes=len(pkt),
            commit=act.commit,
            now_ns=self.now_ns_fn(),
        )
        if act.commit and result.is_new:
            ctx.charge(
                costs.conntrack_commit_ns - costs.conntrack_lookup_ns,
                label="ct_commit",
            )
        pkt.meta.ct_state = result.state_bits
        pkt.meta.ct_zone = act.zone
        if result.connection is not None:
            pkt.meta.ct_mark = result.connection.mark

    def _output(self, pkt: Packet, port_no: int, ctx: ExecContext) -> None:
        port = self.ports.get(port_no)
        if port is None or port.device is None:
            telemetry.drop_event(DropReason.KERNEL_OUTPUT_NO_PORT,
                                 octets=len(pkt.data))
            return
        port.stats_tx += 1
        if port.kind == "internal":
            # To the host stack through the internal device's receive side.
            port.device.deliver(pkt, ctx)
        else:
            port.device.transmit(pkt, ctx)
