"""rtnetlink: the kernel's configuration and monitoring socket.

Two consumers in this reproduction use it, exactly as in the paper:

* the tools of Table 1 (``ip link``, ``ip route``, ...) — which is why
  they work on kernel-managed devices and fail on DPDK-bound ones;
* OVS userspace, which keeps replicas of the route and neighbor tables
  for its tunnel handling (§4) via :class:`NetlinkMonitor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.addresses import MacAddress, int_to_ip
from repro.kernel.namespace import NetNamespace
from repro.kernel.neighbor import Neighbor
from repro.kernel.routing import Route
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, ExecContext


@dataclass
class LinkInfo:
    ifindex: int
    name: str
    mac: MacAddress
    mtu: int
    up: bool
    carrier: bool
    device_type: str
    stats: dict


class RtNetlink:
    """Synchronous rtnetlink queries against one namespace."""

    def __init__(self, namespace: NetNamespace) -> None:
        self.ns = namespace

    def _charge(self, ctx: Optional[ExecContext]) -> None:
        if ctx is not None:
            with ctx.as_category(CpuCategory.SYSTEM):
                ctx.charge(DEFAULT_COSTS.syscall_base_ns, label="netlink")

    # -- dumps -------------------------------------------------------------
    def get_links(self, ctx: Optional[ExecContext] = None) -> List[LinkInfo]:
        self._charge(ctx)
        return [
            LinkInfo(
                ifindex=d.ifindex,
                name=d.name,
                mac=d.mac,
                mtu=d.mtu,
                up=d.up,
                carrier=d.carrier,
                device_type=d.device_type,
                stats=d.stats.snapshot(),
            )
            for d in self.ns.devices()
        ]

    def get_link(self, name: str, ctx: Optional[ExecContext] = None) -> LinkInfo:
        self._charge(ctx)
        for link in self.get_links():
            if link.name == name:
                return link
        raise KeyError(f"Device \"{name}\" does not exist.")

    def get_addresses(self, ctx: Optional[ExecContext] = None) -> List[dict]:
        self._charge(ctx)
        out = []
        for ifindex, ip, plen in self.ns.addresses():
            device = self.ns.device_by_ifindex(ifindex)
            out.append(
                {
                    "ifindex": ifindex,
                    "dev": device.name if device else f"if{ifindex}",
                    "address": f"{int_to_ip(ip)}/{plen}",
                }
            )
        return out

    def get_routes(self, ctx: Optional[ExecContext] = None) -> List[Route]:
        self._charge(ctx)
        return self.ns.routes.routes()

    def get_neighbors(self, ctx: Optional[ExecContext] = None) -> List[Neighbor]:
        self._charge(ctx)
        return self.ns.neighbors.entries()

    # -- modifications -------------------------------------------------------
    def set_link_up(self, name: str, up: bool = True,
                    ctx: Optional[ExecContext] = None) -> None:
        self._charge(ctx)
        self.ns.device(name).set_up(up)

    def add_address(self, name: str, ip: "int | str", prefix_len: int,
                    ctx: Optional[ExecContext] = None) -> None:
        self._charge(ctx)
        self.ns.add_address(name, ip, prefix_len)

    def add_route(self, prefix: int, prefix_len: int, dev: str,
                  gateway: int = 0, ctx: Optional[ExecContext] = None) -> None:
        self._charge(ctx)
        self.ns.routes.add(prefix, prefix_len, self.ns.device(dev).ifindex,
                           gateway)

    def add_neighbor(self, ip: int, mac: MacAddress, dev: str,
                     ctx: Optional[ExecContext] = None) -> None:
        self._charge(ctx)
        self.ns.neighbors.update(ip, mac, self.ns.device(dev).ifindex,
                                 permanent=True)


class NetlinkMonitor:
    """OVS userspace's cached replica of the kernel route/neighbor tables.

    "OVS caches a userspace replica of each kernel table using Netlink ...
    these tables are only updated by slow control plane operations" (§4).
    The replica refreshes when the kernel table versions change.
    """

    def __init__(self, namespace: NetNamespace) -> None:
        self.ns = namespace
        self._route_version = -1
        self._neigh_version = -1
        self.routes: List[Route] = []
        self.neighbors: Dict[int, Neighbor] = {}
        self.refreshes = 0

    def poll(self, ctx: Optional[ExecContext] = None) -> bool:
        """Refresh if the kernel tables changed; returns True if refreshed."""
        changed = False
        if self.ns.routes.version != self._route_version:
            self.routes = self.ns.routes.routes()
            self._route_version = self.ns.routes.version
            changed = True
        if self.ns.neighbors.version != self._neigh_version:
            self.neighbors = {n.ip: n for n in self.ns.neighbors.entries()}
            self._neigh_version = self.ns.neighbors.version
            changed = True
        if changed:
            self.refreshes += 1
            if ctx is not None:
                with ctx.as_category(CpuCategory.SYSTEM):
                    ctx.charge(DEFAULT_COSTS.syscall_base_ns,
                               label="netlink_refresh")
        return changed

    def route_lookup(self, dst_ip: int) -> Optional[Route]:
        """LPM over the userspace replica (no syscall: that is the point)."""
        best: Optional[Route] = None
        for route in self.routes:
            if route.matches(dst_ip) and (
                best is None or route.prefix_len > best.prefix_len
            ):
                best = route
        return best

    def neighbor_lookup(self, ip: int) -> Optional[Neighbor]:
        return self.neighbors.get(ip)
