"""Physical NICs: multi-queue, RSS, ntuple steering, offloads, XDP.

The receive path mirrors real hardware: an arriving frame is steered to a
queue (ntuple rules first, then RSS), DMA'd into that queue's hardware
ring, and later *serviced* by a driver loop (:meth:`PhysicalNic.service_queue`)
running in softirq context — either interrupt-driven NAPI or busy polling.
If an XDP program is attached to the queue it runs before any sk_buff
exists, exactly as in Figure 4.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.ebpf.xdp import XdpAction, XdpContext, verdict_drop_reason
from repro.net.addresses import MacAddress
from repro.net.flow import extract_flow, rss_hash, rxhash_of
from repro.net.packet import Packet
from repro import telemetry
from repro.sim import fastpath
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext
from repro.kernel.netdev import NetDevice
from repro.telemetry.drops import DropReason


@dataclass
class NicFeatures:
    """Hardware offload capabilities (ethtool -k)."""

    rx_checksum: bool = True
    tx_checksum: bool = True
    tso: bool = True
    rx_hash: bool = True
    #: Driver supports native zero-copy AF_XDP (XDP_DRV + zerocopy);
    #: without it OVS falls back to copy mode (§3.5 Limitations).
    afxdp_zerocopy: bool = True
    #: Mellanox-style per-queue XDP attach vs Intel-style whole-device
    #: (Figure 6).
    per_queue_xdp: bool = False


@dataclass(frozen=True)
class NtupleRule:
    """An ethtool --config-ntuple hardware steering rule."""

    queue: int
    proto: Optional[int] = None
    dst_ip: Optional[int] = None
    dst_port: Optional[int] = None

    def matches(self, key) -> bool:
        if self.proto is not None and key.nw_proto != self.proto:
            return False
        if self.dst_ip is not None and key.nw_dst != self.dst_ip:
            return False
        if self.dst_port is not None and key.tp_dst != self.dst_port:
            return False
        return True


class PhysicalNic(NetDevice):
    """A multi-queue NIC with XDP support."""

    device_type = "nic"

    def __init__(
        self,
        name: str,
        mac: MacAddress,
        n_queues: int = 1,
        features: Optional[NicFeatures] = None,
        ring_size: int = 4096,
        mtu: int = 1500,
    ) -> None:
        super().__init__(name, mac, mtu=mtu)
        if n_queues < 1:
            raise ValueError("a NIC needs at least one queue")
        self.n_queues = n_queues
        self.features = features or NicFeatures()
        self.ring_size = ring_size
        self.rx_rings: List[Deque[Packet]] = [deque() for _ in range(n_queues)]
        self.rx_missed = 0  # ring-full drops (what TRex loss detection sees)
        # XDP dispatch outcomes, for packet-conservation audits: every
        # frame the driver serviced is forwarded, dropped, or diverted
        # to the kernel stack — never silently lost.
        self.xdp_drops = 0       # XDP_DROP / XDP_ABORTED verdicts
        self.xdp_passes = 0      # XDP_PASS: diverted into the stack
        self.xdp_redirect_failed = 0  # REDIRECT with no viable target
        self.ntuple_rules: List[NtupleRule] = []
        #: XDP program per queue (Figure 6); key None = all queues (Intel).
        self._xdp: Dict[Optional[int], XdpContext] = {}
        #: AF_XDP sockets bound per queue, resolved on XSK redirect.
        self.xsk_sockets: Dict[int, object] = {}
        #: devices reachable by ifindex for XDP_REDIRECT (set by namespace).
        self.redirect_resolver: Optional[Callable[[int], Optional[NetDevice]]] = None
        self.wire_peer: Optional[NetDevice] = None

    # ------------------------------------------------------------------
    # Configuration.
    # ------------------------------------------------------------------
    def add_ntuple_rule(self, rule: NtupleRule) -> None:
        if rule.queue >= self.n_queues:
            raise ValueError(f"queue {rule.queue} out of range")
        self.ntuple_rules.append(rule)

    def attach_xdp(self, program_ctx: XdpContext, queue: Optional[int] = None) -> None:
        """Attach an XDP program to the whole device or to one queue.

        Per-queue attach requires hardware that supports it (Figure 6b).
        """
        if queue is not None:
            if not self.features.per_queue_xdp:
                raise ValueError(
                    f"{self.name}: driver only supports whole-device XDP attach"
                )
            if queue >= self.n_queues:
                raise ValueError(f"queue {queue} out of range")
        self._xdp[queue] = program_ctx

    def detach_xdp(self, queue: Optional[int] = None) -> None:
        self._xdp.pop(queue, None)

    def xdp_program_for(self, queue: int) -> Optional[XdpContext]:
        return self._xdp.get(queue, self._xdp.get(None))

    def bind_xsk(self, queue: int, socket: object) -> None:
        if queue >= self.n_queues:
            raise ValueError(f"queue {queue} out of range")
        self.xsk_sockets[queue] = socket

    def unbind_xsk(self, queue: int) -> None:
        self.xsk_sockets.pop(queue, None)

    # ------------------------------------------------------------------
    # Hardware receive: steer + DMA into the queue ring.
    # ------------------------------------------------------------------
    def select_queue(self, pkt: Packet) -> int:
        if fastpath.ENABLED and not self.ntuple_rules:
            # No steering rules: a single-queue NIC always picks queue 0
            # and a multi-queue one is pure RSS, so skip the flow walk.
            if self.n_queues == 1:
                return 0
            return rxhash_of(pkt.data) % self.n_queues
        key = extract_flow(pkt.data)
        for rule in self.ntuple_rules:
            if rule.matches(key):
                return rule.queue
        if self.n_queues == 1:
            return 0
        return rss_hash(key.five_tuple()) % self.n_queues

    def host_receive(self, pkt: Packet) -> bool:
        """A frame arrives from the wire; DMA it into a queue ring.

        No CPU cost: this is the NIC hardware working.  Returns False if
        the ring was full (a "missed" drop — the lossless-rate searches
        key off this counter).
        """
        if not self.up:
            self.stats.rx_dropped += 1
            return False
        queue = self.select_queue(pkt)
        ring = self.rx_rings[queue]
        if len(ring) >= self.ring_size:
            self.rx_missed += 1
            telemetry.drop_event(DropReason.NIC_RX_MISSED,
                                 octets=len(pkt.data))
            return False
        pkt = pkt.clone()
        pkt.meta.in_port = self.ifindex
        if self.features.rx_hash:
            if fastpath.ENABLED:
                pkt.meta.rxhash = rxhash_of(pkt.data)
            else:
                pkt.meta.rxhash = rss_hash(extract_flow(pkt.data).five_tuple())
        if self.features.rx_checksum:
            pkt.meta.csum_verified = True
        ring.append(pkt)
        return True

    # ------------------------------------------------------------------
    # Driver service loop (softirq context).
    # ------------------------------------------------------------------
    def service_queue(
        self, queue: int, ctx: ExecContext, budget: int = 64
    ) -> int:
        """Process up to ``budget`` frames from a queue ring.

        Runs the XDP program (if attached) and dispatches its verdict;
        PASS continues into whatever consumes this device
        (``rx_handler``).  Returns the number of frames processed.
        """
        ring = self.rx_rings[queue]
        processed = 0
        costs = DEFAULT_COSTS
        tele = telemetry.ACTIVE
        while ring and processed < budget:
            pkt = ring.popleft()
            processed += 1
            ctx.charge(costs.nic_rx_ns, label="nic_rx")
            xdp = self.xdp_program_for(queue)
            if xdp is None:
                # The conventional path: populate an sk_buff before anyone
                # sees the packet ("the expensive step", §2.2.3), touching
                # cold DMA'd data on the way.
                ctx.charge(
                    costs.skb_alloc_ns + costs.dma_first_touch_ns,
                    label="skb_path",
                )
                pkt.meta.llc_warm = True
                self.deliver(pkt, ctx)
                ctx.charge(costs.skb_free_ns, label="skb_path")
                continue
            if tele is not None:
                # The "xdp" observation point: before the program runs,
                # where real sFlow-on-XDP taps would sample.  It cannot
                # live inside XdpContext.run — runs are memoized and
                # replayed with a fixed charge sequence.
                tele.observe("xdp", pkt, ctx)
            # The VM charges the first data touch itself (a program that
            # never reads the packet, like DROP-only, skips it — §5.4 A).
            verdict = xdp.run(
                pkt.data,
                exec_ctx=ctx,
                ingress_ifindex=self.ifindex,
                rx_queue_index=queue,
            )
            self._dispatch_xdp(pkt, verdict, queue, ctx)
        return processed

    def pending(self, queue: Optional[int] = None) -> int:
        if queue is not None:
            return len(self.rx_rings[queue])
        return sum(len(r) for r in self.rx_rings)

    def _dispatch_xdp(self, pkt: Packet, verdict, queue: int, ctx: ExecContext) -> None:
        costs = DEFAULT_COSTS
        if verdict.touched_data:
            pkt.meta.llc_warm = True
        if verdict.action == XdpAction.DROP or verdict.action == XdpAction.ABORTED:
            self.xdp_drops += 1
            telemetry.drop_event(verdict_drop_reason(verdict.action),
                                 octets=len(pkt.data))
            return  # buffer recycled in place
        if verdict.action == XdpAction.PASS:
            self.xdp_passes += 1
            # A conservation sink for the AF_XDP datapath: the frame
            # leaves it for the kernel stack.
            telemetry.drop_event(DropReason.NIC_XDP_PASS_TO_STACK,
                                 octets=len(verdict.data))
            self.deliver(pkt.with_data(verdict.data), ctx)
            return
        if verdict.action == XdpAction.TX:
            # Recycle the rx descriptor straight onto the tx ring.
            ctx.charge(costs.xdp_tx_ns, label="xdp_tx")
            self.transmit(pkt.with_data(verdict.data), ctx)
            return
        if verdict.action == XdpAction.REDIRECT:
            self._dispatch_redirect(pkt, verdict, queue, ctx)
            return
        raise AssertionError(f"unhandled XDP action {verdict.action}")

    def _dispatch_redirect(self, pkt: Packet, verdict, queue: int, ctx: ExecContext) -> None:
        costs = DEFAULT_COSTS
        ctx.charge(costs.xdp_redirect_ns, label="xdp_redirect")
        target = verdict.redirect
        out = pkt.with_data(verdict.data)
        if target is None:
            self._redirect_failed(out)
            return
        if target[0] == "map":
            _, bpf_map, slot = target
            if bpf_map.map_type == "xskmap":
                socket = self.xsk_sockets.get(slot)
                if socket is None:
                    self._redirect_failed(out)
                    return  # no socket bound: drop
                socket.kernel_rx(out, ctx)  # type: ignore[attr-defined]
                return
            ifindex = bpf_map.get_dev(slot)
            self._redirect_to_ifindex(out, ifindex, ctx)
            return
        if target[0] == "ifindex":
            self._redirect_to_ifindex(out, target[1], ctx)
            return
        raise AssertionError(f"unknown redirect target {target}")

    def _redirect_to_ifindex(
        self, pkt: Packet, ifindex: Optional[int], ctx: ExecContext
    ) -> None:
        if ifindex is None or self.redirect_resolver is None:
            self._redirect_failed(pkt)
            return
        device = self.redirect_resolver(ifindex)
        if device is None:
            self._redirect_failed(pkt)
            return
        device.transmit(pkt, ctx)

    def _redirect_failed(self, pkt: Packet) -> None:
        self.xdp_redirect_failed += 1
        telemetry.drop_event(DropReason.NIC_XDP_REDIRECT_FAILED,
                             octets=len(pkt.data))

    # ------------------------------------------------------------------
    # Transmit to the wire.
    # ------------------------------------------------------------------
    def _transmit(self, pkt: Packet, ctx: ExecContext) -> bool:
        costs = DEFAULT_COSTS
        if pkt.meta.gso_size and len(pkt) > self.mtu + 14:
            if not self.features.tso:
                # Software GSO: segment on the CPU before hitting the wire.
                return self._software_gso(pkt, ctx)
            # Hardware TSO: the NIC segments; CPU cost is one descriptor.
        if pkt.meta.csum_partial and not self.features.tx_checksum:
            ctx.charge(costs.checksum_cost(len(pkt)), label="sw_csum")
            pkt.meta.csum_partial = False
        ctx.charge(costs.nic_tx_ns, label="nic_tx")
        if self.wire_peer is not None:
            return self._put_on_wire(pkt)
        return True

    def _software_gso(self, pkt: Packet, ctx: ExecContext) -> bool:
        costs = DEFAULT_COSTS
        payload = len(pkt) - 54  # eth + ip + tcp headers
        n_segments = max(1, -(-payload // pkt.meta.gso_size))
        ctx.charge(
            n_segments * costs.software_gso_per_segment_ns
            + costs.copy_cost(len(pkt)),
            label="sw_gso",
        )
        if pkt.meta.csum_partial and not self.features.tx_checksum:
            ctx.charge(costs.checksum_cost(len(pkt)), label="sw_csum")
        ctx.charge(n_segments * costs.nic_tx_ns, label="nic_tx")
        ok = True
        if self.wire_peer is not None:
            for _ in range(n_segments):
                # The wire sees MTU-sized segments; we keep the super-frame
                # as one object but count segments for stats fidelity.
                pass
            ok = self._put_on_wire(pkt)
        return ok

    def _put_on_wire(self, pkt: Packet) -> bool:
        peer = self.wire_peer
        receive = getattr(peer, "host_receive", None)
        if receive is not None:
            return receive(pkt)
        # Peer without rings (e.g. a plain device in tests).
        peer.deliver(pkt, _NO_CPU_CTX)  # type: ignore[union-attr]
        return True


class _NullCtx:
    """Context used when hardware delivers without CPU involvement."""

    def charge(self, ns: float, label: str = "", category=None) -> None:
        pass

    def wait(self, ns: float, label: str = "") -> None:
        pass


_NO_CPU_CTX = _NullCtx()
