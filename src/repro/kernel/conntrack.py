"""Netfilter connection tracking with zones, states and NAT.

NSX's distributed firewall drives OVS's ``ct()`` action, which in the
kernel datapath lands here (§4, Figure 7a).  The userspace datapath has
its own reimplementation (:mod:`repro.ovs.ct_userspace`) that shares this
module's core logic — one of the paper's "features must be reimplemented"
lessons made concrete.

Zones keep tenants' address spaces separate: the same 5-tuple in two zones
is two different connections (§5.1's pipeline passes the "zone" along).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.net.flow import FiveTuple
from repro.net.ipv4 import IPProto
from repro.net.tcp import TcpFlags

#: ct_state bits, matching OVS's encoding.
CT_NEW = 0x01
CT_ESTABLISHED = 0x02
CT_RELATED = 0x04
CT_REPLY = 0x08
CT_INVALID = 0x10
CT_TRACKED = 0x20


class TcpCtState(enum.Enum):
    SYN_SENT = "SYN_SENT"
    SYN_RECV = "SYN_RECV"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT = "FIN_WAIT"
    CLOSED = "CLOSED"


_TIMEOUTS_NS = {
    TcpCtState.SYN_SENT: 120 * 10**9,
    TcpCtState.SYN_RECV: 60 * 10**9,
    TcpCtState.ESTABLISHED: 432_000 * 10**9,
    TcpCtState.FIN_WAIT: 120 * 10**9,
    TcpCtState.CLOSED: 10 * 10**9,
}
_UDP_TIMEOUT_NS = 180 * 10**9


@dataclass
class Connection:
    orig: FiveTuple
    zone: int
    tcp_state: Optional[TcpCtState] = None
    mark: int = 0
    #: (new_dst_ip, new_dst_port) for DNAT; applied on the original
    #: direction and reversed on replies.
    dnat: Optional[Tuple[int, int]] = None
    snat: Optional[Tuple[int, int]] = None
    packets: int = 0
    bytes: int = 0
    last_seen_ns: int = 0

    def timeout_ns(self) -> int:
        if self.orig.proto == IPProto.TCP and self.tcp_state is not None:
            return _TIMEOUTS_NS[self.tcp_state]
        return _UDP_TIMEOUT_NS


@dataclass
class CtResult:
    """What a ct() lookup tells the datapath about this packet."""

    state_bits: int
    connection: Optional[Connection] = None

    @property
    def is_new(self) -> bool:
        return bool(self.state_bits & CT_NEW)

    @property
    def is_established(self) -> bool:
        return bool(self.state_bits & CT_ESTABLISHED)

    @property
    def is_reply(self) -> bool:
        return bool(self.state_bits & CT_REPLY)

    @property
    def is_invalid(self) -> bool:
        return bool(self.state_bits & CT_INVALID)


class ConntrackTable:
    """The connection table, keyed by (zone, direction-normalised tuple)."""

    def __init__(self, max_connections: int = 1_000_000) -> None:
        self.max_connections = max_connections
        self._table: Dict[Tuple[int, FiveTuple], Connection] = {}
        #: per-zone connection counts, for the per-zone limit feature the
        #: paper's §2.1.1 discusses backporting (nf_conncount).
        self._zone_counts: Dict[int, int] = {}
        self.zone_limits: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._table)

    def zone_count(self, zone: int) -> int:
        return self._zone_counts.get(zone, 0)

    def set_zone_limit(self, zone: int, limit: int) -> None:
        self.zone_limits[zone] = limit

    # ------------------------------------------------------------------
    def lookup(
        self, five_tuple: FiveTuple, zone: int, now_ns: int = 0
    ) -> CtResult:
        """Classify a packet without committing anything (ct() without
        commit): returns NEW for unknown tuples."""
        conn, reply = self._find(five_tuple, zone, now_ns)
        if conn is None:
            return CtResult(CT_NEW | CT_TRACKED)
        bits = CT_TRACKED | CT_ESTABLISHED
        if reply:
            bits |= CT_REPLY
        return CtResult(bits, conn)

    def process(
        self,
        five_tuple: FiveTuple,
        zone: int,
        tcp_flags: int = 0,
        nbytes: int = 0,
        commit: bool = False,
        now_ns: int = 0,
    ) -> CtResult:
        """Track one packet; with ``commit`` a NEW connection is created."""
        conn, reply = self._find(five_tuple, zone, now_ns)
        if conn is None:
            if five_tuple.proto == IPProto.TCP and not tcp_flags & TcpFlags.SYN:
                # Mid-stream TCP without a connection is invalid.
                return CtResult(CT_INVALID | CT_TRACKED)
            if not commit:
                return CtResult(CT_NEW | CT_TRACKED)
            conn = self._commit(five_tuple, zone, now_ns)
            if conn is None:
                return CtResult(CT_INVALID | CT_TRACKED)
            self._advance_tcp(conn, tcp_flags, reply=False)
            conn.packets += 1
            conn.bytes += nbytes
            return CtResult(CT_NEW | CT_TRACKED, conn)
        conn.last_seen_ns = now_ns
        conn.packets += 1
        conn.bytes += nbytes
        if five_tuple.proto == IPProto.TCP:
            self._advance_tcp(conn, tcp_flags, reply)
        bits = CT_TRACKED | CT_ESTABLISHED
        if reply:
            bits |= CT_REPLY
        return CtResult(bits, conn)

    def flush(self) -> None:
        self._table.clear()
        self._zone_counts.clear()

    def expire(self, now_ns: int) -> int:
        """Drop connections past their timeout; returns how many."""
        dead = [
            key
            for key, conn in self._table.items()
            if now_ns - conn.last_seen_ns > conn.timeout_ns()
        ]
        for key in dead:
            zone = key[0]
            self._zone_counts[zone] = max(0, self._zone_counts.get(zone, 0) - 1)
            del self._table[key]
        return len(dead)

    def connections(self):
        return list(self._table.values())

    # ------------------------------------------------------------------
    def _find(
        self, five_tuple: FiveTuple, zone: int, now_ns: int
    ) -> Tuple[Optional[Connection], bool]:
        conn = self._table.get((zone, five_tuple))
        if conn is not None:
            return conn, False
        conn = self._table.get((zone, five_tuple.reversed()))
        if conn is not None:
            return conn, True
        return None, False

    def _commit(
        self, five_tuple: FiveTuple, zone: int, now_ns: int
    ) -> Optional[Connection]:
        limit = self.zone_limits.get(zone)
        if limit is not None and self.zone_count(zone) >= limit:
            return None  # per-zone connection limit hit
        if len(self._table) >= self.max_connections:
            return None
        conn = Connection(orig=five_tuple, zone=zone, last_seen_ns=now_ns)
        if five_tuple.proto == IPProto.TCP:
            conn.tcp_state = TcpCtState.SYN_SENT
        self._table[(zone, five_tuple)] = conn
        self._zone_counts[zone] = self._zone_counts.get(zone, 0) + 1
        return conn

    @staticmethod
    def _advance_tcp(conn: Connection, tcp_flags: int, reply: bool) -> None:
        if conn.tcp_state is None:
            conn.tcp_state = TcpCtState.SYN_SENT
        state = conn.tcp_state
        if tcp_flags & TcpFlags.RST:
            conn.tcp_state = TcpCtState.CLOSED
        elif tcp_flags & TcpFlags.FIN:
            conn.tcp_state = TcpCtState.FIN_WAIT
        elif state is TcpCtState.SYN_SENT and reply and tcp_flags & TcpFlags.SYN:
            conn.tcp_state = TcpCtState.SYN_RECV
        elif state is TcpCtState.SYN_RECV and not reply and tcp_flags & TcpFlags.ACK:
            conn.tcp_state = TcpCtState.ESTABLISHED
