"""The Kernel: namespaces, IRQ affinity, NAPI service, module loading.

A :class:`Kernel` belongs to one simulated host.  It owns the init
namespace (plus container namespaces), maps NIC queues to CPUs for softirq
accounting (IRQ affinity / RSS spreading), and "loads" the OVS kernel
module on demand — creating :class:`~repro.kernel.ovs_module.KernelDatapath`
instances.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.kernel.namespace import NetNamespace
from repro.kernel.netlink import RtNetlink
from repro.kernel.nic import PhysicalNic
from repro.kernel.ovs_module import KernelDatapath
from repro.sim import trace
from repro.sim.clock import Clock
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import CpuCategory, CpuModel, ExecContext


class Kernel:
    def __init__(self, cpu: CpuModel, clock: Optional[Clock] = None,
                 version: str = "5.3.0",
                 softirq_category: CpuCategory = CpuCategory.SOFTIRQ) -> None:
        self.cpu = cpu
        self.clock = clock or cpu.clock
        self.version = version
        #: A guest VM's kernel charges its softirq work as GUEST time on
        #: the host CPUs (the "guest" column of the paper's Table 4).
        self.softirq_category = softirq_category
        self.init_ns = NetNamespace("init")
        self._namespaces: Dict[str, NetNamespace] = {"init": self.init_ns}
        self.rtnetlink = RtNetlink(self.init_ns)
        #: (nic_name, queue) -> cpu; default spreads queues round-robin,
        #: which is what irqbalance + RSS give you.
        self._irq_affinity: Dict[Tuple[str, int], int] = {}
        self._softirq_ctx: Dict[int, ExecContext] = {}
        self._datapaths: Dict[str, KernelDatapath] = {}
        self.module_loaded = False

    # -- namespaces -----------------------------------------------------
    def add_namespace(self, name: str) -> NetNamespace:
        if name in self._namespaces:
            raise ValueError(f"namespace {name!r} exists")
        ns = NetNamespace(name)
        self._namespaces[name] = ns
        return ns

    def namespace(self, name: str) -> NetNamespace:
        return self._namespaces[name]

    def namespaces(self) -> List[NetNamespace]:
        return list(self._namespaces.values())

    # -- IRQ affinity and softirq contexts --------------------------------
    def set_irq_affinity(self, nic_name: str, queue: int, cpu: int) -> None:
        self._irq_affinity[(nic_name, queue)] = cpu

    def cpu_for_queue(self, nic: PhysicalNic, queue: int) -> int:
        explicit = self._irq_affinity.get((nic.name, queue))
        if explicit is not None:
            return explicit
        return (nic.ifindex * 7 + queue) % self.cpu.n_cpus

    def softirq_ctx(self, cpu: int) -> ExecContext:
        """The per-CPU softirq execution context (ksoftirqd)."""
        ctx = self._softirq_ctx.get(cpu)
        if ctx is None:
            ctx = ExecContext(self.cpu, cpu, self.softirq_category,
                              name=f"softirq/cpu{cpu}")
            self._softirq_ctx[cpu] = ctx
        return ctx

    # -- NAPI -----------------------------------------------------------
    def service_nic(self, nic: PhysicalNic, budget: int = 64,
                    interrupt_mode: bool = True) -> int:
        """Run one NAPI round over all queues of a NIC.

        In interrupt mode each non-empty queue pays the IRQ entry cost
        before polling (coalesced over the budget); in busy-poll mode the
        poll loop overhead is charged instead.
        """
        costs = DEFAULT_COSTS
        total = 0
        rec = trace.ACTIVE
        prof = rec.profiler if rec is not None else None
        if prof is not None:
            prof.enter("kernel.service_nic")
        try:
            for queue in range(nic.n_queues):
                if not nic.pending(queue):
                    continue
                ctx = self.softirq_ctx(self.cpu_for_queue(nic, queue))
                if interrupt_mode:
                    ctx.charge(costs.irq_entry_ns, label="irq")
                    trace.count("kernel.irqs")
                ctx.charge(costs.napi_poll_ns, label="napi")
                trace.count("kernel.napi_polls")
                total += nic.service_queue(queue, ctx, budget=budget)
        finally:
            if prof is not None:
                prof.exit_()
        return total

    def pump(self, max_rounds: int = 10_000) -> int:
        """Service every NIC in every namespace until quiescent.

        Drives multi-hop interactions (ARP round trips, TCP handshakes)
        to completion in tests and control-plane paths.  Returns packets
        processed.
        """
        total = 0
        for _ in range(max_rounds):
            progressed = 0
            for ns in self.namespaces():
                for dev in ns.devices():
                    if isinstance(dev, PhysicalNic) and dev.pending():
                        progressed += self.service_nic(dev)
            total += progressed
            if not progressed:
                return total
        raise RuntimeError("kernel pump did not quiesce (packet storm?)")

    # -- the openvswitch module -------------------------------------------
    def load_ovs_module(self) -> None:
        """modprobe openvswitch.  (With AF_XDP, never called — the point.)"""
        self.module_loaded = True

    def create_datapath(self, name: str,
                        namespace: Optional[NetNamespace] = None) -> KernelDatapath:
        if not self.module_loaded:
            raise RuntimeError(
                "openvswitch.ko is not loaded (kernel.load_ovs_module())"
            )
        if name in self._datapaths:
            raise ValueError(f"datapath {name!r} exists")
        dp = KernelDatapath(name, namespace or self.init_ns)
        dp.now_ns_fn = lambda: self.clock.now
        self._datapaths[name] = dp
        return dp

    def datapath(self, name: str) -> KernelDatapath:
        return self._datapaths[name]
