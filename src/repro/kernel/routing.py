"""The kernel FIB: longest-prefix-match IPv4 routing.

OVS userspace keeps a Netlink-fed replica of this table to implement
tunnel endpoint routing (§4); the tools layer renders it for ``ip route``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.addresses import int_to_ip, prefix_to_mask


@dataclass(frozen=True)
class Route:
    prefix: int
    prefix_len: int
    ifindex: int
    gateway: int = 0  # 0 = directly connected
    metric: int = 0

    def matches(self, dst_ip: int) -> bool:
        return (dst_ip & prefix_to_mask(self.prefix_len)) == self.prefix

    def render(self) -> str:
        dest = (
            "default"
            if self.prefix_len == 0
            else f"{int_to_ip(self.prefix)}/{self.prefix_len}"
        )
        via = f" via {int_to_ip(self.gateway)}" if self.gateway else ""
        return f"{dest}{via} dev if{self.ifindex} metric {self.metric}"


class RoutingTable:
    """A sorted-by-specificity route list with LPM lookup."""

    def __init__(self) -> None:
        self._routes: List[Route] = []
        self.version = 0  # bumped on change; netlink watchers poll this

    def add(self, prefix: int, prefix_len: int, ifindex: int,
            gateway: int = 0, metric: int = 0) -> Route:
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"bad prefix length {prefix_len}")
        canonical = prefix & prefix_to_mask(prefix_len)
        route = Route(canonical, prefix_len, ifindex, gateway, metric)
        self._routes.append(route)
        # Longest prefix first; lower metric breaks ties.
        self._routes.sort(key=lambda r: (-r.prefix_len, r.metric))
        self.version += 1
        return route

    def remove(self, prefix: int, prefix_len: int) -> None:
        canonical = prefix & prefix_to_mask(prefix_len)
        before = len(self._routes)
        self._routes = [
            r
            for r in self._routes
            if not (r.prefix == canonical and r.prefix_len == prefix_len)
        ]
        if len(self._routes) == before:
            raise KeyError(f"no route {int_to_ip(canonical)}/{prefix_len}")
        self.version += 1

    def lookup(self, dst_ip: int) -> Optional[Route]:
        for route in self._routes:
            if route.matches(dst_ip):
                return route
        return None

    def routes(self) -> List[Route]:
        return list(self._routes)

    def __len__(self) -> int:
        return len(self._routes)
