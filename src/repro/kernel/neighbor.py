"""The neighbor (ARP) table.

Like the FIB, OVS userspace mirrors this over Netlink for its own L3
tunnel handling (§4: "OVS caches a userspace replica of each kernel table
using Netlink").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.addresses import MacAddress, int_to_ip


class NeighborState(enum.Enum):
    INCOMPLETE = "INCOMPLETE"
    REACHABLE = "REACHABLE"
    STALE = "STALE"
    PERMANENT = "PERMANENT"


@dataclass
class Neighbor:
    ip: int
    mac: MacAddress
    ifindex: int
    state: NeighborState = NeighborState.REACHABLE
    updated_ns: int = 0

    def render(self) -> str:
        return (
            f"{int_to_ip(self.ip)} dev if{self.ifindex} "
            f"lladdr {self.mac} {self.state.value}"
        )


class NeighborTable:
    REACHABLE_TIME_NS = 30 * 1_000_000_000

    def __init__(self) -> None:
        self._entries: Dict[int, Neighbor] = {}
        self.version = 0

    def update(
        self,
        ip: int,
        mac: MacAddress,
        ifindex: int,
        now_ns: int = 0,
        permanent: bool = False,
    ) -> Neighbor:
        state = NeighborState.PERMANENT if permanent else NeighborState.REACHABLE
        entry = Neighbor(ip, mac, ifindex, state, now_ns)
        self._entries[ip] = entry
        self.version += 1
        return entry

    def lookup(self, ip: int, now_ns: int = 0) -> Optional[Neighbor]:
        entry = self._entries.get(ip)
        if entry is None:
            return None
        if (
            entry.state is NeighborState.REACHABLE
            and now_ns - entry.updated_ns > self.REACHABLE_TIME_NS
        ):
            entry.state = NeighborState.STALE
        return entry

    def delete(self, ip: int) -> None:
        if ip not in self._entries:
            raise KeyError(f"no neighbor {int_to_ip(ip)}")
        del self._entries[ip]
        self.version += 1

    def entries(self) -> List[Neighbor]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
