"""Network devices: the base class, statistics, and point-to-point wires.

A :class:`NetDevice` lives in a network namespace, has an ifindex and MAC,
and moves frames in two directions:

* ``transmit(pkt, ctx)`` — the kernel (or a userspace driver) hands the
  device a frame to put on its medium;
* ``deliver(pkt, ctx)`` — the medium hands the device a frame, which flows
  to whoever consumes this device's receive path (the kernel stack by
  default, or an attached handler such as the OVS datapath).

Devices managed by the kernel are visible to rtnetlink and therefore to
``ip``/``tcpdump``/... (Table 1).  A device bound to DPDK is *removed*
from its namespace's registry, which is exactly why those tools stop
working (§2.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.addresses import MacAddress
from repro.net.packet import Packet
from repro.sim.cpu import ExecContext

RxHandler = Callable[[Packet, ExecContext], None]


@dataclass
class DeviceStats:
    """Counters as reported by ``ip -s link`` / nstat."""

    rx_packets: int = 0
    rx_bytes: int = 0
    rx_dropped: int = 0
    tx_packets: int = 0
    tx_bytes: int = 0
    tx_dropped: int = 0

    def snapshot(self) -> dict:
        return {
            "rx_packets": self.rx_packets,
            "rx_bytes": self.rx_bytes,
            "rx_dropped": self.rx_dropped,
            "tx_packets": self.tx_packets,
            "tx_bytes": self.tx_bytes,
            "tx_dropped": self.tx_dropped,
        }


class NetDevice:
    """Base network device."""

    device_type = "generic"

    def __init__(self, name: str, mac: MacAddress, mtu: int = 1500) -> None:
        if not name or len(name) > 15:
            raise ValueError(f"bad interface name: {name!r}")
        self.name = name
        self.mac = mac
        self.mtu = mtu
        self.ifindex = 0  # assigned at namespace registration
        self.up = False
        self.carrier = False
        self.stats = DeviceStats()
        #: Consumes packets this device receives.  None = packets are
        #: dropped (device has no stack attached yet).
        self.rx_handler: Optional[RxHandler] = None
        #: Packet taps (tcpdump) see both directions.
        self._taps: list[Callable[[Packet, str], None]] = []

    # -- configuration --------------------------------------------------
    def set_up(self, up: bool = True) -> None:
        self.up = up

    def set_rx_handler(self, handler: Optional[RxHandler]) -> None:
        self.rx_handler = handler

    def add_tap(self, tap: Callable[[Packet, str], None]) -> None:
        self._taps.append(tap)

    def remove_tap(self, tap: Callable[[Packet, str], None]) -> None:
        self._taps.remove(tap)

    def _run_taps(self, pkt: Packet, direction: str) -> None:
        for tap in self._taps:
            tap(pkt, direction)

    # -- datapath --------------------------------------------------------
    def transmit(self, pkt: Packet, ctx: ExecContext) -> bool:
        """Send a frame out of this device.  Returns False if dropped."""
        if not self.up:
            self.stats.tx_dropped += 1
            return False
        if len(pkt) > self.mtu + 14 and not pkt.meta.gso_size:
            self.stats.tx_dropped += 1
            return False
        self.stats.tx_packets += 1
        self.stats.tx_bytes += len(pkt)
        self._run_taps(pkt, "tx")
        return self._transmit(pkt, ctx)

    def _transmit(self, pkt: Packet, ctx: ExecContext) -> bool:
        """Device-specific transmit; default devices have no medium."""
        return True

    def deliver(self, pkt: Packet, ctx: ExecContext) -> None:
        """A frame arrived from the medium; hand it to the consumer."""
        if not self.up:
            self.stats.rx_dropped += 1
            return
        self.stats.rx_packets += 1
        self.stats.rx_bytes += len(pkt)
        self._run_taps(pkt, "rx")
        if self.rx_handler is None:
            self.stats.rx_dropped += 1
            return
        self.rx_handler(pkt, ctx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "UP" if self.up else "DOWN"
        return f"<{self.device_type} {self.name} ifindex={self.ifindex} {state}>"


class Wire:
    """A full-duplex point-to-point link between two devices.

    The experiments' testbeds are back-to-back servers; the wire models
    link speed (used to cap achievable rates) and sets carrier on both
    ends.  Frame propagation is immediate — serialisation/propagation
    delay is accounted analytically by the experiments from ``gbps``.
    """

    def __init__(self, a: NetDevice, b: NetDevice, gbps: float = 10.0) -> None:
        if gbps <= 0:
            raise ValueError("link speed must be positive")
        self.a = a
        self.b = b
        self.gbps = gbps
        a.carrier = True
        b.carrier = True
        self._attach(a, b)
        self._attach(b, a)

    @staticmethod
    def _attach(dev: NetDevice, peer: NetDevice) -> None:
        if getattr(dev, "wire_peer", None) is not None:
            raise ValueError(f"{dev.name} is already wired")
        dev.wire_peer = peer  # type: ignore[attr-defined]

    def wire_time_ns(self, nbytes: int) -> float:
        """Serialisation delay of a frame on this link."""
        return (nbytes + 20) * 8 / self.gbps
