"""A simulated Linux kernel networking subsystem.

This package is the substrate the paper's OVS runs on (and partially
bypasses): network devices with multi-queue NICs, RSS and XDP hooks; tap
and veth virtual devices; network namespaces; an IPv4 stack with routing
and neighbor tables; netfilter connection tracking with zones; rtnetlink;
a NAPI softirq model; a syscall layer that charges entry/exit costs; and
the OVS kernel-module datapath itself (:mod:`repro.kernel.ovs_module`).

All packet-handling code charges virtual time to the
:class:`~repro.sim.cpu.ExecContext` it is given, in the accounting category
a real kernel would use (SOFTIRQ for receive processing, SYSTEM for
syscalls).
"""

from repro.kernel.netdev import NetDevice, DeviceStats, Wire
from repro.kernel.nic import PhysicalNic, NicFeatures
from repro.kernel.veth import VethPair
from repro.kernel.tap import TapDevice
from repro.kernel.namespace import NetNamespace
from repro.kernel.kernel import Kernel

__all__ = [
    "NetDevice",
    "DeviceStats",
    "Wire",
    "PhysicalNic",
    "NicFeatures",
    "VethPair",
    "TapDevice",
    "NetNamespace",
    "Kernel",
]
