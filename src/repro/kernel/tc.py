"""The tc (traffic control) ingress hook for eBPF programs.

§2.2.2's eBPF OVS datapath attaches here, not at XDP: the program runs
*after* sk_buff allocation, inside the normal stack path — which is why it
can at best match the kernel module's performance and in practice runs
10–20 % slower due to sandbox interpretation (Figure 2).

Verdicts follow tc semantics: TC_ACT_OK passes to the stack, TC_ACT_SHOT
drops, TC_ACT_REDIRECT sends out another device (the program calls the
redirect helper first).
"""

from __future__ import annotations

from typing import Optional

from repro.ebpf import jit as _jit
from repro.ebpf.program import Program
from repro.ebpf.vm import EbpfVm, VmFault
from repro.kernel.netdev import NetDevice
from repro.net.packet import Packet
from repro.sim import fastpath, trace
from repro.sim.cpu import ExecContext

TC_ACT_OK = 0
TC_ACT_SHOT = 2
TC_ACT_REDIRECT = 7


class TcIngressHook:
    """Attach an eBPF program at a device's tc ingress."""

    def __init__(self, device: NetDevice, program: Program, namespace) -> None:
        if not program.verified:
            raise ValueError("refusing to attach an unverified program")
        self.device = device
        self.program = program
        self.ns = namespace
        self._fallback = device.rx_handler
        device.set_rx_handler(self._ingress)
        self.n_ok = 0
        self.n_shot = 0
        self.n_redirect = 0

    def detach(self) -> None:
        self.device.set_rx_handler(self._fallback)

    def _ingress(self, pkt: Packet, ctx: ExecContext) -> None:
        # tc runs on the skb the driver already allocated for this frame;
        # the interpreter cost is the program's only extra charge.
        # Profiler-only frame per program, so a call tree splits tc cost
        # by program just like the xdp: frames do.
        rec = trace.ACTIVE
        prof = rec.profiler if rec is not None else None
        if prof is not None:
            prof.enter(f"tc:{self.program.name}")
        try:
            # Compiled (JIT) execution when the fastpath allows it; the
            # charge/counter sequence is identical either way, so the
            # ledger cannot tell which path ran.
            compiled = None
            if fastpath.ENABLED and _jit.ENABLED:
                compiled = _jit.compiled_for(self.program)
            if compiled is not None:
                vm = _jit.JitVm(compiled, exec_ctx=ctx)
            else:
                _jit.stats_for(self.program.name).interp_runs += 1
                vm = EbpfVm(self.program, exec_ctx=ctx)
            try:
                verdict = vm.run(pkt.data,
                                 ingress_ifindex=self.device.ifindex)
            except VmFault:
                self.n_shot += 1
                return
        finally:
            if prof is not None:
                prof.exit_()
        data = vm.pkt_bytes()
        if vm.redirect_target is not None:
            self.n_redirect += 1
            self._redirect(pkt.with_data(data), vm.redirect_target, ctx)
            return
        if verdict != TC_ACT_OK:
            # SHOT, UNSPEC, and anything unknown all stop the packet here.
            self.n_shot += 1
            return
        self.n_ok += 1
        if self._fallback is not None:
            self._fallback(pkt.with_data(data), ctx)

    def _redirect(self, pkt: Packet, target, ctx: ExecContext) -> None:
        if target[0] == "ifindex":
            ifindex: Optional[int] = target[1]
        else:  # devmap
            _, bpf_map, slot = target
            ifindex = bpf_map.get_dev(slot)
        if ifindex is None:
            return
        device = self.ns.device_by_ifindex(ifindex)
        if device is not None:
            device.transmit(pkt, ctx)
