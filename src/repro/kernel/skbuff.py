"""The sk_buff: the kernel's packet descriptor.

Allocating one is the first expensive thing the conventional receive path
does — the cost XDP exists to avoid ("even before it takes the expensive
step of populating it into a kernel socket buffer data structure", §2.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.packet import Packet
from repro.sim import trace
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext


@dataclass
class SkBuff:
    """A kernel packet buffer wrapping the frame and receive metadata."""

    pkt: Packet
    dev_ifindex: int = 0
    rx_queue: int = 0
    #: RSS hash from hardware (None = must be computed in software).
    hw_hash: Optional[int] = None
    #: Hardware verified the L4 checksum (CHECKSUM_UNNECESSARY).
    csum_unnecessary: bool = False
    #: conntrack state attached by netfilter, if any.
    ct_info: Optional[object] = None
    cb: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.pkt)


def alloc_skb(pkt: Packet, ctx: ExecContext, dev_ifindex: int = 0,
              rx_queue: int = 0) -> SkBuff:
    """Allocate and initialise an sk_buff (slab fast path).

    Charged to the caller's context; on receive that is softirq time,
    which is where the kernel datapath's Table 4 CPU numbers come from.
    """
    ctx.charge(DEFAULT_COSTS.skb_alloc_ns, label="skb_alloc")
    trace.count("kernel.skb_alloc")
    return SkBuff(pkt=pkt, dev_ifindex=dev_ifindex, rx_queue=rx_queue)


def free_skb(skb: SkBuff, ctx: ExecContext) -> None:
    """Return the buffer to the slab."""
    ctx.charge(DEFAULT_COSTS.skb_free_ns, label="skb_free")
    trace.count("kernel.skb_free")
