"""Network namespaces: a device registry plus per-namespace tables.

Containers in the paper are namespaces joined to the host by veth pairs
(§3.4).  Each namespace owns its devices (with namespace-local ifindexes),
IP addresses, FIB, neighbor table, conntrack table and an IPv4 stack.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.kernel.conntrack import ConntrackTable
from repro.kernel.neighbor import NeighborTable
from repro.kernel.netdev import NetDevice
from repro.kernel.routing import RoutingTable
from repro.net.addresses import int_to_ip, ip_to_int, prefix_to_mask


class NetNamespace:
    def __init__(self, name: str = "init") -> None:
        self.name = name
        self._devices: Dict[str, NetDevice] = {}
        self._by_ifindex: Dict[int, NetDevice] = {}
        self._next_ifindex = 1
        #: ifindex -> list of (ip, prefix_len)
        self._addresses: Dict[int, List[Tuple[int, int]]] = {}
        self.routes = RoutingTable()
        self.neighbors = NeighborTable()
        self.conntrack = ConntrackTable()
        # Set lazily to avoid an import cycle; namespace and stack are 1:1.
        from repro.kernel.stack import IpStack

        self.stack = IpStack(self)

    # -- devices ----------------------------------------------------------
    def register(self, device: NetDevice) -> NetDevice:
        if device.name in self._devices:
            raise ValueError(f"device {device.name!r} already exists")
        device.ifindex = self._next_ifindex
        self._next_ifindex += 1
        self._devices[device.name] = device
        self._by_ifindex[device.ifindex] = device
        resolver = getattr(device, "redirect_resolver", "missing")
        if resolver is None:
            device.redirect_resolver = self.device_by_ifindex  # type: ignore[attr-defined]
        return device

    def unregister(self, name: str) -> NetDevice:
        """Remove a device from kernel control (e.g. bound to DPDK).

        After this, rtnetlink — and therefore every tool in Table 1 —
        no longer sees the device.
        """
        device = self._devices.pop(name, None)
        if device is None:
            raise KeyError(f"no device {name!r}")
        del self._by_ifindex[device.ifindex]
        self._addresses.pop(device.ifindex, None)
        # Routes through the device die with it, exactly as in Linux.
        for route in self.routes.routes():
            if route.ifindex == device.ifindex:
                self.routes.remove(route.prefix, route.prefix_len)
        return device

    def device(self, name: str) -> NetDevice:
        dev = self._devices.get(name)
        if dev is None:
            raise KeyError(f"no device {name!r} in namespace {self.name!r}")
        return dev

    def has_device(self, name: str) -> bool:
        return name in self._devices

    def device_by_ifindex(self, ifindex: int) -> Optional[NetDevice]:
        return self._by_ifindex.get(ifindex)

    def devices(self) -> Iterable[NetDevice]:
        return list(self._devices.values())

    # -- addresses ----------------------------------------------------------
    def add_address(self, dev_name: str, ip: "int | str", prefix_len: int) -> None:
        ip = ip_to_int(ip) if isinstance(ip, str) else ip
        device = self.device(dev_name)
        self._addresses.setdefault(device.ifindex, []).append((ip, prefix_len))
        # A connected route appears automatically, like the kernel's.
        self.routes.add(ip & prefix_to_mask(prefix_len), prefix_len,
                        device.ifindex)

    def del_address(self, dev_name: str, ip: "int | str", prefix_len: int) -> None:
        ip = ip_to_int(ip) if isinstance(ip, str) else ip
        device = self.device(dev_name)
        addrs = self._addresses.get(device.ifindex, [])
        if (ip, prefix_len) not in addrs:
            raise KeyError(f"{int_to_ip(ip)}/{prefix_len} not on {dev_name}")
        addrs.remove((ip, prefix_len))
        self.routes.remove(ip & prefix_to_mask(prefix_len), prefix_len)

    def addresses(self, dev_name: Optional[str] = None) -> List[Tuple[int, int, int]]:
        """All (ifindex, ip, prefix_len), optionally for one device."""
        out = []
        for ifindex, addrs in self._addresses.items():
            if dev_name is not None and self.device(dev_name).ifindex != ifindex:
                continue
            out.extend((ifindex, ip, plen) for ip, plen in addrs)
        return out

    def local_ips(self) -> List[int]:
        return [ip for addrs in self._addresses.values() for ip, _ in addrs]

    def is_local_ip(self, ip: int) -> bool:
        return ip in self.local_ips()

    def ip_of(self, dev_name: str) -> int:
        """The primary address of a device (first one configured)."""
        device = self.device(dev_name)
        addrs = self._addresses.get(device.ifindex)
        if not addrs:
            raise KeyError(f"{dev_name} has no address")
        return addrs[0][0]
