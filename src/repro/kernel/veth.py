"""veth: paired virtual Ethernet devices crossing namespaces.

The kernel "passes packets from one kernel network namespace to another
without a data copy" (§3.4) — a veth transmit is an in-kernel function
call that delivers straight into the peer, charged ``veth_xmit_ns``.

A veth can also receive XDP_REDIRECTed frames (path C of Figure 5): the
driver exposes ``ndo_xdp_xmit``-like behaviour by simply accepting
transmits originating from a NIC's redirect path.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.addresses import MacAddress
from repro.net.packet import Packet
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.cpu import ExecContext
from repro.kernel.netdev import NetDevice


class VethDevice(NetDevice):
    device_type = "veth"

    def __init__(self, name: str, mac: MacAddress, mtu: int = 1500) -> None:
        super().__init__(name, mac, mtu=mtu)
        self.peer: Optional["VethDevice"] = None
        #: veth got zero-copy AF_XDP support only in later kernels (§3.4
        #: cites the pending patch); our default matches the paper's era.
        self.afxdp_zerocopy = False
        #: ethtool -K offload flags.  On by default (Linux veth passes
        #: CHECKSUM_PARTIAL and GSO super-segments straight through —
        #: "within a single host, this means not generating a checksum at
        #: all", §5.1).  Figure 8c's "no offload" bars switch them off.
        self.csum_offload = True
        self.tso = True

    def _transmit(self, pkt: Packet, ctx: ExecContext) -> bool:
        if self.peer is None:
            return False
        costs = DEFAULT_COSTS
        if not self.csum_offload and pkt.meta.csum_partial:
            ctx.charge(costs.checksum_cost(len(pkt)), label="sw_csum")
            pkt.meta.csum_partial = False
        if not self.tso and pkt.meta.gso_size:
            payload = max(len(pkt) - 54, 1)
            segments = -(-payload // pkt.meta.gso_size)
            ctx.charge(segments * costs.software_gso_per_segment_ns
                       + costs.copy_cost(len(pkt)), label="sw_gso")
            pkt.meta.gso_size = 0
        ctx.charge(costs.veth_xmit_ns, label="veth_xmit")
        self.peer.deliver(pkt.clone(), ctx)
        return True


class VethPair:
    """Create both ends at once, carrier up, linked."""

    def __init__(
        self,
        name_a: str,
        name_b: str,
        mac_a: Optional[MacAddress] = None,
        mac_b: Optional[MacAddress] = None,
        mtu: int = 1500,
    ) -> None:
        mac_a = mac_a or MacAddress.local(hash(name_a) & 0xFFFFFF)
        mac_b = mac_b or MacAddress.local(hash(name_b) & 0xFFFFFF)
        self.a = VethDevice(name_a, mac_a, mtu=mtu)
        self.b = VethDevice(name_b, mac_b, mtu=mtu)
        self.a.peer = self.b
        self.b.peer = self.a
        self.a.carrier = True
        self.b.carrier = True

    def devices(self) -> Tuple[VethDevice, VethDevice]:
        return self.a, self.b
