"""NSX: the network-virtualization control plane on top of OVS (§4).

:mod:`repro.nsx.topology` synthesises a logical topology with the scale
of the paper's Table 3 (15 VMs x 2 interfaces, 291 Geneve tunnels);
:mod:`repro.nsx.ruleset` compiles it into a production-grade OpenFlow
rule set (103,302 rules over 40 tables matching on 31 distinct fields);
:mod:`repro.nsx.agent` plays the NSX agent, configuring bridges and
tunnel ports through OVSDB and installing the rules through OpenFlow.
"""

from repro.nsx.topology import LogicalTopology, Vif, Vtep
from repro.nsx.ruleset import RulesetStats, collect_stats, install_ruleset
from repro.nsx.agent import NsxAgent

__all__ = [
    "LogicalTopology",
    "Vif",
    "Vtep",
    "RulesetStats",
    "collect_stats",
    "install_ruleset",
    "NsxAgent",
]
